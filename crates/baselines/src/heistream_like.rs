//! A buffered streaming partitioner standing in for HeiStream (paper §VII).
//!
//! Streaming partitioners process the vertex stream once and never revisit a decision,
//! which keeps memory minimal but — as the paper points out — gives "sub-par solution
//! quality compared to multilevel algorithms" (HeiStream cuts 3.1×–14.8× more edges than
//! TeraPart on the tera-scale instances). This implementation buffers a batch of vertices
//! (HeiStream's improvement over purely one-at-a-time streaming), assigns the batch with
//! a Fennel-style objective (connectivity to a block minus a load penalty), and runs a
//! single label-propagation sweep inside the buffer before committing it.

use std::time::Instant;

use graph::traits::Graph;
use graph::{NodeId, NodeWeight};

use terapart::partition::{BlockId, Partition};

use crate::BaselineResult;

/// Partitions `graph` into `k` blocks by buffered streaming with buffer size
/// `buffer_size` vertices.
pub fn heistream_partition(
    graph: &impl Graph,
    k: usize,
    epsilon: f64,
    buffer_size: usize,
    _seed: u64,
) -> BaselineResult {
    let start = Instant::now();
    let n = graph.n();
    let total_weight = graph.total_node_weight();
    let max_block_weight = Partition::compute_max_block_weight(total_weight, k, epsilon);
    // Fennel-style load penalty: gamma * (w(block) / capacity).
    let gamma = 1.5_f64;
    let avg_edge_weight = if graph.m() == 0 {
        1.0
    } else {
        graph.total_edge_weight() as f64 / graph.m() as f64
    };

    let mut assignment: Vec<BlockId> = vec![BlockId::MAX; n];
    let mut block_weights: Vec<NodeWeight> = vec![0; k];

    let score = |connectivity: f64, block_weight: NodeWeight| -> f64 {
        connectivity - gamma * avg_edge_weight * (block_weight as f64 / max_block_weight as f64)
    };

    let mut batch_start = 0usize;
    while batch_start < n {
        let batch_end = (batch_start + buffer_size).min(n);
        // First pass over the buffer: greedy Fennel assignment in stream order.
        for u in batch_start..batch_end {
            let u = u as NodeId;
            let mut connectivity = vec![0.0f64; k];
            graph.for_each_neighbor(u, &mut |v, w| {
                let b = assignment[v as usize];
                if b != BlockId::MAX {
                    connectivity[b as usize] += w as f64;
                }
            });
            let node_weight = graph.node_weight(u);
            let mut best: Option<(f64, BlockId)> = None;
            for b in 0..k {
                if block_weights[b] + node_weight > max_block_weight {
                    continue;
                }
                let s = score(connectivity[b], block_weights[b]);
                best = match best {
                    None => Some((s, b as BlockId)),
                    Some((bs, _)) if s > bs => Some((s, b as BlockId)),
                    other => other,
                };
            }
            // If every block is full (can only happen through rounding), fall back to the
            // lightest block.
            let target = best.map(|(_, b)| b).unwrap_or_else(|| {
                block_weights
                    .iter()
                    .enumerate()
                    .min_by_key(|&(_, &w)| w)
                    .map(|(b, _)| b as BlockId)
                    .unwrap()
            });
            assignment[u as usize] = target;
            block_weights[target as usize] += node_weight;
        }
        // One refinement sweep *within* the buffer (this is what distinguishes buffered
        // streaming from one-shot streaming): vertices of the batch may switch blocks.
        for u in batch_start..batch_end {
            let u = u as NodeId;
            let current = assignment[u as usize];
            let node_weight = graph.node_weight(u);
            let mut connectivity = vec![0.0f64; k];
            graph.for_each_neighbor(u, &mut |v, w| {
                let b = assignment[v as usize];
                if b != BlockId::MAX {
                    connectivity[b as usize] += w as f64;
                }
            });
            let mut best = (
                score(
                    connectivity[current as usize],
                    block_weights[current as usize] - node_weight,
                ),
                current,
            );
            for b in 0..k as BlockId {
                if b == current || block_weights[b as usize] + node_weight > max_block_weight {
                    continue;
                }
                let s = score(connectivity[b as usize], block_weights[b as usize]);
                if s > best.0 {
                    best = (s, b);
                }
            }
            if best.1 != current {
                block_weights[current as usize] -= node_weight;
                block_weights[best.1 as usize] += node_weight;
                assignment[u as usize] = best.1;
            }
        }
        batch_start = batch_end;
    }

    // Auxiliary memory: the assignment, block weights and one buffer of connectivity
    // scores — O(n + k + buffer).
    let aux = n * std::mem::size_of::<BlockId>() + k * 16 + buffer_size * 8;
    crate::finish(graph, k, epsilon, assignment, start, aux)
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph::gen;

    #[test]
    fn assigns_every_vertex_within_balance() {
        let g = gen::rgg2d(1200, 10, 4);
        let result = heistream_partition(&g, 8, 0.1, 256, 1);
        assert!(result.assignment.iter().all(|&b| (b as usize) < 8));
        assert!(result.balanced, "imbalance {}", result.imbalance);
    }

    #[test]
    fn streaming_is_worse_than_multilevel_but_better_than_random() {
        let g = gen::rgg2d(2000, 16, 11);
        let streaming = heistream_partition(&g, 8, 0.03, 512, 1);
        let multilevel = terapart::partition(
            &g,
            &terapart::PartitionerConfig::terapart(8).with_threads(2),
        );
        let random_cut = g.m() as f64 * 7.0 / 8.0;
        assert!(
            streaming.edge_cut >= multilevel.edge_cut,
            "streaming {} should not beat multilevel {}",
            streaming.edge_cut,
            multilevel.edge_cut
        );
        assert!(
            (streaming.edge_cut as f64) < random_cut,
            "no better than random"
        );
    }

    #[test]
    fn larger_buffers_do_not_hurt() {
        let g = gen::grid2d(40, 40);
        let small = heistream_partition(&g, 4, 0.05, 32, 1);
        let large = heistream_partition(&g, 4, 0.05, 800, 1);
        // Both must be valid; the larger buffer typically helps (not asserted strictly to
        // avoid flakiness, only that it stays in a sane range).
        assert!(large.edge_cut as f64 <= 1.5 * small.edge_cut as f64 + 50.0);
    }

    #[test]
    fn handles_k_larger_than_buffer() {
        let g = gen::grid2d(10, 10);
        let result = heistream_partition(&g, 16, 0.2, 4, 1);
        assert!(result.assignment.iter().all(|&b| (b as usize) < 16));
    }
}
