//! Baseline partitioners the paper compares against.
//!
//! The original comparators are external systems (Mt-METIS, ParMETIS, XtraPuLP,
//! HeiStream, and the semi-external algorithm of Akhremtsev et al.). They are
//! re-implemented here as representatives of their algorithmic families so the paper's
//! comparisons can be reproduced qualitatively (see DESIGN.md):
//!
//! * [`mtmetis_like`] — a matching-based multilevel partitioner (heavy-edge matching
//!   coarsening, recursive bisection, greedy refinement) that, like Mt-METIS in the
//!   paper's experiments, does not strictly enforce the balance constraint and uses more
//!   auxiliary memory than KaMinPar/TeraPart.
//! * [`xtrapulp_like`] — a single-level (non-multilevel) balanced label propagation
//!   partitioner, the family XtraPuLP belongs to; fast and memory-lean but with much
//!   higher edge cuts (Table III).
//! * [`heistream_like`] — a buffered streaming partitioner with a Fennel-style objective
//!   (the HeiStream comparison in §VII).
//! * [`sem_like`] — a semi-external-memory multilevel partitioner that keeps only `O(n)`
//!   state in memory and streams neighbourhoods from disk on every pass (Table IV).

pub mod heistream_like;
pub mod mtmetis_like;
pub mod sem_like;
pub mod xtrapulp_like;

pub use heistream_like::heistream_partition;
pub use mtmetis_like::mtmetis_partition;
pub use sem_like::sem_partition;
pub use xtrapulp_like::xtrapulp_partition;

use graph::traits::Graph;
use graph::EdgeWeight;
use terapart::partition::BlockId;

/// Common result type of the baseline partitioners.
#[derive(Debug, Clone)]
pub struct BaselineResult {
    /// Block of every vertex.
    pub assignment: Vec<BlockId>,
    /// Edge cut on the input graph.
    pub edge_cut: EdgeWeight,
    /// Imbalance of the partition.
    pub imbalance: f64,
    /// Whether the balance constraint `(1 + ε)·⌈W/k⌉` is satisfied.
    pub balanced: bool,
    /// Wall-clock time of the run.
    pub total_time: std::time::Duration,
    /// Peak auxiliary memory charged by the algorithm, in bytes.
    pub peak_memory_bytes: usize,
}

/// Computes cut/imbalance bookkeeping shared by all baselines.
pub(crate) fn finish(
    graph: &impl Graph,
    k: usize,
    epsilon: f64,
    assignment: Vec<BlockId>,
    start: std::time::Instant,
    peak_memory_bytes: usize,
) -> BaselineResult {
    let partition = terapart::Partition::from_assignment(graph, k, epsilon, assignment);
    BaselineResult {
        edge_cut: partition.edge_cut_on(graph),
        imbalance: partition.imbalance(),
        balanced: partition.is_balanced(),
        total_time: start.elapsed(),
        peak_memory_bytes,
        assignment: partition.assignment().to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph::gen;

    /// Cross-baseline sanity: every baseline produces a complete partition, and the
    /// multilevel baselines beat the single-level and streaming ones on a structured
    /// graph — the central qualitative claim behind Table III and §VII.
    #[test]
    fn quality_ordering_matches_the_paper() {
        let g = gen::rgg2d(1500, 12, 3);
        let k = 8;
        let epsilon = 0.03;
        let terapart_result = terapart::partition(
            &g,
            &terapart::PartitionerConfig::terapart(k).with_threads(2),
        );
        let mtmetis = mtmetis_partition(&g, k, epsilon, 1);
        let xtrapulp = xtrapulp_partition(&g, k, epsilon, 1);
        let heistream = heistream_partition(&g, k, epsilon, 512, 1);
        assert!(terapart_result.partition.is_balanced());
        // Multilevel (TeraPart, Mt-METIS-like) should clearly beat single-level LP.
        assert!(
            xtrapulp.edge_cut > terapart_result.edge_cut,
            "single-level LP cut {} should exceed multilevel cut {}",
            xtrapulp.edge_cut,
            terapart_result.edge_cut
        );
        assert!(
            xtrapulp.edge_cut as f64 > 1.2 * mtmetis.edge_cut as f64,
            "single-level {} vs matching-multilevel {}",
            xtrapulp.edge_cut,
            mtmetis.edge_cut
        );
        // Streaming is the weakest of all (one pass, no refinement).
        assert!(
            heistream.edge_cut >= terapart_result.edge_cut,
            "streaming cut {} should not beat multilevel {}",
            heistream.edge_cut,
            terapart_result.edge_cut
        );
    }
}
