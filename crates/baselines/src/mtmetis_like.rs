//! A matching-based multilevel partitioner standing in for Mt-METIS.
//!
//! METIS-family partitioners coarsen by *heavy-edge matching* (pairs of vertices joined by
//! heavy edges are contracted) instead of label propagation clustering, partition the
//! coarsest graph by recursive bisection and refine with greedy boundary moves. Two
//! further characteristics from the paper's experiments are modelled: the algorithm uses
//! noticeably more auxiliary memory than KaMinPar (it keeps per-level matching arrays and
//! a second copy of each coarse graph), and it does not strictly enforce the balance
//! constraint during refinement, so a fraction of its partitions end up imbalanced
//! (Figure 4, "Mt-METIS does not always respect the balance constraint").

use std::time::Instant;

use graph::csr::CsrGraph;
use graph::traits::Graph;
use graph::{NodeId, NodeWeight};
use memtrack::MemoryScope;
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

use terapart::coarsening::lp_clustering::Clustering;
use terapart::coarsening::{contract, ContractionResult};
use terapart::context::{ContractionAlgorithm, InitialPartitioningConfig};
use terapart::initial::initial_partition;
use terapart::partition::{BlockId, Partition};

use crate::BaselineResult;

/// Computes a heavy-edge matching: vertices are visited in random order and matched with
/// their unmatched neighbour of maximum edge weight (subject to the weight limit).
pub fn heavy_edge_matching(
    graph: &impl Graph,
    max_pair_weight: NodeWeight,
    seed: u64,
) -> Clustering {
    let n = graph.n();
    let mut mate: Vec<NodeId> = (0..n as NodeId).collect();
    let mut matched = vec![false; n];
    let mut order: Vec<NodeId> = (0..n as NodeId).collect();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    order.shuffle(&mut rng);
    for &u in &order {
        if matched[u as usize] {
            continue;
        }
        let mut best: Option<(NodeId, u64)> = None;
        graph.for_each_neighbor(u, &mut |v, w| {
            if matched[v as usize] || v == u {
                return;
            }
            if graph.node_weight(u) + graph.node_weight(v) > max_pair_weight {
                return;
            }
            best = match best {
                None => Some((v, w)),
                Some((_, bw)) if w > bw => Some((v, w)),
                other => other,
            };
        });
        if let Some((v, _)) = best {
            matched[u as usize] = true;
            matched[v as usize] = true;
            mate[v as usize] = u;
            mate[u as usize] = u;
        }
    }
    Clustering::from_labels(mate)
}

/// Partitions `graph` into `k` blocks with the matching-based multilevel scheme.
pub fn mtmetis_partition(graph: &CsrGraph, k: usize, epsilon: f64, seed: u64) -> BaselineResult {
    let start = Instant::now();
    let mut aux_bytes = 0usize;

    // ---- Coarsening by repeated heavy-edge matching. ----
    let max_pair_weight = (graph.total_node_weight() / (20 * k as u64).max(1)).max(2);
    let mut hierarchy: Vec<ContractionResult> = Vec::new();
    let mut current: CsrGraph = graph.clone();
    let mut charges = Vec::new();
    let mut level = 0;
    while current.n() > 30 * k && level < 40 {
        let matching = heavy_edge_matching(&current, max_pair_weight, seed ^ level as u64);
        // Matching halves the graph at best; stop when it stalls.
        if matching.num_clusters as f64 > 0.97 * current.n() as f64 {
            break;
        }
        // Matching arrays + a buffered copy of the coarse graph: this is the extra
        // auxiliary memory Mt-METIS pays relative to KaMinPar (Figure 4, middle).
        let result = contract(&current, &matching, ContractionAlgorithm::Buffered, 4096);
        aux_bytes += current.n() * 8 + 2 * result.coarse.size_in_bytes();
        charges.push(MemoryScope::charge_global(
            current.n() * 8 + 2 * result.coarse.size_in_bytes(),
        ));
        current = result.coarse.clone();
        hierarchy.push(result);
        level += 1;
    }

    // ---- Initial partitioning by recursive bisection. ----
    let config = InitialPartitioningConfig {
        attempts: 3,
        fm_passes: 3,
        seed,
        ..InitialPartitioningConfig::default()
    };
    let mut partition = initial_partition(&current, k, epsilon, &config, seed);

    // ---- Uncoarsening with greedy boundary refinement (no strict balance enforcement). --
    for level in hierarchy.iter().rev() {
        let finer: &CsrGraph = if std::ptr::eq(level, &hierarchy[0]) {
            graph
        } else {
            // The graph one level finer than `level.coarse` is the coarse graph of the
            // previous hierarchy entry; find it by position.
            let idx = hierarchy
                .iter()
                .position(|l| std::ptr::eq(l, level))
                .unwrap();
            &hierarchy[idx - 1].coarse
        };
        partition = partition.project(finer, &level.mapping);
        greedy_refine(finer, &mut partition, 3);
    }
    if hierarchy.is_empty() {
        greedy_refine(graph, &mut partition, 3);
    }
    drop(charges);

    crate::finish(
        graph,
        k,
        epsilon,
        partition.assignment().to_vec(),
        start,
        aux_bytes,
    )
}

/// Greedy boundary refinement that allows up to 10% overload per block — modelling
/// METIS-style refinement that trades balance for cut.
fn greedy_refine(graph: &impl Graph, partition: &mut Partition, rounds: usize) {
    let relaxed_limit = (partition.max_block_weight() as f64 * 1.10).ceil() as NodeWeight;
    for _ in 0..rounds {
        let mut moved = 0;
        for u in 0..graph.n() as NodeId {
            let from = partition.block(u);
            let mut per_block: Vec<(BlockId, u64)> = Vec::new();
            graph.for_each_neighbor(u, &mut |v, w| {
                let b = partition.block(v);
                if let Some(e) = per_block.iter_mut().find(|(pb, _)| *pb == b) {
                    e.1 += w;
                } else {
                    per_block.push((b, w));
                }
            });
            let current_affinity = per_block
                .iter()
                .find(|(b, _)| *b == from)
                .map(|&(_, w)| w)
                .unwrap_or(0);
            let node_weight = graph.node_weight(u);
            if let Some(&(target, _)) = per_block
                .iter()
                .filter(|&&(b, w)| {
                    b != from
                        && w > current_affinity
                        && partition.block_weight(b) + node_weight <= relaxed_limit
                })
                .max_by_key(|&&(_, w)| w)
            {
                partition.move_vertex(u, target, node_weight);
                moved += 1;
            }
        }
        if moved == 0 {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph::gen;

    #[test]
    fn matching_pairs_are_disjoint_and_weight_bounded() {
        let g = gen::with_random_edge_weights(&gen::grid2d(10, 10), 5, 1);
        let matching = heavy_edge_matching(&g, 2, 3);
        let weights = matching.cluster_weights(&g);
        assert!(weights.iter().all(|&w| w <= 2));
        // A matching at least halves a grid's vertex count minus unmatched boundary.
        assert!(matching.num_clusters <= g.n());
        assert!(matching.num_clusters >= g.n() / 2);
    }

    #[test]
    fn partitions_are_complete_and_reasonable() {
        let g = gen::rgg2d(1000, 10, 7);
        let result = mtmetis_partition(&g, 8, 0.03, 1);
        assert_eq!(result.assignment.len(), g.n());
        assert!(result.assignment.iter().all(|&b| (b as usize) < 8));
        assert!(result.edge_cut > 0);
        assert!((result.edge_cut as f64) < 0.5 * g.m() as f64);
        assert!(result.peak_memory_bytes > 0);
    }

    #[test]
    fn uses_more_auxiliary_memory_than_terapart() {
        let g = gen::rgg2d(2000, 12, 2);
        let mtmetis = mtmetis_partition(&g, 8, 0.03, 1);
        let tp = terapart::partition(
            &g,
            &terapart::PartitionerConfig::terapart(8).with_threads(1),
        );
        // The matching arrays + double-stored coarse graphs exceed TeraPart's auxiliary
        // footprint (which excludes the input graph itself here).
        assert!(
            mtmetis.peak_memory_bytes > tp.refinement.gain_table_bytes,
            "expected Mt-METIS-like memory to be substantial"
        );
    }

    #[test]
    fn may_trade_balance_for_cut_but_stays_close() {
        let g = gen::rhg_like(1200, 10, 3.0, 5);
        let result = mtmetis_partition(&g, 4, 0.03, 2);
        // The relaxed refinement keeps imbalance under ~10% even when the strict 3%
        // constraint is violated.
        assert!(
            result.imbalance < 0.35,
            "imbalance {} too extreme",
            result.imbalance
        );
    }
}
