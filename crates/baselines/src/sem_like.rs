//! A semi-external-memory multilevel partitioner standing in for Akhremtsev et al.
//! (Table IV of the paper).
//!
//! Semi-external algorithms keep only `O(n)` state in RAM (labels, cluster weights, the
//! partition) and stream the adjacency structure from disk on every pass. This module
//! implements that model faithfully: the input graph is written to a binary file once,
//! and every label propagation pass re-reads the neighbourhoods from that file one vertex
//! at a time. Coarse graphs are small enough to be kept in memory (as in the original
//! algorithm), so after semi-external coarsening the remaining levels run in memory. The
//! result is an order of magnitude slower than the in-memory TeraPart — which is exactly
//! the comparison Table IV reports — while using less memory than holding the CSR arrays.

use std::fs::File;
use std::io::{BufReader, Read, Seek, SeekFrom};
use std::path::PathBuf;
use std::time::Instant;

use graph::csr::CsrGraph;
use graph::io::write_binary;
use graph::traits::Graph;
use graph::{EdgeWeight, NodeId, NodeWeight};

use terapart::coarsening::lp_clustering::Clustering;
use terapart::coarsening::{contract, ContractionResult};
use terapart::context::{ContractionAlgorithm, InitialPartitioningConfig};
use terapart::initial::initial_partition;
use terapart::refinement::{lp_refine, rebalance};

use crate::BaselineResult;

/// A reader that streams the neighbourhoods of a binary graph file one vertex at a time,
/// keeping only the `O(n)` offset array in memory.
pub struct StreamedGraph {
    path: PathBuf,
    xadj: Vec<u64>,
    node_weights: Vec<NodeWeight>,
    edge_weighted: bool,
    /// Byte offset of the adjacency array within the file.
    adjacency_offset: u64,
}

impl StreamedGraph {
    /// Prepares streaming access to a graph previously written with
    /// [`graph::io::write_binary`].
    pub fn open(path: PathBuf) -> std::io::Result<Self> {
        let mut reader = BufReader::new(File::open(&path)?);
        let mut header = [0u8; 4];
        reader.read_exact(&mut header)?;
        let mut u32buf = [0u8; 4];
        let mut u64buf = [0u8; 8];
        reader.read_exact(&mut u32buf)?; // version
        reader.read_exact(&mut u64buf)?;
        let n = u64::from_le_bytes(u64buf) as usize;
        reader.read_exact(&mut u64buf)?;
        let half_edges = u64::from_le_bytes(u64buf) as usize;
        reader.read_exact(&mut u32buf)?;
        let flags = u32::from_le_bytes(u32buf);
        let edge_weighted = flags & 1 != 0;
        let node_weighted = flags & 2 != 0;
        let mut xadj = Vec::with_capacity(n + 1);
        for _ in 0..=n {
            reader.read_exact(&mut u64buf)?;
            xadj.push(u64::from_le_bytes(u64buf));
        }
        let adjacency_offset = 4 + 4 + 8 + 8 + 4 + (n as u64 + 1) * 8;
        // Node weights are stored after adjacency (+ edge weights); read them eagerly as
        // they are part of the O(n) in-memory state.
        let node_weights = if node_weighted {
            let mut skip = half_edges as u64 * 4;
            if edge_weighted {
                skip += half_edges as u64 * 8;
            }
            reader.seek(SeekFrom::Start(adjacency_offset + skip))?;
            let mut weights = Vec::with_capacity(n);
            for _ in 0..n {
                reader.read_exact(&mut u64buf)?;
                weights.push(u64::from_le_bytes(u64buf));
            }
            weights
        } else {
            Vec::new()
        };
        Ok(Self {
            path,
            xadj,
            node_weights,
            edge_weighted,
            adjacency_offset,
        })
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.xadj.len() - 1
    }

    /// Weight of vertex `u`.
    pub fn node_weight(&self, u: NodeId) -> NodeWeight {
        if self.node_weights.is_empty() {
            1
        } else {
            self.node_weights[u as usize]
        }
    }

    /// Streams all neighbourhoods in vertex order, invoking
    /// `f(u, &[(neighbor, weight)])` once per vertex. Each call to this function is one
    /// full pass over the on-disk adjacency.
    pub fn for_each_neighborhood(
        &self,
        mut f: impl FnMut(NodeId, &[(NodeId, EdgeWeight)]),
    ) -> std::io::Result<()> {
        let file = File::open(&self.path)?;
        let mut reader = BufReader::new(file);
        reader.seek(SeekFrom::Start(self.adjacency_offset))?;
        let half_edges = *self.xadj.last().unwrap() as usize;
        // For weighted graphs, the weights live in a separate section; open a second
        // cursor so both can be streamed in lockstep without loading either.
        let mut weight_reader = if self.edge_weighted {
            let mut r = BufReader::new(File::open(&self.path)?);
            r.seek(SeekFrom::Start(
                self.adjacency_offset + half_edges as u64 * 4,
            ))?;
            Some(r)
        } else {
            None
        };
        let mut buf4 = [0u8; 4];
        let mut buf8 = [0u8; 8];
        let mut neighborhood: Vec<(NodeId, EdgeWeight)> = Vec::new();
        for u in 0..self.n() as NodeId {
            let degree = (self.xadj[u as usize + 1] - self.xadj[u as usize]) as usize;
            neighborhood.clear();
            for _ in 0..degree {
                reader.read_exact(&mut buf4)?;
                let v = u32::from_le_bytes(buf4);
                let w = match &mut weight_reader {
                    Some(r) => {
                        r.read_exact(&mut buf8)?;
                        u64::from_le_bytes(buf8)
                    }
                    None => 1,
                };
                neighborhood.push((NodeId::from(v), w));
            }
            f(u, &neighborhood);
        }
        Ok(())
    }
}

/// Partitions `graph` into `k` blocks with the semi-external multilevel scheme.
///
/// The peak memory reported covers only the `O(n)` in-memory state (labels, weights,
/// partition, coarse graphs), not the on-disk adjacency.
pub fn sem_partition(graph: &CsrGraph, k: usize, epsilon: f64, seed: u64) -> BaselineResult {
    let start = Instant::now();
    // Write the graph to "external memory".
    let mut path = std::env::temp_dir();
    path.push(format!("terapart_sem_{}_{}.bin", std::process::id(), seed));
    write_binary(graph, &path).expect("failed to write the external-memory graph file");
    let streamed = StreamedGraph::open(path.clone()).expect("failed to open the graph file");
    let n = streamed.n();

    // ---- Semi-external label propagation clustering: multiple passes over the file. ----
    let max_cluster_weight = (graph.total_node_weight() / (20 * k as u64).max(1)).max(2);
    let mut labels: Vec<NodeId> = (0..n as NodeId).collect();
    let mut cluster_weights: Vec<NodeWeight> =
        (0..n as NodeId).map(|u| streamed.node_weight(u)).collect();
    for _pass in 0..3 {
        let mut moved = 0usize;
        streamed
            .for_each_neighborhood(|u, neighborhood| {
                let current = labels[u as usize];
                let mut ratings: std::collections::HashMap<NodeId, u64> =
                    std::collections::HashMap::new();
                for &(v, w) in neighborhood {
                    *ratings.entry(labels[v as usize]).or_insert(0) += w;
                }
                let node_weight = streamed.node_weight(u);
                let mut best: Option<(NodeId, u64)> = None;
                for (&label, &rating) in &ratings {
                    let feasible = label == current
                        || cluster_weights[label as usize] + node_weight <= max_cluster_weight;
                    if !feasible {
                        continue;
                    }
                    best = match best {
                        None => Some((label, rating)),
                        Some((_, br)) if rating > br => Some((label, rating)),
                        other => other,
                    };
                }
                if let Some((target, _)) = best {
                    if target != current {
                        cluster_weights[current as usize] -= node_weight;
                        cluster_weights[target as usize] += node_weight;
                        labels[u as usize] = target;
                        moved += 1;
                    }
                }
            })
            .expect("streaming pass failed");
        if moved == 0 {
            break;
        }
    }
    let clustering = Clustering::from_labels(labels);

    // ---- The coarse graph fits in memory: finish with the in-memory multilevel. ----
    let ContractionResult { coarse, mapping } =
        contract(graph, &clustering, ContractionAlgorithm::Buffered, 4096);
    let config = InitialPartitioningConfig {
        attempts: 3,
        fm_passes: 3,
        seed,
        ..InitialPartitioningConfig::default()
    };
    let coarse_partition = if coarse.n() > 30 * k {
        // Recurse through the in-memory partitioner for deep hierarchies.
        let result = terapart::partition(
            &coarse,
            &terapart::PartitionerConfig::terapart(k)
                .with_threads(1)
                .with_seed(seed),
        );
        result.partition
    } else {
        initial_partition(&coarse, k, epsilon, &config, seed)
    };
    let mut partition = coarse_partition.project(graph, &mapping);

    // ---- Semi-external refinement: one more in-memory LP pass (the labels are O(n)). ----
    lp_refine(graph, &mut partition, 3, seed);
    if !partition.is_balanced() {
        rebalance(graph, &mut partition);
    }

    // O(n) in-memory state + the coarse graph.
    let aux = n * (8 + 8 + 4) + coarse.size_in_bytes();
    std::fs::remove_file(path).ok();
    crate::finish(
        graph,
        k,
        epsilon,
        partition.assignment().to_vec(),
        start,
        aux,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph::gen;

    #[test]
    fn streamed_graph_reproduces_neighborhoods() {
        let g = gen::with_random_edge_weights(&gen::erdos_renyi(150, 600, 2), 9, 3);
        let mut path = std::env::temp_dir();
        path.push(format!("terapart_sem_test_{}.bin", std::process::id()));
        write_binary(&g, &path).unwrap();
        let streamed = StreamedGraph::open(path.clone()).unwrap();
        assert_eq!(streamed.n(), g.n());
        let mut seen = 0;
        streamed
            .for_each_neighborhood(|u, neighborhood| {
                let mut expected = g.neighbors_vec(u);
                let mut actual = neighborhood.to_vec();
                expected.sort_unstable();
                actual.sort_unstable();
                assert_eq!(expected, actual, "vertex {}", u);
                seen += 1;
            })
            .unwrap();
        assert_eq!(seen, g.n());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn sem_partitions_are_valid_and_balanced() {
        let g = gen::rgg2d(900, 10, 6);
        let result = sem_partition(&g, 8, 0.03, 1);
        assert_eq!(result.assignment.len(), g.n());
        assert!(result.balanced, "imbalance {}", result.imbalance);
        assert!((result.edge_cut as f64) < 0.4 * g.m() as f64);
    }

    #[test]
    fn sem_quality_is_in_the_multilevel_class() {
        // Table IV compares cut/time/memory of the semi-external algorithm against the
        // in-memory TeraPart; the timing comparison is produced by the table4_sem
        // experiment binary (wall-clock assertions are too flaky for unit tests). Here we
        // check the quality relationship: SEM is multilevel, so its cut stays within a
        // small factor of TeraPart's.
        let g = gen::rgg2d(3000, 16, 8);
        let sem = sem_partition(&g, 16, 0.03, 2);
        let tp = terapart::partition(
            &g,
            &terapart::PartitionerConfig::terapart(16).with_threads(2),
        );
        assert!(
            (sem.edge_cut as f64) < 2.5 * tp.edge_cut.max(1) as f64,
            "semi-external cut {} too far from in-memory cut {}",
            sem.edge_cut,
            tp.edge_cut
        );
        assert!(sem.peak_memory_bytes > 0);
    }

    #[test]
    fn unweighted_grid_round_trips_through_the_file() {
        let g = gen::grid2d(12, 12);
        let result = sem_partition(&g, 4, 0.05, 3);
        assert!(result.assignment.iter().all(|&b| b < 4));
        assert!(result.edge_cut > 0);
    }
}
