//! A single-level balanced label propagation partitioner standing in for XtraPuLP.
//!
//! XtraPuLP (and PuLP) partition the input graph directly with weight-constrained label
//! propagation — no multilevel hierarchy. This makes them fast and extremely memory-lean
//! but, as the paper stresses, results in substantially higher edge cuts than multilevel
//! methods (5.56×–68.44× in Table III). This module reproduces that algorithmic family:
//! a balanced random initial assignment followed by rounds of size-constrained label
//! propagation directly on the input graph.

use std::time::Instant;

use graph::traits::Graph;
use graph::NodeId;
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

use terapart::partition::{BlockId, Partition};
use terapart::refinement::{lp_refine, rebalance};

use crate::BaselineResult;

/// Partitions `graph` into `k` blocks with single-level label propagation.
pub fn xtrapulp_partition(graph: &impl Graph, k: usize, epsilon: f64, seed: u64) -> BaselineResult {
    let start = Instant::now();
    let n = graph.n();
    // Balanced random initial assignment (block i gets every k-th vertex of a random
    // permutation), as PuLP-style partitioners start from random or BFS-based blocks.
    let mut order: Vec<NodeId> = (0..n as NodeId).collect();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    order.shuffle(&mut rng);
    let mut assignment: Vec<BlockId> = vec![0; n];
    for (i, &u) in order.iter().enumerate() {
        assignment[u as usize] = (i % k) as BlockId;
    }
    let mut partition = Partition::from_assignment(graph, k, epsilon, assignment);

    // Label propagation rounds directly on the input graph (the whole point of the
    // comparison: no coarsening, so the moves only see local structure).
    lp_refine(graph, &mut partition, 8, seed);
    if !partition.is_balanced() {
        rebalance(graph, &mut partition);
    }

    // Auxiliary memory: one label per vertex plus the block weights — O(n + k).
    let aux = n * std::mem::size_of::<BlockId>() + k * 8;
    crate::finish(
        graph,
        k,
        epsilon,
        partition.assignment().to_vec(),
        start,
        aux,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph::gen;

    #[test]
    fn produces_balanced_partitions() {
        let g = gen::rgg2d(1000, 10, 1);
        let result = xtrapulp_partition(&g, 8, 0.03, 7);
        assert_eq!(result.assignment.len(), g.n());
        assert!(result.balanced, "imbalance {}", result.imbalance);
        assert!(result.edge_cut > 0);
    }

    #[test]
    fn cut_is_much_worse_than_multilevel_on_geometric_graphs() {
        // This is the Table III claim: the single-level method cuts several times more
        // edges than the multilevel method on rgg2D-style graphs.
        let g = gen::rgg2d(2000, 16, 9);
        let single_level = xtrapulp_partition(&g, 8, 0.03, 3);
        let multilevel = terapart::partition(
            &g,
            &terapart::PartitionerConfig::terapart(8).with_threads(2),
        );
        assert!(
            single_level.edge_cut as f64 > 1.5 * multilevel.edge_cut as f64,
            "single-level {} vs multilevel {}",
            single_level.edge_cut,
            multilevel.edge_cut
        );
    }

    #[test]
    fn memory_footprint_is_tiny() {
        let g = gen::grid2d(40, 40);
        let result = xtrapulp_partition(&g, 4, 0.03, 1);
        assert!(result.peak_memory_bytes < g.n() * 16);
    }

    #[test]
    fn improves_over_the_random_start() {
        let g = gen::grid2d(30, 30);
        let result = xtrapulp_partition(&g, 4, 0.03, 5);
        // Random 4-way cut would be ~3/4 of all edges.
        assert!((result.edge_cut as f64) < 0.6 * g.m() as f64);
    }
}
