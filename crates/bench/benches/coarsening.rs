//! Criterion micro-benchmarks of the coarsening stage: label propagation clustering
//! (per-thread rating maps vs two-phase) and contraction (buffered vs one-pass).
//! These are the per-component counterparts of Figures 1/2/4.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graph::gen;
use terapart::coarsening::{cluster, contract};
use terapart::context::{CoarseningConfig, ContractionAlgorithm, LabelPropagationMode};

fn bench_clustering(c: &mut Criterion) {
    let graph = gen::rgg2d(20_000, 16, 1);
    let mut group = c.benchmark_group("lp_clustering");
    for (name, mode) in [
        ("per_thread_maps", LabelPropagationMode::PerThreadRatingMaps),
        ("two_phase", LabelPropagationMode::TwoPhase),
    ] {
        let config = CoarseningConfig {
            lp_mode: mode,
            lp_rounds: 2,
            ..Default::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(name), &config, |b, config| {
            b.iter(|| cluster(&graph, config, 32, 7));
        });
    }
    group.finish();
}

fn bench_contraction(c: &mut Criterion) {
    // The bench RMAT instance (same as bench_pipeline / BENCH_pipeline.json): skewed
    // degrees exercise both aggregation phases and the chunked neighbourhood sort.
    let graph = gen::weblike(14, 12, 9);
    let config = CoarseningConfig::default();
    let clustering = cluster(&graph, &config, 32, 3);
    let mut group = c.benchmark_group("contraction");
    // Pre-change baseline: the seed's one-pass contraction with `Vec<Vec<_>>` buckets
    // and freshly allocated atomic arrays per call.
    group.bench_with_input(
        BenchmarkId::from_parameter("seed_one_pass"),
        &(),
        |b, ()| {
            b.iter(|| bench::seed_baseline::seed_contract_one_pass(&graph, &clustering, 256));
        },
    );
    for (name, algorithm) in [
        ("buffered", ContractionAlgorithm::Buffered),
        ("one_pass", ContractionAlgorithm::OnePass),
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(name),
            &algorithm,
            |b, &algorithm| {
                b.iter(|| contract(&graph, &clustering, algorithm, 256));
            },
        );
    }
    // The pipeline configuration: one-pass contraction through a reused scratch arena.
    let mut scratch = terapart::HierarchyScratch::new();
    group.bench_with_input(
        BenchmarkId::from_parameter("one_pass_scratch"),
        &(),
        |b, ()| {
            b.iter(|| {
                terapart::coarsening::contract_with_scratch(
                    &graph,
                    &clustering,
                    ContractionAlgorithm::OnePass,
                    256,
                    &mut scratch,
                )
            });
        },
    );
    group.finish();
}

criterion_group!(benches, bench_clustering, bench_contraction);
criterion_main!(benches);
