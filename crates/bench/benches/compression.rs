//! Criterion micro-benchmarks of the compressed graph representation: encoding
//! (sequential vs parallel single-pass) and on-the-fly neighbourhood decoding vs the
//! uncompressed CSR (the claim of paper §III that decoding runs at near-CSR speed).
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graph::builder::compress_csr_parallel;
use graph::traits::Graph;
use graph::{gen, CompressedGraph, CompressionConfig};

fn bench_compression(c: &mut Criterion) {
    let graph = gen::weblike(14, 12, 9);
    let mut group = c.benchmark_group("compress");
    group.bench_function("sequential", |b| {
        b.iter(|| CompressedGraph::from_csr(&graph, &CompressionConfig::default()));
    });
    for threads in [1usize, 2] {
        group.bench_with_input(BenchmarkId::new("parallel", threads), &threads, |b, &t| {
            b.iter(|| compress_csr_parallel(&graph, &CompressionConfig::default(), t));
        });
    }
    group.finish();
}

fn bench_traversal(c: &mut Criterion) {
    let csr = gen::weblike(14, 12, 10);
    let compressed = CompressedGraph::from_csr(&csr, &CompressionConfig::default());
    let mut group = c.benchmark_group("traverse_all_edges");
    group.bench_function("csr", |b| {
        b.iter(|| {
            let mut total = 0u64;
            for u in 0..csr.n() as graph::NodeId {
                csr.for_each_neighbor(u, &mut |v, w| total += graph::ids::widen(v) + w);
            }
            total
        });
    });
    group.bench_function("compressed", |b| {
        b.iter(|| {
            let mut total = 0u64;
            for u in 0..compressed.n() as graph::NodeId {
                compressed.for_each_neighbor(u, &mut |v, w| total += graph::ids::widen(v) + w);
            }
            total
        });
    });
    group.finish();
}

criterion_group!(benches, bench_compression, bench_traversal);
criterion_main!(benches);
