//! Criterion end-to-end benchmarks: the full configuration ladder (KaMinPar -> TeraPart)
//! on a representative instance — the per-run counterpart of Figures 1 and 4.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graph::gen;
use terapart::{partition_csr, PartitionerConfig};

fn bench_config_ladder(c: &mut Criterion) {
    let graph = gen::rgg2d(12_000, 16, 3);
    let mut group = c.benchmark_group("end_to_end_k16");
    group.sample_size(10);
    let ladder: Vec<(&str, PartitionerConfig)> = vec![
        ("kaminpar", PartitionerConfig::kaminpar(16)),
        ("two_phase_lp", PartitionerConfig::kaminpar_two_phase_lp(16)),
        ("compressed", PartitionerConfig::kaminpar_compressed(16)),
        ("terapart", PartitionerConfig::terapart(16)),
        ("terapart_fm", PartitionerConfig::terapart_fm(16)),
    ];
    for (name, config) in ladder {
        let config = config.with_threads(2);
        group.bench_with_input(BenchmarkId::from_parameter(name), &config, |b, config| {
            b.iter(|| partition_csr(&graph, config));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_config_ladder);
criterion_main!(benches);
