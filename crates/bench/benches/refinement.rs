//! Criterion micro-benchmarks of refinement: label propagation refinement and FM with the
//! three gain-table variants (the per-component counterpart of Figure 7 left).
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graph::gen;
use terapart::context::GainTableKind;
use terapart::partition::{BlockId, Partition};
use terapart::refinement::{fm_refine, lp_refine};

fn scrambled(graph: &graph::CsrGraph, k: usize) -> Partition {
    use graph::traits::Graph;
    let assignment: Vec<BlockId> = (0..graph.n() as u32)
        .map(|u| (u.wrapping_mul(2_654_435_761) >> 8) % k as u32)
        .collect();
    Partition::from_assignment(graph, k, 0.1, assignment)
}

fn bench_lp_refinement(c: &mut Criterion) {
    let graph = gen::rgg2d(10_000, 16, 5);
    c.bench_function("lp_refine/rgg2d_10k", |b| {
        b.iter_batched(
            || scrambled(&graph, 8),
            |mut p| lp_refine(&graph, &mut p, 2, 1),
            criterion::BatchSize::SmallInput,
        );
    });
    // Seed full-sweep rounds vs frontier-driven rounds on the bench RMAT instance,
    // starting from a projected-like (pre-refined) partition as mid-pipeline refinement
    // does — the same comparison bench_pipeline records in BENCH_pipeline.json.
    let rmat = gen::weblike(14, 12, 9);
    let mut projected = scrambled(&rmat, 8);
    bench::seed_baseline::seed_lp_refine(&rmat, &mut projected, 2, 99);
    let mut group = c.benchmark_group("lp_refine_rmat14_rounds5");
    {
        let (rmat, projected) = (&rmat, &projected);
        group.bench_with_input(
            BenchmarkId::from_parameter("seed_full_sweep"),
            &(),
            |b, ()| {
                b.iter_batched(
                    || projected.clone(),
                    |mut p| bench::seed_baseline::seed_lp_refine(rmat, &mut p, 5, 1),
                    criterion::BatchSize::SmallInput,
                );
            },
        );
        let mut scratch = terapart::HierarchyScratch::new();
        group.bench_with_input(
            BenchmarkId::from_parameter("frontier"),
            &(),
            move |b, ()| {
                b.iter_batched(
                    || projected.clone(),
                    |mut p| {
                        terapart::refinement::lp_refine_with_scratch(
                            rmat,
                            &mut p,
                            5,
                            1,
                            true,
                            &mut scratch,
                        )
                    },
                    criterion::BatchSize::SmallInput,
                );
            },
        );
    }
    group.finish();
}

fn bench_fm_gain_tables(c: &mut Criterion) {
    let graph = gen::rgg2d(10_000, 16, 6);
    let mut group = c.benchmark_group("fm_refine");
    for (name, kind) in [
        ("no_table", GainTableKind::None),
        ("full_table", GainTableKind::Dense),
        ("sparse_table", GainTableKind::Sparse),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &kind, |b, &kind| {
            b.iter_batched(
                || scrambled(&graph, 64),
                |mut p| fm_refine(&graph, &mut p, kind, 2, 1.0),
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_lp_refinement, bench_fm_gain_tables);
criterion_main!(benches);
