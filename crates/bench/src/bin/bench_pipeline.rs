//! Emits `BENCH_pipeline.json`: one full pipeline run on the bench RMAT instance
//! (phase timings + cut + peak memory) plus micro-benchmark speedups of the hot paths
//! against the frozen seed baseline (`bench::seed_baseline`). Run from the repo root:
//!
//! ```text
//! cargo run --release -p bench --bin bench_pipeline
//! ```
//!
//! The JSON is the perf trajectory anchor across PRs: the `micro_vs_seed_baseline`
//! entries must stay well above 1.0x.
//!
//! To record the `wide-ids` overhead alongside the default width, run the wide build
//! first and then merge its headline numbers into the default-width JSON:
//!
//! ```text
//! cargo run --release --features wide-ids -p bench --bin bench_pipeline -- /tmp/wide.json
//! cargo run --release -p bench --bin bench_pipeline -- BENCH_pipeline.json /tmp/wide.json
//! ```

use std::path::{Path, PathBuf};

use bench::harness::{
    best_seconds, read_width_run, write_pipeline_json, ConcurrentSessionsRun, MicroComparison,
    OndiskRun, StreamIngestRun,
};
use bench::seed_baseline::{seed_contract_one_pass, seed_initial_partition, seed_lp_refine};
use graph::gen;
use graph::store::StreamingTpgBuilder;
use graph::traits::Graph;
use memtrack::PhaseTracker;
use terapart::coarsening::{self, cluster, contract_with_scratch};
use terapart::context::{CoarseningConfig, ContractionAlgorithm};
use terapart::partition::{BlockId, Partition};
use terapart::refinement::lp_refine_with_scratch;
use terapart::{
    initial_partition_with_scratch, EngineConfig, HierarchyScratch, PartitionEngine,
    PartitionRequest, PartitionerConfig,
};

/// Samples per micro-benchmark (the fastest sample is reported).
const RUNS: usize = 25;

/// Samples for the initial-partitioning micro (its seed baseline runs for hundreds of
/// milliseconds per sample, so fewer samples keep the harness fast).
const INITIAL_RUNS: usize = 5;

fn scrambled(graph: &impl Graph, k: usize) -> Partition {
    let assignment: Vec<BlockId> = (0..graph.n() as u32)
        .map(|u| (u.wrapping_mul(2_654_435_761) >> 8) % k as u32)
        .collect();
    Partition::from_assignment(graph, k, 0.1, assignment)
}

fn main() {
    let path = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("BENCH_pipeline.json"));
    // Optional: a BENCH_pipeline.json produced by a build at the other ID width, whose
    // headline numbers are embedded into this run's `width_runs` ladder.
    let other_width_runs: Vec<bench::harness::WidthRun> = std::env::args()
        .nth(2)
        .map(|p| {
            let run = read_width_run(Path::new(&p)).expect("failed to read the width-run JSON");
            assert_ne!(
                run.id_width,
                graph::NodeId::BITS,
                "{} was produced at this build's own id width",
                p
            );
            vec![run]
        })
        .unwrap_or_default();
    println!("id width: {} bits", graph::NodeId::BITS);

    // The bench RMAT instance: web-like R-MAT graph, as in the compression benches.
    let instance = "rmat-14";
    let graph = gen::weblike(14, 12, 9);
    println!("instance {instance}: n={}, m={}", graph.n(), graph.m());

    // ---- Micro: contraction, seed baseline vs live one-pass with scratch reuse. ----
    let coarsening = CoarseningConfig::default();
    let clustering = cluster(&graph, &coarsening, 32, 3);
    let baseline_contract = best_seconds(
        RUNS,
        || (),
        |()| seed_contract_one_pass(&graph, &clustering, 256),
    );
    let mut scratch = HierarchyScratch::new();
    let optimized_contract = best_seconds(
        RUNS,
        || (),
        |()| {
            contract_with_scratch(
                &graph,
                &clustering,
                ContractionAlgorithm::OnePass,
                256,
                &mut scratch,
            )
        },
    );
    let contraction = MicroComparison {
        name: "contraction_one_pass".into(),
        baseline_seconds: baseline_contract,
        optimized_seconds: optimized_contract,
    };
    println!(
        "contraction: seed {:.3} ms -> live {:.3} ms ({:.2}x)",
        contraction.baseline_seconds * 1e3,
        contraction.optimized_seconds * 1e3,
        contraction.speedup()
    );

    // ---- Micro: LP refinement, full-sweep rounds (seed) vs frontier rounds. ----
    // Mid-pipeline, refinement starts from a *projected* partition: locally good except
    // near block boundaries. Emulate that by pre-refining a scrambled partition for two
    // rounds; both variants then run the default five rounds from identical state.
    let rounds = 5;
    let mut projected = scrambled(&graph, 8);
    seed_lp_refine(&graph, &mut projected, 2, 99);
    let baseline_refine = best_seconds(
        RUNS,
        || projected.clone(),
        |mut p| seed_lp_refine(&graph, &mut p, rounds, 1),
    );
    let mut frontier_scratch = HierarchyScratch::new();
    let optimized_refine = best_seconds(
        RUNS,
        || projected.clone(),
        |mut p| lp_refine_with_scratch(&graph, &mut p, rounds, 1, true, &mut frontier_scratch),
    );
    let refinement = MicroComparison {
        name: "lp_refinement".into(),
        baseline_seconds: baseline_refine,
        optimized_seconds: optimized_refine,
    };
    println!(
        "lp_refine: full-sweep {:.3} ms -> frontier {:.3} ms ({:.2}x)",
        refinement.baseline_seconds * 1e3,
        refinement.optimized_seconds * 1e3,
        refinement.speedup()
    );

    // ---- Micro: initial partitioning on the real coarsest graph of the pipeline,
    // seed baseline (sequential, builder-based, full FM gain recomputation) vs the live
    // parallel scratch-backed engine. ----
    let config = PartitionerConfig::terapart(16);
    let coarsest = {
        let tracker = PhaseTracker::new();
        let mut scratch = HierarchyScratch::new();
        let hierarchy = coarsening::coarsen_with_scratch(&graph, &config, &tracker, &mut scratch);
        hierarchy
            .coarsest()
            .cloned()
            .unwrap_or_else(|| graph.clone())
    };
    println!(
        "coarsest graph for initial partitioning: n={}, m={}",
        coarsest.n(),
        coarsest.m()
    );
    let baseline_initial = best_seconds(
        INITIAL_RUNS,
        || (),
        |()| {
            seed_initial_partition(
                &coarsest,
                config.k,
                config.epsilon,
                config.initial.attempts,
                config.initial.fm_passes,
                config.seed,
            )
        },
    );
    let mut initial_scratch = HierarchyScratch::new();
    let optimized_initial = best_seconds(
        INITIAL_RUNS,
        || (),
        |()| {
            initial_partition_with_scratch(
                &coarsest,
                config.k,
                config.epsilon,
                &config.initial,
                config.seed,
                &mut initial_scratch,
            )
        },
    );
    let initial = MicroComparison {
        name: "initial_partition".into(),
        baseline_seconds: baseline_initial,
        optimized_seconds: optimized_initial,
    };
    println!(
        "initial_partition: seed {:.3} ms -> live {:.3} ms ({:.2}x)",
        initial.baseline_seconds * 1e3,
        initial.optimized_seconds * 1e3,
        initial.speedup()
    );

    // ---- Micro: streamed .tpg ingest — the pipelined finish (flat bucket
    // aggregation + packet-ordered commit) against the sequential reference on the
    // identical spilled R-MAT stream. Both outputs are byte-identical; only the
    // wall-clock differs. ----
    let ingest_dir =
        std::env::temp_dir().join(format!("terapart_bench_ingest_{}", std::process::id()));
    std::fs::create_dir_all(&ingest_dir).expect("failed to create the ingest bench dir");
    let (ingest_scale, ingest_deg, ingest_seed, ingest_buckets) = (14u32, 10usize, 5u64, 8usize);
    let ingest_runs = 9;
    // The effective worker count: finish() clamps its workers to the bucket count.
    let ingest_threads = terapart::context::default_threads().min(ingest_buckets);
    let mut ingest_edges = 0usize;
    let spill_edges = |dir: &Path| {
        let mut builder = StreamingTpgBuilder::new(1usize << ingest_scale, ingest_buckets, dir)
            .expect("failed to open the ingest builder");
        gen::for_each_rmat_edge(ingest_scale, ingest_deg, ingest_seed, &mut |u, v| {
            builder.add_edge(u, v, 1).expect("spill failed");
        });
        builder
    };
    let seq_container = ingest_dir.join("ingest_seq.tpg");
    let mut ingest_spill = graph::store::SpillStats::default();
    let sequential_seconds = best_seconds(
        ingest_runs,
        || spill_edges(&ingest_dir),
        |builder| {
            ingest_edges = builder.edges_added();
            ingest_spill = builder.spill_stats();
            builder
                .finish_sequential(&seq_container, &graph::CompressionConfig::default())
                .expect("sequential finish failed")
        },
    );
    let pipe_container = ingest_dir.join("ingest_pipe.tpg");
    let mut container_bytes = 0u64;
    let pipelined_seconds = best_seconds(
        ingest_runs,
        || spill_edges(&ingest_dir),
        |builder| {
            let summary = builder
                .finish(&pipe_container, &graph::CompressionConfig::default())
                .expect("pipelined finish failed");
            container_bytes = summary.file_bytes;
            summary
        },
    );
    assert_eq!(
        std::fs::read(&seq_container).unwrap(),
        std::fs::read(&pipe_container).unwrap(),
        "pipelined and sequential ingest containers diverged"
    );
    std::fs::remove_dir_all(&ingest_dir).ok();
    let stream_ingest = StreamIngestRun {
        n: 1usize << ingest_scale,
        edges_added: ingest_edges,
        buckets: ingest_buckets,
        threads: ingest_threads,
        sequential_seconds,
        pipelined_seconds,
        container_bytes,
        spill: ingest_spill,
    };
    println!(
        "stream_ingest: sequential {:.1} ms -> pipelined {:.1} ms ({:.2}x, {:.0} edges/s)",
        stream_ingest.sequential_seconds * 1e3,
        stream_ingest.pipelined_seconds * 1e3,
        stream_ingest.speedup(),
        stream_ingest.edges_per_second()
    );
    println!(
        "spill volume: {} unit + {} weighted records, {} vs {} full-width ({:.1}% saved)",
        ingest_spill.unit_records,
        ingest_spill.weighted_records,
        memtrack::format_bytes(ingest_spill.bytes as usize),
        memtrack::format_bytes(ingest_spill.full_width_bytes as usize),
        ingest_spill.savings() * 100.0
    );

    // ---- Full pipeline with phase breakdown, recorded through the obs layer. ----
    let tracker = PhaseTracker::new();
    memtrack::global().reset_peak();
    let (measurement, run_report) = {
        let recording_config = config.clone().with_run_report(true);
        let result = terapart::partition_csr_with_tracker(&graph, &recording_config, &tracker);
        let report = result
            .run_report
            .expect("recording config attaches a run report");
        (
            bench::harness::Measurement {
                instance: instance.to_string(),
                algorithm: "terapart".to_string(),
                k: config.k,
                edge_cut: result.edge_cut,
                time: result.total_time,
                peak_memory_bytes: result.peak_memory_bytes.max(tracker.overall_peak()),
                balanced: result.partition.is_balanced(),
            },
            report,
        )
    };
    println!("{}", measurement.row());
    println!(
        "run report: total {:.3}s, span coverage {:.1}% ({} spans, {} counters)",
        run_report.total_seconds(),
        run_report.span_coverage * 100.0,
        run_report.all_spans().len(),
        run_report.counters.len()
    );
    assert!(
        run_report.span_coverage >= 0.95,
        "span tree covers only {:.1}% of the pipeline wall time",
        run_report.span_coverage * 100.0
    );

    // ---- Observability determinism check: recording must not perturb the result.
    // Single-threaded, because parallel LP applies moves in scheduling order and is
    // only reproducible sequentially (see tests/observability.rs for the LP-free
    // multi-thread check). ----
    let det_config = config.clone().with_threads(1);
    let noop_run = terapart::partition_csr(&graph, &det_config);
    assert!(noop_run.run_report.is_none());
    let recorded_run = terapart::partition_csr(&graph, &det_config.clone().with_run_report(true));
    assert_eq!(noop_run.edge_cut, recorded_run.edge_cut);
    assert_eq!(
        noop_run.partition.assignment(),
        recorded_run.partition.assignment(),
        "recording perturbed the fixed-seed rmat-14 result"
    );
    println!(
        "determinism: recording run bit-identical to noop run (cut {})",
        noop_run.edge_cut
    );

    // ---- On-disk pipeline: same instance through the `.tpg` store at two page
    // budgets (a starved cache and a comfortable one). ----
    let ondisk_dir =
        std::env::temp_dir().join(format!("terapart_bench_ondisk_{}", std::process::id()));
    std::fs::create_dir_all(&ondisk_dir).expect("failed to create the on-disk bench dir");
    let tpg_path = ondisk_dir.join("rmat-14.tpg");
    graph::store::write_tpg_from_graph(&graph, &tpg_path, &graph::CompressionConfig::default())
        .expect("failed to write the bench container");
    // The default writer path emits Elias-Fano offsets, so `tpg_path` is the EF
    // container of the ladder.
    let ef_meta = graph::store::read_tpg_meta(&tpg_path).expect("bench container unreadable");
    let csr_bytes = graph.size_in_bytes();
    let mut ondisk_runs = Vec::new();
    // 8 KiB pages: the rmat-14 data section spans enough pages that the cold-sweep
    // hit rate (and the prefetch effect on it) is actually observable.
    let page_size = 8 * 1024usize;
    for page_budget in [128 * 1024usize, 2 * 1024 * 1024] {
        for prefetch in [false, true] {
            let mut ondisk_config = PartitionerConfig::terapart(16)
                .with_page_budget(page_budget)
                .with_prefetch(prefetch);
            ondisk_config.ondisk.page_size = page_size;
            let ondisk_tracker = PhaseTracker::new();
            memtrack::global().reset_peak();
            let result =
                terapart::partition_ondisk_with_tracker(&tpg_path, &ondisk_config, &ondisk_tracker)
                    .expect("on-disk bench run failed");
            let peak = result.peak_memory_bytes.max(ondisk_tracker.overall_peak());
            let cache = result.cache_stats;
            println!(
                "partition_ondisk @ {:>10} prefetch={:<5}: cut={} peak={} ({:.2}x of CSR) \
                 time={:.2}s hit_rate={:.3} prefetched={}",
                memtrack::format_bytes(page_budget),
                prefetch,
                result.edge_cut,
                memtrack::format_bytes(peak),
                peak as f64 / csr_bytes as f64,
                result.total_time.as_secs_f64(),
                cache.map(|c| c.hit_rate()).unwrap_or(0.0),
                cache.map(|c| c.prefetched_pages).unwrap_or(0),
            );
            ondisk_runs.push(OndiskRun {
                backend: "paged",
                offsets: "ef",
                offset_index_bytes: ef_meta.offsets_len_bytes(),
                n: graph.n(),
                page_budget_bytes: page_budget,
                page_size_bytes: page_size,
                prefetch,
                time: result.total_time,
                peak_memory_bytes: peak,
                edge_cut: result.edge_cut,
                csr_bytes,
                phases: result.phase_reports,
                cache,
            });
        }
    }

    // ---- Store-backend ladder: the same instance through the mmap fast path, on the
    // default Elias-Fano container and on a plain-offset re-encoding (proving the
    // succinct index is backend-agnostic). Cuts must be bit-identical throughout. ----
    let plain_path = ondisk_dir.join("rmat-14-plain.tpg");
    graph::store::write_tpg_from_graph_plain(
        &graph,
        &plain_path,
        &graph::CompressionConfig::default(),
    )
    .expect("failed to write the plain-offset bench container");
    let plain_meta =
        graph::store::read_tpg_meta(&plain_path).expect("plain bench container unreadable");
    println!(
        "offset index: plain {} B ({:.2} B/node) vs elias-fano {} B ({:.2} B/node)",
        plain_meta.offsets_len_bytes(),
        plain_meta.offsets_len_bytes() as f64 / graph.n() as f64,
        ef_meta.offsets_len_bytes(),
        ef_meta.offsets_len_bytes() as f64 / graph.n() as f64,
    );
    assert!(
        ef_meta.offsets_len_bytes() < plain_meta.offsets_len_bytes(),
        "Elias-Fano offsets not smaller than plain"
    );
    // Single-threaded (the reproducible regime), so the identical-cut assertion holds
    // across the whole ladder; the paged/mmap wall-time comparison stays apples to
    // apples. The 2 MiB budget is the "container fits in RAM" point — mmap's home turf.
    let mut ladder_cut: Option<u64> = None;
    let mut ladder_times: Vec<(String, f64)> = Vec::new();
    for (backend, ladder_path, offsets, meta, prefetch) in [
        (
            graph::store::OnDiskBackend::Paged,
            &tpg_path,
            "ef",
            &ef_meta,
            false,
        ),
        (
            graph::store::OnDiskBackend::Paged,
            &tpg_path,
            "ef",
            &ef_meta,
            true,
        ),
        (
            graph::store::OnDiskBackend::Mmap,
            &tpg_path,
            "ef",
            &ef_meta,
            false,
        ),
        (
            graph::store::OnDiskBackend::Paged,
            &plain_path,
            "plain",
            &plain_meta,
            false,
        ),
        (
            graph::store::OnDiskBackend::Mmap,
            &plain_path,
            "plain",
            &plain_meta,
            false,
        ),
    ] {
        let is_mmap = backend == graph::store::OnDiskBackend::Mmap;
        let mut ladder_config = PartitionerConfig::terapart(16)
            .with_threads(1)
            .with_store_backend(backend)
            .with_prefetch(prefetch);
        if !is_mmap {
            ladder_config = ladder_config.with_page_budget(2 * 1024 * 1024);
            ladder_config.ondisk.page_size = page_size;
        }
        let ladder_tracker = PhaseTracker::new();
        memtrack::global().reset_peak();
        let result =
            terapart::partition_ondisk_with_tracker(ladder_path, &ladder_config, &ladder_tracker)
                .expect("store-backend ladder run failed");
        let peak = result.peak_memory_bytes.max(ladder_tracker.overall_peak());
        match ladder_cut {
            None => ladder_cut = Some(result.edge_cut),
            Some(cut) => assert_eq!(
                result.edge_cut, cut,
                "{:?}/{} diverged from the ladder cut",
                backend, offsets
            ),
        }
        let label = format!(
            "{}{}/{}",
            if is_mmap { "mmap" } else { "paged" },
            if prefetch { "+prefetch" } else { "" },
            offsets
        );
        println!(
            "partition_ondisk ladder {:<20}: cut={} peak={} ({:.2}x of CSR) time={:.2}s",
            label,
            result.edge_cut,
            memtrack::format_bytes(peak),
            peak as f64 / csr_bytes as f64,
            result.total_time.as_secs_f64(),
        );
        ladder_times.push((label, result.total_time.as_secs_f64()));
        ondisk_runs.push(OndiskRun {
            backend: if is_mmap { "mmap" } else { "paged" },
            offsets,
            offset_index_bytes: meta.offsets_len_bytes(),
            n: graph.n(),
            page_budget_bytes: if is_mmap { 0 } else { 2 * 1024 * 1024 },
            page_size_bytes: if is_mmap { 0 } else { page_size },
            prefetch,
            time: result.total_time,
            peak_memory_bytes: peak,
            edge_cut: result.edge_cut,
            csr_bytes,
            phases: result.phase_reports,
            cache: result.cache_stats,
        });
    }
    let paged_ef_seconds = ladder_times[0].1;
    let mmap_ef_seconds = ladder_times[2].1;
    println!(
        "store-backend ladder: mmap {:.2}s vs paged {:.2}s ({:.2}x) at identical cut {}",
        mmap_ef_seconds,
        paged_ef_seconds,
        paged_ef_seconds / mmap_ef_seconds.max(1e-9),
        ladder_cut.unwrap_or(0),
    );

    // ---- Concurrent sessions: one engine, one shared mmap store, N simultaneous
    // single-threaded requests on their own OS threads. Each session must be
    // bit-identical to a solo run of the same request on a fresh engine, while the
    // engine's scratch pool bounds the arena count by the simultaneity level. ----
    let session_base = PartitionerConfig::terapart(16)
        .with_threads(1)
        .with_store_backend(graph::store::OnDiskBackend::Mmap);
    let engine_cfg = EngineConfig::from_partitioner(&session_base);
    let mut concurrent_runs = Vec::new();
    for sessions in [4usize, 8] {
        let requests: Vec<PartitionRequest> = (0..sessions)
            .map(|i| PartitionRequest::from_config(&session_base).with_seed(500 + i as u64))
            .collect();
        // Sequential references on fresh engines: the bit-identity anchors and the
        // single-arena memory reference point.
        let mut references = Vec::new();
        let mut sequential_seconds = 0.0f64;
        let mut single_arena_bytes = 0usize;
        for request in &requests {
            let fresh = PartitionEngine::with_config(engine_cfg.clone());
            let start = std::time::Instant::now();
            let result = fresh
                .partition_path(&tpg_path, request)
                .expect("sequential reference run failed");
            sequential_seconds += start.elapsed().as_secs_f64();
            single_arena_bytes = single_arena_bytes.max(fresh.scratch_pool().parked_bytes());
            references.push(result);
        }
        let engine = PartitionEngine::with_config(engine_cfg.clone());
        let store = engine
            .open_store(&tpg_path)
            .expect("failed to open the shared bench store");
        memtrack::global().reset_peak();
        let start = std::time::Instant::now();
        let results: Vec<_> = std::thread::scope(|scope| {
            let handles: Vec<_> = requests
                .iter()
                .map(|request| {
                    let engine = &engine;
                    let store = &*store;
                    scope.spawn(move || {
                        engine
                            .partition_store(store, request)
                            .expect("concurrent session failed")
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("concurrent session panicked"))
                .collect()
        });
        let wall_seconds = start.elapsed().as_secs_f64();
        let peak_memory_bytes = memtrack::global().peak();
        let bit_identical = results
            .iter()
            .zip(&references)
            .all(|(run, reference)| run.partition.assignment() == reference.partition.assignment());
        assert!(
            bit_identical,
            "a concurrent session diverged from its sequential reference"
        );
        let run = ConcurrentSessionsRun {
            sessions,
            wall_seconds,
            sequential_seconds,
            pool_high_water: engine.scratch_pool().high_water(),
            pool_parked_bytes: engine.scratch_pool().parked_bytes(),
            single_arena_bytes,
            peak_memory_bytes,
            bit_identical,
        };
        println!(
            "concurrent_sessions n={}: wall {:.2}s vs sequential {:.2}s ({:.2}x), \
             pool high-water {} arenas, parked {} (single arena {}), peak {}",
            run.sessions,
            run.wall_seconds,
            run.sequential_seconds,
            run.throughput_gain(),
            run.pool_high_water,
            memtrack::format_bytes(run.pool_parked_bytes),
            memtrack::format_bytes(run.single_arena_bytes),
            memtrack::format_bytes(run.peak_memory_bytes),
        );
        concurrent_runs.push(run);
        drop(store);
    }
    std::fs::remove_dir_all(&ondisk_dir).ok();

    write_pipeline_json(
        &path,
        instance,
        &graph,
        &config,
        &tracker,
        &measurement,
        &[contraction, refinement, initial],
        Some(&stream_ingest),
        &ondisk_runs,
        &concurrent_runs,
        &other_width_runs,
        Some(&run_report),
    )
    .expect("failed to write BENCH_pipeline.json");
    println!("wrote {}", path.display());
}
