//! Cut-vs-time Pareto sweep across the quality presets and the instance-family
//! ladder, recorded as `BENCH_quality.json`.
//!
//! For every family of [`bench::setup::quality_families`] and every rung in it, the
//! sweep runs all three presets (`fast` / `default` / `strong`) and records cut,
//! wall-clock time and peak accounted memory — the Pareto frontier the presets are
//! supposed to span. On top of the sweep it runs one frontier-vs-full-sweep check
//! per rung: the `fast` preset as shipped (frontier-driven LP) against the identical
//! configuration with full-sweep rounds, flagging any instance where the frontier
//! degrades the cut beyond the accepted tolerance.
//!
//! Usage:
//!
//! ```text
//! bench_quality [--smoke] [--golden] [--out PATH]
//! ```
//!
//! * `--smoke`  — first (smallest) rung per family only; the CI quality-smoke job.
//! * `--golden` — regenerate the golden-cut table instead of sweeping: print the
//!   pinned single-threaded cuts of every (preset, golden instance) pair for this
//!   build's ID width, in the row format of `crates/bench/src/golden.rs`.
//! * `--out`    — output path (default `BENCH_quality.json`).

use bench::golden::{golden_run, golden_specs, GOLDEN_K};
use bench::harness::{
    geometric_mean, measure_run, measure_run_reported, write_quality_json, FrontierCheck,
    QualityRun,
};
use bench::instances::InstanceStore;
use bench::setup::{preset_ladder, quality_families};
use graph::traits::Graph;
use terapart::{PartitionerConfig, Preset};

/// Blocks of every sweep run.
const QUALITY_K: usize = 16;
/// Accepted `frontier_cut / full_sweep_cut` ratio; above this a check is degraded.
const FRONTIER_TOLERANCE: f64 = 1.05;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    if args.iter().any(|a| a == "--golden") {
        regenerate_golden_table();
        return;
    }
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("BENCH_quality.json"));

    let store = InstanceStore::open_default().expect("failed to open the instance cache");
    let mut runs: Vec<QualityRun> = Vec::new();
    let mut frontier_checks: Vec<FrontierCheck> = Vec::new();
    // One representative recorded run (the first rung's `default` preset), embedded as
    // the compact `observability` section of BENCH_quality.json.
    let mut obs_report: Option<obs::RunReport> = None;

    for family in quality_families() {
        let rung_count = if smoke { 1 } else { family.rungs.len() };
        for rung in family.rungs.iter().take(rung_count) {
            let graph = store
                .load_csr(&rung.spec)
                .expect("failed to resolve a ladder instance");
            let mut fast_cut = None;
            for (preset_name, config) in preset_ladder(QUALITY_K) {
                let m = if obs_report.is_none() && preset_name == "default" {
                    let (m, report) = measure_run_reported(rung.name, preset_name, &graph, &config);
                    obs_report = Some(report);
                    m
                } else {
                    measure_run(rung.name, preset_name, &graph, &config)
                };
                println!("{:<18} {}", family.family, m.row());
                if preset_name == "fast" {
                    fast_cut = Some(m.edge_cut);
                }
                runs.push(QualityRun {
                    family: family.family.to_string(),
                    instance: rung.name.to_string(),
                    n: graph.n(),
                    m: graph.m(),
                    preset: preset_name.to_string(),
                    edge_cut: m.edge_cut,
                    seconds: m.time.as_secs_f64(),
                    peak_memory_bytes: m.peak_memory_bytes,
                    balanced: m.balanced,
                });
            }
            // Frontier-vs-full-sweep check: the fast preset's frontier cut (from the
            // sweep above) against the identical configuration with full-sweep
            // rounds.
            let mut full_sweep = PartitionerConfig::preset(Preset::Fast, QUALITY_K);
            full_sweep.coarsening.lp_frontier = false;
            full_sweep.refinement.lp_frontier = false;
            let full = measure_run(rung.name, "fast-full-sweep", &graph, &full_sweep);
            let frontier_cut = fast_cut.expect("the ladder always contains 'fast'");
            let ratio = frontier_cut as f64 / full.edge_cut.max(1) as f64;
            let degraded = ratio > FRONTIER_TOLERANCE;
            if degraded {
                println!(
                    "  FLAG: frontier LP degrades {} ({} vs {} full sweep, ratio {:.3})",
                    rung.name, frontier_cut, full.edge_cut, ratio
                );
            }
            frontier_checks.push(FrontierCheck {
                family: family.family.to_string(),
                instance: rung.name.to_string(),
                frontier_cut,
                full_sweep_cut: full.edge_cut,
                ratio,
                degraded,
            });
        }
    }

    // Per-family strong-vs-fast verdict over the geometric-mean cut of the swept
    // rungs: the presets only earn their names if `strong` actually buys quality.
    let mut strong_beats_fast: Vec<String> = Vec::new();
    let mut families: Vec<String> = runs.iter().map(|r| r.family.clone()).collect();
    families.dedup();
    for family in &families {
        let cuts_of = |preset: &str| -> Vec<f64> {
            runs.iter()
                .filter(|r| &r.family == family && r.preset == preset)
                .map(|r| r.edge_cut.max(1) as f64)
                .collect()
        };
        let fast = geometric_mean(&cuts_of("fast"));
        let strong = geometric_mean(&cuts_of("strong"));
        println!(
            "family {:<18} gm-cut fast={:.0} strong={:.0} ({})",
            family,
            fast,
            strong,
            if strong < fast {
                "strong wins"
            } else {
                "strong does not win"
            }
        );
        if strong < fast {
            strong_beats_fast.push(family.clone());
        }
    }

    write_quality_json(
        &out_path,
        QUALITY_K,
        FRONTIER_TOLERANCE,
        &runs,
        &frontier_checks,
        &strong_beats_fast,
        obs_report.as_ref(),
    )
    .expect("failed to write the quality sweep");
    println!(
        "wrote {} ({} runs, {} frontier checks, strong beats fast on {}/{} families)",
        out_path.display(),
        runs.len(),
        frontier_checks.len(),
        strong_beats_fast.len(),
        families.len()
    );
    let flagged = frontier_checks.iter().filter(|c| c.degraded).count();
    if flagged > 0 {
        println!(
            "WARNING: frontier LP degraded the cut beyond {:.0}% on {} instance(s)",
            (FRONTIER_TOLERANCE - 1.0) * 100.0,
            flagged
        );
    }
}

/// `--golden`: print the pinned single-threaded cut of every (preset, golden
/// instance) pair for this build's ID width, in the source row format of
/// `crates/bench/src/golden.rs`.
fn regenerate_golden_table() {
    let width = graph::NodeId::BITS;
    println!(
        "// golden cuts at id_width={} (k={}, single-threaded, preset default seeds)",
        width, GOLDEN_K
    );
    for preset in Preset::ALL {
        for (name, spec) in golden_specs() {
            let cut = golden_run(preset, &spec);
            println!(
                "entry({:?}, \"{}\", {}, ..),  // fill the w{} column with {}",
                preset, name, cut, width, cut
            );
        }
    }
}
