//! Figure 10: compression ratios of all benchmark instances by encoding stage
//! (gap encoding, + interval encoding, + weight compression where applicable).
use bench::{benchmark_set_a, benchmark_set_b};
use graph::{CompressedGraph, CompressionConfig};

fn main() {
    println!("Figure 10: compression ratios per instance");
    println!(
        "{:<20} {:<18} {:>10} {:>14} {:>12}",
        "graph", "class", "gap only", "gap+interval", "bytes/edge"
    );
    for set in [benchmark_set_a(), benchmark_set_b()] {
        for instance in set {
            let gap = CompressedGraph::from_csr(&instance.graph, &CompressionConfig::gap_only());
            let full = CompressedGraph::from_csr(&instance.graph, &CompressionConfig::default());
            println!(
                "{:<20} {:<18} {:>10.2} {:>14.2} {:>12.2}",
                instance.name,
                instance.class,
                gap.compression_ratio(&instance.graph),
                full.compression_ratio(&instance.graph),
                full.bytes_per_edge()
            );
        }
    }
}
