//! Figure 1: peak memory as the TeraPart optimizations are enabled one after another.
//!
//! Paper setting: eu-2015, p = 96 cores, k = 30 000. Here: a web-like synthetic graph
//! and k = 128 (scaled down); the expected shape is a monotone decrease from the
//! KaMinPar baseline to the full TeraPart configuration.
use bench::{config_ladder, measure_run};
use graph::gen;
use graph::traits::Graph;

fn main() {
    let graph = gen::weblike(15, 12, 7);
    let k = 128;
    println!(
        "Figure 1: peak memory ladder (web-like graph, n={}, m={}, k={})",
        graph.xadj().len() - 1,
        graph.m(),
        k
    );
    println!(
        "{:<36} {:>14} {:>10}",
        "configuration", "peak memory", "time [s]"
    );
    let mut previous = None;
    for (name, config) in config_ladder(k) {
        let m = measure_run("weblike-2^15", name, &graph, &config.with_threads(2));
        println!(
            "{:<36} {:>14} {:>10.2}",
            name,
            memtrack::format_bytes(m.peak_memory_bytes),
            m.time.as_secs_f64()
        );
        if let Some(prev) = previous {
            if m.peak_memory_bytes > prev {
                println!("  note: step did not reduce memory at this scale");
            }
        }
        previous = Some(m.peak_memory_bytes);
    }
}
