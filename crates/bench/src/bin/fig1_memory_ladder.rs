//! Figure 1: peak memory as the TeraPart optimizations are enabled one after another.
//!
//! Paper setting: eu-2015, p = 96 cores, k = 30 000. Here: a web-like synthetic graph
//! and k = 128 (scaled down); the expected shape is a monotone decrease from the
//! KaMinPar baseline to the full TeraPart configuration. The instance is resolved
//! through the on-disk `.tpg` cache, and the ladder gains a final rung beyond the
//! paper's: `partition_ondisk`, where the input adjacency never enters memory at all —
//! only the offset index, node weights and a fixed page budget are resident.
use bench::{config_ladder, measure_run, GenSpec, InstanceStore};
use graph::traits::Graph;
use terapart::{partition_ondisk, PartitionerConfig};

fn main() {
    let store = InstanceStore::open_default().expect("failed to open the instance cache");
    let spec = GenSpec::Rmat {
        scale: 15,
        avg_deg: 12,
        seed: 7,
    };
    let graph = store.load_csr(&spec).expect("failed to resolve instance");
    let k = 128;
    println!(
        "Figure 1: peak memory ladder (web-like graph, n={}, m={}, k={})",
        graph.xadj().len() - 1,
        graph.m(),
        k
    );
    println!(
        "{:<36} {:>14} {:>10}",
        "configuration", "peak memory", "time [s]"
    );
    let mut previous = None;
    for (name, config) in config_ladder(k) {
        let m = measure_run("weblike-2^15", name, &graph, &config.with_threads(2));
        println!(
            "{:<36} {:>14} {:>10.2}",
            name,
            memtrack::format_bytes(m.peak_memory_bytes),
            m.time.as_secs_f64()
        );
        if let Some(prev) = previous {
            if m.peak_memory_bytes > prev {
                println!("  note: step did not reduce memory at this scale");
            }
        }
        previous = Some(m.peak_memory_bytes);
    }
    // The rung the paper doesn't have: the adjacency stays on disk.
    let page_budget = 512 * 1024;
    let config = PartitionerConfig::terapart(k)
        .with_threads(2)
        .with_page_budget(page_budget);
    let path = store.resolve(&spec).expect("failed to resolve instance");
    let result = partition_ondisk(&path, &config).expect("on-disk run failed");
    let peak = result.peak_memory_bytes;
    println!(
        "{:<36} {:>14} {:>10.2}",
        format!(
            "On-Disk Store ({} pages)",
            memtrack::format_bytes(page_budget)
        ),
        memtrack::format_bytes(peak),
        result.total_time.as_secs_f64()
    );
    let csr_bytes = store.csr_bytes(&spec).unwrap_or(0);
    println!(
        "uncompressed CSR reference: {} — on-disk peak is {:.2}x of it",
        memtrack::format_bytes(csr_bytes),
        peak as f64 / csr_bytes.max(1) as f64
    );
}
