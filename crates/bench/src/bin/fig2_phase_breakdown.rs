//! Figure 2: time and memory consumption during the different phases of the algorithm.
//!
//! Paper setting: webbase2001, p = 96, k = 64 with the baseline KaMinPar configuration.
//! Here: a web-like synthetic graph, k = 64; the expected shape is that clustering on
//! the top level dominates the peak, followed by contraction.
//!
//! The breakdown is the observability layer's own [`obs::RunReport::summary_table`]:
//! the span tree (pipeline → level → phase) with durations and share of the total
//! wall time, the per-phase `peak_bytes` attributes, and the unified counter snapshot.
use graph::gen;
use memtrack::PhaseTracker;
use terapart::{partition_csr_with_tracker, PartitionerConfig};

fn main() {
    let graph = gen::weblike(14, 14, 9);
    let k = 64;
    let tracker = PhaseTracker::new();
    let config = PartitionerConfig::kaminpar(k)
        .with_threads(2)
        .with_run_report(true);
    let result = partition_csr_with_tracker(&graph, &config, &tracker);
    let report = result
        .run_report
        .as_ref()
        .expect("recording config attaches a run report");
    println!(
        "Figure 2: per-phase wall time and peak memory (KaMinPar baseline, k={})",
        k
    );
    print!("{}", report.summary_table());
    println!(
        "edge cut = {}, span coverage = {:.1}%, overall peak = {}",
        result.edge_cut,
        report.span_coverage * 100.0,
        memtrack::format_bytes(tracker.overall_peak())
    );
}
