//! Figure 2: memory consumption during the different phases of the algorithm.
//!
//! Paper setting: webbase2001, p = 96, k = 64 with the baseline KaMinPar configuration.
//! Here: a web-like synthetic graph, k = 64; the expected shape is that clustering on
//! the top level dominates the peak, followed by contraction.
use graph::gen;
use memtrack::PhaseTracker;
use terapart::{partition_csr_with_tracker, PartitionerConfig};

fn main() {
    let graph = gen::weblike(14, 14, 9);
    let k = 64;
    let tracker = PhaseTracker::new();
    let config = PartitionerConfig::kaminpar(k).with_threads(2);
    let result = partition_csr_with_tracker(&graph, &config, &tracker);
    println!(
        "Figure 2: per-phase peak memory (KaMinPar baseline, k={})",
        k
    );
    println!(
        "{:<20} {:>6} {:>14} {:>14} {:>10}",
        "phase", "level", "peak", "auxiliary", "time [s]"
    );
    for report in tracker.reports() {
        println!(
            "{:<20} {:>6} {:>14} {:>14} {:>10.3}",
            report.name,
            report.level,
            memtrack::format_bytes(report.peak_bytes),
            memtrack::format_bytes(report.auxiliary_bytes()),
            report.elapsed.as_secs_f64()
        );
    }
    println!(
        "edge cut = {}, overall peak = {}",
        result.edge_cut,
        memtrack::format_bytes(tracker.overall_peak())
    );
}
