//! Figure 4: relative running time, relative peak memory and solution quality on the
//! medium-sized Benchmark Set A, for the configuration ladder plus the Mt-METIS-like
//! baseline. Expected shape: TeraPart uses roughly half the memory of KaMinPar at equal
//! quality; Mt-METIS-like is slower, heavier and sometimes imbalanced.
use baselines::mtmetis_partition;
use bench::{config_ladder, geometric_mean, measure_run, performance_profile, set_a_specs};
use bench::{Instance, InstanceStore};

fn main() {
    let k = 8;
    // Resolve Set A through the on-disk instance cache (generating missing `.tpg`
    // containers), then load for the in-memory ladder runs.
    let store = InstanceStore::open_default().expect("failed to open the instance cache");
    let set: Vec<Instance> = set_a_specs()
        .into_iter()
        .map(|s| Instance {
            name: s.name,
            class: s.class,
            graph: store.load_csr(&s.spec).expect("failed to resolve instance"),
        })
        .collect();
    let ladder = config_ladder(k);
    let mut rel_time: Vec<Vec<f64>> = vec![Vec::new(); ladder.len()];
    let mut rel_mem: Vec<Vec<f64>> = vec![Vec::new(); ladder.len()];
    let mut cuts: Vec<Vec<u64>> = vec![Vec::new(); ladder.len() + 1];
    let mut mtmetis_slowdown = Vec::new();
    let mut mtmetis_imbalanced = 0;
    println!("Figure 4: Benchmark Set A, k = {}", k);
    for instance in &set {
        let mut baseline_time = 1.0;
        let mut baseline_mem = 1.0;
        for (i, (name, config)) in ladder.iter().enumerate() {
            let m = measure_run(
                instance.name,
                name,
                &instance.graph,
                &config.clone().with_threads(2),
            );
            if i == 0 {
                baseline_time = m.time.as_secs_f64().max(1e-9);
                baseline_mem = m.peak_memory_bytes.max(1) as f64;
            }
            rel_time[i].push(m.time.as_secs_f64() / baseline_time);
            rel_mem[i].push(m.peak_memory_bytes as f64 / baseline_mem);
            cuts[i].push(m.edge_cut);
        }
        let mt = mtmetis_partition(&instance.graph, k, 0.03, 1);
        mtmetis_slowdown.push(mt.total_time.as_secs_f64() / baseline_time);
        if !mt.balanced {
            mtmetis_imbalanced += 1;
        }
        cuts[ladder.len()].push(mt.edge_cut);
    }
    println!(
        "{:<36} {:>16} {:>16}",
        "configuration", "rel. time (gm)", "rel. memory (gm)"
    );
    for (i, (name, _)) in ladder.iter().enumerate() {
        println!(
            "{:<36} {:>16.3} {:>16.3}",
            name,
            geometric_mean(&rel_time[i]),
            geometric_mean(&rel_mem[i])
        );
    }
    println!(
        "{:<36} {:>16.3} {:>16}",
        "Mt-METIS-like",
        geometric_mean(&mtmetis_slowdown),
        "-"
    );
    println!(
        "Mt-METIS-like imbalanced instances: {}/{}",
        mtmetis_imbalanced,
        set.len()
    );
    let taus = [1.0, 1.05, 1.1, 1.5, 2.0];
    let profile = performance_profile(&cuts, &taus);
    println!("\nPerformance profile (fraction of instances within tau of the best cut):");
    print!("{:<36}", "algorithm");
    for t in taus {
        print!(" tau={:<5}", t);
    }
    println!();
    let mut names: Vec<&str> = ladder.iter().map(|(n, _)| *n).collect();
    names.push("Mt-METIS-like");
    for (name, row) in names.iter().zip(&profile) {
        print!("{:<36}", name);
        for v in row {
            print!(" {:<9.2}", v);
        }
        println!();
    }
}
