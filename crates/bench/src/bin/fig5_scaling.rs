//! Figure 5: self-relative speedups of TeraPart for varying thread counts.
//!
//! Paper setting: p in {12, 24, 48, 96} on a 96-core machine. Here: p in {1, 2, 4} on the
//! available cores; the expected shape is monotone (if modest) speedup with more threads.
use bench::{benchmark_set_a, harmonic_mean, measure_run};
use graph::traits::Graph;
use terapart::PartitionerConfig;

fn main() {
    let k = 16;
    let set = benchmark_set_a();
    let threads = [1usize, 2, 4];
    let mut speedups: Vec<Vec<f64>> = vec![Vec::new(); threads.len()];
    for instance in set.iter().filter(|i| i.graph.m() > 20_000) {
        let sequential = measure_run(
            instance.name,
            "p=1",
            &instance.graph,
            &PartitionerConfig::terapart(k).with_threads(1),
        );
        let t1 = sequential.time.as_secs_f64();
        for (i, &p) in threads.iter().enumerate() {
            let m = measure_run(
                instance.name,
                "terapart",
                &instance.graph,
                &PartitionerConfig::terapart(k).with_threads(p),
            );
            speedups[i].push(t1 / m.time.as_secs_f64().max(1e-9));
        }
    }
    println!("Figure 5: self-relative speedups (k = {})", k);
    println!("{:>8} {:>22}", "threads", "harmonic mean speedup");
    for (i, &p) in threads.iter().enumerate() {
        println!("{:>8} {:>22.2}", p, harmonic_mean(&speedups[i]));
    }
}
