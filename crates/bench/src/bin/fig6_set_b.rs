//! Figure 6: relative running time, peak memory and compression ratios on the huge
//! web-like graphs of Benchmark Set B. Expected shape: large memory reductions from
//! compression + two-phase LP + one-pass contraction; compression ratios well above the
//! gap-only variant.
use bench::{config_ladder, measure_run, set_b_specs, InstanceStore};
use graph::traits::Graph;
use graph::{CompressedGraph, CompressionConfig};

fn main() {
    let k = 64;
    // Set B is the "huge" set: resolve through the on-disk cache (web-like and
    // geometric families are streamed straight into their containers).
    let store = InstanceStore::open_default().expect("failed to open the instance cache");
    println!("Figure 6: Benchmark Set B (k = {})", k);
    for spec in set_b_specs() {
        let instance = bench::Instance {
            name: spec.name,
            class: spec.class,
            graph: store
                .load_csr(&spec.spec)
                .expect("failed to resolve instance"),
        };
        println!(
            "\n== {} (n={}, m={}) ==",
            instance.name,
            instance.graph.xadj().len() - 1,
            instance.graph.m()
        );
        let mut baseline_mem = 1.0;
        for (i, (name, config)) in config_ladder(k).into_iter().enumerate() {
            let m = measure_run(
                instance.name,
                name,
                &instance.graph,
                &config.with_threads(2),
            );
            if i == 0 {
                baseline_mem = m.peak_memory_bytes.max(1) as f64;
            }
            println!(
                "  {:<36} time={:>7.2}s mem={:>12} rel.mem={:>5.2}",
                name,
                m.time.as_secs_f64(),
                memtrack::format_bytes(m.peak_memory_bytes),
                m.peak_memory_bytes as f64 / baseline_mem
            );
        }
        let gap_only = CompressedGraph::from_csr(&instance.graph, &CompressionConfig::gap_only());
        let full = CompressedGraph::from_csr(&instance.graph, &CompressionConfig::default());
        println!(
            "  compression ratio: gap only = {:.2}, gap + interval = {:.2}",
            gap_only.compression_ratio(&instance.graph),
            full.compression_ratio(&instance.graph)
        );
    }
}
