//! Figure 7: FM refinement with no gain table, the full O(nk) table, and the
//! space-efficient O(m) table — relative time, peak memory and quality.
//! Expected shape: sparse table ~= dense table in time and quality but much less memory;
//! no table is substantially slower.
use bench::{benchmark_set_a, geometric_mean, measure_run, performance_profile};
use graph::traits::Graph;
use terapart::{GainTableKind, PartitionerConfig};

fn main() {
    let k = 64;
    let variants = [
        ("TeraPart-LP (no FM)", None),
        ("No Table", Some(GainTableKind::None)),
        ("Full Table", Some(GainTableKind::Dense)),
        ("TeraPart-FM (sparse table)", Some(GainTableKind::Sparse)),
    ];
    let set = benchmark_set_a();
    let mut times: Vec<Vec<f64>> = vec![Vec::new(); variants.len()];
    let mut mems: Vec<Vec<f64>> = vec![Vec::new(); variants.len()];
    let mut cuts: Vec<Vec<u64>> = vec![Vec::new(); variants.len()];
    for instance in set.iter().filter(|i| i.graph.m() > 10_000) {
        for (i, (name, table)) in variants.iter().enumerate() {
            let config = match table {
                None => PartitionerConfig::terapart(k),
                Some(kind) => PartitionerConfig::terapart_fm(k).with_gain_table(*kind),
            };
            let m = measure_run(
                instance.name,
                name,
                &instance.graph,
                &config.with_threads(2),
            );
            times[i].push(m.time.as_secs_f64());
            mems[i].push(m.peak_memory_bytes as f64);
            cuts[i].push(m.edge_cut);
        }
    }
    println!("Figure 7: FM gain table variants (k = {})", k);
    println!(
        "{:<30} {:>12} {:>14} ",
        "variant", "time (gm) s", "memory (gm)"
    );
    for (i, (name, _)) in variants.iter().enumerate() {
        println!(
            "{:<30} {:>12.3} {:>14}",
            name,
            geometric_mean(&times[i]),
            memtrack::format_bytes(geometric_mean(&mems[i]) as usize)
        );
    }
    let taus = [1.0, 1.05, 1.1, 1.5, 2.0];
    let profile = performance_profile(&cuts, &taus);
    println!("\nPerformance profile:");
    for ((name, _), row) in variants.iter().zip(&profile) {
        println!(
            "{:<30} {:?}",
            name,
            row.iter()
                .map(|v| (v * 100.0).round() / 100.0)
                .collect::<Vec<_>>()
        );
    }
}
