//! Figure 8: distributed-memory comparison (growing graphs on a fixed number of PEs) and
//! weak scaling. Expected shape: XTeraPart (compressed shards) uses less per-PE memory
//! than DKaMinPar (uncompressed shards) at similar quality; the single-level baseline has
//! far worse cuts; throughput stays roughly flat under weak scaling.
use baselines::xtrapulp_partition;
use graph::gen;
use graph::traits::Graph;
use xterapart::{dist_partition, DistPartitionConfig};

fn main() {
    let k = 16;
    println!(
        "Figure 8 (left/middle): growing rgg2D/rhg graphs on 4 PEs, k = {}",
        k
    );
    println!(
        "{:<10} {:>10} {:<14} {:>10} {:>14} {:>12}",
        "family", "edges", "algorithm", "cut", "max PE mem", "time [s]"
    );
    for exponent in [14u32, 15, 16] {
        let n = 1usize << exponent;
        for (family, graph) in [
            ("rgg2d", gen::rgg2d(n, 16, exponent as u64)),
            ("rhg", gen::rhg_like(n, 16, 3.0, exponent as u64)),
        ] {
            for (name, result) in [
                (
                    "XTeraPart",
                    dist_partition(&graph, &DistPartitionConfig::xterapart(k, 4)),
                ),
                (
                    "DKaMinPar",
                    dist_partition(&graph, &DistPartitionConfig::dkaminpar(k, 4)),
                ),
            ] {
                println!(
                    "{:<10} {:>10} {:<14} {:>10} {:>14} {:>12.2}",
                    family,
                    graph.m(),
                    name,
                    result.edge_cut,
                    memtrack::format_bytes(result.max_pe_memory_bytes),
                    result.total_time.as_secs_f64()
                );
            }
            let xp = xtrapulp_partition(&graph, k, 0.03, 1);
            println!(
                "{:<10} {:>10} {:<14} {:>10} {:>14} {:>12.2}",
                family,
                graph.m(),
                "XtraPuLP-like",
                xp.edge_cut,
                memtrack::format_bytes(xp.peak_memory_bytes),
                xp.total_time.as_secs_f64()
            );
        }
    }
    println!("\nFigure 8 (right): weak scaling (work per PE kept constant)");
    println!("{:<8} {:>10} {:>18}", "PEs", "edges", "throughput [E/s]");
    for pes in [1usize, 2, 4] {
        let graph = gen::rgg2d(8_000 * pes, 16, 77 + pes as u64);
        let result = dist_partition(&graph, &DistPartitionConfig::xterapart(k, pes));
        println!(
            "{:<8} {:>10} {:>18.0}",
            pes,
            graph.m(),
            result.throughput_edges_per_sec
        );
    }
}
