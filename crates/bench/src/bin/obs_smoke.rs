//! CI smoke test of the observability layer: runs one traced pipeline on a small
//! web-like instance, then validates that the exported Chrome trace-event file parses
//! and that its span tree nests correctly (`pipeline ⊇ level ⊇ phase ⊇ round`).
//!
//! Run at both ID widths by the `obs-smoke` CI job:
//!
//! ```text
//! cargo run --release -p bench --bin obs_smoke
//! cargo run --release --features wide-ids -p bench --bin obs_smoke
//! ```
//!
//! The validator is a minimal hand-rolled scanner over this workspace's own trace
//! output (one complete event per line) — no JSON dependency exists in the workspace.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use graph::gen;
use graph::traits::Graph;
use terapart::{PartitionerConfig, ProgressEvent};

/// One parsed `"ph": "X"` complete event of the trace file.
#[derive(Debug)]
struct TraceEvent {
    name: String,
    /// Span kind (`pipeline` / `level` / `phase` / `round`), from the `cat` field.
    cat: String,
    /// Recorder-unique id from `args.id`.
    id: u64,
    /// Id of the enclosing span from `args.parent` (0 for a root).
    parent: u64,
    /// Start timestamp in microseconds.
    ts: f64,
    /// Duration in microseconds.
    dur: f64,
}

/// Extracts `"key": <value>` from one event line, up to the next `,` or `}`.
fn raw_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let tag = format!("\"{key}\": ");
    let start = line.find(&tag)? + tag.len();
    let rest = &line[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    Some(rest[..end].trim())
}

fn string_field(line: &str, key: &str) -> Option<String> {
    raw_field(line, key).map(|v| v.trim_matches('"').to_string())
}

fn parse_trace(text: &str) -> Vec<TraceEvent> {
    assert!(
        text.trim_start().starts_with('['),
        "trace must be a JSON array"
    );
    assert!(
        text.trim_end().ends_with(']'),
        "trace array is unterminated"
    );
    text.lines()
        .filter(|line| line.contains("\"ph\": \"X\""))
        .map(|line| TraceEvent {
            name: string_field(line, "name").expect("event without a name"),
            cat: string_field(line, "cat").expect("event without a cat"),
            id: raw_field(line, "id")
                .and_then(|v| v.parse().ok())
                .expect("event without an args.id"),
            parent: raw_field(line, "parent")
                .and_then(|v| v.parse().ok())
                .expect("event without an args.parent"),
            ts: raw_field(line, "ts")
                .and_then(|v| v.parse().ok())
                .expect("event without a ts"),
            dur: raw_field(line, "dur")
                .and_then(|v| v.parse().ok())
                .expect("event without a dur"),
        })
        .collect()
}

/// Nesting rank of a span kind; a child's rank must be strictly greater than its
/// parent's.
fn rank(cat: &str) -> u32 {
    match cat {
        "pipeline" => 0,
        "level" => 1,
        "phase" => 2,
        "round" => 3,
        other => panic!("unknown span kind {other:?} in the trace"),
    }
}

fn main() {
    let dir = std::env::temp_dir().join(format!("terapart_obs_smoke_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("failed to create the smoke dir");
    let trace_path = dir.join("trace.json");

    let graph = gen::weblike(12, 10, 7);
    println!(
        "obs smoke: id width {} bits, n={}, m={}",
        graph::NodeId::BITS,
        graph.n(),
        graph.m()
    );
    let progress_events = Arc::new(AtomicUsize::new(0));
    let progress_counter = progress_events.clone();
    let config = PartitionerConfig::terapart(8)
        .with_threads(2)
        .with_trace_path(&trace_path)
        .with_progress(move |_event: &ProgressEvent| {
            progress_counter.fetch_add(1, Ordering::Relaxed);
        });
    let result = terapart::partition_csr(&graph, &config);
    assert!(result.partition.is_balanced(), "smoke run is imbalanced");
    let report = result
        .run_report
        .as_ref()
        .expect("a trace path implies recording");
    assert!(
        report.span_coverage >= 0.9,
        "span coverage {:.3} too low",
        report.span_coverage
    );
    let fired = progress_events.load(Ordering::Relaxed);
    assert!(
        fired >= 2,
        "progress hook fired only {fired} times (expected coarsen + initial + refine events)"
    );

    // ---- Validate the Chrome trace. ----
    let text = std::fs::read_to_string(&trace_path).expect("trace file missing");
    let events = parse_trace(&text);
    assert!(!events.is_empty(), "trace contains no events");
    let by_id: std::collections::HashMap<u64, &TraceEvent> =
        events.iter().map(|e| (e.id, e)).collect();
    assert_eq!(by_id.len(), events.len(), "duplicate span ids in the trace");

    let pipeline = events
        .iter()
        .find(|e| e.cat == "pipeline")
        .expect("no pipeline span in the trace");
    assert_eq!(pipeline.parent, 0, "the pipeline span must be a root");
    let mut levels = 0usize;
    let mut phases_under_level = 0usize;
    for event in &events {
        if event.parent == 0 {
            // Roots: the pipeline itself plus pre-pipeline phases (compress_input /
            // open_store), which end before the pipeline span begins.
            assert!(
                event.cat == "pipeline" || event.cat == "phase",
                "unexpected root span {} ({})",
                event.name,
                event.cat
            );
            continue;
        }
        let parent = by_id
            .get(&event.parent)
            .unwrap_or_else(|| panic!("span {} has a dangling parent id", event.name));
        assert!(
            rank(&event.cat) > rank(&parent.cat),
            "span {} ({}) nested under {} ({})",
            event.name,
            event.cat,
            parent.name,
            parent.cat
        );
        // Timestamp containment, with 1µs slack for the truncation to microseconds.
        assert!(
            event.ts + 1e-3 >= parent.ts && event.ts + event.dur <= parent.ts + parent.dur + 1e-3,
            "span {} [{}, {}] escapes its parent {} [{}, {}]",
            event.name,
            event.ts,
            event.ts + event.dur,
            parent.name,
            parent.ts,
            parent.ts + parent.dur
        );
        if event.cat == "level" {
            assert_eq!(
                parent.cat, "pipeline",
                "level span {} not directly under the pipeline",
                event.name
            );
            levels += 1;
        }
        if event.cat == "phase" && parent.cat == "level" {
            phases_under_level += 1;
        }
    }
    assert!(levels > 0, "no level spans under the pipeline");
    assert!(phases_under_level > 0, "no phase spans under a level");

    std::fs::remove_dir_all(&dir).ok();
    println!(
        "obs smoke OK: {} events, {} level spans, {} nested phases, coverage {:.1}%, {} progress events",
        events.len(),
        levels,
        phases_under_level,
        report.span_coverage * 100.0,
        fired
    );
}
