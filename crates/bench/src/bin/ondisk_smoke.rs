//! CI smoke test of the external-memory path: generate a small instance into a temp
//! cache, run `partition_ondisk` at a page budget far below the instance size, and
//! assert that (a) the uncompressed CSR exceeds the page budget, (b) the peak accounted
//! memory stays below the uncompressed CSR byte size, and (c) the result is a complete,
//! balanced partition. Then exercise the concurrent external-memory path end to end:
//! (d) the pipelined streamed ingest must reproduce the materialised container byte for
//! byte, and (e) a prefetch-enabled run must stay complete, balanced and below the CSR
//! size while the readahead worker actually installs pages. Exits non-zero on any
//! violation, so CI fails loudly.
//!
//! Usage: `ondisk_smoke [cache_dir]` (default: a fresh temp directory).

use bench::{GenSpec, InstanceStore};
use terapart::{partition_ondisk, PartitionerConfig};

fn main() {
    let cache_dir = std::env::args()
        .nth(1)
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| {
            std::env::temp_dir().join(format!("terapart_ondisk_smoke_{}", std::process::id()))
        });
    let store = InstanceStore::at(&cache_dir).expect("failed to open the smoke cache");
    // Geometric instance: dense enough that the CSR size dominates the pipeline's O(n)
    // auxiliary structures, and localized enough that coarse graphs shrink fast — the
    // regime where the "peak < CSR" assertion is meaningful.
    let spec = GenSpec::Rgg2d {
        n: 40_000,
        avg_deg: 20,
        seed: 99,
    };
    let path = store
        .resolve(&spec)
        .expect("failed to generate the smoke instance");
    let csr_bytes = store
        .csr_bytes(&spec)
        .expect("failed to read instance header");
    let container_bytes = store.container_bytes(&spec).unwrap();
    let page_budget = 256 * 1024;
    println!(
        "instance: {} (CSR {}, container {}), page budget {}",
        spec.cache_file_name(),
        memtrack::format_bytes(csr_bytes),
        memtrack::format_bytes(container_bytes as usize),
        memtrack::format_bytes(page_budget)
    );
    assert!(
        csr_bytes > page_budget,
        "SMOKE FAIL: instance CSR ({} B) does not exceed the page budget ({} B)",
        csr_bytes,
        page_budget
    );

    let config = PartitionerConfig::terapart(16)
        .with_threads(2)
        .with_seed(1)
        .with_page_budget(page_budget);
    let result = partition_ondisk(&path, &config).expect("on-disk run failed");
    let peak = result.peak_memory_bytes;
    println!(
        "cut={} balanced={} peak={} ({:.2}x of CSR) time={:.2}s",
        result.edge_cut,
        result.partition.is_balanced(),
        memtrack::format_bytes(peak),
        peak as f64 / csr_bytes as f64,
        result.total_time.as_secs_f64()
    );
    let mut by_peak = result.phase_reports.clone();
    by_peak.sort_by_key(|r| std::cmp::Reverse(r.peak_bytes));
    for r in by_peak.iter().take(6) {
        println!(
            "  phase {:<18} level {:<2} peak {:>12} (aux {:>12})",
            r.name,
            r.level,
            memtrack::format_bytes(r.peak_bytes),
            memtrack::format_bytes(r.auxiliary_bytes())
        );
    }
    assert!(
        result.partition.is_complete(),
        "SMOKE FAIL: incomplete partition"
    );
    assert!(
        result.partition.is_balanced(),
        "SMOKE FAIL: imbalanced partition"
    );
    assert!(
        peak < csr_bytes,
        "SMOKE FAIL: peak accounted memory {} B is not below the uncompressed CSR size {} B",
        peak,
        csr_bytes
    );

    // ---- Streamed-ingest byte-identity: the pipelined external builder (spill →
    // parallel aggregate/encode → ordered commit) must reproduce the materialised
    // container exactly. The cached instance at `path` was itself produced by the
    // streamed path, so compare both against a container written from the fully
    // materialised in-memory graph. ----
    let GenSpec::Rgg2d { n, avg_deg, seed } = spec else {
        unreachable!("smoke spec is rgg2d");
    };
    let materialized = cache_dir.join("smoke_materialized.tpg");
    graph::store::write_tpg_from_graph(
        &graph::gen::rgg2d(n, avg_deg, seed),
        &materialized,
        &graph::CompressionConfig::default(),
    )
    .expect("failed to write the materialised reference container");
    assert_eq!(
        std::fs::read(&path).expect("read streamed container"),
        std::fs::read(&materialized).expect("read materialised container"),
        "SMOKE FAIL: streamed-ingest container is not byte-identical to the materialised one"
    );
    println!("streamed ingest byte-identical to the materialised container");

    // ---- Prefetch-enabled run at the same starved budget: still complete, balanced
    // and below the CSR size, with the readahead worker demonstrably active. ----
    memtrack::global().reset_peak();
    let prefetch_result = partition_ondisk(&path, &config.clone().with_prefetch(true))
        .expect("prefetch-enabled on-disk run failed");
    let cache = prefetch_result
        .cache_stats
        .expect("on-disk runs expose cache stats");
    println!(
        "prefetch run: cut={} peak={} hit_rate={:.3} prefetched_pages={}",
        prefetch_result.edge_cut,
        memtrack::format_bytes(prefetch_result.peak_memory_bytes),
        cache.hit_rate(),
        cache.prefetched_pages
    );
    assert!(
        prefetch_result.partition.is_complete() && prefetch_result.partition.is_balanced(),
        "SMOKE FAIL: prefetch-enabled run produced an invalid partition"
    );
    assert!(
        prefetch_result.peak_memory_bytes < csr_bytes,
        "SMOKE FAIL: prefetch-enabled peak {} B is not below the CSR size {} B",
        prefetch_result.peak_memory_bytes,
        csr_bytes
    );
    assert!(
        cache.prefetched_pages > 0,
        "SMOKE FAIL: the readahead worker never installed a page"
    );
    // ---- Store-backend ladder (single-threaded, the bit-reproducible regime):
    // paged, paged+prefetch and mmap must all produce the *identical* cut, on the
    // Elias-Fano-offset container (the writer default) and on a plain-offset
    // re-encoding of it — and the succinct index must actually be smaller. ----
    use graph::store::OnDiskBackend;
    let plain_container = cache_dir.join("smoke_plain.tpg");
    graph::store::write_tpg_from_graph_plain(
        &graph::store::read_tpg_compressed(&path).expect("re-read smoke container"),
        &plain_container,
        &graph::CompressionConfig::default(),
    )
    .expect("failed to write the plain-offset smoke container");
    let ef_meta = graph::store::read_tpg_meta(&path).unwrap();
    let plain_meta = graph::store::read_tpg_meta(&plain_container).unwrap();
    println!(
        "offset index: elias-fano {} B (default) vs plain {} B",
        ef_meta.offsets_len_bytes(),
        plain_meta.offsets_len_bytes()
    );
    assert!(
        ef_meta.offsets_len_bytes() < plain_meta.offsets_len_bytes(),
        "SMOKE FAIL: Elias-Fano offset index ({} B) is not smaller than plain ({} B)",
        ef_meta.offsets_len_bytes(),
        plain_meta.offsets_len_bytes()
    );
    let ladder_base = config.clone().with_threads(1);
    let mut ladder_cut: Option<u64> = None;
    for (label, ladder_path, ladder_config) in [
        ("paged/ef", &path, ladder_base.clone()),
        (
            "paged+prefetch/ef",
            &path,
            ladder_base.clone().with_prefetch(true),
        ),
        (
            "mmap/ef",
            &path,
            ladder_base.clone().with_store_backend(OnDiskBackend::Mmap),
        ),
        ("paged/plain", &plain_container, ladder_base.clone()),
        (
            "mmap/plain",
            &plain_container,
            ladder_base.clone().with_store_backend(OnDiskBackend::Mmap),
        ),
    ] {
        let run = partition_ondisk(ladder_path, &ladder_config)
            .unwrap_or_else(|e| panic!("SMOKE FAIL: ladder run {} failed: {}", label, e));
        println!(
            "ladder {:<22}: cut={} time={:.2}s",
            label,
            run.edge_cut,
            run.total_time.as_secs_f64()
        );
        assert!(
            run.partition.is_complete() && run.partition.is_balanced(),
            "SMOKE FAIL: ladder run {} produced an invalid partition",
            label
        );
        match ladder_cut {
            None => ladder_cut = Some(run.edge_cut),
            Some(cut) => assert_eq!(
                run.edge_cut, cut,
                "SMOKE FAIL: ladder run {} diverged from the common cut",
                label
            ),
        }
    }
    println!(
        "store-backend ladder: identical cut {} across all five runs",
        ladder_cut.unwrap()
    );

    // ---- Engine/session smoke: one engine serving 8 sessions against a single
    // shared mmap store must (a) deduplicate the open (the registry returns the same
    // Arc), (b) reproduce each session's sequential single-session cut, and (c) keep
    // the pooled scratch-arena footprint below 8 independent arenas — arenas scale
    // with *simultaneity*, not with request count. ----
    use std::sync::Arc;
    use terapart::{EngineConfig, PartitionEngine, PartitionRequest};
    const SESSIONS: usize = 8;
    const RUNNERS: usize = 4; // 4 threads x 2 requests each: simultaneity < sessions
    let mut engine_cfg = EngineConfig::from_partitioner(&ladder_base);
    engine_cfg.ondisk.backend = OnDiskBackend::Mmap;
    let engine = Arc::new(PartitionEngine::with_config(engine_cfg.clone()));
    let store = engine.open_store(&path).expect("engine open failed");
    let reopened = engine.open_store(&path).expect("engine re-open failed");
    assert!(
        Arc::ptr_eq(&store, &reopened),
        "SMOKE FAIL: the registry did not return the same Arc for a repeated open"
    );
    assert_eq!(engine.registry().open_count(), 1);

    // Sequential references: one fresh engine per request, so every run pays for its
    // own arena — the baseline the pooled run must beat.
    let requests: Vec<PartitionRequest> = (0..SESSIONS)
        .map(|i| PartitionRequest::from_config(&ladder_base).with_seed(1000 + i as u64))
        .collect();
    let mut sequential_cuts = Vec::new();
    let mut single_arena_bytes = 0usize;
    for request in &requests {
        let fresh = PartitionEngine::with_config(engine_cfg.clone());
        let run = fresh
            .partition_path(&path, request)
            .expect("sequential reference run failed");
        single_arena_bytes = single_arena_bytes.max(fresh.scratch_pool().parked_bytes());
        sequential_cuts.push(run.edge_cut);
    }

    let concurrent_cuts: Vec<(usize, u64)> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for runner in 0..RUNNERS {
            let engine = Arc::clone(&engine);
            let store = Arc::clone(&store);
            let requests = &requests;
            handles.push(scope.spawn(move || {
                let mut cuts = Vec::new();
                for i in (runner..SESSIONS).step_by(RUNNERS) {
                    let run = engine
                        .partition_store(&store, &requests[i])
                        .expect("concurrent session failed");
                    cuts.push((i, run.edge_cut));
                }
                cuts
            }));
        }
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("session thread panicked"))
            .collect()
    });
    for &(i, cut) in &concurrent_cuts {
        assert_eq!(
            cut, sequential_cuts[i],
            "SMOKE FAIL: concurrent session {} diverged from its sequential run",
            i
        );
    }
    let pool = engine.scratch_pool();
    println!(
        "engine: {} sessions on one store, arena high-water {} (pooled {} vs {} for 8 independent arenas)",
        SESSIONS,
        pool.high_water(),
        memtrack::format_bytes(pool.parked_bytes()),
        memtrack::format_bytes(SESSIONS * single_arena_bytes)
    );
    assert!(
        pool.high_water() <= RUNNERS,
        "SMOKE FAIL: arena high-water {} exceeds the {} simultaneous runners",
        pool.high_water(),
        RUNNERS
    );
    assert!(
        pool.parked_bytes() < SESSIONS * single_arena_bytes,
        "SMOKE FAIL: pooled arena bytes {} not below 8 independent arenas {}",
        pool.parked_bytes(),
        SESSIONS * single_arena_bytes
    );

    println!("ondisk smoke OK");
    // Best-effort cleanup when we created the temp cache ourselves.
    drop((store, reopened));
    if std::env::args().nth(1).is_none() {
        std::fs::remove_dir_all(cache_dir).ok();
    } else {
        std::fs::remove_file(&plain_container).ok();
        std::fs::remove_file(cache_dir.join("smoke_materialized.tpg")).ok();
    }
}
