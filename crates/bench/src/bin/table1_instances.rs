//! Table I / Figure 9: properties of the benchmark instances (n, m, average and maximum
//! degree) for both benchmark sets.
use bench::{benchmark_set_a, benchmark_set_b};
use graph::stats::GraphStats;

fn main() {
    println!("Table I / Figure 9: benchmark instance properties");
    println!(
        "{:<20} {:>12} {:>14} {:>8} {:>10}",
        "graph", "n", "m", "d(G)", "max deg"
    );
    for set in [benchmark_set_a(), benchmark_set_b()] {
        for instance in set {
            println!(
                "{}",
                GraphStats::of(&instance.graph).table_row(instance.name)
            );
        }
        println!("---");
    }
}
