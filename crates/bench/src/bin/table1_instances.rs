//! Table I / Figure 9: properties of the benchmark instances (n, m, average and maximum
//! degree) for both benchmark sets, resolved through the on-disk `.tpg` instance cache
//! (generating any missing container, streaming where the family supports it).
use bench::{set_a_specs, set_b_specs, InstanceStore};
use graph::stats::GraphStats;

fn main() {
    let store = InstanceStore::open_default().expect("failed to open the instance cache");
    println!(
        "Table I / Figure 9: benchmark instance properties (cache: {})",
        store.root().display()
    );
    println!(
        "{:<20} {:>12} {:>14} {:>8} {:>10} {:>14} {:>12}",
        "graph", "n", "m", "d(G)", "max deg", "container", "vs CSR"
    );
    for set in [set_a_specs(), set_b_specs()] {
        for instance in set {
            let graph = store
                .load_csr(&instance.spec)
                .expect("failed to resolve instance");
            let container = store.container_bytes(&instance.spec).unwrap_or(0);
            let csr = store.csr_bytes(&instance.spec).unwrap_or(1).max(1);
            println!(
                "{} {:>14} {:>11.2}x",
                GraphStats::of(&graph).table_row(instance.name),
                memtrack::format_bytes(container as usize),
                csr as f64 / container.max(1) as f64
            );
        }
        println!("---");
    }
    println!("manifest: {}", store.manifest_path().display());
}
