//! Table II: TeraPart-LP vs TeraPart-FM on the huge web-like graphs of Set B (k = 64):
//! cut, time and memory. Expected shape: FM reduces the cut (factor ~0.87–0.96 in the
//! paper) at the cost of more time and memory.
use bench::{benchmark_set_b, measure_run};
use graph::traits::Graph;
use terapart::PartitionerConfig;

fn main() {
    let k = 64;
    println!("Table II: TeraPart-LP vs TeraPart-FM on Set B (k = {})", k);
    println!(
        "{:<18} {:<14} {:>12} {:>10} {:>14}",
        "graph", "algorithm", "cut", "time [s]", "memory"
    );
    for instance in benchmark_set_b() {
        let lp = measure_run(
            instance.name,
            "TeraPart-LP",
            &instance.graph,
            &PartitionerConfig::terapart(k).with_threads(2),
        );
        let fm = measure_run(
            instance.name,
            "TeraPart-FM",
            &instance.graph,
            &PartitionerConfig::terapart_fm(k).with_threads(2),
        );
        let total_edges = instance.graph.m() as f64;
        println!(
            "{:<18} {:<14} {:>11.2}% {:>10.2} {:>14}",
            instance.name,
            "TeraPart-LP",
            100.0 * lp.edge_cut as f64 / total_edges,
            lp.time.as_secs_f64(),
            memtrack::format_bytes(lp.peak_memory_bytes)
        );
        println!(
            "{:<18} {:<14} {:>11.2}x {:>10.2} {:>14}",
            "",
            "TeraPart-FM",
            fm.edge_cut as f64 / lp.edge_cut.max(1) as f64,
            fm.time.as_secs_f64(),
            memtrack::format_bytes(fm.peak_memory_bytes)
        );
    }
}
