//! Table III: edge cuts of XTeraPart vs the ParMETIS-like and XtraPuLP-like baselines on
//! growing rgg2D and rhg graphs (k = 64 in the paper; k = 16 here). Expected shape: the
//! single-level partitioner cuts several times more edges, the multilevel baselines are
//! within a small factor of XTeraPart.
use baselines::{mtmetis_partition, xtrapulp_partition};
use graph::gen;
use graph::traits::Graph;
use xterapart::{dist_partition, DistPartitionConfig};

fn main() {
    let k = 16;
    println!("Table III: cuts relative to XTeraPart (k = {})", k);
    println!(
        "{:<8} {:>10} {:>16} {:>16} {:>16}",
        "family", "edges", "XTeraPart cut%", "ParMETIS-like", "XtraPuLP-like"
    );
    for exponent in [14u32, 15, 16] {
        let n = 1usize << exponent;
        for (family, graph) in [
            ("rgg2d", gen::rgg2d(n, 16, exponent as u64)),
            ("rhg", gen::rhg_like(n, 16, 3.0, exponent as u64)),
        ] {
            let xt = dist_partition(&graph, &DistPartitionConfig::xterapart(k, 4));
            let pm = mtmetis_partition(&graph, k, 0.03, 1);
            let xp = xtrapulp_partition(&graph, k, 0.03, 1);
            println!(
                "{:<8} {:>10} {:>15.2}% {:>15.2}x {:>15.2}x{}",
                family,
                graph.m(),
                100.0 * xt.edge_cut as f64 / graph.m() as f64,
                pm.edge_cut as f64 / xt.edge_cut.max(1) as f64,
                xp.edge_cut as f64 / xt.edge_cut.max(1) as f64,
                if xp.balanced { "" } else { " *" }
            );
        }
    }
}
