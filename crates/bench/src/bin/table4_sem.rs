//! Table IV: TeraPart vs the semi-external-memory partitioner (k = 16): cut, time,
//! memory. Expected shape: SEM is substantially slower at somewhat higher cuts.
use baselines::sem_partition;
use bench::measure_run;
use graph::gen;
use terapart::PartitionerConfig;

fn main() {
    let k = 16;
    println!(
        "Table IV: TeraPart vs semi-external memory partitioning (k = {})",
        k
    );
    println!(
        "{:<16} {:<10} {:>10} {:>10} {:>14}",
        "graph", "algorithm", "cut", "time [s]", "memory"
    );
    for (name, graph) in [
        ("arabic-like", gen::weblike(14, 10, 41)),
        ("uk-like", gen::rgg2d(12_000, 16, 42)),
        ("sk-like", gen::rhg_like(16_000, 14, 2.8, 43)),
        ("uk07-like", gen::weblike(15, 8, 44)),
    ] {
        let tp = measure_run(
            name,
            "TeraPart",
            &graph,
            &PartitionerConfig::terapart(k).with_threads(2),
        );
        let sem = sem_partition(&graph, k, 0.03, 1);
        println!(
            "{:<16} {:<10} {:>10} {:>10.2} {:>14}",
            name,
            "TeraPart",
            tp.edge_cut,
            tp.time.as_secs_f64(),
            memtrack::format_bytes(tp.peak_memory_bytes)
        );
        println!(
            "{:<16} {:<10} {:>10} {:>10.2} {:>14}",
            "",
            "SEM",
            sem.edge_cut,
            sem.total_time.as_secs_f64(),
            memtrack::format_bytes(sem.peak_memory_bytes)
        );
    }
}
