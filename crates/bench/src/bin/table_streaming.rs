//! §VII: HeiStream-like buffered streaming vs TeraPart on rgg2D/rhg graphs. Expected
//! shape: the streaming partitioner cuts several times more edges (3.1x–14.8x in the
//! paper at tera-scale).
use baselines::heistream_partition;
use graph::gen;
use graph::traits::Graph;
use terapart::{partition, PartitionerConfig};

fn main() {
    let k = 128;
    println!("Section VII: streaming vs multilevel (k = {})", k);
    println!(
        "{:<8} {:>10} {:>14} {:>14} {:>8}",
        "family", "edges", "TeraPart cut", "HeiStream cut", "ratio"
    );
    for (family, graph) in [
        ("rgg2d", gen::rgg2d(16_000, 16, 3)),
        ("rhg", gen::rhg_like(16_000, 16, 3.0, 4)),
    ] {
        let tp = partition(&graph, &PartitionerConfig::terapart(k).with_threads(2));
        let hs = heistream_partition(&graph, k, 0.03, 1024, 1);
        println!(
            "{:<8} {:>10} {:>14} {:>14} {:>8.2}",
            family,
            graph.m(),
            tp.edge_cut,
            hs.edge_cut,
            hs.edge_cut as f64 / tp.edge_cut.max(1) as f64
        );
    }
}
