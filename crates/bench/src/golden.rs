//! Golden-cut regression table: pinned fixed-seed edge cuts per (preset, instance).
//!
//! Partition quality regressions are easy to introduce silently — a refinement tweak
//! that loses 3% cut still passes every invariant test. This module pins the exact
//! edge cut of a **single-threaded, fixed-seed** run of every [`Preset`] on a small
//! set of golden instances, one per quality-ladder family. Single-threaded runs are
//! bit-deterministic end to end (parallel label propagation only varies with the
//! thread count), so any cut change is a real algorithmic change — either fix it or
//! regenerate the table deliberately.
//!
//! # Regenerating the table
//!
//! ```text
//! cargo run --release -p bench --bin bench_quality -- --golden
//! cargo run --release -p bench --bin bench_quality -- --golden --features wide-ids
//! ```
//!
//! (The second run is `cargo run --release -p bench --features wide-ids ...` — each
//! prints the `GoldenEntry` rows for its ID width; paste them into [`golden_entries`]
//! below. Both widths get their own column defensively; today every golden run is
//! width-independent, so the columns coincide — a divergence is itself a signal.)

use terapart::{partition_csr, PartitionerConfig, Preset};

use crate::instances::GenSpec;

/// Number of blocks of every golden run.
pub const GOLDEN_K: usize = 8;

/// One pinned golden cut: the expected single-threaded fixed-seed edge cut of
/// `preset` on `instance` at both ID widths.
#[derive(Debug, Clone)]
pub struct GoldenEntry {
    /// The preset of the run.
    pub preset: Preset,
    /// Golden instance name (see [`golden_specs`]).
    pub instance: &'static str,
    /// Expected edge cut at the default 32-bit `NodeId`.
    pub cut_w32: u64,
    /// Expected edge cut under `wide-ids` (64-bit `NodeId`).
    pub cut_w64: u64,
}

impl GoldenEntry {
    /// The expected cut at the ID width this binary was built with.
    pub fn expected_cut(&self) -> u64 {
        if graph::NodeId::BITS == 64 {
            self.cut_w64
        } else {
            self.cut_w32
        }
    }
}

/// The golden instances: one small, fast rung per quality-ladder family.
pub fn golden_specs() -> Vec<(&'static str, GenSpec)> {
    vec![
        (
            "grid3d-16",
            GenSpec::Grid3d {
                x: 16,
                y: 16,
                z: 16,
            },
        ),
        (
            "rgg2d-6k",
            GenSpec::Rgg2d {
                n: 6_000,
                avg_deg: 12,
                seed: 41,
            },
        ),
        (
            "plc-6k",
            GenSpec::PowerLawCluster {
                n: 6_000,
                attach: 6,
                triad_p: 0.4,
                seed: 43,
            },
        ),
        (
            "rmat-14",
            GenSpec::Rmat {
                scale: 14,
                avg_deg: 8,
                seed: 45,
            },
        ),
    ]
}

/// Runs `preset` on `instance` exactly as the golden table pins it: `k = GOLDEN_K`,
/// one thread, the preset's default seed. Returns the edge cut.
pub fn golden_cut(preset: Preset, instance: &str) -> u64 {
    let (_, spec) = golden_specs()
        .into_iter()
        .find(|(name, _)| *name == instance)
        .unwrap_or_else(|| panic!("unknown golden instance '{}'", instance));
    golden_run(preset, &spec)
}

/// The single-threaded fixed-seed run behind [`golden_cut`], on an explicit spec.
pub fn golden_run(preset: Preset, spec: &GenSpec) -> u64 {
    let graph = spec.materialize();
    let mut config = PartitionerConfig::preset(preset, GOLDEN_K);
    config.num_threads = 1;
    partition_csr(&graph, &config).edge_cut
}

/// The pinned golden cuts. Regenerate with
/// `cargo run --release -p bench --bin bench_quality -- --golden` (see module docs).
pub fn golden_entries() -> Vec<GoldenEntry> {
    use Preset::*;
    let entry = |preset, instance, cut_w32, cut_w64| GoldenEntry {
        preset,
        instance,
        cut_w32,
        cut_w64,
    };
    vec![
        entry(Fast, "grid3d-16", 1208, 1208),
        entry(Fast, "rgg2d-6k", 1187, 1187),
        entry(Fast, "plc-6k", 21715, 21715),
        entry(Fast, "rmat-14", 39383, 39383),
        entry(Default, "grid3d-16", 1114, 1114),
        entry(Default, "rgg2d-6k", 1080, 1080),
        entry(Default, "plc-6k", 20832, 20832),
        entry(Default, "rmat-14", 32530, 32530),
        entry(Strong, "grid3d-16", 933, 933),
        entry(Strong, "rgg2d-6k", 912, 912),
        entry(Strong, "plc-6k", 20953, 20953),
        entry(Strong, "rmat-14", 37610, 37610),
    ]
}
