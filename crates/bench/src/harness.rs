//! Measurement and aggregation utilities shared by the experiment binaries.
//!
//! The paper aggregates running times and memory with geometric means, relative speedups
//! with harmonic means, and compares solution quality with performance profiles
//! (Dolan–Moré). The same aggregations are provided here so the regenerated tables use
//! the paper's methodology. [`write_pipeline_json`] additionally persists one pipeline
//! run (phase timings, cut, peak memory, micro-benchmark speedups) as
//! `BENCH_pipeline.json`, so the perf trajectory is tracked across PRs.

use std::io::Write;
use std::path::Path;
use std::time::Duration;

use graph::csr::CsrGraph;
use graph::traits::Graph;
use memtrack::PhaseTracker;
use terapart::{partition_csr_with_tracker, PartitionerConfig};

/// One measured partitioning run.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Instance name.
    pub instance: String,
    /// Algorithm/configuration name.
    pub algorithm: String,
    /// Number of blocks.
    pub k: usize,
    /// Edge cut.
    pub edge_cut: u64,
    /// Wall-clock time.
    pub time: Duration,
    /// Peak memory charged to the accounting during the run, in bytes.
    pub peak_memory_bytes: usize,
    /// Whether the balance constraint held.
    pub balanced: bool,
}

impl Measurement {
    /// Formats the measurement as a compact report row.
    pub fn row(&self) -> String {
        format!(
            "{:<18} {:<34} k={:<6} cut={:<10} time={:>8.3}s mem={:>12} {}",
            self.instance,
            self.algorithm,
            self.k,
            self.edge_cut,
            self.time.as_secs_f64(),
            memtrack::format_bytes(self.peak_memory_bytes),
            if self.balanced { "" } else { "*imbalanced*" }
        )
    }
}

/// Runs one partitioning configuration on one instance and collects the measurement.
pub fn measure_run(
    instance: &str,
    algorithm: &str,
    graph: &CsrGraph,
    config: &PartitionerConfig,
) -> Measurement {
    let tracker = PhaseTracker::new();
    memtrack::global().reset_peak();
    let result = partition_csr_with_tracker(graph, config, &tracker);
    Measurement {
        instance: instance.to_string(),
        algorithm: algorithm.to_string(),
        k: config.k,
        edge_cut: result.edge_cut,
        time: result.total_time,
        peak_memory_bytes: result.peak_memory_bytes.max(tracker.overall_peak()),
        balanced: result.partition.is_balanced(),
    }
}

/// Like [`measure_run`], but with run-report recording enabled. Returns the structured
/// [`obs::RunReport`] (span tree + counter snapshot) alongside the measurement, for
/// embedding into the bench JSON files.
pub fn measure_run_reported(
    instance: &str,
    algorithm: &str,
    graph: &CsrGraph,
    config: &PartitionerConfig,
) -> (Measurement, obs::RunReport) {
    let recording = config.clone().with_run_report(true);
    let tracker = PhaseTracker::new();
    memtrack::global().reset_peak();
    let result = partition_csr_with_tracker(graph, &recording, &tracker);
    let report = result
        .run_report
        .expect("recording config attaches a run report");
    let measurement = Measurement {
        instance: instance.to_string(),
        algorithm: algorithm.to_string(),
        k: config.k,
        edge_cut: result.edge_cut,
        time: result.total_time,
        peak_memory_bytes: result.peak_memory_bytes.max(tracker.overall_peak()),
        balanced: result.partition.is_balanced(),
    };
    (measurement, report)
}

/// One measured `partition_ondisk` run at a fixed page budget, recorded alongside the
/// in-memory pipeline in `BENCH_pipeline.json`.
#[derive(Debug, Clone)]
pub struct OndiskRun {
    /// Store backend of the run: `"paged"` or `"mmap"`.
    pub backend: &'static str,
    /// Offset-index encoding of the container: `"plain"` (raw u64s) or `"ef"`
    /// (Elias-Fano).
    pub offsets: &'static str,
    /// On-disk size of the container's offset index, in bytes.
    pub offset_index_bytes: u64,
    /// Vertices of the instance (for the offset-bytes-per-node metric).
    pub n: usize,
    /// Page-cache budget the run was configured with, in bytes (0 for the mmap
    /// backend, which has no cache).
    pub page_budget_bytes: usize,
    /// Page size of the run's cache, in bytes (0 for the mmap backend).
    pub page_size_bytes: usize,
    /// Whether LP-aware page readahead (`OnDiskConfig::prefetch`) was enabled.
    pub prefetch: bool,
    /// Wall-clock time of the run.
    pub time: Duration,
    /// Peak accounted memory during the run, in bytes.
    pub peak_memory_bytes: usize,
    /// Edge cut of the result.
    pub edge_cut: u64,
    /// Uncompressed CSR size of the instance, the memory reference point.
    pub csr_bytes: usize,
    /// Per-phase reports of the run (includes the `open_store` phase).
    pub phases: Vec<memtrack::PhaseReport>,
    /// Page-cache counters of the run (hit rate, prefetched pages, ...).
    pub cache: Option<graph::store::CacheStatsSnapshot>,
}

/// One measured streamed-ingest comparison: the pipelined
/// [`StreamingTpgBuilder::finish`](graph::store::StreamingTpgBuilder::finish) against
/// the sequential reference path on the identical spilled edge stream.
#[derive(Debug, Clone)]
pub struct StreamIngestRun {
    /// Vertices of the streamed instance.
    pub n: usize,
    /// Undirected edge records fed to the builder (before deduplication).
    pub edges_added: usize,
    /// Spill buckets used.
    pub buckets: usize,
    /// Worker threads of the pipelined finish.
    pub threads: usize,
    /// Seconds of the sequential reference `finish_sequential`.
    pub sequential_seconds: f64,
    /// Seconds of the pipelined `finish`.
    pub pipelined_seconds: f64,
    /// Size of the produced container (byte-identical across both paths).
    pub container_bytes: u64,
    /// Spill-file volume of the stream (unit-weight vs full-width records), the
    /// before/after evidence for the unit-weight spill-record format.
    pub spill: graph::store::SpillStats,
}

impl StreamIngestRun {
    /// Sequential time over pipelined time; > 1 means the pipeline is faster.
    pub fn speedup(&self) -> f64 {
        self.sequential_seconds / self.pipelined_seconds.max(1e-12)
    }

    /// Ingest throughput of the pipelined finish in edge records per second.
    pub fn edges_per_second(&self) -> f64 {
        self.edges_added as f64 / self.pipelined_seconds.max(1e-12)
    }
}

/// One concurrent-engine measurement: N simultaneous sessions against one shared
/// mmap store, all driven through a single [`terapart::PartitionEngine`]. Recorded in
/// the `concurrent_sessions` section of `BENCH_pipeline.json`.
#[derive(Debug, Clone)]
pub struct ConcurrentSessionsRun {
    /// Simultaneous sessions launched (one OS thread each).
    pub sessions: usize,
    /// Wall-clock seconds until every session completed.
    pub wall_seconds: f64,
    /// Summed wall-clock seconds of the same requests run one at a time on fresh
    /// engines (the bit-identity references).
    pub sequential_seconds: f64,
    /// High-water mark of simultaneously checked-out scratch arenas in the engine's
    /// [`terapart::ScratchPool`].
    pub pool_high_water: usize,
    /// Bytes parked in the scratch pool after all sessions returned their arenas.
    pub pool_parked_bytes: usize,
    /// Parked bytes of a fresh single-request engine — the per-arena reference point
    /// for `pool_parked_bytes`.
    pub single_arena_bytes: usize,
    /// Peak accounted memory across the concurrent run, in bytes.
    pub peak_memory_bytes: usize,
    /// Whether every session's assignment was bit-identical to its sequential
    /// reference run.
    pub bit_identical: bool,
}

impl ConcurrentSessionsRun {
    /// Sequential time over concurrent wall time; > 1 means overlapping sessions
    /// beat running them back to back.
    pub fn throughput_gain(&self) -> f64 {
        self.sequential_seconds / self.wall_seconds.max(1e-12)
    }
}

/// One micro-benchmark comparison against the frozen seed baseline.
#[derive(Debug, Clone)]
pub struct MicroComparison {
    /// Benchmark name, e.g. `"contraction_one_pass"`.
    pub name: String,
    /// Seconds of the pre-change (seed) implementation.
    pub baseline_seconds: f64,
    /// Seconds of the live implementation.
    pub optimized_seconds: f64,
}

impl MicroComparison {
    /// Baseline time over optimized time; > 1 means the live implementation is faster.
    pub fn speedup(&self) -> f64 {
        self.baseline_seconds / self.optimized_seconds.max(1e-12)
    }
}

/// Times `runs` executions of `routine` on fresh `setup()` inputs and returns the
/// fastest observed seconds (setup time excluded). Scheduler and allocator noise is
/// strictly additive, so the minimum is the standard noise-floor estimator for
/// micro-benchmarks on shared machines.
pub fn best_seconds<I, R>(
    runs: usize,
    mut setup: impl FnMut() -> I,
    mut routine: impl FnMut(I) -> R,
) -> f64 {
    // Warmup run outside the samples.
    std::hint::black_box(routine(setup()));
    (0..runs.max(1))
        .map(|_| {
            let input = setup();
            let start = std::time::Instant::now();
            std::hint::black_box(routine(input));
            start.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Headline numbers of one pipeline run at one ID width, for the `width_runs` section
/// of `BENCH_pipeline.json` that tracks the `wide-ids` overhead against the default.
#[derive(Debug, Clone, PartialEq)]
pub struct WidthRun {
    /// NodeId width in bits (32 or 64).
    pub id_width: u32,
    /// Edge cut of the run.
    pub edge_cut: u64,
    /// Wall-clock seconds of the full pipeline.
    pub total_time_seconds: f64,
    /// Peak accounted memory in bytes.
    pub peak_memory_bytes: usize,
}

/// Extracts the headline [`WidthRun`] numbers from a `BENCH_pipeline.json` written by
/// [`write_pipeline_json`] (possibly by a binary built at the *other* ID width). The
/// format is this crate's own line-oriented output, so a line scan suffices — no JSON
/// dependency exists in this workspace.
pub fn read_width_run(path: &Path) -> std::io::Result<WidthRun> {
    let text = std::fs::read_to_string(path)?;
    let field = |name: &str| -> std::io::Result<f64> {
        text.lines()
            .find_map(|line| {
                let rest = line.trim().strip_prefix(&format!("\"{}\": ", name))?;
                rest.trim_end_matches(',').parse::<f64>().ok()
            })
            .ok_or_else(|| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("field '{}' missing from {}", name, path.display()),
                )
            })
    };
    Ok(WidthRun {
        id_width: field("id_width")? as u32,
        edge_cut: field("edge_cut")? as u64,
        total_time_seconds: field("total_time_seconds")?,
        peak_memory_bytes: field("peak_memory_bytes")? as usize,
    })
}

/// Writes `BENCH_pipeline.json`: the phase timing/memory breakdown and headline numbers
/// of one pipeline run, the micro-benchmark speedups over the seed baseline, and the
/// `partition_ondisk` runs at their page budgets.
#[allow(clippy::too_many_arguments)]
pub fn write_pipeline_json(
    path: &Path,
    instance: &str,
    graph: &CsrGraph,
    config: &PartitionerConfig,
    tracker: &PhaseTracker,
    measurement: &Measurement,
    micro: &[MicroComparison],
    stream_ingest: Option<&StreamIngestRun>,
    ondisk: &[OndiskRun],
    concurrent_sessions: &[ConcurrentSessionsRun],
    other_width_runs: &[WidthRun],
    run_report: Option<&obs::RunReport>,
) -> std::io::Result<()> {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"instance\": \"{}\",\n", json_escape(instance)));
    out.push_str(&format!("  \"id_width\": {},\n", graph::NodeId::BITS));
    out.push_str(&format!("  \"n\": {},\n", graph.n()));
    out.push_str(&format!("  \"m\": {},\n", graph.m()));
    out.push_str(&format!("  \"k\": {},\n", config.k));
    out.push_str(&format!("  \"threads\": {},\n", config.num_threads));
    out.push_str(&format!("  \"edge_cut\": {},\n", measurement.edge_cut));
    out.push_str(&format!("  \"balanced\": {},\n", measurement.balanced));
    out.push_str(&format!(
        "  \"total_time_seconds\": {:.6},\n",
        measurement.time.as_secs_f64()
    ));
    out.push_str(&format!(
        "  \"peak_memory_bytes\": {},\n",
        measurement.peak_memory_bytes
    ));
    out.push_str("  \"phases\": [\n");
    let reports = tracker.reports();
    for (i, report) in reports.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"level\": {}, \"seconds\": {:.6}, \"peak_bytes\": {}, \"aux_bytes\": {}}}{}\n",
            json_escape(&report.name),
            report.level,
            report.elapsed.as_secs_f64(),
            report.peak_bytes,
            report.auxiliary_bytes(),
            if i + 1 < reports.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"micro_vs_seed_baseline\": [\n");
    for (i, comparison) in micro.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"baseline_seconds\": {:.6}, \"optimized_seconds\": {:.6}, \"speedup\": {:.3}}}{}\n",
            json_escape(&comparison.name),
            comparison.baseline_seconds,
            comparison.optimized_seconds,
            comparison.speedup(),
            if i + 1 < micro.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    match stream_ingest {
        Some(run) => out.push_str(&format!(
            "  \"stream_ingest\": {{\"n\": {}, \"edges_added\": {}, \"buckets\": {}, \"threads\": {}, \"sequential_seconds\": {:.6}, \"pipelined_seconds\": {:.6}, \"ingest_speedup\": {:.3}, \"edges_per_second\": {:.0}, \"container_bytes\": {}, \"spill_unit_records\": {}, \"spill_weighted_records\": {}, \"spill_bytes\": {}, \"spill_full_width_bytes\": {}, \"spill_savings\": {:.4}}},\n",
            run.n,
            run.edges_added,
            run.buckets,
            run.threads,
            run.sequential_seconds,
            run.pipelined_seconds,
            run.speedup(),
            run.edges_per_second(),
            run.container_bytes,
            run.spill.unit_records,
            run.spill.weighted_records,
            run.spill.bytes,
            run.spill.full_width_bytes,
            run.spill.savings(),
        )),
        None => out.push_str("  \"stream_ingest\": null,\n"),
    }
    out.push_str("  \"partition_ondisk\": [\n");
    for (i, run) in ondisk.iter().enumerate() {
        let open_store_seconds = run
            .phases
            .iter()
            .filter(|p| p.name == "open_store")
            .map(|p| p.elapsed.as_secs_f64())
            .sum::<f64>();
        let cache = run.cache.unwrap_or_default();
        out.push_str(&format!(
            "    {{\"backend\": \"{}\", \"offsets\": \"{}\", \"offset_index_bytes\": {}, \"offset_bytes_per_node\": {:.3}, \"page_budget_bytes\": {}, \"page_size_bytes\": {}, \"prefetch\": {}, \"seconds\": {:.6}, \"open_store_seconds\": {:.6}, \"peak_bytes\": {}, \"csr_bytes\": {}, \"peak_vs_csr\": {:.3}, \"edge_cut\": {}, \"cache_hits\": {}, \"cache_misses\": {}, \"cache_hit_rate\": {:.4}, \"prefetched_pages\": {}, \"retried_reads\": {}, \"checksum_failures\": {}}}{}\n",
            run.backend,
            run.offsets,
            run.offset_index_bytes,
            run.offset_index_bytes as f64 / run.n.max(1) as f64,
            run.page_budget_bytes,
            run.page_size_bytes,
            run.prefetch,
            run.time.as_secs_f64(),
            open_store_seconds,
            run.peak_memory_bytes,
            run.csr_bytes,
            run.peak_memory_bytes as f64 / run.csr_bytes.max(1) as f64,
            run.edge_cut,
            cache.hits,
            cache.misses,
            cache.hit_rate(),
            cache.prefetched_pages,
            cache.retried_reads,
            cache.checksum_failures,
            if i + 1 < ondisk.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    // Engine concurrency ladder: N simultaneous sessions through one engine on one
    // shared mmap store. Single-line objects keyed by `sessions`, so the
    // `read_width_run` line scan cannot mistake their fields for headline ones.
    out.push_str("  \"concurrent_sessions\": [\n");
    for (i, run) in concurrent_sessions.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"sessions\": {}, \"wall_seconds\": {:.6}, \"sequential_seconds\": {:.6}, \"throughput_gain\": {:.3}, \"pool_high_water\": {}, \"pool_parked_bytes\": {}, \"single_arena_bytes\": {}, \"peak_bytes\": {}, \"bit_identical\": {}}}{}\n",
            run.sessions,
            run.wall_seconds,
            run.sequential_seconds,
            run.throughput_gain(),
            run.pool_high_water,
            run.pool_parked_bytes,
            run.single_arena_bytes,
            run.peak_memory_bytes,
            run.bit_identical,
            if i + 1 < concurrent_sessions.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    // Embedded run report (span tree + counters) of the recorded pipeline run. This
    // section must stay *below* the headline fields: `read_width_run` line-scans for
    // the first match of each field name, and the report's counter names overlap
    // (e.g. `peak_memory_bytes`).
    match run_report {
        Some(report) => {
            out.push_str("  \"observability\": ");
            report.write_json(&mut out, 1);
            out.push_str(",\n");
        }
        None => out.push_str("  \"observability\": null,\n"),
    }
    // Width ladder: this run plus any runs recorded by binaries built at other widths,
    // so the wide-ids overhead is tracked next to the default from day one.
    let mut width_runs = vec![WidthRun {
        id_width: graph::NodeId::BITS,
        edge_cut: measurement.edge_cut,
        total_time_seconds: measurement.time.as_secs_f64(),
        peak_memory_bytes: measurement.peak_memory_bytes,
    }];
    width_runs.extend(other_width_runs.iter().cloned());
    width_runs.sort_by_key(|r| r.id_width);
    out.push_str("  \"width_runs\": [\n");
    for (i, run) in width_runs.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"id_width\": {}, \"edge_cut\": {}, \"total_time_seconds\": {:.6}, \"peak_memory_bytes\": {}}}{}\n",
            run.id_width,
            run.edge_cut,
            run.total_time_seconds,
            run.peak_memory_bytes,
            if i + 1 < width_runs.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    let mut file = std::fs::File::create(path)?;
    file.write_all(out.as_bytes())
}

/// One (preset, instance) point of the quality Pareto sweep recorded in
/// `BENCH_quality.json`.
#[derive(Debug, Clone)]
pub struct QualityRun {
    /// Instance family (e.g. `"web"`).
    pub family: String,
    /// Instance name within the family (e.g. `"rmat-16"`).
    pub instance: String,
    /// Vertices of the instance.
    pub n: usize,
    /// Undirected edges of the instance.
    pub m: usize,
    /// Preset name (`fast` / `default` / `strong`).
    pub preset: String,
    /// Edge cut of the run.
    pub edge_cut: u64,
    /// Wall-clock seconds of the run.
    pub seconds: f64,
    /// Peak accounted memory in bytes.
    pub peak_memory_bytes: usize,
    /// Whether the balance constraint held.
    pub balanced: bool,
}

/// One frontier-vs-full-sweep comparison: the `fast` preset's frontier-driven LP
/// against the identical configuration with full-sweep rounds, on one instance.
#[derive(Debug, Clone)]
pub struct FrontierCheck {
    /// Instance family.
    pub family: String,
    /// Instance name.
    pub instance: String,
    /// Cut with frontier-driven LP rounds (the `fast` preset as shipped).
    pub frontier_cut: u64,
    /// Cut with full-sweep LP rounds, everything else identical.
    pub full_sweep_cut: u64,
    /// `frontier_cut / full_sweep_cut`; > 1 means the frontier lost quality.
    pub ratio: f64,
    /// Whether the frontier degraded the cut beyond the accepted tolerance.
    pub degraded: bool,
}

/// Writes `BENCH_quality.json`: the cut-vs-time Pareto sweep of every preset across
/// the instance-family ladder, the per-family `strong`-vs-`fast` verdicts, and the
/// frontier-vs-full-sweep degradation flags. `frontier_tolerance` is the accepted
/// `frontier_cut / full_sweep_cut` ratio above which a check counts as degraded
/// (recorded in the file so readers can interpret the flags).
pub fn write_quality_json(
    path: &Path,
    k: usize,
    frontier_tolerance: f64,
    runs: &[QualityRun],
    frontier_checks: &[FrontierCheck],
    strong_beats_fast_families: &[String],
    run_report: Option<&obs::RunReport>,
) -> std::io::Result<()> {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"id_width\": {},\n", graph::NodeId::BITS));
    out.push_str(&format!("  \"k\": {},\n", k));
    out.push_str(&format!(
        "  \"frontier_tolerance\": {:.3},\n",
        frontier_tolerance
    ));
    out.push_str("  \"runs\": [\n");
    for (i, run) in runs.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"family\": \"{}\", \"instance\": \"{}\", \"n\": {}, \"m\": {}, \"preset\": \"{}\", \"edge_cut\": {}, \"seconds\": {:.6}, \"peak_memory_bytes\": {}, \"balanced\": {}}}{}\n",
            json_escape(&run.family),
            json_escape(&run.instance),
            run.n,
            run.m,
            json_escape(&run.preset),
            run.edge_cut,
            run.seconds,
            run.peak_memory_bytes,
            run.balanced,
            if i + 1 < runs.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"frontier_checks\": [\n");
    for (i, check) in frontier_checks.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"family\": \"{}\", \"instance\": \"{}\", \"frontier_cut\": {}, \"full_sweep_cut\": {}, \"ratio\": {:.4}, \"degraded\": {}}}{}\n",
            json_escape(&check.family),
            json_escape(&check.instance),
            check.frontier_cut,
            check.full_sweep_cut,
            check.ratio,
            check.degraded,
            if i + 1 < frontier_checks.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"strong_beats_fast_families\": [");
    for (i, family) in strong_beats_fast_families.iter().enumerate() {
        out.push_str(&format!(
            "\"{}\"{}",
            json_escape(family),
            if i + 1 < strong_beats_fast_families.len() {
                ", "
            } else {
                ""
            }
        ));
    }
    out.push_str("],\n");
    // Compact observability view of one representative recorded run: headline timing,
    // coverage, and the counter snapshot — the full span tree lives in
    // `BENCH_pipeline.json`.
    match run_report {
        Some(report) => {
            out.push_str("  \"observability\": {");
            out.push_str(&format!(
                "\"total_seconds\": {:.6}, \"span_coverage\": {:.4}, \"counters\": {{",
                report.total_seconds(),
                report.span_coverage
            ));
            for (i, (c, v)) in report.counters.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("\"{}\": {}", c.name(), v));
            }
            out.push_str("}}\n");
        }
        None => out.push_str("  \"observability\": null\n"),
    }
    out.push_str("}\n");
    let mut file = std::fs::File::create(path)?;
    file.write_all(out.as_bytes())
}

/// Geometric mean of a slice of positive values.
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|&v| v.max(1e-12).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Harmonic mean of a slice of positive values (used for relative speedups).
pub fn harmonic_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.len() as f64 / values.iter().map(|&v| 1.0 / v.max(1e-12)).sum::<f64>()
}

/// Computes a Dolan–Moré performance profile.
///
/// `cuts_per_algorithm[i]` holds algorithm `i`'s edge cut on every instance (same
/// instance order for all algorithms). Returns, for each algorithm and each τ in `taus`,
/// the fraction of instances where that algorithm's cut is within a factor τ of the best.
pub fn performance_profile(cuts_per_algorithm: &[Vec<u64>], taus: &[f64]) -> Vec<Vec<f64>> {
    if cuts_per_algorithm.is_empty() {
        return Vec::new();
    }
    let num_instances = cuts_per_algorithm[0].len();
    assert!(cuts_per_algorithm.iter().all(|c| c.len() == num_instances));
    let best_per_instance: Vec<f64> = (0..num_instances)
        .map(|i| {
            cuts_per_algorithm
                .iter()
                .map(|c| c[i])
                .min()
                .unwrap_or(0)
                .max(1) as f64
        })
        .collect();
    cuts_per_algorithm
        .iter()
        .map(|cuts| {
            taus.iter()
                .map(|&tau| {
                    let count = cuts
                        .iter()
                        .zip(&best_per_instance)
                        .filter(|&(&cut, &best)| (cut.max(1) as f64) <= tau * best)
                        .count();
                    count as f64 / num_instances as f64
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph::gen;

    #[test]
    fn means_are_correct() {
        assert!((geometric_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-9);
        assert!((harmonic_mean(&[1.0, 1.0]) - 1.0).abs() < 1e-9);
        assert!((harmonic_mean(&[2.0, 6.0]) - 3.0).abs() < 1e-9);
        assert_eq!(geometric_mean(&[]), 0.0);
        assert_eq!(harmonic_mean(&[]), 0.0);
    }

    #[test]
    fn performance_profile_ranks_algorithms() {
        // Algorithm 0 is always best; algorithm 1 is 2x worse on every instance.
        let cuts = vec![vec![10, 20, 30], vec![20, 40, 60]];
        let profile = performance_profile(&cuts, &[1.0, 1.5, 2.0]);
        assert_eq!(profile[0], vec![1.0, 1.0, 1.0]);
        assert_eq!(profile[1], vec![0.0, 0.0, 1.0]);
    }

    #[test]
    fn measure_run_produces_sane_numbers() {
        let g = gen::grid2d(24, 24);
        let m = measure_run(
            "grid",
            "terapart",
            &g,
            &terapart::PartitionerConfig::terapart(4).with_threads(1),
        );
        assert!(m.edge_cut > 0);
        assert!(m.balanced);
        assert!(m.peak_memory_bytes > 0);
        assert!(m.row().contains("terapart"));
    }
}
