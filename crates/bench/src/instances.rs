//! The on-disk instance set: a cache of `.tpg` containers keyed by generator
//! parameters.
//!
//! The paper's experiments run over fixed benchmark sets (Sets A and B); this module
//! gives those sets a durable on-disk home so experiment binaries resolve instances
//! through a cache instead of regenerating them in memory on every run — and so runs
//! can exercise graphs **larger than RAM**: streamable families (R-MAT, random
//! geometric) are generated straight into the container through the bounded-memory
//! spilling builder ([`graph::store::stream`]), never materialising the adjacency.
//!
//! The cache lives under `$TERAPART_INSTANCE_CACHE` (default: `target/instance-cache`).
//! Every container is keyed by its full generator parameters — e.g.
//! `rmat-s14-d12-x31.tpg` — so a cache hit is exact by construction; a
//! `MANIFEST.tsv` in the cache directory records `file, n, m, file_bytes` for each
//! generated instance.

use std::io::Write;
use std::path::{Path, PathBuf};

use graph::csr::CsrGraph;
use graph::gen;
use graph::io::IoError;
use graph::store::{
    read_tpg, read_tpg_meta, stream_rgg2d_to_tpg, stream_rgg3d_to_tpg, stream_rmat_to_tpg,
    write_tpg_from_graph, PagedGraph, PagedGraphOptions,
};
use graph::CompressionConfig;

/// A generator recipe identifying one benchmark instance exactly.
#[derive(Debug, Clone, PartialEq)]
pub enum GenSpec {
    /// 2D grid (`gen::grid2d`).
    Grid2d { rows: usize, cols: usize },
    /// 3D grid (`gen::grid3d`).
    Grid3d { x: usize, y: usize, z: usize },
    /// Random geometric graph (`gen::rgg2d`) — streamable.
    Rgg2d { n: usize, avg_deg: usize, seed: u64 },
    /// 3D random geometric graph (`gen::rgg3d`) — streamable.
    Rgg3d { n: usize, avg_deg: usize, seed: u64 },
    /// Power-law clustered graph (`gen::powerlaw_cluster`, Holme–Kim).
    PowerLawCluster {
        n: usize,
        attach: usize,
        triad_p: f64,
        seed: u64,
    },
    /// Power-law configuration-model graph (`gen::rhg_like`).
    RhgLike {
        n: usize,
        avg_deg: usize,
        gamma: f64,
        seed: u64,
    },
    /// Erdős–Rényi random graph (`gen::erdos_renyi`).
    ErdosRenyi { n: usize, m: usize, seed: u64 },
    /// R-MAT web-like graph (`gen::weblike`) — streamable.
    Rmat {
        scale: u32,
        avg_deg: usize,
        seed: u64,
    },
    /// Star graph (`gen::star`).
    Star { n: usize },
    /// Any spec re-weighted with random edge weights (`gen::with_random_edge_weights`).
    WeightedEdges {
        base: Box<GenSpec>,
        max_weight: u64,
        seed: u64,
    },
}

impl GenSpec {
    /// Wraps a spec with random edge weights.
    pub fn weighted(self, max_weight: u64, seed: u64) -> Self {
        GenSpec::WeightedEdges {
            base: Box::new(self),
            max_weight,
            seed,
        }
    }

    /// The cache file name encoding every parameter of the recipe — including the ID
    /// width: containers written by a `wide-ids` build differ byte-wise (the `.tpg` v2
    /// header records the writer's width), so wide builds use their own cache
    /// namespace while the default width keeps the historical names.
    pub fn cache_file_name(&self) -> String {
        if graph::NodeId::BITS == 64 {
            format!("{}-w64.tpg", self.key())
        } else {
            format!("{}.tpg", self.key())
        }
    }

    fn key(&self) -> String {
        match self {
            GenSpec::Grid2d { rows, cols } => format!("grid2d-{}x{}", rows, cols),
            GenSpec::Grid3d { x, y, z } => format!("grid3d-{}x{}x{}", x, y, z),
            GenSpec::Rgg2d { n, avg_deg, seed } => format!("rgg2d-n{}-d{}-x{}", n, avg_deg, seed),
            GenSpec::Rgg3d { n, avg_deg, seed } => format!("rgg3d-n{}-d{}-x{}", n, avg_deg, seed),
            GenSpec::PowerLawCluster {
                n,
                attach,
                triad_p,
                seed,
            } => format!("plc-n{}-a{}-p{}-x{}", n, attach, triad_p, seed),
            GenSpec::RhgLike {
                n,
                avg_deg,
                gamma,
                seed,
            } => format!("rhg-n{}-d{}-g{}-x{}", n, avg_deg, gamma, seed),
            GenSpec::ErdosRenyi { n, m, seed } => format!("er-n{}-m{}-x{}", n, m, seed),
            GenSpec::Rmat {
                scale,
                avg_deg,
                seed,
            } => format!("rmat-s{}-d{}-x{}", scale, avg_deg, seed),
            GenSpec::Star { n } => format!("star-n{}", n),
            GenSpec::WeightedEdges {
                base,
                max_weight,
                seed,
            } => format!("{}-ew{}-x{}", base.key(), max_weight, seed),
        }
    }

    /// Whether this family can be generated straight to disk with bounded memory.
    pub fn is_streamable(&self) -> bool {
        matches!(
            self,
            GenSpec::Rmat { .. } | GenSpec::Rgg2d { .. } | GenSpec::Rgg3d { .. }
        )
    }

    /// Materialises the instance in memory. Cached runs should prefer
    /// [`InstanceStore::load_csr`].
    pub fn materialize(&self) -> CsrGraph {
        match *self {
            GenSpec::Grid2d { rows, cols } => gen::grid2d(rows, cols),
            GenSpec::Grid3d { x, y, z } => gen::grid3d(x, y, z),
            GenSpec::Rgg2d { n, avg_deg, seed } => gen::rgg2d(n, avg_deg, seed),
            GenSpec::Rgg3d { n, avg_deg, seed } => gen::rgg3d(n, avg_deg, seed),
            GenSpec::PowerLawCluster {
                n,
                attach,
                triad_p,
                seed,
            } => gen::powerlaw_cluster(n, attach, triad_p, seed),
            GenSpec::RhgLike {
                n,
                avg_deg,
                gamma,
                seed,
            } => gen::rhg_like(n, avg_deg, gamma, seed),
            GenSpec::ErdosRenyi { n, m, seed } => gen::erdos_renyi(n, m, seed),
            GenSpec::Rmat {
                scale,
                avg_deg,
                seed,
            } => gen::weblike(scale, avg_deg, seed),
            GenSpec::Star { n } => gen::star(n),
            GenSpec::WeightedEdges {
                ref base,
                max_weight,
                seed,
            } => gen::with_random_edge_weights(&base.materialize(), max_weight, seed),
        }
    }
}

/// A named benchmark instance backed by a [`GenSpec`] recipe.
pub struct InstanceSpec {
    /// Instance name used in report rows.
    pub name: &'static str,
    /// Application-domain class (mirrors the classes of Figure 9/10).
    pub class: &'static str,
    /// The generator recipe.
    pub spec: GenSpec,
}

/// The `.tpg` instance cache (see the module docs).
pub struct InstanceStore {
    root: PathBuf,
}

impl InstanceStore {
    /// Opens the cache at `$TERAPART_INSTANCE_CACHE` or `target/instance-cache`.
    pub fn open_default() -> Result<Self, IoError> {
        let root = std::env::var_os("TERAPART_INSTANCE_CACHE")
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("target/instance-cache"));
        Self::at(root)
    }

    /// Opens (creating if needed) the cache rooted at `root`.
    pub fn at(root: impl Into<PathBuf>) -> Result<Self, IoError> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        Ok(Self { root })
    }

    /// The cache directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Path of the manifest file listing the generated instances.
    pub fn manifest_path(&self) -> PathBuf {
        self.root.join("MANIFEST.tsv")
    }

    /// Resolves a spec to its cached `.tpg` path, generating the container on a miss.
    /// Streamable families are generated with bounded memory straight into the
    /// container; the rest are materialised once and written out.
    pub fn resolve(&self, spec: &GenSpec) -> Result<PathBuf, IoError> {
        let path = self.root.join(spec.cache_file_name());
        if path.exists() {
            return Ok(path);
        }
        let config = CompressionConfig::default();
        // Generate into a process-unique temp name first: a crash never leaves a
        // half-written container under the final key, and two processes racing to
        // generate the same missing instance never interleave writes into one file
        // (the loser's rename simply overwrites the winner's identical container).
        use std::sync::atomic::{AtomicU64, Ordering};
        static PARTIAL_COUNTER: AtomicU64 = AtomicU64::new(0);
        let partial = self.root.join(format!(
            "{}.partial.{}.{}",
            spec.cache_file_name(),
            std::process::id(),
            PARTIAL_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        let summary = match *spec {
            GenSpec::Rmat {
                scale,
                avg_deg,
                seed,
            } => stream_rmat_to_tpg(
                scale,
                avg_deg,
                seed,
                &partial,
                self.root.join("spill"),
                16,
                &config,
            )?,
            GenSpec::Rgg2d { n, avg_deg, seed } => stream_rgg2d_to_tpg(
                n,
                avg_deg,
                seed,
                &partial,
                self.root.join("spill"),
                16,
                &config,
            )?,
            GenSpec::Rgg3d { n, avg_deg, seed } => stream_rgg3d_to_tpg(
                n,
                avg_deg,
                seed,
                &partial,
                self.root.join("spill"),
                16,
                &config,
            )?,
            ref other => write_tpg_from_graph(&other.materialize(), &partial, &config)?,
        };
        std::fs::rename(&partial, &path)?;
        self.append_manifest(spec, summary.n, summary.m, summary.file_bytes)?;
        Ok(path)
    }

    /// Resolves and fully loads an instance as an in-memory CSR graph.
    pub fn load_csr(&self, spec: &GenSpec) -> Result<CsrGraph, IoError> {
        read_tpg(self.resolve(spec)?)
    }

    /// Resolves and opens an instance through the page cache.
    pub fn open_paged(
        &self,
        spec: &GenSpec,
        options: &PagedGraphOptions,
    ) -> Result<PagedGraph, IoError> {
        PagedGraph::open_with_options(self.resolve(spec)?, options)
    }

    /// Size in bytes of the cached container for `spec` (resolving it first).
    pub fn container_bytes(&self, spec: &GenSpec) -> Result<u64, IoError> {
        Ok(std::fs::metadata(self.resolve(spec)?)?.len())
    }

    /// Uncompressed CSR size in bytes of the cached instance, from the header alone.
    pub fn csr_bytes(&self, spec: &GenSpec) -> Result<usize, IoError> {
        Ok(read_tpg_meta(self.resolve(spec)?)?.csr_size_in_bytes())
    }

    fn append_manifest(
        &self,
        spec: &GenSpec,
        n: usize,
        m: usize,
        bytes: u64,
    ) -> Result<(), IoError> {
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.manifest_path())?;
        writeln!(f, "{}\t{}\t{}\t{}", spec.cache_file_name(), n, m, bytes)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph::traits::Graph;

    fn scratch_store(name: &str) -> InstanceStore {
        let dir = std::env::temp_dir().join(format!(
            "terapart_instances_test_{}_{}",
            std::process::id(),
            name
        ));
        std::fs::remove_dir_all(&dir).ok();
        InstanceStore::at(dir).unwrap()
    }

    #[test]
    fn resolve_generates_once_and_hits_after() {
        let store = scratch_store("hits");
        let spec = GenSpec::Rmat {
            scale: 9,
            avg_deg: 6,
            seed: 4,
        };
        let path = store.resolve(&spec).unwrap();
        let modified = std::fs::metadata(&path).unwrap().modified().unwrap();
        let again = store.resolve(&spec).unwrap();
        assert_eq!(path, again);
        assert_eq!(
            std::fs::metadata(&again).unwrap().modified().unwrap(),
            modified,
            "cache hit must not regenerate"
        );
        let manifest = std::fs::read_to_string(store.manifest_path()).unwrap();
        assert_eq!(manifest.lines().count(), 1);
        // Wide builds use their own cache namespace (the containers differ byte-wise).
        let expected = if graph::NodeId::BITS == 64 {
            "rmat-s9-d6-x4-w64.tpg\t"
        } else {
            "rmat-s9-d6-x4.tpg\t"
        };
        assert!(manifest.starts_with(expected));
        std::fs::remove_dir_all(store.root()).ok();
    }

    #[test]
    fn streamed_and_materialized_paths_agree_with_generators() {
        let store = scratch_store("agree");
        // A streamable spec and a materialise-path spec.
        for (spec, reference) in [
            (
                GenSpec::Rmat {
                    scale: 9,
                    avg_deg: 8,
                    seed: 7,
                },
                gen::weblike(9, 8, 7),
            ),
            (
                GenSpec::RhgLike {
                    n: 400,
                    avg_deg: 8,
                    gamma: 3.0,
                    seed: 2,
                },
                gen::rhg_like(400, 8, 3.0, 2),
            ),
        ] {
            let loaded = store.load_csr(&spec).unwrap();
            assert_eq!(loaded.n(), reference.n());
            assert_eq!(loaded.m(), reference.m());
            for u in 0..reference.n() as graph::NodeId {
                assert_eq!(loaded.neighbors_vec(u), reference.neighbors_vec(u));
            }
        }
        std::fs::remove_dir_all(store.root()).ok();
    }

    #[test]
    fn quality_ladder_families_round_trip() {
        let store = scratch_store("ladder");
        // The streamed rgg3d path must agree with the in-memory generator, and the
        // power-law clustered family goes through the materialise path.
        for (spec, reference) in [
            (
                GenSpec::Rgg3d {
                    n: 500,
                    avg_deg: 8,
                    seed: 11,
                },
                gen::rgg3d(500, 8, 11),
            ),
            (
                GenSpec::PowerLawCluster {
                    n: 600,
                    attach: 4,
                    triad_p: 0.5,
                    seed: 3,
                },
                gen::powerlaw_cluster(600, 4, 0.5, 3),
            ),
        ] {
            let loaded = store.load_csr(&spec).unwrap();
            assert_eq!(loaded.n(), reference.n());
            assert_eq!(loaded.m(), reference.m());
            for u in 0..reference.n() as graph::NodeId {
                assert_eq!(loaded.neighbors_vec(u), reference.neighbors_vec(u));
            }
        }
        assert!(GenSpec::Rgg3d {
            n: 500,
            avg_deg: 8,
            seed: 11
        }
        .is_streamable());
        std::fs::remove_dir_all(store.root()).ok();
    }

    #[test]
    fn weighted_specs_round_trip() {
        let store = scratch_store("weighted");
        let spec = GenSpec::Grid2d { rows: 12, cols: 9 }.weighted(17, 5);
        let expected = if graph::NodeId::BITS == 64 {
            "grid2d-12x9-ew17-x5-w64.tpg"
        } else {
            "grid2d-12x9-ew17-x5.tpg"
        };
        assert_eq!(spec.cache_file_name(), expected);
        let loaded = store.load_csr(&spec).unwrap();
        let reference = spec.materialize();
        assert!(loaded.is_edge_weighted());
        assert_eq!(loaded.total_edge_weight(), reference.total_edge_weight());
        std::fs::remove_dir_all(store.root()).ok();
    }

    #[test]
    fn csr_and_container_sizes_are_consistent() {
        let store = scratch_store("sizes");
        let spec = GenSpec::Rgg2d {
            n: 600,
            avg_deg: 10,
            seed: 3,
        };
        let csr_bytes = store.csr_bytes(&spec).unwrap();
        assert_eq!(csr_bytes, spec.materialize().size_in_bytes());
        assert!(store.container_bytes(&spec).unwrap() > 0);
        std::fs::remove_dir_all(store.root()).ok();
    }
}
