//! Experiment harness reproducing the tables and figures of the TeraPart paper.
//!
//! The binaries under `src/bin/` each regenerate one table or figure (see DESIGN.md for
//! the experiment index); this library provides what they share: the scaled-down
//! benchmark instance sets ([`setup`]) and the measurement/aggregation utilities
//! ([`harness`]). Criterion micro-benchmarks of the core algorithms live in `benches/`.

pub mod golden;
pub mod harness;
pub mod instances;
pub mod seed_baseline;
pub mod setup;

pub use golden::{golden_cut, golden_entries, golden_run, GoldenEntry};
pub use harness::{geometric_mean, harmonic_mean, measure_run, performance_profile, Measurement};
pub use instances::{GenSpec, InstanceSpec, InstanceStore};
pub use setup::{
    benchmark_set_a, benchmark_set_b, config_ladder, preset_ladder, quality_families, set_a_specs,
    set_b_specs, Instance, QualityFamily,
};
