//! Frozen snapshots of the seed's hot paths, kept for benchmarking only.
//!
//! The PRs that introduced the flat counting-sort cluster buckets, the reusable
//! `HierarchyScratch` arena, and the parallel scratch-backed initial partitioning
//! replaced these implementations in `terapart`. The benches and `BENCH_pipeline.json`
//! compare the live implementations against these snapshots so the speedup over the
//! pre-change baselines stays measurable across future PRs. Do not "optimise" this
//! module — the allocation behaviour (fresh `Vec<Vec<NodeId>>` buckets, freshly zeroed
//! atomic arrays, a builder-and-hashmap induced subgraph plus full gain recomputation
//! per FM heap push at every bisection node) *is* the baseline.

use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};

use graph::csr::{CsrGraph, CsrGraphBuilder};
use graph::traits::Graph;
use graph::{AtomicNodeId, EdgeId, EdgeWeight, NodeId, NodeWeight};

use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use terapart::coarsening::lp_clustering::Clustering;
use terapart::coarsening::rating_map::SparseRatingMap;
use terapart::dual_counter::DualCounter;
use terapart::partition::{BlockId, Partition};
use terapart::ClusterId;

use rayon::prelude::*;

const BATCH_EDGE_CAPACITY: usize = 4096;

/// Sentinel marking an empty slot.
const EMPTY_KEY: NodeId = NodeId::MAX;

/// Seed version of the fixed-capacity rating map: `clear` memsets the whole capacity
/// and `iter` scans the whole capacity, regardless of how many slots are live. The live
/// implementation replaced both with `O(distinct keys)` touched-slot tracking.
pub struct SeedFixedCapacityHashMap {
    keys: Vec<NodeId>,
    values: Vec<EdgeWeight>,
    len: usize,
    limit: usize,
    mask: usize,
}

impl SeedFixedCapacityHashMap {
    pub fn new(limit: usize) -> Self {
        let capacity = (2 * limit.max(1)).next_power_of_two();
        Self {
            keys: vec![EMPTY_KEY; capacity],
            values: vec![0; capacity],
            len: 0,
            limit: limit.max(1),
            mask: capacity - 1,
        }
    }

    fn slot_of(&self, key: NodeId) -> usize {
        (graph::ids::widen(key).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize & self.mask
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn add(&mut self, key: NodeId, weight: EdgeWeight) -> bool {
        let mut slot = self.slot_of(key);
        loop {
            if self.keys[slot] == key {
                self.values[slot] += weight;
                return true;
            }
            if self.keys[slot] == EMPTY_KEY {
                if self.len >= self.limit {
                    return false;
                }
                self.keys[slot] = key;
                self.values[slot] = weight;
                self.len += 1;
                return true;
            }
            slot = (slot + 1) & self.mask;
        }
    }

    pub fn get(&self, key: NodeId) -> EdgeWeight {
        let mut slot = self.slot_of(key);
        loop {
            if self.keys[slot] == key {
                return self.values[slot];
            }
            if self.keys[slot] == EMPTY_KEY {
                return 0;
            }
            slot = (slot + 1) & self.mask;
        }
    }

    pub fn iter(&self) -> impl Iterator<Item = (NodeId, EdgeWeight)> + '_ {
        self.keys
            .iter()
            .zip(self.values.iter())
            .filter(|&(&k, _)| k != EMPTY_KEY)
            .map(|(&k, &v)| (k, v))
    }

    pub fn clear(&mut self) {
        if self.len > 0 {
            self.keys.fill(EMPTY_KEY);
            self.values.fill(0);
            self.len = 0;
        }
    }
}

/// Seed version of `cluster_buckets`: one heap allocation per coarse vertex.
fn cluster_buckets_seed(
    graph: &impl Graph,
    clustering: &Clustering,
) -> (Vec<ClusterId>, Vec<Vec<NodeId>>) {
    let n = graph.n();
    let mut bucket_of_label: Vec<NodeId> = vec![graph::ids::INVALID_NODE; n];
    let mut leaders: Vec<ClusterId> = Vec::with_capacity(clustering.num_clusters);
    let mut members: Vec<Vec<NodeId>> = Vec::with_capacity(clustering.num_clusters);
    for u in 0..n as NodeId {
        let label = clustering.label[u as usize];
        let bucket = bucket_of_label[label as usize];
        if bucket == graph::ids::INVALID_NODE {
            bucket_of_label[label as usize] = leaders.len() as NodeId;
            leaders.push(label);
            members.push(vec![u]);
        } else {
            members[bucket as usize].push(u);
        }
    }
    (leaders, members)
}

/// Seed version of one-pass contraction: freshly allocated and zeroed atomic arrays on
/// every call, sequential assembly loops, per-vertex sort with a fresh pair buffer.
pub fn seed_contract_one_pass(
    graph: &impl Graph,
    clustering: &Clustering,
    bump_threshold: usize,
) -> (CsrGraph, Vec<NodeId>) {
    let n = graph.n();
    if n == 0 {
        return (graph::CsrGraphBuilder::new(0).build(), Vec::new());
    }
    let (leaders, members) = cluster_buckets_seed(graph, clustering);
    let upper_bound_edges = 2 * graph.m();

    let coarse_edges: Vec<AtomicNodeId> = {
        let mut v = Vec::with_capacity(upper_bound_edges);
        v.resize_with(upper_bound_edges, || AtomicNodeId::new(0));
        v
    };
    let coarse_edge_weights: Vec<AtomicU64> = {
        let mut v = Vec::with_capacity(upper_bound_edges);
        v.resize_with(upper_bound_edges, || AtomicU64::new(0));
        v
    };
    let starts: Vec<AtomicU64> = {
        let mut v = Vec::with_capacity(n);
        v.resize_with(n, || AtomicU64::new(0));
        v
    };
    let degrees: Vec<AtomicU32> = {
        let mut v = Vec::with_capacity(n);
        v.resize_with(n, || AtomicU32::new(0));
        v
    };
    let coarse_node_weights: Vec<AtomicU64> = {
        let mut v = Vec::with_capacity(n);
        v.resize_with(n, || AtomicU64::new(0));
        v
    };
    let remap: Vec<AtomicNodeId> = {
        let mut v = Vec::with_capacity(n);
        v.resize_with(n, || AtomicNodeId::new(graph::ids::INVALID_NODE));
        v
    };
    let dual = DualCounter::new();

    struct Batch {
        vertices: Vec<(ClusterId, NodeWeight, u32)>,
        edges: Vec<(ClusterId, EdgeWeight)>,
    }

    impl Batch {
        fn new() -> Self {
            Self {
                vertices: Vec::new(),
                edges: Vec::with_capacity(BATCH_EDGE_CAPACITY),
            }
        }
        fn is_empty(&self) -> bool {
            self.vertices.is_empty()
        }
    }

    let flush_batch = |batch: &mut Batch| {
        if batch.is_empty() {
            return;
        }
        let (d_prev, s_prev) =
            dual.fetch_add(batch.edges.len() as u64, batch.vertices.len() as u64);
        let mut edge_cursor = d_prev as usize;
        let mut offset_in_edges = 0usize;
        for (i, &(label, weight, len)) in batch.vertices.iter().enumerate() {
            let coarse_id = s_prev as usize + i;
            starts[coarse_id].store(edge_cursor as u64, Ordering::Relaxed);
            degrees[coarse_id].store(len, Ordering::Relaxed);
            coarse_node_weights[coarse_id].store(weight, Ordering::Relaxed);
            remap[label as usize].store(coarse_id as NodeId, Ordering::Relaxed);
            for &(target, w) in &batch.edges[offset_in_edges..offset_in_edges + len as usize] {
                coarse_edges[edge_cursor].store(target, Ordering::Relaxed);
                coarse_edge_weights[edge_cursor].store(w, Ordering::Relaxed);
                edge_cursor += 1;
            }
            offset_in_edges += len as usize;
        }
        batch.vertices.clear();
        batch.edges.clear();
    };

    let cluster_indices: Vec<usize> = (0..leaders.len()).collect();
    let bumped: Vec<usize> = cluster_indices
        .par_chunks(64)
        .map(|chunk| {
            let mut table = SeedFixedCapacityHashMap::new(bump_threshold);
            let mut batch = Batch::new();
            let mut bumped = Vec::new();
            for &idx in chunk {
                let label = leaders[idx];
                table.clear();
                let mut weight: NodeWeight = 0;
                let mut overflow = false;
                for &u in &members[idx] {
                    weight += graph.node_weight(u);
                    graph.for_each_neighbor(u, &mut |v, w| {
                        let target_label = clustering.label[v as usize];
                        if !overflow && target_label != label && !table.add(target_label, w) {
                            overflow = true;
                        }
                    });
                    if overflow {
                        break;
                    }
                }
                if overflow {
                    bumped.push(idx);
                    continue;
                }
                let len = table.len() as u32;
                if batch.edges.len() + len as usize > BATCH_EDGE_CAPACITY && !batch.is_empty() {
                    flush_batch(&mut batch);
                }
                batch.vertices.push((label, weight, len));
                batch.edges.extend(table.iter());
                if batch.edges.len() >= BATCH_EDGE_CAPACITY {
                    flush_batch(&mut batch);
                }
            }
            flush_batch(&mut batch);
            bumped
        })
        .reduce(Vec::new, |mut a, mut b| {
            a.append(&mut b);
            a
        });

    if !bumped.is_empty() {
        let mut map = SparseRatingMap::new(n);
        for &idx in &bumped {
            let label = leaders[idx];
            map.clear();
            let mut weight: NodeWeight = 0;
            for &u in &members[idx] {
                weight += graph.node_weight(u);
                graph.for_each_neighbor(u, &mut |v, w| {
                    let target_label = clustering.label[v as usize];
                    if target_label != label {
                        map.add(target_label, w);
                    }
                });
            }
            let len = map.len();
            let (d_prev, s_prev) = dual.fetch_add(len as u64, 1);
            let coarse_id = s_prev as usize;
            starts[coarse_id].store(d_prev, Ordering::Relaxed);
            degrees[coarse_id].store(len as u32, Ordering::Relaxed);
            coarse_node_weights[coarse_id].store(weight, Ordering::Relaxed);
            remap[label as usize].store(coarse_id as NodeId, Ordering::Relaxed);
            for (i, (target, w)) in map.iter().enumerate() {
                coarse_edges[d_prev as usize + i].store(target, Ordering::Relaxed);
                coarse_edge_weights[d_prev as usize + i].store(w, Ordering::Relaxed);
            }
        }
    }

    let (total_edges, total_vertices) = dual.load();
    let n_coarse = total_vertices as usize;
    let m_half = total_edges as usize;

    let mut xadj: Vec<EdgeId> = Vec::with_capacity(n_coarse + 1);
    for start in starts.iter().take(n_coarse) {
        xadj.push(start.load(Ordering::Relaxed));
    }
    xadj.push(m_half as EdgeId);

    let adjacency: Vec<NodeId> = (0..m_half)
        .into_par_iter()
        .map(|e| {
            let old_label = coarse_edges[e].load(Ordering::Relaxed);
            remap[old_label as usize].load(Ordering::Relaxed)
        })
        .collect();
    let edge_weights: Vec<EdgeWeight> = (0..m_half)
        .map(|e| coarse_edge_weights[e].load(Ordering::Relaxed))
        .collect();
    let node_weights: Vec<NodeWeight> = (0..n_coarse)
        .map(|c| coarse_node_weights[c].load(Ordering::Relaxed))
        .collect();

    let mut adjacency = adjacency;
    let mut edge_weights = edge_weights;
    for c in 0..n_coarse {
        let begin = xadj[c] as usize;
        let end = xadj[c + 1] as usize;
        let mut pairs: Vec<(NodeId, EdgeWeight)> = adjacency[begin..end]
            .iter()
            .copied()
            .zip(edge_weights[begin..end].iter().copied())
            .collect();
        pairs.sort_unstable_by_key(|&(v, _)| v);
        for (i, (v, w)) in pairs.into_iter().enumerate() {
            adjacency[begin + i] = v;
            edge_weights[begin + i] = w;
        }
    }

    let coarse = CsrGraph::from_parts(xadj, adjacency, edge_weights, node_weights);
    let mapping: Vec<NodeId> = (0..n)
        .map(|u| remap[clustering.label[u] as usize].load(Ordering::Relaxed))
        .collect();
    (coarse, mapping)
}

/// Seed version of size-constrained label propagation refinement: every round shuffles
/// and sweeps **all** vertices (no frontier), allocates a fresh visit-order vector per
/// round and a fresh full-capacity-clearing rating map per chunk. Returns the number of
/// moves performed.
pub fn seed_lp_refine(
    graph: &impl Graph,
    partition: &mut Partition,
    rounds: usize,
    seed: u64,
) -> usize {
    let n = graph.n();
    if n == 0 || partition.k() <= 1 {
        return 0;
    }
    let epsilon = partition.epsilon();
    let k = partition.k();
    let max_block_weight = partition.max_block_weight();
    let assignment: Vec<AtomicU32> = partition
        .assignment()
        .iter()
        .map(|&b| AtomicU32::new(b))
        .collect();
    let block_weights: Vec<AtomicU64> = partition
        .block_weights()
        .iter()
        .map(|&w| AtomicU64::new(w))
        .collect();

    let try_move = |u: NodeId, node_weight: NodeWeight, target: BlockId| -> bool {
        let source = assignment[u as usize].load(Ordering::Relaxed);
        if source == target {
            return false;
        }
        let target_weight = &block_weights[target as usize];
        let mut observed = target_weight.load(Ordering::Relaxed);
        loop {
            if observed + node_weight > max_block_weight {
                return false;
            }
            match target_weight.compare_exchange_weak(
                observed,
                observed + node_weight,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => observed = actual,
            }
        }
        block_weights[source as usize].fetch_sub(node_weight, Ordering::Relaxed);
        assignment[u as usize].store(target, Ordering::Relaxed);
        true
    };

    let mut total_moves = 0usize;
    for round in 0..rounds {
        let mut order: Vec<NodeId> = (0..n as NodeId).collect();
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ (round as u64) << 17);
        order.shuffle(&mut rng);
        let moves = AtomicUsize::new(0);
        order.par_chunks(256).for_each(|chunk| {
            let mut ratings = SeedFixedCapacityHashMap::new(k.min(1 + graph.max_degree()));
            for &u in chunk {
                let current = assignment[u as usize].load(Ordering::Relaxed);
                ratings.clear();
                let mut has_external = false;
                graph.for_each_neighbor(u, &mut |v, w| {
                    let block = assignment[v as usize].load(Ordering::Relaxed);
                    // The rating table is keyed by NodeId; block ids (< k) always fit.
                    ratings.add(NodeId::from(block), w);
                    has_external |= block != current;
                });
                if !has_external {
                    continue;
                }
                let node_weight = graph.node_weight(u);
                let current_affinity = ratings.get(NodeId::from(current));
                let mut best: Option<(BlockId, u64)> = None;
                for (block, affinity) in ratings.iter() {
                    // Lossless narrowing: only block ids below k were inserted.
                    let block = block as BlockId;
                    if block == current || affinity <= current_affinity {
                        continue;
                    }
                    let feasible = block_weights[block as usize].load(Ordering::Relaxed)
                        + node_weight
                        <= max_block_weight;
                    if !feasible {
                        continue;
                    }
                    best = match best {
                        None => Some((block, affinity)),
                        Some((_, bw)) if affinity > bw => Some((block, affinity)),
                        other => other,
                    };
                }
                if let Some((target, _)) = best {
                    if try_move(u, node_weight, target) {
                        moves.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        });
        let round_moves = moves.load(Ordering::Relaxed);
        total_moves += round_moves;
        if round_moves == 0 {
            break;
        }
    }

    let final_assignment: Vec<BlockId> = assignment.into_iter().map(|a| a.into_inner()).collect();
    *partition = Partition::from_assignment(graph, k, epsilon, final_assignment);
    total_moves
}

/// Seed version of a 2-way bipartition (`true` = block 1).
struct SeedBipartition {
    side: Vec<bool>,
    weight0: NodeWeight,
    weight1: NodeWeight,
}

impl SeedBipartition {
    fn cut(&self, graph: &impl Graph) -> EdgeWeight {
        let mut cut = 0;
        for u in 0..graph.n() as NodeId {
            graph.for_each_neighbor(u, &mut |v, w| {
                if u < v && self.side[u as usize] != self.side[v as usize] {
                    cut += w;
                }
            });
        }
        cut
    }
}

/// Seed version of greedy graph growing: fresh flag/order vectors and a fresh frontier
/// heap per attempt.
fn seed_greedy_graph_growing(
    graph: &impl Graph,
    target_weight0: NodeWeight,
    seed: u64,
) -> SeedBipartition {
    let n = graph.n();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut in_block0 = vec![false; n];
    let mut assigned = vec![false; n];
    let mut weight0: NodeWeight = 0;
    let mut frontier: BinaryHeap<(EdgeWeight, NodeId)> = BinaryHeap::new();

    let mut order: Vec<NodeId> = (0..n as NodeId).collect();
    order.shuffle(&mut rng);
    let mut next_seed = 0usize;

    while weight0 < target_weight0 {
        let u = match frontier.pop() {
            Some((_, u)) if !assigned[u as usize] => u,
            Some(_) => continue,
            None => {
                let mut restart = None;
                while next_seed < order.len() {
                    let candidate = order[next_seed];
                    next_seed += 1;
                    if !assigned[candidate as usize] {
                        restart = Some(candidate);
                        break;
                    }
                }
                match restart {
                    Some(u) => u,
                    None => break,
                }
            }
        };
        assigned[u as usize] = true;
        in_block0[u as usize] = true;
        weight0 += graph.node_weight(u);
        graph.for_each_neighbor(u, &mut |v, w| {
            if !assigned[v as usize] {
                frontier.push((w, v));
            }
        });
    }

    let side: Vec<bool> = in_block0.iter().map(|&b| !b).collect();
    let total = graph.total_node_weight();
    SeedBipartition {
        side,
        weight0,
        weight1: total - weight0,
    }
}

/// Seed version of one 2-way FM pass: a cloned side vector, fresh lock/stamp vectors,
/// and a **full gain recomputation** (`O(deg)`) for every neighbour pushed to the heap —
/// `O(deg(u) · deg(v))` work per move, the dominant cost on skewed coarsest graphs.
fn seed_fm_bipartition_pass(
    graph: &impl Graph,
    bipartition: &mut SeedBipartition,
    max_weight: [NodeWeight; 2],
) -> EdgeWeight {
    let n = graph.n();
    let gain_of = |u: NodeId, side: &[bool]| -> i64 {
        let mut internal: i64 = 0;
        let mut external: i64 = 0;
        graph.for_each_neighbor(u, &mut |v, w| {
            if side[v as usize] == side[u as usize] {
                internal += w as i64;
            } else {
                external += w as i64;
            }
        });
        external - internal
    };

    let mut side = bipartition.side.clone();
    let mut weights = [bipartition.weight0, bipartition.weight1];
    let mut locked = vec![false; n];
    let mut heap: BinaryHeap<(i64, NodeId, u32)> = BinaryHeap::new();
    let mut stamp = vec![0u32; n];
    for u in 0..n as NodeId {
        heap.push((gain_of(u, &side), u, 0));
    }

    let mut best_improvement: i64 = 0;
    let mut current_improvement: i64 = 0;
    let mut moves: Vec<NodeId> = Vec::new();
    let mut best_prefix = 0usize;

    while let Some((gain, u, s)) = heap.pop() {
        if locked[u as usize] || s != stamp[u as usize] {
            continue;
        }
        let from = side[u as usize] as usize;
        let to = 1 - from;
        let w = graph.node_weight(u);
        if weights[to] + w > max_weight[to] {
            continue;
        }
        locked[u as usize] = true;
        side[u as usize] = !side[u as usize];
        weights[from] -= w;
        weights[to] += w;
        current_improvement += gain;
        moves.push(u);
        if current_improvement > best_improvement {
            best_improvement = current_improvement;
            best_prefix = moves.len();
        }
        graph.for_each_neighbor(u, &mut |v, _| {
            if !locked[v as usize] {
                stamp[v as usize] += 1;
                heap.push((gain_of(v, &side), v, stamp[v as usize]));
            }
        });
        if moves.len() >= n {
            break;
        }
    }

    if best_improvement <= 0 {
        return 0;
    }
    for &u in &moves[best_prefix..] {
        let w = graph.node_weight(u);
        let from = side[u as usize] as usize;
        side[u as usize] = !side[u as usize];
        weights[from] -= w;
        weights[1 - from] += w;
    }
    bipartition.side = side;
    bipartition.weight0 = weights[0];
    bipartition.weight1 = weights[1];
    best_improvement as EdgeWeight
}

fn seed_bipartition(
    graph: &impl Graph,
    target_weight0: NodeWeight,
    max_weight: [NodeWeight; 2],
    fm_passes: usize,
    seed: u64,
) -> SeedBipartition {
    let mut result = seed_greedy_graph_growing(graph, target_weight0, seed);
    for _ in 0..fm_passes {
        if seed_fm_bipartition_pass(graph, &mut result, max_weight) == 0 {
            break;
        }
    }
    result
}

fn seed_best_bipartition(
    sub: &CsrGraph,
    target0: NodeWeight,
    max_weight: [NodeWeight; 2],
    attempts: usize,
    fm_passes: usize,
    seed: u64,
) -> SeedBipartition {
    let mut best: Option<(bool, u64, SeedBipartition)> = None;
    for attempt in 0..attempts.max(1) {
        let attempt_seed = seed ^ (attempt as u64).wrapping_mul(0x9E37_79B9);
        let candidate = seed_bipartition(sub, target0, max_weight, fm_passes, attempt_seed);
        let balanced = candidate.weight0 <= max_weight[0] && candidate.weight1 <= max_weight[1];
        let cut = candidate.cut(sub);
        let better = match &best {
            None => true,
            Some((best_balanced, best_cut, _)) => {
                (balanced && !best_balanced) || (balanced == *best_balanced && cut < *best_cut)
            }
        };
        if better {
            best = Some((balanced, cut, candidate));
        }
    }
    best.expect("at least one bisection attempt").2
}

/// Seed version of induced-subgraph extraction: a fresh `O(n)` global-to-local map per
/// bisection node, and the validating `CsrGraphBuilder` path (hash-map edge dedup plus a
/// full sorted rebuild) instead of direct CSR extraction.
fn seed_induced_subgraph(graph: &CsrGraph, vertices: &[NodeId]) -> (CsrGraph, Vec<NodeId>) {
    let mut local_of = vec![NodeId::MAX; graph.n()];
    for (local, &u) in vertices.iter().enumerate() {
        local_of[u as usize] = local as NodeId;
    }
    let node_weights: Vec<NodeWeight> = vertices.iter().map(|&u| graph.node_weight(u)).collect();
    let mut builder = CsrGraphBuilder::with_node_weights(node_weights);
    for (local, &u) in vertices.iter().enumerate() {
        graph.for_each_neighbor(u, &mut |v, w| {
            let lv = local_of[v as usize];
            if lv != NodeId::MAX && (local as NodeId) < lv {
                builder.add_edge(local as NodeId, lv, w);
            }
        });
    }
    (builder.build(), vertices.to_vec())
}

#[allow(clippy::too_many_arguments)]
fn seed_recurse(
    graph: &CsrGraph,
    vertices: &[NodeId],
    first_block: usize,
    k: usize,
    epsilon: f64,
    attempts: usize,
    fm_passes: usize,
    seed: u64,
    assignment: &mut [BlockId],
) {
    if k == 1 || vertices.is_empty() {
        for &u in vertices {
            assignment[u as usize] = first_block as BlockId;
        }
        return;
    }
    let (sub, original) = seed_induced_subgraph(graph, vertices);
    let total = sub.total_node_weight();
    let k0 = k.div_ceil(2);
    let k1 = k - k0;
    let target0 = (total as f64 * k0 as f64 / k as f64).round() as NodeWeight;
    let slack = 1.0 + epsilon + 0.05;
    let max0 = ((total as f64 * k0 as f64 / k as f64) * slack).ceil() as NodeWeight;
    let max1 = ((total as f64 * k1 as f64 / k as f64) * slack).ceil() as NodeWeight;

    let best = seed_best_bipartition(
        &sub,
        target0,
        [max0.max(1), max1.max(1)],
        attempts,
        fm_passes,
        seed,
    );

    let mut left: Vec<NodeId> = Vec::new();
    let mut right: Vec<NodeId> = Vec::new();
    for (local, &orig) in original.iter().enumerate() {
        if best.side[local] {
            right.push(orig);
        } else {
            left.push(orig);
        }
    }
    seed_recurse(
        graph,
        &left,
        first_block,
        k0,
        epsilon,
        attempts,
        fm_passes,
        seed.wrapping_mul(31).wrapping_add(1),
        assignment,
    );
    seed_recurse(
        graph,
        &right,
        first_block + k0,
        k1,
        epsilon,
        attempts,
        fm_passes,
        seed.wrapping_mul(31).wrapping_add(2),
        assignment,
    );
}

/// Seed version of initial partitioning: **sequential** recursive bisection allocating a
/// fresh induced subgraph (via the builder), a fresh `O(n)` local map, fresh left/right
/// vertex lists and fresh per-attempt buffers at every node of the bisection tree. The
/// live implementation replaced all of this with the task-parallel, scratch-backed
/// engine in `terapart::initial`.
pub fn seed_initial_partition(
    graph: &CsrGraph,
    k: usize,
    epsilon: f64,
    attempts: usize,
    fm_passes: usize,
    seed: u64,
) -> Partition {
    assert!(k >= 1);
    let n = graph.n();
    let mut assignment: Vec<BlockId> = vec![0; n];
    if k > 1 && n > 0 {
        let vertices: Vec<NodeId> = (0..n as NodeId).collect();
        seed_recurse(
            graph,
            &vertices,
            0,
            k,
            epsilon,
            attempts,
            fm_passes,
            seed,
            &mut assignment,
        );
    }
    let mut partition = Partition::from_assignment(graph, k, epsilon, assignment);
    let cut = partition.edge_cut_on(graph);
    partition.set_cached_cut(cut);
    partition
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph::gen;
    use terapart::context::{CoarseningConfig, ContractionAlgorithm};

    #[test]
    fn seed_baseline_initial_partition_is_in_the_live_quality_class() {
        let g = gen::rgg2d(1_500, 10, 9);
        let (k, epsilon) = (8, 0.05);
        let config = terapart::InitialPartitioningConfig::default();
        let seed_result =
            seed_initial_partition(&g, k, epsilon, config.attempts, config.fm_passes, 3);
        let live = terapart::initial_partition(&g, k, epsilon, &config, 3);
        assert!(seed_result.is_complete() && live.is_complete());
        let ratio = live.edge_cut_on(&g).max(1) as f64 / seed_result.edge_cut_on(&g).max(1) as f64;
        assert!(
            (0.6..1.4).contains(&ratio),
            "live cut {} too far from seed cut {}",
            live.edge_cut_on(&g),
            seed_result.edge_cut_on(&g)
        );
    }

    #[test]
    fn seed_baseline_matches_live_contraction() {
        let g = gen::rgg2d(2_000, 10, 3);
        let config = CoarseningConfig::default();
        let clustering = terapart::coarsening::cluster(&g, &config, 16, 5);
        let (seed_coarse, seed_mapping) = seed_contract_one_pass(&g, &clustering, 256);
        let live =
            terapart::coarsening::contract(&g, &clustering, ContractionAlgorithm::OnePass, 256);
        assert_eq!(seed_coarse.n(), live.coarse.n());
        assert_eq!(seed_coarse.m(), live.coarse.m());
        assert_eq!(
            seed_coarse.total_edge_weight(),
            live.coarse.total_edge_weight()
        );
        assert_eq!(seed_mapping.len(), live.mapping.len());
    }
}
