//! Frozen snapshot of the seed's contraction hot path, kept for benchmarking only.
//!
//! The PR that introduced the flat counting-sort cluster buckets and the reusable
//! `HierarchyScratch` arena replaced this implementation in `terapart`. The benches and
//! `BENCH_pipeline.json` compare the live implementation against this snapshot so the
//! speedup over the pre-change baseline stays measurable across future PRs. Do not
//! "optimise" this module — its allocation behaviour (a fresh `Vec<Vec<NodeId>>` bucket
//! structure and freshly zeroed atomic arrays per call) *is* the baseline.

use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};

use graph::csr::CsrGraph;
use graph::traits::Graph;
use graph::{EdgeId, EdgeWeight, NodeId, NodeWeight};

use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use terapart::coarsening::lp_clustering::Clustering;
use terapart::coarsening::rating_map::SparseRatingMap;
use terapart::dual_counter::DualCounter;
use terapart::partition::{BlockId, Partition};
use terapart::ClusterId;

use rayon::prelude::*;

const BATCH_EDGE_CAPACITY: usize = 4096;

/// Sentinel marking an empty slot.
const EMPTY_KEY: NodeId = NodeId::MAX;

/// Seed version of the fixed-capacity rating map: `clear` memsets the whole capacity
/// and `iter` scans the whole capacity, regardless of how many slots are live. The live
/// implementation replaced both with `O(distinct keys)` touched-slot tracking.
pub struct SeedFixedCapacityHashMap {
    keys: Vec<NodeId>,
    values: Vec<EdgeWeight>,
    len: usize,
    limit: usize,
    mask: usize,
}

impl SeedFixedCapacityHashMap {
    pub fn new(limit: usize) -> Self {
        let capacity = (2 * limit.max(1)).next_power_of_two();
        Self {
            keys: vec![EMPTY_KEY; capacity],
            values: vec![0; capacity],
            len: 0,
            limit: limit.max(1),
            mask: capacity - 1,
        }
    }

    fn slot_of(&self, key: NodeId) -> usize {
        ((key as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize & self.mask
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn add(&mut self, key: NodeId, weight: EdgeWeight) -> bool {
        let mut slot = self.slot_of(key);
        loop {
            if self.keys[slot] == key {
                self.values[slot] += weight;
                return true;
            }
            if self.keys[slot] == EMPTY_KEY {
                if self.len >= self.limit {
                    return false;
                }
                self.keys[slot] = key;
                self.values[slot] = weight;
                self.len += 1;
                return true;
            }
            slot = (slot + 1) & self.mask;
        }
    }

    pub fn get(&self, key: NodeId) -> EdgeWeight {
        let mut slot = self.slot_of(key);
        loop {
            if self.keys[slot] == key {
                return self.values[slot];
            }
            if self.keys[slot] == EMPTY_KEY {
                return 0;
            }
            slot = (slot + 1) & self.mask;
        }
    }

    pub fn iter(&self) -> impl Iterator<Item = (NodeId, EdgeWeight)> + '_ {
        self.keys
            .iter()
            .zip(self.values.iter())
            .filter(|&(&k, _)| k != EMPTY_KEY)
            .map(|(&k, &v)| (k, v))
    }

    pub fn clear(&mut self) {
        if self.len > 0 {
            self.keys.fill(EMPTY_KEY);
            self.values.fill(0);
            self.len = 0;
        }
    }
}

/// Seed version of `cluster_buckets`: one heap allocation per coarse vertex.
fn cluster_buckets_seed(
    graph: &impl Graph,
    clustering: &Clustering,
) -> (Vec<ClusterId>, Vec<Vec<NodeId>>) {
    let n = graph.n();
    let mut bucket_of_label: Vec<u32> = vec![u32::MAX; n];
    let mut leaders: Vec<ClusterId> = Vec::with_capacity(clustering.num_clusters);
    let mut members: Vec<Vec<NodeId>> = Vec::with_capacity(clustering.num_clusters);
    for u in 0..n as NodeId {
        let label = clustering.label[u as usize];
        let bucket = bucket_of_label[label as usize];
        if bucket == u32::MAX {
            bucket_of_label[label as usize] = leaders.len() as u32;
            leaders.push(label);
            members.push(vec![u]);
        } else {
            members[bucket as usize].push(u);
        }
    }
    (leaders, members)
}

/// Seed version of one-pass contraction: freshly allocated and zeroed atomic arrays on
/// every call, sequential assembly loops, per-vertex sort with a fresh pair buffer.
pub fn seed_contract_one_pass(
    graph: &impl Graph,
    clustering: &Clustering,
    bump_threshold: usize,
) -> (CsrGraph, Vec<NodeId>) {
    let n = graph.n();
    if n == 0 {
        return (graph::CsrGraphBuilder::new(0).build(), Vec::new());
    }
    let (leaders, members) = cluster_buckets_seed(graph, clustering);
    let upper_bound_edges = 2 * graph.m();

    let coarse_edges: Vec<AtomicU32> = {
        let mut v = Vec::with_capacity(upper_bound_edges);
        v.resize_with(upper_bound_edges, || AtomicU32::new(0));
        v
    };
    let coarse_edge_weights: Vec<AtomicU64> = {
        let mut v = Vec::with_capacity(upper_bound_edges);
        v.resize_with(upper_bound_edges, || AtomicU64::new(0));
        v
    };
    let starts: Vec<AtomicU64> = {
        let mut v = Vec::with_capacity(n);
        v.resize_with(n, || AtomicU64::new(0));
        v
    };
    let degrees: Vec<AtomicU32> = {
        let mut v = Vec::with_capacity(n);
        v.resize_with(n, || AtomicU32::new(0));
        v
    };
    let coarse_node_weights: Vec<AtomicU64> = {
        let mut v = Vec::with_capacity(n);
        v.resize_with(n, || AtomicU64::new(0));
        v
    };
    let remap: Vec<AtomicU32> = {
        let mut v = Vec::with_capacity(n);
        v.resize_with(n, || AtomicU32::new(NodeId::MAX));
        v
    };
    let dual = DualCounter::new();

    struct Batch {
        vertices: Vec<(ClusterId, NodeWeight, u32)>,
        edges: Vec<(ClusterId, EdgeWeight)>,
    }

    impl Batch {
        fn new() -> Self {
            Self {
                vertices: Vec::new(),
                edges: Vec::with_capacity(BATCH_EDGE_CAPACITY),
            }
        }
        fn is_empty(&self) -> bool {
            self.vertices.is_empty()
        }
    }

    let flush_batch = |batch: &mut Batch| {
        if batch.is_empty() {
            return;
        }
        let (d_prev, s_prev) =
            dual.fetch_add(batch.edges.len() as u64, batch.vertices.len() as u64);
        let mut edge_cursor = d_prev as usize;
        let mut offset_in_edges = 0usize;
        for (i, &(label, weight, len)) in batch.vertices.iter().enumerate() {
            let coarse_id = s_prev as usize + i;
            starts[coarse_id].store(edge_cursor as u64, Ordering::Relaxed);
            degrees[coarse_id].store(len, Ordering::Relaxed);
            coarse_node_weights[coarse_id].store(weight, Ordering::Relaxed);
            remap[label as usize].store(coarse_id as u32, Ordering::Relaxed);
            for &(target, w) in &batch.edges[offset_in_edges..offset_in_edges + len as usize] {
                coarse_edges[edge_cursor].store(target, Ordering::Relaxed);
                coarse_edge_weights[edge_cursor].store(w, Ordering::Relaxed);
                edge_cursor += 1;
            }
            offset_in_edges += len as usize;
        }
        batch.vertices.clear();
        batch.edges.clear();
    };

    let cluster_indices: Vec<usize> = (0..leaders.len()).collect();
    let bumped: Vec<usize> = cluster_indices
        .par_chunks(64)
        .map(|chunk| {
            let mut table = SeedFixedCapacityHashMap::new(bump_threshold);
            let mut batch = Batch::new();
            let mut bumped = Vec::new();
            for &idx in chunk {
                let label = leaders[idx];
                table.clear();
                let mut weight: NodeWeight = 0;
                let mut overflow = false;
                for &u in &members[idx] {
                    weight += graph.node_weight(u);
                    graph.for_each_neighbor(u, &mut |v, w| {
                        let target_label = clustering.label[v as usize];
                        if !overflow && target_label != label && !table.add(target_label, w) {
                            overflow = true;
                        }
                    });
                    if overflow {
                        break;
                    }
                }
                if overflow {
                    bumped.push(idx);
                    continue;
                }
                let len = table.len() as u32;
                if batch.edges.len() + len as usize > BATCH_EDGE_CAPACITY && !batch.is_empty() {
                    flush_batch(&mut batch);
                }
                batch.vertices.push((label, weight, len));
                batch.edges.extend(table.iter());
                if batch.edges.len() >= BATCH_EDGE_CAPACITY {
                    flush_batch(&mut batch);
                }
            }
            flush_batch(&mut batch);
            bumped
        })
        .reduce(Vec::new, |mut a, mut b| {
            a.append(&mut b);
            a
        });

    if !bumped.is_empty() {
        let mut map = SparseRatingMap::new(n);
        for &idx in &bumped {
            let label = leaders[idx];
            map.clear();
            let mut weight: NodeWeight = 0;
            for &u in &members[idx] {
                weight += graph.node_weight(u);
                graph.for_each_neighbor(u, &mut |v, w| {
                    let target_label = clustering.label[v as usize];
                    if target_label != label {
                        map.add(target_label, w);
                    }
                });
            }
            let len = map.len();
            let (d_prev, s_prev) = dual.fetch_add(len as u64, 1);
            let coarse_id = s_prev as usize;
            starts[coarse_id].store(d_prev, Ordering::Relaxed);
            degrees[coarse_id].store(len as u32, Ordering::Relaxed);
            coarse_node_weights[coarse_id].store(weight, Ordering::Relaxed);
            remap[label as usize].store(coarse_id as u32, Ordering::Relaxed);
            for (i, (target, w)) in map.iter().enumerate() {
                coarse_edges[d_prev as usize + i].store(target, Ordering::Relaxed);
                coarse_edge_weights[d_prev as usize + i].store(w, Ordering::Relaxed);
            }
        }
    }

    let (total_edges, total_vertices) = dual.load();
    let n_coarse = total_vertices as usize;
    let m_half = total_edges as usize;

    let mut xadj: Vec<EdgeId> = Vec::with_capacity(n_coarse + 1);
    for start in starts.iter().take(n_coarse) {
        xadj.push(start.load(Ordering::Relaxed));
    }
    xadj.push(m_half as EdgeId);

    let adjacency: Vec<NodeId> = (0..m_half)
        .into_par_iter()
        .map(|e| {
            let old_label = coarse_edges[e].load(Ordering::Relaxed);
            remap[old_label as usize].load(Ordering::Relaxed)
        })
        .collect();
    let edge_weights: Vec<EdgeWeight> = (0..m_half)
        .map(|e| coarse_edge_weights[e].load(Ordering::Relaxed))
        .collect();
    let node_weights: Vec<NodeWeight> = (0..n_coarse)
        .map(|c| coarse_node_weights[c].load(Ordering::Relaxed))
        .collect();

    let mut adjacency = adjacency;
    let mut edge_weights = edge_weights;
    for c in 0..n_coarse {
        let begin = xadj[c] as usize;
        let end = xadj[c + 1] as usize;
        let mut pairs: Vec<(NodeId, EdgeWeight)> = adjacency[begin..end]
            .iter()
            .copied()
            .zip(edge_weights[begin..end].iter().copied())
            .collect();
        pairs.sort_unstable_by_key(|&(v, _)| v);
        for (i, (v, w)) in pairs.into_iter().enumerate() {
            adjacency[begin + i] = v;
            edge_weights[begin + i] = w;
        }
    }

    let coarse = CsrGraph::from_parts(xadj, adjacency, edge_weights, node_weights);
    let mapping: Vec<NodeId> = (0..n)
        .map(|u| remap[clustering.label[u] as usize].load(Ordering::Relaxed))
        .collect();
    (coarse, mapping)
}

/// Seed version of size-constrained label propagation refinement: every round shuffles
/// and sweeps **all** vertices (no frontier), allocates a fresh visit-order vector per
/// round and a fresh full-capacity-clearing rating map per chunk. Returns the number of
/// moves performed.
pub fn seed_lp_refine(
    graph: &impl Graph,
    partition: &mut Partition,
    rounds: usize,
    seed: u64,
) -> usize {
    let n = graph.n();
    if n == 0 || partition.k() <= 1 {
        return 0;
    }
    let epsilon = partition.epsilon();
    let k = partition.k();
    let max_block_weight = partition.max_block_weight();
    let assignment: Vec<AtomicU32> = partition
        .assignment()
        .iter()
        .map(|&b| AtomicU32::new(b))
        .collect();
    let block_weights: Vec<AtomicU64> = partition
        .block_weights()
        .iter()
        .map(|&w| AtomicU64::new(w))
        .collect();

    let try_move = |u: NodeId, node_weight: NodeWeight, target: BlockId| -> bool {
        let source = assignment[u as usize].load(Ordering::Relaxed);
        if source == target {
            return false;
        }
        let target_weight = &block_weights[target as usize];
        let mut observed = target_weight.load(Ordering::Relaxed);
        loop {
            if observed + node_weight > max_block_weight {
                return false;
            }
            match target_weight.compare_exchange_weak(
                observed,
                observed + node_weight,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => observed = actual,
            }
        }
        block_weights[source as usize].fetch_sub(node_weight, Ordering::Relaxed);
        assignment[u as usize].store(target, Ordering::Relaxed);
        true
    };

    let mut total_moves = 0usize;
    for round in 0..rounds {
        let mut order: Vec<NodeId> = (0..n as NodeId).collect();
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ (round as u64) << 17);
        order.shuffle(&mut rng);
        let moves = AtomicUsize::new(0);
        order.par_chunks(256).for_each(|chunk| {
            let mut ratings = SeedFixedCapacityHashMap::new(k.min(1 + graph.max_degree()));
            for &u in chunk {
                let current = assignment[u as usize].load(Ordering::Relaxed);
                ratings.clear();
                let mut has_external = false;
                graph.for_each_neighbor(u, &mut |v, w| {
                    let block = assignment[v as usize].load(Ordering::Relaxed);
                    ratings.add(block, w);
                    has_external |= block != current;
                });
                if !has_external {
                    continue;
                }
                let node_weight = graph.node_weight(u);
                let current_affinity = ratings.get(current);
                let mut best: Option<(BlockId, u64)> = None;
                for (block, affinity) in ratings.iter() {
                    if block == current || affinity <= current_affinity {
                        continue;
                    }
                    let feasible = block_weights[block as usize].load(Ordering::Relaxed)
                        + node_weight
                        <= max_block_weight;
                    if !feasible {
                        continue;
                    }
                    best = match best {
                        None => Some((block, affinity)),
                        Some((_, bw)) if affinity > bw => Some((block, affinity)),
                        other => other,
                    };
                }
                if let Some((target, _)) = best {
                    if try_move(u, node_weight, target) {
                        moves.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        });
        let round_moves = moves.load(Ordering::Relaxed);
        total_moves += round_moves;
        if round_moves == 0 {
            break;
        }
    }

    let final_assignment: Vec<BlockId> = assignment.into_iter().map(|a| a.into_inner()).collect();
    *partition = Partition::from_assignment(graph, k, epsilon, final_assignment);
    total_moves
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph::gen;
    use terapart::context::{CoarseningConfig, ContractionAlgorithm};

    #[test]
    fn seed_baseline_matches_live_contraction() {
        let g = gen::rgg2d(2_000, 10, 3);
        let config = CoarseningConfig::default();
        let clustering = terapart::coarsening::cluster(&g, &config, 16, 5);
        let (seed_coarse, seed_mapping) = seed_contract_one_pass(&g, &clustering, 256);
        let live =
            terapart::coarsening::contract(&g, &clustering, ContractionAlgorithm::OnePass, 256);
        assert_eq!(seed_coarse.n(), live.coarse.n());
        assert_eq!(seed_coarse.m(), live.coarse.m());
        assert_eq!(
            seed_coarse.total_edge_weight(),
            live.coarse.total_edge_weight()
        );
        assert_eq!(seed_mapping.len(), live.mapping.len());
    }
}
