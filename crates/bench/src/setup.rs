//! Benchmark instance sets (scaled-down stand-ins for the paper's Sets A and B).
//!
//! Set A in the paper contains 72 graphs from several application domains with 5.4M–1.8B
//! edges; Set B contains five huge web crawls. Neither fits this environment, so the
//! sets are reproduced *structurally*: a mix of mesh-like, geometric, power-law, random,
//! web-like and weighted instances whose sizes are chosen so every experiment binary
//! finishes in seconds. See DESIGN.md for the substitution rationale.
//!
//! Each set is defined once as [`InstanceSpec`] recipes ([`set_a_specs`] /
//! [`set_b_specs`]); experiment binaries resolve them through the on-disk
//! [`InstanceStore`](crate::instances::InstanceStore) cache, while
//! [`benchmark_set_a`] / [`benchmark_set_b`] materialise the identical graphs in
//! memory for tests and quick runs.

use graph::csr::CsrGraph;
use terapart::{PartitionerConfig, Preset};

use crate::instances::{GenSpec, InstanceSpec};

/// A named benchmark instance.
pub struct Instance {
    /// Instance name used in report rows.
    pub name: &'static str,
    /// Application-domain class (mirrors the classes of Figure 9/10).
    pub class: &'static str,
    /// The graph.
    pub graph: CsrGraph,
}

/// The recipes of the scaled-down Benchmark Set A: diverse medium-sized instances.
pub fn set_a_specs() -> Vec<InstanceSpec> {
    vec![
        InstanceSpec {
            name: "grid-64x64",
            class: "finite-element",
            spec: GenSpec::Grid2d { rows: 64, cols: 64 },
        },
        InstanceSpec {
            name: "grid3d-12",
            class: "finite-element",
            spec: GenSpec::Grid3d {
                x: 12,
                y: 12,
                z: 12,
            },
        },
        InstanceSpec {
            name: "rgg2d-4k",
            class: "geometric",
            spec: GenSpec::Rgg2d {
                n: 4_000,
                avg_deg: 12,
                seed: 11,
            },
        },
        InstanceSpec {
            name: "rgg2d-8k",
            class: "geometric",
            spec: GenSpec::Rgg2d {
                n: 8_000,
                avg_deg: 16,
                seed: 12,
            },
        },
        InstanceSpec {
            name: "rhg-4k",
            class: "social",
            spec: GenSpec::RhgLike {
                n: 4_000,
                avg_deg: 10,
                gamma: 3.0,
                seed: 13,
            },
        },
        InstanceSpec {
            name: "rhg-8k",
            class: "social",
            spec: GenSpec::RhgLike {
                n: 8_000,
                avg_deg: 12,
                gamma: 2.6,
                seed: 14,
            },
        },
        InstanceSpec {
            name: "er-4k",
            class: "random",
            spec: GenSpec::ErdosRenyi {
                n: 4_000,
                m: 24_000,
                seed: 15,
            },
        },
        InstanceSpec {
            name: "rmat-12",
            class: "web",
            spec: GenSpec::Rmat {
                scale: 12,
                avg_deg: 10,
                seed: 16,
            },
        },
        InstanceSpec {
            name: "rmat-13",
            class: "web",
            spec: GenSpec::Rmat {
                scale: 13,
                avg_deg: 8,
                seed: 17,
            },
        },
        InstanceSpec {
            name: "weighted-grid",
            class: "text-compression",
            spec: GenSpec::Grid2d { rows: 48, cols: 48 }.weighted(40, 18),
        },
        InstanceSpec {
            name: "weighted-rhg",
            class: "text-compression",
            spec: GenSpec::RhgLike {
                n: 3_000,
                avg_deg: 10,
                gamma: 3.0,
                seed: 19,
            }
            .weighted(20, 20),
        },
        InstanceSpec {
            name: "star-5k",
            class: "irregular",
            spec: GenSpec::Star { n: 5_000 },
        },
    ]
}

/// The recipes of the scaled-down Benchmark Set B: "huge" web-like instances (relative
/// to Set A).
pub fn set_b_specs() -> Vec<InstanceSpec> {
    vec![
        InstanceSpec {
            name: "gsh-like",
            class: "web-huge",
            spec: GenSpec::Rmat {
                scale: 14,
                avg_deg: 12,
                seed: 31,
            },
        },
        InstanceSpec {
            name: "clueweb-like",
            class: "web-huge",
            spec: GenSpec::Rmat {
                scale: 14,
                avg_deg: 16,
                seed: 32,
            },
        },
        InstanceSpec {
            name: "uk-like",
            class: "web-huge",
            spec: GenSpec::Rgg2d {
                n: 20_000,
                avg_deg: 24,
                seed: 33,
            },
        },
        InstanceSpec {
            name: "eu-like",
            class: "web-huge",
            spec: GenSpec::Rmat {
                scale: 15,
                avg_deg: 12,
                seed: 34,
            },
        },
        InstanceSpec {
            name: "hyperlink-like",
            class: "web-huge",
            spec: GenSpec::RhgLike {
                n: 24_000,
                avg_deg: 20,
                gamma: 2.8,
                seed: 35,
            },
        },
    ]
}

/// One instance family of the quality ladder: a named class with rungs of increasing
/// size, all sharing one generator family.
pub struct QualityFamily {
    /// Family name used in `BENCH_quality.json` (e.g. `"web"`).
    pub family: &'static str,
    /// The rungs, smallest first. The first rung is the smoke rung.
    pub rungs: Vec<InstanceSpec>,
}

/// The instance ladder of the quality sweep: five generator families — mesh,
/// geometric (2D and 3D), power-law clustered, web (R-MAT up to scale 18) and
/// social — each with a small smoke rung first and larger rungs after. Streamable
/// families (rgg2d, rgg3d, rmat) go through the bounded-memory `.tpg` path of the
/// [`InstanceStore`](crate::instances::InstanceStore), so the big web rungs never
/// materialise their adjacency during generation.
pub fn quality_families() -> Vec<QualityFamily> {
    vec![
        QualityFamily {
            family: "mesh",
            rungs: vec![
                InstanceSpec {
                    name: "grid3d-16",
                    class: "mesh",
                    spec: GenSpec::Grid3d {
                        x: 16,
                        y: 16,
                        z: 16,
                    },
                },
                InstanceSpec {
                    name: "grid3d-24",
                    class: "mesh",
                    spec: GenSpec::Grid3d {
                        x: 24,
                        y: 24,
                        z: 24,
                    },
                },
            ],
        },
        QualityFamily {
            family: "geometric",
            rungs: vec![
                InstanceSpec {
                    name: "rgg2d-6k",
                    class: "geometric",
                    spec: GenSpec::Rgg2d {
                        n: 6_000,
                        avg_deg: 12,
                        seed: 41,
                    },
                },
                InstanceSpec {
                    name: "rgg3d-10k",
                    class: "geometric",
                    spec: GenSpec::Rgg3d {
                        n: 10_000,
                        avg_deg: 14,
                        seed: 42,
                    },
                },
            ],
        },
        QualityFamily {
            family: "powerlaw-cluster",
            rungs: vec![
                InstanceSpec {
                    name: "plc-6k",
                    class: "social",
                    spec: GenSpec::PowerLawCluster {
                        n: 6_000,
                        attach: 6,
                        triad_p: 0.4,
                        seed: 43,
                    },
                },
                InstanceSpec {
                    name: "plc-12k",
                    class: "social",
                    spec: GenSpec::PowerLawCluster {
                        n: 12_000,
                        attach: 8,
                        triad_p: 0.5,
                        seed: 44,
                    },
                },
            ],
        },
        QualityFamily {
            family: "web",
            rungs: vec![
                InstanceSpec {
                    name: "rmat-14",
                    class: "web",
                    spec: GenSpec::Rmat {
                        scale: 14,
                        avg_deg: 8,
                        seed: 45,
                    },
                },
                InstanceSpec {
                    name: "rmat-16",
                    class: "web",
                    spec: GenSpec::Rmat {
                        scale: 16,
                        avg_deg: 8,
                        seed: 46,
                    },
                },
                InstanceSpec {
                    name: "rmat-18",
                    class: "web",
                    spec: GenSpec::Rmat {
                        scale: 18,
                        avg_deg: 8,
                        seed: 47,
                    },
                },
            ],
        },
        QualityFamily {
            family: "social",
            rungs: vec![
                InstanceSpec {
                    name: "rhg-6k",
                    class: "social",
                    spec: GenSpec::RhgLike {
                        n: 6_000,
                        avg_deg: 10,
                        gamma: 2.8,
                        seed: 48,
                    },
                },
                InstanceSpec {
                    name: "rhg-16k",
                    class: "social",
                    spec: GenSpec::RhgLike {
                        n: 16_000,
                        avg_deg: 12,
                        gamma: 2.6,
                        seed: 49,
                    },
                },
            ],
        },
    ]
}

/// The preset ladder of the quality sweep: every [`Preset`] with its configuration at
/// the given `k`, in speed order (fastest first).
pub fn preset_ladder(k: usize) -> Vec<(&'static str, PartitionerConfig)> {
    Preset::ALL
        .iter()
        .map(|p| (p.name(), PartitionerConfig::preset(*p, k)))
        .collect()
}

fn materialize(specs: Vec<InstanceSpec>) -> Vec<Instance> {
    specs
        .into_iter()
        .map(|s| Instance {
            name: s.name,
            class: s.class,
            graph: s.spec.materialize(),
        })
        .collect()
}

/// The scaled-down Benchmark Set A, materialised in memory.
pub fn benchmark_set_a() -> Vec<Instance> {
    materialize(set_a_specs())
}

/// The scaled-down Benchmark Set B, materialised in memory.
pub fn benchmark_set_b() -> Vec<Instance> {
    materialize(set_b_specs())
}

/// The configuration ladder of Figures 1, 4 and 6: the KaMinPar baseline with the
/// TeraPart optimizations enabled one after another.
pub fn config_ladder(k: usize) -> Vec<(&'static str, PartitionerConfig)> {
    vec![
        ("KaMinPar", PartitionerConfig::kaminpar(k)),
        ("Two-Phase LP", PartitionerConfig::kaminpar_two_phase_lp(k)),
        (
            "Graph Compression",
            PartitionerConfig::kaminpar_compressed(k),
        ),
        (
            "One-Pass Contraction (TeraPart)",
            PartitionerConfig::terapart(k),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph::traits::Graph;

    #[test]
    fn set_a_is_diverse_and_nontrivial() {
        let set = benchmark_set_a();
        assert!(set.len() >= 10);
        let classes: std::collections::HashSet<_> = set.iter().map(|i| i.class).collect();
        assert!(classes.len() >= 5, "need several application domains");
        for instance in &set {
            assert!(instance.graph.m() > 1_000, "{} too small", instance.name);
        }
        assert!(set.iter().any(|i| i.graph.is_edge_weighted()));
    }

    #[test]
    fn set_b_graphs_are_larger_than_set_a_median() {
        let a = benchmark_set_a();
        let b = benchmark_set_b();
        let mut a_sizes: Vec<usize> = a.iter().map(|i| i.graph.m()).collect();
        a_sizes.sort_unstable();
        let median_a = a_sizes[a_sizes.len() / 2];
        for instance in &b {
            assert!(
                instance.graph.m() > median_a,
                "{} not huge enough",
                instance.name
            );
        }
    }

    #[test]
    fn quality_ladder_covers_enough_families_and_presets() {
        let families = quality_families();
        assert!(families.len() >= 4, "quality sweep needs >= 4 families");
        for family in &families {
            assert!(!family.rungs.is_empty(), "{} has no rungs", family.family);
        }
        assert!(
            families.iter().any(|f| f
                .rungs
                .iter()
                .any(|r| matches!(r.spec, GenSpec::Rmat { scale: 18, .. }))),
            "web family must reach rmat-18"
        );
        let ladder = preset_ladder(16);
        assert_eq!(ladder.len(), 3);
        assert_eq!(ladder[0].0, "fast");
        assert_eq!(ladder[2].0, "strong");
    }

    #[test]
    fn config_ladder_has_four_steps_in_paper_order() {
        let ladder = config_ladder(8);
        assert_eq!(ladder.len(), 4);
        assert_eq!(ladder[0].0, "KaMinPar");
        assert!(ladder[3].0.contains("TeraPart"));
        assert!(!ladder[0].1.use_compression);
        assert!(ladder[3].1.use_compression);
    }
}
