//! Benchmark instance sets (scaled-down stand-ins for the paper's Sets A and B).
//!
//! Set A in the paper contains 72 graphs from several application domains with 5.4M–1.8B
//! edges; Set B contains five huge web crawls. Neither fits this environment, so the
//! sets are reproduced *structurally*: a mix of mesh-like, geometric, power-law, random,
//! web-like and weighted instances whose sizes are chosen so every experiment binary
//! finishes in seconds. See DESIGN.md for the substitution rationale.

use graph::csr::CsrGraph;
use graph::gen;
use terapart::PartitionerConfig;

/// A named benchmark instance.
pub struct Instance {
    /// Instance name used in report rows.
    pub name: &'static str,
    /// Application-domain class (mirrors the classes of Figure 9/10).
    pub class: &'static str,
    /// The graph.
    pub graph: CsrGraph,
}

/// The scaled-down Benchmark Set A: diverse medium-sized instances.
pub fn benchmark_set_a() -> Vec<Instance> {
    vec![
        Instance {
            name: "grid-64x64",
            class: "finite-element",
            graph: gen::grid2d(64, 64),
        },
        Instance {
            name: "grid3d-12",
            class: "finite-element",
            graph: gen::grid3d(12, 12, 12),
        },
        Instance {
            name: "rgg2d-4k",
            class: "geometric",
            graph: gen::rgg2d(4_000, 12, 11),
        },
        Instance {
            name: "rgg2d-8k",
            class: "geometric",
            graph: gen::rgg2d(8_000, 16, 12),
        },
        Instance {
            name: "rhg-4k",
            class: "social",
            graph: gen::rhg_like(4_000, 10, 3.0, 13),
        },
        Instance {
            name: "rhg-8k",
            class: "social",
            graph: gen::rhg_like(8_000, 12, 2.6, 14),
        },
        Instance {
            name: "er-4k",
            class: "random",
            graph: gen::erdos_renyi(4_000, 24_000, 15),
        },
        Instance {
            name: "rmat-12",
            class: "web",
            graph: gen::weblike(12, 10, 16),
        },
        Instance {
            name: "rmat-13",
            class: "web",
            graph: gen::weblike(13, 8, 17),
        },
        Instance {
            name: "weighted-grid",
            class: "text-compression",
            graph: gen::with_random_edge_weights(&gen::grid2d(48, 48), 40, 18),
        },
        Instance {
            name: "weighted-rhg",
            class: "text-compression",
            graph: gen::with_random_edge_weights(&gen::rhg_like(3_000, 10, 3.0, 19), 20, 20),
        },
        Instance {
            name: "star-5k",
            class: "irregular",
            graph: gen::star(5_000),
        },
    ]
}

/// The scaled-down Benchmark Set B: "huge" web-like instances (relative to Set A).
pub fn benchmark_set_b() -> Vec<Instance> {
    vec![
        Instance {
            name: "gsh-like",
            class: "web-huge",
            graph: gen::weblike(14, 12, 31),
        },
        Instance {
            name: "clueweb-like",
            class: "web-huge",
            graph: gen::weblike(14, 16, 32),
        },
        Instance {
            name: "uk-like",
            class: "web-huge",
            graph: gen::rgg2d(20_000, 24, 33),
        },
        Instance {
            name: "eu-like",
            class: "web-huge",
            graph: gen::weblike(15, 12, 34),
        },
        Instance {
            name: "hyperlink-like",
            class: "web-huge",
            graph: gen::rhg_like(24_000, 20, 2.8, 35),
        },
    ]
}

/// The configuration ladder of Figures 1, 4 and 6: the KaMinPar baseline with the
/// TeraPart optimizations enabled one after another.
pub fn config_ladder(k: usize) -> Vec<(&'static str, PartitionerConfig)> {
    vec![
        ("KaMinPar", PartitionerConfig::kaminpar(k)),
        ("Two-Phase LP", PartitionerConfig::kaminpar_two_phase_lp(k)),
        (
            "Graph Compression",
            PartitionerConfig::kaminpar_compressed(k),
        ),
        (
            "One-Pass Contraction (TeraPart)",
            PartitionerConfig::terapart(k),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph::traits::Graph;

    #[test]
    fn set_a_is_diverse_and_nontrivial() {
        let set = benchmark_set_a();
        assert!(set.len() >= 10);
        let classes: std::collections::HashSet<_> = set.iter().map(|i| i.class).collect();
        assert!(classes.len() >= 5, "need several application domains");
        for instance in &set {
            assert!(instance.graph.m() > 1_000, "{} too small", instance.name);
        }
        assert!(set.iter().any(|i| i.graph.is_edge_weighted()));
    }

    #[test]
    fn set_b_graphs_are_larger_than_set_a_median() {
        let a = benchmark_set_a();
        let b = benchmark_set_b();
        let mut a_sizes: Vec<usize> = a.iter().map(|i| i.graph.m()).collect();
        a_sizes.sort_unstable();
        let median_a = a_sizes[a_sizes.len() / 2];
        for instance in &b {
            assert!(
                instance.graph.m() > median_a,
                "{} not huge enough",
                instance.name
            );
        }
    }

    #[test]
    fn config_ladder_has_four_steps_in_paper_order() {
        let ladder = config_ladder(8);
        assert_eq!(ladder.len(), 4);
        assert_eq!(ladder[0].0, "KaMinPar");
        assert!(ladder[3].0.contains("TeraPart"));
        assert!(!ladder[0].1.use_compression);
        assert!(ladder[3].1.use_compression);
    }
}
