//! Frontier-vs-full-sweep quality regression (the flag raised by `bench_quality`).
//!
//! Frontier-driven LP rounds revisit only vertices whose neighbourhood changed; on
//! structured meshes the frontier quiesces before the label boundaries finish
//! smoothing, so the `fast` preset can lose cut quality versus full sweeps — the
//! quality sweep flags grid3d at ~9% degradation, while every other family stays
//! within 5%. This is a **documented, tolerated relaxation** of the `fast` preset,
//! not a bug: `fast` trades that cut for frontier speed, and the `default` / `strong`
//! presets (k-way FM, full sweeps) recover it. See `docs/ARCHITECTURE.md` § Presets.
//!
//! This test pins the relaxation so it cannot silently widen: on every smoke rung of
//! the quality ladder, the single-threaded frontier cut must stay within the
//! per-family bound of the single-threaded full-sweep cut. Single-threaded runs are
//! deterministic, so the ratios are exact, not flaky.

use bench::quality_families;
use graph::traits::Graph;
use terapart::{partition_csr, PartitionerConfig, Preset};

/// Accepted `frontier_cut / full_sweep_cut` per family. Meshes get the documented
/// wider bound; everything else must stay within the sweep's 5% tolerance (plus a
/// hair of slack — these are pinned single-seed runs, not statistics).
fn tolerated_ratio(family: &str) -> f64 {
    match family {
        "mesh" => 1.15,
        _ => 1.06,
    }
}

#[test]
fn frontier_lp_degradation_stays_within_the_documented_bounds() {
    for family in quality_families() {
        let rung = &family.rungs[0];
        let graph = rung.spec.materialize();
        let frontier_config = PartitionerConfig::preset(Preset::Fast, 16).with_threads(1);
        let mut full_sweep_config = frontier_config.clone();
        full_sweep_config.coarsening.lp_frontier = false;
        full_sweep_config.refinement.lp_frontier = false;

        let frontier_cut = partition_csr(&graph, &frontier_config).edge_cut;
        let full_sweep_cut = partition_csr(&graph, &full_sweep_config).edge_cut;
        let ratio = frontier_cut as f64 / full_sweep_cut.max(1) as f64;
        println!(
            "{:<18} {:<12} n={:<7} frontier={} full={} ratio={:.4}",
            family.family,
            rung.name,
            graph.n(),
            frontier_cut,
            full_sweep_cut,
            ratio
        );
        assert!(
            ratio <= tolerated_ratio(family.family),
            "frontier LP degradation widened on {} ({}): ratio {:.4} exceeds the \
             documented bound {:.2} — fix the regression or re-document the relaxation",
            family.family,
            rung.name,
            ratio,
            tolerated_ratio(family.family)
        );
    }
}
