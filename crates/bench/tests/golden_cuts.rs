//! Golden-cut regression suite: every (preset, golden instance) pair must reproduce
//! the pinned single-threaded fixed-seed cut exactly (see `bench::golden` for the
//! rationale and the one-command regeneration).

use bench::golden::{golden_cut, golden_entries, golden_specs};
use terapart::Preset;

#[test]
fn the_table_covers_every_preset_on_every_golden_instance() {
    let entries = golden_entries();
    for preset in Preset::ALL {
        for (instance, _) in golden_specs() {
            assert!(
                entries
                    .iter()
                    .any(|e| e.preset == preset && e.instance == instance),
                "golden table is missing ({:?}, {})",
                preset,
                instance
            );
        }
    }
}

#[test]
fn golden_cuts_match_the_pinned_table() {
    for entry in golden_entries() {
        let cut = golden_cut(entry.preset, entry.instance);
        assert_eq!(
            cut,
            entry.expected_cut(),
            "golden cut changed: preset {:?} on {} produced {} instead of the pinned \
             {} — if the change is intentional, regenerate the table with \
             `cargo run --release -p bench --bin bench_quality -- --golden` (both ID \
             widths) and update crates/bench/src/golden.rs",
            entry.preset,
            entry.instance,
            cut,
            entry.expected_cut()
        );
    }
}
