//! Property tests of the preset pipeline's partition invariants.
//!
//! Across randomly drawn (preset, instance family, k, seed) combinations, every
//! result must be a *valid* partition, whatever the cut: complete, balance-feasible
//! (no block above `L_max`), using exactly `k` non-empty blocks, and with the
//! reported edge cut equal to a from-scratch recomputation on the graph. The same
//! properties are exercised at both ID widths by CI (`--features wide-ids` builds
//! this test unchanged).

use bench::GenSpec;
use proptest::prelude::*;
use terapart::{partition_csr, PartitionerConfig, Preset};

fn family_spec(family: usize, seed: u64) -> GenSpec {
    match family {
        0 => GenSpec::Grid2d { rows: 18, cols: 22 },
        1 => GenSpec::Rgg2d {
            n: 900,
            avg_deg: 8,
            seed,
        },
        2 => GenSpec::PowerLawCluster {
            n: 800,
            attach: 3,
            triad_p: 0.4,
            seed,
        },
        _ => GenSpec::Rmat {
            scale: 10,
            avg_deg: 6,
            seed,
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn presets_always_produce_valid_partitions(
        preset_index in 0usize..3,
        family in 0usize..4,
        k in 2usize..9,
        seed in 0u64..1_000,
    ) {
        let spec = family_spec(family, seed);
        let graph = spec.materialize();
        let preset = Preset::ALL[preset_index];
        let config = PartitionerConfig::preset(preset, k)
            .with_threads(2)
            .with_seed(seed ^ 0x5eed);
        let result = partition_csr(&graph, &config);
        let partition = &result.partition;

        // Complete, with exactly k blocks, all of them non-empty.
        prop_assert!(partition.is_complete());
        prop_assert_eq!(partition.k(), k);
        let sizes = partition.block_sizes();
        prop_assert_eq!(sizes.len(), k);
        prop_assert!(
            sizes.iter().all(|&s| s > 0),
            "preset {:?} left an empty block on {:?}: sizes {:?}",
            preset, spec, sizes
        );

        // Balance-feasible: no block above L_max.
        for b in 0..k as terapart::BlockId {
            prop_assert!(
                partition.block_weight(b) <= partition.max_block_weight(),
                "preset {:?} violated balance on {:?}: block {} weighs {} > {}",
                preset, spec, b, partition.block_weight(b), partition.max_block_weight()
            );
        }
        prop_assert!(partition.is_balanced());

        // The reported cut is the recomputed cut.
        prop_assert_eq!(result.edge_cut, partition.edge_cut_on(&graph));
        prop_assert_eq!(result.edge_cut, partition.edge_cut());
    }
}
