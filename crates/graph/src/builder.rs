//! Parallel single-pass compression with ordered packet commit (paper §III-B).
//!
//! Compressing the graph in parallel poses a prefix-sum problem: the byte position of a
//! neighbourhood in the output array depends on the compressed sizes of all preceding
//! neighbourhoods, which are unknown until they have been compressed. The paper's
//! solution — reproduced here — is to have threads compress *packets* of consecutive
//! vertices (balanced by edge count) into thread-local buffers and then commit the
//! buffers to the shared output array in packet order, so the data is compressed exactly
//! once and written exactly once. The output array is over-reserved with a worst-case
//! bound and only committed bytes are charged to the memory accounting
//! ([`memtrack::ReservedVec`]), mirroring the paper's use of virtual-memory
//! overcommitment.

use std::sync::atomic::{AtomicUsize, Ordering};

use memtrack::ReservedVec;
use parking_lot::Mutex;

use crate::compressed::{encode_neighborhood, CompressedGraph, CompressionConfig};
use crate::csr::CsrGraph;
use crate::traits::Graph;
use crate::varint::MAX_VARINT_LEN;
use crate::{EdgeId, NodeId};

/// A contiguous range of vertices processed by one thread at a time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Packet {
    /// First vertex of the packet (inclusive).
    pub begin: NodeId,
    /// One past the last vertex of the packet (exclusive).
    pub end: NodeId,
}

/// Splits the vertices of `graph` into packets containing roughly `target_edges_per_packet`
/// half-edges each, so that packet compression work is balanced even on skewed graphs.
pub fn make_packets(graph: &impl Graph, target_edges_per_packet: usize) -> Vec<Packet> {
    let n = graph.n();
    let mut packets = Vec::new();
    let mut begin: NodeId = 0;
    let mut edges_in_packet = 0usize;
    for u in 0..n as NodeId {
        edges_in_packet += graph.degree(u);
        let is_last = u as usize + 1 == n;
        if edges_in_packet >= target_edges_per_packet || is_last {
            packets.push(Packet { begin, end: u + 1 });
            begin = u + 1;
            edges_in_packet = 0;
        }
    }
    if n == 0 {
        packets.push(Packet { begin: 0, end: 0 });
    }
    packets
}

/// Upper bound on the number of bytes the compressed form of `graph` can occupy.
///
/// Every gap/interval/weight entry occupies at most [`MAX_VARINT_LEN`] bytes, every vertex
/// has a fixed-size header (first edge ID + degree), and chunked neighbourhoods add one
/// length VarInt per chunk. This is the "requested" (reserved) size; only the bytes that
/// are actually written end up committed.
pub fn compressed_size_upper_bound(graph: &impl Graph, config: &CompressionConfig) -> usize {
    let n = graph.n();
    let half_edges = 2 * graph.m();
    let per_edge = if graph.is_edge_weighted() && config.compress_edge_weights {
        2 * MAX_VARINT_LEN
    } else {
        MAX_VARINT_LEN
    };
    // Header: first edge ID + degree + interval count (+ chunk table in the worst case).
    let chunks_bound = half_edges / config.chunk_len.max(1) + n;
    n * 3 * MAX_VARINT_LEN + half_edges * per_edge + chunks_bound * MAX_VARINT_LEN
}

/// Result of compressing one packet: the encoded bytes and the per-vertex byte sizes.
struct EncodedPacket {
    index: usize,
    bytes: Vec<u8>,
    vertex_sizes: Vec<u32>,
}

/// Compresses `csr` into a [`CompressedGraph`] using `num_threads` worker threads and the
/// ordered packet-commit protocol described in the paper.
///
/// The output is byte-for-byte identical to the sequential
/// [`CompressedGraph::from_csr`], which the tests assert.
pub fn compress_csr_parallel(
    csr: &CsrGraph,
    config: &CompressionConfig,
    num_threads: usize,
) -> CompressedGraph {
    let n = csr.n();
    let weighted = csr.is_edge_weighted() && config.compress_edge_weights;
    let target = (2 * csr.m() / (num_threads.max(1) * 8)).max(1024);
    let packets = make_packets(csr, target);
    let num_packets = packets.len();

    // First half-edge ID of every vertex, needed for the per-neighbourhood header.
    let mut first_edges: Vec<EdgeId> = Vec::with_capacity(n + 1);
    let mut acc: EdgeId = 0;
    for u in 0..n as NodeId {
        first_edges.push(acc);
        acc += csr.degree(u) as EdgeId;
    }
    first_edges.push(acc);

    let upper_bound = compressed_size_upper_bound(csr, config);
    let output = Mutex::new(CommitState {
        data: ReservedVec::with_reservation(upper_bound),
        offsets: vec![0u64; n + 1],
    });
    let next_packet = AtomicUsize::new(0);
    let next_commit = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..num_threads.max(1) {
            scope.spawn(|| {
                loop {
                    let packet_idx = next_packet.fetch_add(1, Ordering::Relaxed);
                    if packet_idx >= num_packets {
                        break;
                    }
                    let packet = packets[packet_idx];
                    // Compress the packet into a thread-local buffer.
                    let mut bytes = Vec::new();
                    let mut vertex_sizes = Vec::with_capacity((packet.end - packet.begin) as usize);
                    for u in packet.begin..packet.end {
                        let before = bytes.len();
                        let mut nbrs = csr.neighbors_vec(u);
                        nbrs.sort_unstable_by_key(|&(v, _)| v);
                        encode_neighborhood(
                            u,
                            first_edges[u as usize],
                            &nbrs,
                            weighted,
                            config,
                            &mut bytes,
                        );
                        vertex_sizes.push((bytes.len() - before) as u32);
                    }
                    let encoded = EncodedPacket {
                        index: packet_idx,
                        bytes,
                        vertex_sizes,
                    };
                    // Wait until all preceding packets have committed, then append.
                    while next_commit.load(Ordering::Acquire) != encoded.index {
                        std::hint::spin_loop();
                        std::thread::yield_now();
                    }
                    {
                        let mut out = output.lock();
                        let mut pos = out.data.len() as u64;
                        for (u, &size) in (packet.begin as usize..).zip(&encoded.vertex_sizes) {
                            out.offsets[u] = pos;
                            pos += u64::from(size);
                        }
                        out.data.extend_from_slice(&encoded.bytes);
                        if packet.end as usize == n {
                            out.offsets[n] = out.data.len() as u64;
                        }
                    }
                    next_commit.store(encoded.index + 1, Ordering::Release);
                }
            });
        }
    });

    let CommitState { data, mut offsets } = output.into_inner();
    let data = data.into_vec();
    if n == 0 {
        offsets = vec![0];
    } else {
        offsets[n] = data.len() as u64;
    }
    CompressedGraph::from_encoded_parts(
        n,
        csr.m(),
        offsets,
        data,
        csr.raw_node_weights().to_vec(),
        csr.is_edge_weighted(),
        csr.total_node_weight(),
        csr.total_edge_weight(),
        csr.max_degree(),
        config.clone(),
    )
}

struct CommitState {
    data: ReservedVec<u8>,
    offsets: Vec<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    fn assert_equal_compression(csr: &CsrGraph, config: &CompressionConfig, threads: usize) {
        let sequential = CompressedGraph::from_csr(csr, config);
        let parallel = compress_csr_parallel(csr, config, threads);
        assert_eq!(
            sequential.encoded_data_bytes(),
            parallel.encoded_data_bytes()
        );
        assert_eq!(sequential.n(), parallel.n());
        assert_eq!(sequential.m(), parallel.m());
        for u in 0..csr.n() as NodeId {
            assert_eq!(sequential.degree(u), parallel.degree(u));
            assert_eq!(sequential.neighbors_vec(u), parallel.neighbors_vec(u));
            assert_eq!(sequential.first_edge(u), parallel.first_edge(u));
        }
    }

    #[test]
    fn parallel_matches_sequential_on_grid() {
        let g = gen::grid2d(40, 40);
        assert_equal_compression(&g, &CompressionConfig::default(), 4);
    }

    #[test]
    fn parallel_matches_sequential_on_skewed_graph() {
        let g = gen::rhg_like(3000, 10, 3.0, 17);
        assert_equal_compression(&g, &CompressionConfig::default(), 3);
        let weighted = gen::with_random_edge_weights(&g, 100, 5);
        assert_equal_compression(&weighted, &CompressionConfig::default(), 2);
    }

    #[test]
    fn parallel_matches_sequential_with_chunking() {
        let config = CompressionConfig {
            high_degree_threshold: 32,
            chunk_len: 8,
            ..CompressionConfig::default()
        };
        let g = gen::star(500);
        assert_equal_compression(&g, &config, 4);
    }

    #[test]
    fn single_thread_works() {
        let g = gen::erdos_renyi(200, 600, 3);
        assert_equal_compression(&g, &CompressionConfig::default(), 1);
    }

    #[test]
    fn packets_cover_all_vertices_without_overlap() {
        let g = gen::rhg_like(1000, 12, 3.0, 9);
        let packets = make_packets(&g, 256);
        assert!(packets.len() > 1);
        assert_eq!(packets[0].begin, 0);
        assert_eq!(packets.last().unwrap().end as usize, g.n());
        for w in packets.windows(2) {
            assert_eq!(w[0].end, w[1].begin);
            assert!(w[0].begin < w[0].end);
        }
    }

    #[test]
    fn packets_are_balanced_by_edges() {
        let g = gen::grid2d(50, 50);
        let packets = make_packets(&g, 500);
        for p in &packets[..packets.len() - 1] {
            let edges: usize = (p.begin..p.end).map(|u| g.degree(u)).sum();
            assert!(edges >= 500, "packet with only {} edges", edges);
            assert!(edges <= 500 + g.max_degree());
        }
    }

    #[test]
    fn upper_bound_is_an_upper_bound() {
        for seed in 0..3 {
            let g = gen::erdos_renyi(300, 1500, seed);
            let config = CompressionConfig::default();
            let bound = compressed_size_upper_bound(&g, &config);
            let actual = CompressedGraph::from_csr(&g, &config).encoded_data_bytes();
            assert!(actual <= bound, "{} > {}", actual, bound);
        }
    }

    #[test]
    fn empty_graph_compresses() {
        let g = crate::csr::CsrGraphBuilder::new(0).build();
        let c = compress_csr_parallel(&g, &CompressionConfig::default(), 2);
        assert_eq!(c.n(), 0);
        assert_eq!(c.m(), 0);
    }
}
