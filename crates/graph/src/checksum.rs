//! Streaming CRC-32 (IEEE 802.3 polynomial) used by the `.tpg` v3 container.
//!
//! The build environment has no cargo registry, so the checksum is implemented here
//! rather than pulled from `crc32fast`. A single 256-entry table (built at compile
//! time) keeps the hot loop at one table lookup per byte, which is plenty for the
//! container's block granularity: checksumming is amortised against disk reads, not
//! against in-memory decoding.

/// Reflected CRC-32 polynomial (IEEE 802.3 / zlib / PNG).
const POLY: u32 = 0xEDB8_8320;

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// Incremental CRC-32 state. Feed bytes with [`update`](Crc32::update) in any
/// chunking; the digest depends only on the byte sequence.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Fresh state (equivalent to having hashed zero bytes).
    pub fn new() -> Self {
        Self { state: !0 }
    }

    /// Absorbs `bytes` into the digest.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut state = self.state;
        for &b in bytes {
            state = (state >> 8) ^ TABLE[((state ^ u32::from(b)) & 0xff) as usize];
        }
        self.state = state;
    }

    /// The digest of all bytes absorbed so far (does not consume the state).
    pub fn finalize(&self) -> u32 {
        !self.state
    }

    /// Returns the digest and resets the state for the next block.
    pub fn take(&mut self) -> u32 {
        let digest = self.finalize();
        self.state = !0;
        digest
    }
}

/// One-shot CRC-32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_test_vectors() {
        // Reference digests of the IEEE polynomial (zlib's crc32).
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(crc32(b"abc"), 0x3524_41C2);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn chunking_does_not_change_the_digest() {
        let data: Vec<u8> = (0..1021u32).map(|i| (i * 31 % 251) as u8).collect();
        let whole = crc32(&data);
        for chunk in [1usize, 2, 3, 7, 64, 255, 1000] {
            let mut c = Crc32::new();
            for part in data.chunks(chunk) {
                c.update(part);
            }
            assert_eq!(c.finalize(), whole, "chunk size {}", chunk);
        }
    }

    #[test]
    fn take_resets_for_the_next_block() {
        let mut c = Crc32::new();
        c.update(b"123456789");
        assert_eq!(c.take(), 0xCBF4_3926);
        c.update(b"123456789");
        assert_eq!(c.take(), 0xCBF4_3926);
    }

    #[test]
    fn single_bit_flips_change_the_digest() {
        let data: Vec<u8> = (0..257u32).map(|i| (i % 256) as u8).collect();
        let reference = crc32(&data);
        let mut flipped = data.clone();
        for (i, bit) in [(0usize, 0u8), (13, 3), (256, 7)] {
            flipped[i] ^= 1 << bit;
            assert_ne!(crc32(&flipped), reference);
            flipped[i] ^= 1 << bit;
        }
    }
}
