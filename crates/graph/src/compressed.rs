//! Compressed graph representation with on-the-fly neighbourhood decoding (paper §III-A).
//!
//! The encoding follows the paper: neighbourhoods are sorted by neighbour ID and stored as
//! *gaps* (differences between consecutive IDs) encoded as VarInts; runs of at least
//! [`CompressionConfig::min_interval_len`] consecutive IDs are stored as *intervals*
//! `(left, length)` instead of individual gaps; the first gap of a neighbourhood is taken
//! relative to the vertex's own ID and may be negative, so it uses zigzag encoding. Edge
//! weights, when present, are stored as signed deltas interleaved with each chunk. To
//! allow parallel iteration over very large neighbourhoods, the neighbour list of a vertex
//! whose degree exceeds [`CompressionConfig::high_degree_threshold`] is split into chunks
//! of [`CompressionConfig::chunk_len`] neighbours that are encoded and decoded
//! independently.
//!
//! Every neighbourhood additionally starts with the ID of its first half-edge, so edge IDs
//! can be recovered during iteration (several KaMinPar components index per-edge arrays).

use crate::csr::CsrGraph;
use crate::traits::Graph;
use crate::varint::{decode_signed_varint, decode_varint, encode_signed_varint, encode_varint};
use crate::{EdgeId, EdgeWeight, NodeId, NodeWeight};

/// Tuning knobs of the compression scheme.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompressionConfig {
    /// Enables interval encoding of consecutive-ID runs. Disabling it yields the
    /// "gap encoding only" configuration of Figure 6 (right) / Figure 10.
    pub enable_intervals: bool,
    /// Compress edge weights (signed-delta VarInts). Only relevant for weighted graphs.
    pub compress_edge_weights: bool,
    /// Degree above which a neighbourhood is split into independently decodable chunks.
    /// The paper uses 10 000.
    pub high_degree_threshold: usize,
    /// Number of neighbours per chunk for high-degree vertices. The paper uses 1 000.
    pub chunk_len: usize,
    /// Minimum length of a consecutive run to be stored as an interval. The paper uses 3.
    pub min_interval_len: usize,
}

impl Default for CompressionConfig {
    fn default() -> Self {
        Self {
            enable_intervals: true,
            compress_edge_weights: true,
            high_degree_threshold: 10_000,
            chunk_len: 1_000,
            min_interval_len: 3,
        }
    }
}

impl CompressionConfig {
    /// Configuration with interval encoding disabled (gap encoding only).
    pub fn gap_only() -> Self {
        Self {
            enable_intervals: false,
            ..Self::default()
        }
    }
}

/// A graph stored in the compressed byte format with per-vertex byte offsets.
#[derive(Debug, Clone)]
pub struct CompressedGraph {
    n: usize,
    m: usize,
    /// Byte offset of each vertex's encoded neighbourhood; length `n + 1`.
    offsets: Vec<u64>,
    /// Concatenated encoded neighbourhoods.
    data: Vec<u8>,
    /// Node weights, empty when uniform.
    node_weights: Vec<NodeWeight>,
    edge_weighted: bool,
    total_node_weight: NodeWeight,
    total_edge_weight: EdgeWeight,
    max_degree: usize,
    config: CompressionConfig,
}

/// A [`NodeId`] as the signed 64-bit domain the gap codec computes in. Lossless at both
/// widths: valid ids stay below the reserved top bit (see [`crate::ids`]), i.e. below
/// 2^63 even in the wide regime.
#[inline]
fn sid(v: NodeId) -> i64 {
    v as i64
}

/// Encodes one neighbourhood into `out`.
///
/// `first_edge` is the ID of the first half-edge of the neighbourhood, `u` the vertex the
/// neighbourhood belongs to, and `neighbors` its `(neighbor, weight)` pairs sorted by
/// neighbour ID. `weighted` selects whether weights are stored. Exposed so the parallel
/// single-pass builder (paper §III-B) can compress packets into thread-local buffers.
pub fn encode_neighborhood(
    u: NodeId,
    first_edge: EdgeId,
    neighbors: &[(NodeId, EdgeWeight)],
    weighted: bool,
    config: &CompressionConfig,
    out: &mut Vec<u8>,
) {
    debug_assert!(
        neighbors.windows(2).all(|w| w[0].0 < w[1].0),
        "neighbors must be sorted"
    );
    encode_varint(first_edge, out);
    encode_varint(neighbors.len() as u64, out);
    if neighbors.is_empty() {
        return;
    }
    let chunked = neighbors.len() > config.high_degree_threshold;
    if !chunked {
        encode_chunk(u, neighbors, weighted, config, out);
        return;
    }
    let chunks: Vec<&[(NodeId, EdgeWeight)]> = neighbors.chunks(config.chunk_len).collect();
    encode_varint(chunks.len() as u64, out);
    // Encode each chunk into a scratch buffer first so the chunk byte lengths can be
    // written as a header, allowing chunks to be located (and decoded in parallel)
    // without decoding their predecessors.
    let mut encoded_chunks: Vec<Vec<u8>> = Vec::with_capacity(chunks.len());
    for chunk in &chunks {
        let mut buf = Vec::new();
        encode_chunk(u, chunk, weighted, config, &mut buf);
        encoded_chunks.push(buf);
    }
    for buf in &encoded_chunks {
        encode_varint(buf.len() as u64, out);
    }
    for buf in &encoded_chunks {
        out.extend_from_slice(buf);
    }
}

/// Encodes a single chunk of a neighbourhood (gap + interval + optional weights).
fn encode_chunk(
    u: NodeId,
    neighbors: &[(NodeId, EdgeWeight)],
    weighted: bool,
    config: &CompressionConfig,
    out: &mut Vec<u8>,
) {
    // Identify interval runs of consecutive IDs.
    let ids: Vec<NodeId> = neighbors.iter().map(|&(v, _)| v).collect();
    let mut intervals: Vec<(NodeId, usize)> = Vec::new();
    let mut residuals: Vec<NodeId> = Vec::new();
    // `order` records, for each neighbour position in decode order (intervals first, then
    // residuals), the index into `neighbors` — used to emit the weights in decode order.
    let mut interval_order: Vec<usize> = Vec::new();
    let mut residual_order: Vec<usize> = Vec::new();
    if config.enable_intervals {
        let mut i = 0;
        while i < ids.len() {
            let mut j = i + 1;
            while j < ids.len() && ids[j] == ids[j - 1] + 1 {
                j += 1;
            }
            let run = j - i;
            if run >= config.min_interval_len {
                intervals.push((ids[i], run));
                interval_order.extend(i..j);
            } else {
                residuals.extend_from_slice(&ids[i..j]);
                residual_order.extend(i..j);
            }
            i = j;
        }
    } else {
        residuals.extend_from_slice(&ids);
        residual_order.extend(0..ids.len());
    }

    if config.enable_intervals {
        encode_varint(intervals.len() as u64, out);
        let mut prev_end: i64 = sid(u);
        for (k, &(left, len)) in intervals.iter().enumerate() {
            if k == 0 {
                encode_signed_varint(sid(left) - sid(u), out);
            } else {
                encode_varint((sid(left) - prev_end) as u64, out);
            }
            encode_varint((len - config.min_interval_len) as u64, out);
            prev_end = sid(left) + len as i64;
        }
    }

    // Residual gaps: first gap is signed relative to u, later gaps are strictly positive
    // (stored minus one).
    let mut prev: i64 = sid(u);
    for (k, &v) in residuals.iter().enumerate() {
        if k == 0 {
            encode_signed_varint(sid(v) - prev, out);
        } else {
            encode_varint((sid(v) - prev - 1) as u64, out);
        }
        prev = sid(v);
    }

    if weighted {
        let mut prev_weight: i64 = 0;
        for &idx in interval_order.iter().chain(residual_order.iter()) {
            let w = neighbors[idx].1 as i64;
            encode_signed_varint(w - prev_weight, out);
            prev_weight = w;
        }
    }
}

/// Decodes a single chunk, invoking `f(neighbor, weight)` for every neighbour.
///
/// Returns the byte position right after the chunk.
fn decode_chunk(
    data: &[u8],
    mut pos: usize,
    u: NodeId,
    count: usize,
    weighted: bool,
    config: &CompressionConfig,
    f: &mut dyn FnMut(NodeId, EdgeWeight),
) -> usize {
    let mut ids: Vec<NodeId> = Vec::with_capacity(count);
    if config.enable_intervals {
        let (interval_count, p) = decode_varint(data, pos);
        pos = p;
        let mut prev_end: i64 = sid(u);
        for k in 0..interval_count {
            let left = if k == 0 {
                let (delta, p) = decode_signed_varint(data, pos);
                pos = p;
                sid(u) + delta
            } else {
                let (delta, p) = decode_varint(data, pos);
                pos = p;
                prev_end + delta as i64
            };
            let (len_raw, p) = decode_varint(data, pos);
            pos = p;
            let len = len_raw as usize + config.min_interval_len;
            for offset in 0..len {
                ids.push((left + offset as i64) as NodeId);
            }
            prev_end = left + len as i64;
        }
    }
    let residual_count = count - ids.len();
    let mut prev: i64 = sid(u);
    for k in 0..residual_count {
        let v = if k == 0 {
            let (delta, p) = decode_signed_varint(data, pos);
            pos = p;
            prev + delta
        } else {
            let (gap, p) = decode_varint(data, pos);
            pos = p;
            prev + gap as i64 + 1
        };
        ids.push(v as NodeId);
        prev = v;
    }
    if weighted {
        let mut prev_weight: i64 = 0;
        for &v in &ids {
            let (delta, p) = decode_signed_varint(data, pos);
            pos = p;
            prev_weight += delta;
            f(v, prev_weight as EdgeWeight);
        }
    } else {
        for &v in &ids {
            f(v, 1);
        }
    }
    pos
}

/// Decodes the fixed header of an encoded neighbourhood: `(first_edge, degree, pos)`
/// where `pos` is the byte position right after the header.
#[inline]
pub(crate) fn decode_neighborhood_header(data: &[u8], pos: usize) -> (EdgeId, usize, usize) {
    let (first_edge, pos) = decode_varint(data, pos);
    let (degree, pos) = decode_varint(data, pos);
    (first_edge, degree as usize, pos)
}

/// Decodes one encoded neighbourhood of vertex `u` starting at `data[pos]`, invoking
/// `f(neighbor, weight)` for every neighbour.
///
/// This is the single decoding routine shared by the in-memory [`CompressedGraph`] and
/// the on-disk [`PagedGraph`](crate::store::PagedGraph): both store neighbourhoods in
/// the identical byte format, so neighbour iteration order — and therefore every
/// downstream partitioning decision — is bit-identical across the two representations.
pub(crate) fn decode_neighborhood(
    data: &[u8],
    pos: usize,
    u: NodeId,
    weighted: bool,
    config: &CompressionConfig,
    f: &mut dyn FnMut(NodeId, EdgeWeight),
) {
    let (_, degree, mut pos) = decode_neighborhood_header(data, pos);
    if degree == 0 {
        return;
    }
    if degree <= config.high_degree_threshold {
        decode_chunk(data, pos, u, degree, weighted, config, f);
        return;
    }
    let (num_chunks, p) = decode_varint(data, pos);
    pos = p;
    let mut chunk_lens = Vec::with_capacity(num_chunks as usize);
    for _ in 0..num_chunks {
        let (len, p) = decode_varint(data, pos);
        pos = p;
        chunk_lens.push(len as usize);
    }
    let mut remaining = degree;
    for &len in &chunk_lens {
        let count = remaining.min(config.chunk_len);
        decode_chunk(data, pos, u, count, weighted, config, f);
        pos += len;
        remaining -= count;
    }
}

impl CompressedGraph {
    /// Compresses a CSR graph. Neighbourhoods are sorted internally before encoding.
    pub fn from_csr(csr: &CsrGraph, config: &CompressionConfig) -> Self {
        let weighted = csr.is_edge_weighted() && config.compress_edge_weights;
        let n = csr.n();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut data = Vec::new();
        offsets.push(0u64);
        let mut first_edge: EdgeId = 0;
        for u in 0..n as NodeId {
            let mut nbrs = csr.neighbors_vec(u);
            nbrs.sort_unstable_by_key(|&(v, _)| v);
            encode_neighborhood(u, first_edge, &nbrs, weighted, config, &mut data);
            first_edge += nbrs.len() as EdgeId;
            offsets.push(data.len() as u64);
        }
        Self {
            n,
            m: csr.m(),
            offsets,
            data,
            node_weights: csr.raw_node_weights().to_vec(),
            edge_weighted: weighted || csr.is_edge_weighted(),
            total_node_weight: csr.total_node_weight(),
            total_edge_weight: csr.total_edge_weight(),
            max_degree: csr.max_degree(),
            config: config.clone(),
        }
    }

    /// Assembles a compressed graph from pre-encoded parts. Used by the parallel
    /// single-pass builder.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_encoded_parts(
        n: usize,
        m: usize,
        offsets: Vec<u64>,
        data: Vec<u8>,
        node_weights: Vec<NodeWeight>,
        edge_weighted: bool,
        total_node_weight: NodeWeight,
        total_edge_weight: EdgeWeight,
        max_degree: usize,
        config: CompressionConfig,
    ) -> Self {
        assert_eq!(offsets.len(), n + 1);
        Self {
            n,
            m,
            offsets,
            data,
            node_weights,
            edge_weighted,
            total_node_weight,
            total_edge_weight,
            max_degree,
            config,
        }
    }

    /// Number of bytes used by the encoded adjacency data plus the offset array.
    pub fn size_in_bytes(&self) -> usize {
        self.data.len()
            + self.offsets.len() * std::mem::size_of::<u64>()
            + self.node_weights.len() * std::mem::size_of::<NodeWeight>()
    }

    /// Number of bytes used by the encoded adjacency data alone.
    pub fn encoded_data_bytes(&self) -> usize {
        self.data.len()
    }

    /// Ratio of the uncompressed CSR size to this graph's size ("compression ratio" in
    /// Figures 6 and 10). Values above 1 mean the compressed form is smaller.
    pub fn compression_ratio(&self, csr: &CsrGraph) -> f64 {
        csr.size_in_bytes() as f64 / self.size_in_bytes() as f64
    }

    /// Average number of bytes per stored half-edge.
    pub fn bytes_per_edge(&self) -> f64 {
        if self.m == 0 {
            0.0
        } else {
            self.data.len() as f64 / (2.0 * self.m as f64)
        }
    }

    /// The configuration the graph was encoded with.
    pub fn config(&self) -> &CompressionConfig {
        &self.config
    }

    /// ID of the first half-edge of `u`'s neighbourhood.
    pub fn first_edge(&self, u: NodeId) -> EdgeId {
        let pos = self.offsets[u as usize] as usize;
        decode_varint(&self.data, pos).0
    }

    /// Invokes `f(edge_id, neighbor, weight)` for every neighbour of `u`, where `edge_id`
    /// is the global half-edge ID (first edge ID plus position).
    pub fn for_each_neighbor_with_edge_id(
        &self,
        u: NodeId,
        f: &mut dyn FnMut(EdgeId, NodeId, EdgeWeight),
    ) {
        let first = self.first_edge(u);
        let mut idx = 0;
        self.for_each_neighbor(u, &mut |v, w| {
            f(first + idx, v, w);
            idx += 1;
        });
    }

    fn decode_header(&self, u: NodeId) -> (usize, usize) {
        let pos = self.offsets[u as usize] as usize;
        let (_, pos) = decode_varint(&self.data, pos);
        let (degree, pos) = decode_varint(&self.data, pos);
        (degree as usize, pos)
    }
}

impl Graph for CompressedGraph {
    fn n(&self) -> usize {
        self.n
    }

    fn m(&self) -> usize {
        self.m
    }

    fn degree(&self, u: NodeId) -> usize {
        self.decode_header(u).0
    }

    fn node_weight(&self, u: NodeId) -> NodeWeight {
        if self.node_weights.is_empty() {
            1
        } else {
            self.node_weights[u as usize]
        }
    }

    fn total_node_weight(&self) -> NodeWeight {
        self.total_node_weight
    }

    fn total_edge_weight(&self) -> EdgeWeight {
        self.total_edge_weight
    }

    fn for_each_neighbor(&self, u: NodeId, f: &mut dyn FnMut(NodeId, EdgeWeight)) {
        let weighted = self.edge_weighted && self.config.compress_edge_weights;
        decode_neighborhood(
            &self.data,
            self.offsets[u as usize] as usize,
            u,
            weighted,
            &self.config,
            f,
        );
    }

    fn is_edge_weighted(&self) -> bool {
        self.edge_weighted
    }

    fn is_node_weighted(&self) -> bool {
        !self.node_weights.is_empty()
    }

    fn max_degree(&self) -> usize {
        self.max_degree
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::CsrGraphBuilder;
    use crate::gen;
    use proptest::prelude::*;

    fn assert_same_graph(csr: &CsrGraph, compressed: &CompressedGraph) {
        assert_eq!(csr.n(), compressed.n());
        assert_eq!(csr.m(), compressed.m());
        assert_eq!(csr.total_edge_weight(), compressed.total_edge_weight());
        assert_eq!(csr.total_node_weight(), compressed.total_node_weight());
        assert_eq!(csr.max_degree(), compressed.max_degree());
        for u in 0..csr.n() as NodeId {
            assert_eq!(
                csr.degree(u),
                compressed.degree(u),
                "degree mismatch at {}",
                u
            );
            assert_eq!(csr.node_weight(u), compressed.node_weight(u));
            let mut a = csr.neighbors_vec(u);
            let mut b = compressed.neighbors_vec(u);
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "neighborhood mismatch at {}", u);
        }
    }

    #[test]
    fn round_trip_small_graph() {
        let mut b = CsrGraphBuilder::new(6);
        b.add_edge(0, 1, 1);
        b.add_edge(0, 2, 1);
        b.add_edge(0, 3, 1);
        b.add_edge(0, 5, 1);
        b.add_edge(1, 2, 1);
        b.add_edge(4, 5, 1);
        let csr = b.build();
        let compressed = CompressedGraph::from_csr(&csr, &CompressionConfig::default());
        assert_same_graph(&csr, &compressed);
    }

    #[test]
    fn round_trip_weighted_graph() {
        let mut b = CsrGraphBuilder::new(5);
        b.add_edge(0, 1, 10);
        b.add_edge(0, 2, 3);
        b.add_edge(1, 2, 100);
        b.add_edge(3, 4, 7);
        b.add_edge(0, 4, 1);
        let csr = b.build();
        let compressed = CompressedGraph::from_csr(&csr, &CompressionConfig::default());
        assert!(compressed.is_edge_weighted());
        assert_same_graph(&csr, &compressed);
    }

    #[test]
    fn round_trip_grid_and_powerlaw() {
        let grid = gen::grid2d(20, 20);
        let compressed = CompressedGraph::from_csr(&grid, &CompressionConfig::default());
        assert_same_graph(&grid, &compressed);

        let pl = gen::rhg_like(500, 8, 3.0, 42);
        let compressed = CompressedGraph::from_csr(&pl, &CompressionConfig::default());
        assert_same_graph(&pl, &compressed);
    }

    #[test]
    fn gap_only_round_trips_and_is_larger_on_local_graphs() {
        // A complete graph has perfectly consecutive neighbourhoods, which is where
        // interval encoding shines.
        let g = gen::complete(64);
        let with_intervals = CompressedGraph::from_csr(&g, &CompressionConfig::default());
        let gap_only = CompressedGraph::from_csr(&g, &CompressionConfig::gap_only());
        assert_same_graph(&g, &with_intervals);
        assert_same_graph(&g, &gap_only);
        assert!(
            with_intervals.encoded_data_bytes() < gap_only.encoded_data_bytes(),
            "interval encoding should be smaller on a complete graph: {} vs {}",
            with_intervals.encoded_data_bytes(),
            gap_only.encoded_data_bytes()
        );
    }

    #[test]
    fn high_degree_vertices_are_chunked() {
        // A star graph with a hub whose degree exceeds the (lowered) threshold.
        let config = CompressionConfig {
            high_degree_threshold: 50,
            chunk_len: 16,
            ..CompressionConfig::default()
        };
        let g = gen::star(201);
        let compressed = CompressedGraph::from_csr(&g, &config);
        assert_same_graph(&g, &compressed);
        assert_eq!(compressed.degree(0), 200);
    }

    #[test]
    fn compression_ratio_exceeds_one_on_structured_graphs() {
        let g = gen::grid2d(50, 50);
        let compressed = CompressedGraph::from_csr(&g, &CompressionConfig::default());
        assert!(compressed.compression_ratio(&g) > 1.0);
        assert!(compressed.bytes_per_edge() < 8.0);
    }

    #[test]
    fn edge_ids_are_consecutive() {
        let g = gen::grid2d(8, 8);
        let compressed = CompressedGraph::from_csr(&g, &CompressionConfig::default());
        let mut expected: EdgeId = 0;
        for u in 0..g.n() as NodeId {
            assert_eq!(compressed.first_edge(u), expected);
            let mut count = 0;
            compressed.for_each_neighbor_with_edge_id(u, &mut |e, _, _| {
                assert_eq!(e, expected + count);
                count += 1;
            });
            expected += g.degree(u) as EdgeId;
        }
    }

    #[test]
    fn empty_and_isolated_vertices() {
        let mut b = CsrGraphBuilder::new(3);
        b.add_edge(0, 1, 1);
        let csr = b.build();
        let compressed = CompressedGraph::from_csr(&csr, &CompressionConfig::default());
        assert_eq!(compressed.degree(2), 0);
        assert_eq!(compressed.neighbors_vec(2), vec![]);
    }

    #[test]
    fn chunked_high_degree_weighted_round_trip() {
        // A weighted hub graph whose hub degree far exceeds `high_degree_threshold`, so
        // the hub neighbourhood is split into independently decodable chunks; edge
        // weights must survive the chunked encode/decode path exactly.
        let star = gen::star(600);
        let csr = gen::with_random_edge_weights(&star, 1_000, 7);
        let config = CompressionConfig {
            high_degree_threshold: 128,
            chunk_len: 50,
            ..CompressionConfig::default()
        };
        assert!(
            csr.max_degree() > config.high_degree_threshold,
            "hub degree {} does not cross the threshold",
            csr.max_degree()
        );
        let compressed = CompressedGraph::from_csr(&csr, &config);
        assert_same_graph(&csr, &compressed);

        // Same but with interval encoding off (gap-only) and node weights on top: the
        // chunk framing must be independent of the inner encoding.
        let weighted = gen::with_random_node_weights(&csr, 9, 11);
        let gap_only = CompressionConfig {
            enable_intervals: false,
            high_degree_threshold: 100,
            chunk_len: 33,
            ..CompressionConfig::default()
        };
        let compressed = CompressedGraph::from_csr(&weighted, &gap_only);
        assert_same_graph(&weighted, &compressed);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn prop_compressed_equals_csr(
            n in 2usize..60,
            edges in proptest::collection::vec((0u32..60, 0u32..60, 1u64..20), 0..200),
            intervals in proptest::bool::ANY,
        ) {
            let mut b = CsrGraphBuilder::new(n);
            for (u, v, w) in edges {
                let (u, v) = (NodeId::from(u % n as u32), NodeId::from(v % n as u32));
                if u != v {
                    b.add_edge(u, v, w);
                }
            }
            let csr = b.build();
            let config = CompressionConfig {
                enable_intervals: intervals,
                high_degree_threshold: 8,
                chunk_len: 4,
                ..CompressionConfig::default()
            };
            let compressed = CompressedGraph::from_csr(&csr, &config);
            assert_same_graph(&csr, &compressed);
        }
    }
}
