//! Uncompressed compressed-sparse-row (CSR) graph representation.
//!
//! This is the baseline representation the paper starts from (§III): an edge array `E` of
//! size `2m` and an offset array `P` of size `n + 1` such that `E[P[u]..P[u+1]]` holds the
//! neighbours of `u`. Edge and node weights are stored in optional side arrays; the
//! common unweighted case pays no memory for them.

use crate::traits::Graph;
use crate::{Edge, EdgeId, EdgeWeight, NodeId, NodeWeight};

/// An undirected graph in CSR form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsrGraph {
    /// Offsets into `adjacency`; length `n + 1`.
    xadj: Vec<EdgeId>,
    /// Concatenated neighbourhoods; length `2m`.
    adjacency: Vec<NodeId>,
    /// Edge weights parallel to `adjacency`, or empty if all weights are 1.
    edge_weights: Vec<EdgeWeight>,
    /// Node weights, or empty if all weights are 1.
    node_weights: Vec<NodeWeight>,
    total_node_weight: NodeWeight,
    total_edge_weight: EdgeWeight,
    max_degree: usize,
}

impl CsrGraph {
    /// Builds a CSR graph directly from its raw arrays.
    ///
    /// `edge_weights` must be empty or have the same length as `adjacency`;
    /// `node_weights` must be empty or have length `xadj.len() - 1`.
    ///
    /// # Panics
    /// Panics if the arrays are structurally inconsistent (offsets not monotone, neighbour
    /// IDs out of range, mismatched weight array lengths, or self-loops).
    pub fn from_parts(
        xadj: Vec<EdgeId>,
        adjacency: Vec<NodeId>,
        edge_weights: Vec<EdgeWeight>,
        node_weights: Vec<NodeWeight>,
    ) -> Self {
        assert!(!xadj.is_empty(), "xadj must contain at least one offset");
        let n = xadj.len() - 1;
        crate::ids::assert_node_count(n, "CsrGraph::from_parts");
        assert_eq!(
            *xadj.last().unwrap() as usize,
            adjacency.len(),
            "last offset must equal the adjacency length"
        );
        assert!(
            edge_weights.is_empty() || edge_weights.len() == adjacency.len(),
            "edge weight array length mismatch"
        );
        assert!(
            node_weights.is_empty() || node_weights.len() == n,
            "node weight array length mismatch"
        );
        let mut max_degree = 0usize;
        for u in 0..n {
            assert!(xadj[u] <= xadj[u + 1], "offsets must be non-decreasing");
            let deg = (xadj[u + 1] - xadj[u]) as usize;
            max_degree = max_degree.max(deg);
            for &v in &adjacency[xadj[u] as usize..xadj[u + 1] as usize] {
                assert!((v as usize) < n, "neighbor id {} out of range", v);
                assert_ne!(v as usize, u, "self-loop at vertex {}", u);
            }
        }
        let total_edge_weight = if edge_weights.is_empty() {
            (adjacency.len() / 2) as EdgeWeight
        } else {
            edge_weights.iter().sum::<EdgeWeight>() / 2
        };
        let total_node_weight = if node_weights.is_empty() {
            n as NodeWeight
        } else {
            node_weights.iter().sum()
        };
        Self {
            xadj,
            adjacency,
            edge_weights,
            node_weights,
            total_node_weight,
            total_edge_weight,
            max_degree,
        }
    }

    /// Returns the offset array `P` (length `n + 1`).
    pub fn xadj(&self) -> &[EdgeId] {
        &self.xadj
    }

    /// Returns the adjacency array `E` (length `2m`).
    pub fn adjacency(&self) -> &[NodeId] {
        &self.adjacency
    }

    /// Returns the raw edge weight array (empty for unweighted graphs).
    pub fn raw_edge_weights(&self) -> &[EdgeWeight] {
        &self.edge_weights
    }

    /// Returns the raw node weight array (empty for uniformly weighted graphs).
    pub fn raw_node_weights(&self) -> &[NodeWeight] {
        &self.node_weights
    }

    /// Returns the first edge ID (index into the adjacency array) of `u`'s neighbourhood.
    pub fn first_edge(&self, u: NodeId) -> EdgeId {
        self.xadj[u as usize]
    }

    /// Returns the neighbours of `u` as a slice.
    pub fn neighbors_slice(&self, u: NodeId) -> &[NodeId] {
        &self.adjacency[self.xadj[u as usize] as usize..self.xadj[u as usize + 1] as usize]
    }

    /// Returns the edge weight of the half-edge with index `e`.
    pub fn edge_weight(&self, e: EdgeId) -> EdgeWeight {
        if self.edge_weights.is_empty() {
            1
        } else {
            self.edge_weights[e as usize]
        }
    }

    /// Number of bytes the CSR arrays occupy (the "uncompressed size" used when reporting
    /// compression ratios).
    pub fn size_in_bytes(&self) -> usize {
        self.xadj.len() * std::mem::size_of::<EdgeId>()
            + self.adjacency.len() * std::mem::size_of::<NodeId>()
            + self.edge_weights.len() * std::mem::size_of::<EdgeWeight>()
            + self.node_weights.len() * std::mem::size_of::<NodeWeight>()
    }

    /// Returns a copy of this graph with every neighbourhood sorted by neighbour ID.
    /// Sorted neighbourhoods maximise the effect of gap/interval encoding.
    pub fn sorted(&self) -> CsrGraph {
        let n = self.n();
        let mut adjacency = Vec::with_capacity(self.adjacency.len());
        let mut edge_weights = Vec::with_capacity(self.edge_weights.len());
        for u in 0..n as NodeId {
            let mut nbrs = self.neighbors_vec(u);
            nbrs.sort_unstable_by_key(|&(v, _)| v);
            for (v, w) in nbrs {
                adjacency.push(v);
                if !self.edge_weights.is_empty() {
                    edge_weights.push(w);
                }
            }
        }
        CsrGraph::from_parts(
            self.xadj.clone(),
            adjacency,
            edge_weights,
            self.node_weights.clone(),
        )
    }

    /// Checks the symmetry invariant: every half-edge `(u, v)` has a reverse `(v, u)` with
    /// the same weight. Intended for tests and debug assertions; runs in `O(m log d)`.
    pub fn is_symmetric(&self) -> bool {
        for u in 0..self.n() as NodeId {
            let mut ok = true;
            self.for_each_neighbor(u, &mut |v, w| {
                let mut found = false;
                self.for_each_neighbor(v, &mut |x, wx| {
                    if x == u && wx == w {
                        found = true;
                    }
                });
                ok &= found;
            });
            if !ok {
                return false;
            }
        }
        true
    }
}

impl Graph for CsrGraph {
    fn n(&self) -> usize {
        self.xadj.len() - 1
    }

    fn m(&self) -> usize {
        self.adjacency.len() / 2
    }

    fn degree(&self, u: NodeId) -> usize {
        (self.xadj[u as usize + 1] - self.xadj[u as usize]) as usize
    }

    fn node_weight(&self, u: NodeId) -> NodeWeight {
        if self.node_weights.is_empty() {
            1
        } else {
            self.node_weights[u as usize]
        }
    }

    fn total_node_weight(&self) -> NodeWeight {
        self.total_node_weight
    }

    fn total_edge_weight(&self) -> EdgeWeight {
        self.total_edge_weight
    }

    fn for_each_neighbor(&self, u: NodeId, f: &mut dyn FnMut(NodeId, EdgeWeight)) {
        let begin = self.xadj[u as usize] as usize;
        let end = self.xadj[u as usize + 1] as usize;
        if self.edge_weights.is_empty() {
            for &v in &self.adjacency[begin..end] {
                f(v, 1);
            }
        } else {
            for e in begin..end {
                f(self.adjacency[e], self.edge_weights[e]);
            }
        }
    }

    fn is_edge_weighted(&self) -> bool {
        !self.edge_weights.is_empty()
    }

    fn is_node_weighted(&self) -> bool {
        !self.node_weights.is_empty()
    }

    fn max_degree(&self) -> usize {
        self.max_degree
    }
}

/// Incremental builder that collects undirected edges and produces a validated
/// [`CsrGraph`].
///
/// Duplicate edges are merged by summing their weights; self-loops are dropped. Both
/// behaviours match how the paper's instances were prepared ("converted to undirected
/// graphs by adding missing reverse edges and removing any self-loops").
#[derive(Debug, Clone)]
pub struct CsrGraphBuilder {
    n: usize,
    edges: Vec<Edge>,
    node_weights: Vec<NodeWeight>,
}

impl CsrGraphBuilder {
    /// Creates a builder for a graph with `n` vertices, all of weight 1.
    pub fn new(n: usize) -> Self {
        crate::ids::assert_node_count(n, "CsrGraphBuilder");
        Self {
            n,
            edges: Vec::new(),
            node_weights: Vec::new(),
        }
    }

    /// Creates a builder with explicit node weights.
    pub fn with_node_weights(node_weights: Vec<NodeWeight>) -> Self {
        crate::ids::assert_node_count(node_weights.len(), "CsrGraphBuilder");
        Self {
            n: node_weights.len(),
            edges: Vec::new(),
            node_weights,
        }
    }

    /// Number of vertices of the graph being built.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of (possibly duplicate) undirected edges added so far.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Adds an undirected edge `{u, v}` with the given weight. Self-loops are ignored.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId, weight: EdgeWeight) {
        assert!(
            (u as usize) < self.n && (v as usize) < self.n,
            "edge endpoint out of range"
        );
        if u == v {
            return;
        }
        self.edges.push(Edge::weighted(u, v, weight));
    }

    /// Adds a batch of undirected edges.
    pub fn add_edges(&mut self, edges: impl IntoIterator<Item = Edge>) {
        for e in edges {
            self.add_edge(e.u, e.v, e.weight);
        }
    }

    /// Sets the weight of vertex `u`.
    pub fn set_node_weight(&mut self, u: NodeId, weight: NodeWeight) {
        if self.node_weights.is_empty() {
            self.node_weights = vec![1; self.n];
        }
        self.node_weights[u as usize] = weight;
    }

    /// Finalises the builder into a CSR graph with sorted neighbourhoods.
    pub fn build(self) -> CsrGraph {
        let n = self.n;
        // Deduplicate undirected edges, merging parallel edges by weight.
        let mut canonical: std::collections::HashMap<(NodeId, NodeId), EdgeWeight> =
            std::collections::HashMap::with_capacity(self.edges.len());
        for e in &self.edges {
            let key = if e.u < e.v { (e.u, e.v) } else { (e.v, e.u) };
            *canonical.entry(key).or_insert(0) += e.weight;
        }
        let weighted = canonical.values().any(|&w| w != 1);

        let mut degrees = vec![0u64; n];
        for &(u, v) in canonical.keys() {
            degrees[u as usize] += 1;
            degrees[v as usize] += 1;
        }
        let mut xadj = Vec::with_capacity(n + 1);
        let mut acc = 0u64;
        xadj.push(0);
        for &d in &degrees {
            acc += d;
            xadj.push(acc);
        }
        let total_half_edges = acc as usize;
        let mut adjacency = vec![0 as NodeId; total_half_edges];
        let mut edge_weights = if weighted {
            vec![0 as EdgeWeight; total_half_edges]
        } else {
            Vec::new()
        };
        let mut cursor: Vec<u64> = xadj[..n].to_vec();
        let mut sorted_edges: Vec<((NodeId, NodeId), EdgeWeight)> = canonical.into_iter().collect();
        sorted_edges.sort_unstable_by_key(|&((u, v), _)| (u, v));
        for ((u, v), w) in sorted_edges {
            let pu = cursor[u as usize] as usize;
            adjacency[pu] = v;
            if weighted {
                edge_weights[pu] = w;
            }
            cursor[u as usize] += 1;
            let pv = cursor[v as usize] as usize;
            adjacency[pv] = u;
            if weighted {
                edge_weights[pv] = w;
            }
            cursor[v as usize] += 1;
        }
        let graph = CsrGraph::from_parts(xadj, adjacency, edge_weights, self.node_weights);
        graph.sorted()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> CsrGraph {
        let mut b = CsrGraphBuilder::new(3);
        b.add_edge(0, 1, 1);
        b.add_edge(1, 2, 1);
        b.add_edge(2, 0, 1);
        b.build()
    }

    #[test]
    fn triangle_structure() {
        let g = triangle();
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 3);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.max_degree(), 2);
        assert_eq!(g.total_edge_weight(), 3);
        assert_eq!(g.total_node_weight(), 3);
        assert!(g.is_symmetric());
        assert!(!g.is_edge_weighted());
        assert!(!g.is_node_weighted());
    }

    #[test]
    fn duplicate_edges_merge_weights() {
        let mut b = CsrGraphBuilder::new(2);
        b.add_edge(0, 1, 1);
        b.add_edge(1, 0, 2);
        let g = b.build();
        assert_eq!(g.m(), 1);
        assert_eq!(g.total_edge_weight(), 3);
        assert!(g.is_edge_weighted());
        assert_eq!(g.neighbors_vec(0), vec![(1, 3)]);
    }

    #[test]
    fn self_loops_are_dropped() {
        let mut b = CsrGraphBuilder::new(2);
        b.add_edge(0, 0, 5);
        b.add_edge(0, 1, 1);
        let g = b.build();
        assert_eq!(g.m(), 1);
        assert_eq!(g.degree(0), 1);
    }

    #[test]
    fn node_weights_are_respected() {
        let mut b = CsrGraphBuilder::new(3);
        b.add_edge(0, 1, 1);
        b.set_node_weight(2, 10);
        let g = b.build();
        assert_eq!(g.node_weight(2), 10);
        assert_eq!(g.node_weight(0), 1);
        assert_eq!(g.total_node_weight(), 12);
        assert!(g.is_node_weighted());
    }

    #[test]
    fn neighborhoods_are_sorted() {
        let mut b = CsrGraphBuilder::new(5);
        b.add_edge(0, 4, 1);
        b.add_edge(0, 2, 1);
        b.add_edge(0, 3, 1);
        b.add_edge(0, 1, 1);
        let g = b.build();
        assert_eq!(g.neighbors_slice(0), &[1, 2, 3, 4]);
    }

    #[test]
    fn isolated_vertices_have_zero_degree() {
        let mut b = CsrGraphBuilder::new(4);
        b.add_edge(0, 1, 1);
        let g = b.build();
        assert_eq!(g.degree(2), 0);
        assert_eq!(g.degree(3), 0);
        assert_eq!(g.neighbors_vec(3), vec![]);
    }

    #[test]
    fn size_in_bytes_counts_all_arrays() {
        let g = triangle();
        // 4 offsets * 8 bytes + 6 adjacency entries at the active id width.
        assert_eq!(g.size_in_bytes(), 4 * 8 + 6 * std::mem::size_of::<NodeId>());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        let mut b = CsrGraphBuilder::new(2);
        b.add_edge(0, 5, 1);
    }

    #[test]
    fn first_edge_and_edge_weight_access() {
        let g = triangle();
        assert_eq!(g.first_edge(0), 0);
        assert_eq!(g.first_edge(1), 2);
        assert_eq!(g.edge_weight(0), 1);
    }

    #[test]
    fn empty_graph() {
        let b = CsrGraphBuilder::new(0);
        let g = b.build();
        assert_eq!(g.n(), 0);
        assert_eq!(g.m(), 0);
        assert_eq!(g.max_degree(), 0);
    }
}
