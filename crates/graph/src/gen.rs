//! Synthetic graph generators.
//!
//! These stand in for the paper's benchmark instances (see DESIGN.md for the substitution
//! rationale): `rgg2d` reproduces the mesh-like random geometric family, [`rhg_like`]
//! reproduces the skewed power-law family used for the tera-scale experiments, and
//! [`weblike`] produces R-MAT-style graphs with hub vertices and neighbour-ID locality
//! similar to web crawls. Small deterministic graphs (grids, stars, paths, complete
//! graphs) are used heavily by unit and property tests.
//!
//! All generators are deterministic for a fixed seed (ChaCha8 PRNG), so experiments are
//! reproducible.

use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

use crate::csr::{CsrGraph, CsrGraphBuilder};
use crate::ids::{self, NodeId};
use crate::EdgeWeight;

/// 2D grid (mesh) graph with `rows * cols` vertices connected to their horizontal and
/// vertical neighbours. Models the "finite element"-style instances of Benchmark Set A.
pub fn grid2d(rows: usize, cols: usize) -> CsrGraph {
    let n = rows * cols;
    ids::assert_node_count(n, "grid2d");
    let mut b = CsrGraphBuilder::new(n);
    let id = |r: usize, c: usize| ids::nid(r * cols + c);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                b.add_edge(id(r, c), id(r, c + 1), 1);
            }
            if r + 1 < rows {
                b.add_edge(id(r, c), id(r + 1, c), 1);
            }
        }
    }
    b.build()
}

/// 3D grid graph (`x * y * z` vertices, 6-neighbourhood).
pub fn grid3d(x: usize, y: usize, z: usize) -> CsrGraph {
    let n = x * y * z;
    ids::assert_node_count(n, "grid3d");
    let mut b = CsrGraphBuilder::new(n);
    let id = |i: usize, j: usize, k: usize| ids::nid(i * y * z + j * z + k);
    for i in 0..x {
        for j in 0..y {
            for k in 0..z {
                if i + 1 < x {
                    b.add_edge(id(i, j, k), id(i + 1, j, k), 1);
                }
                if j + 1 < y {
                    b.add_edge(id(i, j, k), id(i, j + 1, k), 1);
                }
                if k + 1 < z {
                    b.add_edge(id(i, j, k), id(i, j, k + 1), 1);
                }
            }
        }
    }
    b.build()
}

/// Path graph 0 — 1 — 2 — ... — (n-1).
pub fn path(n: usize) -> CsrGraph {
    ids::assert_node_count(n, "path");
    let mut b = CsrGraphBuilder::new(n);
    for u in 1..n {
        b.add_edge(ids::nid(u - 1), ids::nid(u), 1);
    }
    b.build()
}

/// Cycle graph on `n ≥ 3` vertices.
pub fn cycle(n: usize) -> CsrGraph {
    assert!(n >= 3, "a cycle needs at least 3 vertices");
    ids::assert_node_count(n, "cycle");
    let mut b = CsrGraphBuilder::new(n);
    for u in 0..n {
        b.add_edge(ids::nid(u), ids::nid((u + 1) % n), 1);
    }
    b.build()
}

/// Complete graph on `n` vertices.
pub fn complete(n: usize) -> CsrGraph {
    ids::assert_node_count(n, "complete");
    let mut b = CsrGraphBuilder::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            b.add_edge(ids::nid(u), ids::nid(v), 1);
        }
    }
    b.build()
}

/// Star graph: vertex 0 is connected to all other `n - 1` vertices. Used to exercise the
/// high-degree (chunked / two-phase) code paths.
pub fn star(n: usize) -> CsrGraph {
    ids::assert_node_count(n, "star");
    let mut b = CsrGraphBuilder::new(n);
    for v in 1..n {
        b.add_edge(0, ids::nid(v), 1);
    }
    b.build()
}

/// Disconnected union of `k` cliques of size `clique_size` with a single bridge edge
/// between consecutive cliques. The optimal `k`-way cut of this graph is known, which
/// makes it ideal for quality assertions.
pub fn clique_chain(k: usize, clique_size: usize) -> CsrGraph {
    let n = k * clique_size;
    ids::assert_node_count(n, "clique_chain");
    let mut b = CsrGraphBuilder::new(n);
    for c in 0..k {
        let base = c * clique_size;
        for i in 0..clique_size {
            for j in (i + 1)..clique_size {
                b.add_edge(ids::nid(base + i), ids::nid(base + j), 1);
            }
        }
        if c + 1 < k {
            b.add_edge(
                ids::nid(base + clique_size - 1),
                ids::nid(base + clique_size),
                1,
            );
        }
    }
    b.build()
}

/// Erdős–Rényi style random graph with `n` vertices and approximately `m` undirected
/// edges (duplicates are merged, so the final count can be slightly lower).
pub fn erdos_renyi(n: usize, m: usize, seed: u64) -> CsrGraph {
    assert!(n >= 2);
    ids::assert_node_count(n, "erdos_renyi");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut b = CsrGraphBuilder::new(n);
    for _ in 0..m {
        let u = rng.gen_range(0..ids::nid_count(n));
        let v = rng.gen_range(0..ids::nid_count(n));
        if u != v {
            b.add_edge(u, v, 1);
        }
    }
    b.build()
}

/// Random geometric graph on the unit square with expected average degree `avg_deg`.
///
/// Vertices are random points; two vertices are adjacent iff their Euclidean distance is
/// at most the connection radius. The vertex IDs are assigned in row-major cell order,
/// which gives the neighbour-ID locality real rgg2D instances have (and which interval
/// encoding exploits). This is the `rgg2D` family of the paper (KaGen).
pub fn rgg2d(n: usize, avg_deg: usize, seed: u64) -> CsrGraph {
    let mut b = CsrGraphBuilder::new(n);
    for_each_rgg2d_edge(n, avg_deg, seed, &mut |u, v| b.add_edge(u, v, 1));
    b.build()
}

/// Invokes `f(u, v)` for every edge of the random geometric graph [`rgg2d`] would build
/// from the same parameters. Point generation needs `O(n)` memory (positions plus the
/// cell grid) but no adjacency is ever materialised, so the streaming `.tpg` generator
/// ([`crate::store::stream_rgg2d_to_tpg`]) can emit edges straight into spill buckets
/// and still produce the *identical* graph for a fixed seed.
pub fn for_each_rgg2d_edge(n: usize, avg_deg: usize, seed: u64, f: &mut dyn FnMut(NodeId, NodeId)) {
    try_for_each_rgg2d_edge(n, avg_deg, seed, &mut |u, v| {
        f(u, v);
        true
    });
}

/// [`for_each_rgg2d_edge`] with a visitor that can stop the stream: returning `false`
/// aborts edge emission immediately (e.g. the streaming `.tpg` builder stops driving
/// the sampler once a spill I/O error is recorded). Returns `false` iff the visitor
/// stopped early.
pub fn try_for_each_rgg2d_edge(
    n: usize,
    avg_deg: usize,
    seed: u64,
    f: &mut dyn FnMut(NodeId, NodeId) -> bool,
) -> bool {
    assert!(n >= 2);
    ids::assert_node_count(n, "rgg2d");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    // Expected degree of a point is n * pi * r^2 (ignoring boundary effects).
    let radius = ((avg_deg as f64) / (n as f64 * std::f64::consts::PI)).sqrt();
    let cells = ((1.0 / radius).floor() as usize).clamp(1, 4096);
    let cell_size = 1.0 / cells as f64;
    // Generate points, then sort them into row-major cell order so that nearby points get
    // nearby IDs.
    let mut points: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.gen::<f64>(), rng.gen::<f64>()))
        .collect();
    points.sort_by(|a, b| {
        let ca = ((a.1 / cell_size) as usize, (a.0 / cell_size) as usize);
        let cb = ((b.1 / cell_size) as usize, (b.0 / cell_size) as usize);
        ca.cmp(&cb)
            .then(a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal))
    });
    // Bucket points by cell for neighbourhood queries.
    let mut grid: Vec<Vec<NodeId>> = vec![Vec::new(); cells * cells];
    let cell_of = |p: (f64, f64)| {
        let cx = ((p.0 / cell_size) as usize).min(cells - 1);
        let cy = ((p.1 / cell_size) as usize).min(cells - 1);
        cy * cells + cx
    };
    for (i, &p) in points.iter().enumerate() {
        grid[cell_of(p)].push(ids::nid(i));
    }
    let r2 = radius * radius;
    for (i, &p) in points.iter().enumerate() {
        let cx = ((p.0 / cell_size) as usize).min(cells - 1);
        let cy = ((p.1 / cell_size) as usize).min(cells - 1);
        for dy in -1i64..=1 {
            for dx in -1i64..=1 {
                let nx = cx as i64 + dx;
                let ny = cy as i64 + dy;
                if nx < 0 || ny < 0 || nx >= cells as i64 || ny >= cells as i64 {
                    continue;
                }
                for &j in &grid[ny as usize * cells + nx as usize] {
                    if (j as usize) <= i {
                        continue;
                    }
                    let q = points[j as usize];
                    let d2 = (p.0 - q.0).powi(2) + (p.1 - q.1).powi(2);
                    if d2 <= r2 && !f(ids::nid(i), j) {
                        return false;
                    }
                }
            }
        }
    }
    true
}

/// Random geometric graph on the unit cube with expected average degree `avg_deg` —
/// the 3D sibling of [`rgg2d`] (`rgg3D` in KaGen terms). Vertex IDs follow the
/// row-major cell order of the underlying 3D grid, giving the same neighbour-ID
/// locality as the 2D family.
pub fn rgg3d(n: usize, avg_deg: usize, seed: u64) -> CsrGraph {
    let mut b = CsrGraphBuilder::new(n);
    for_each_rgg3d_edge(n, avg_deg, seed, &mut |u, v| b.add_edge(u, v, 1));
    b.build()
}

/// Invokes `f(u, v)` for every edge of the graph [`rgg3d`] would build from the same
/// parameters. Point generation needs `O(n)` memory but no adjacency is materialised,
/// so the streaming `.tpg` generator ([`crate::store::stream_rgg3d_to_tpg`]) can emit
/// edges straight into spill buckets and still produce the *identical* graph.
pub fn for_each_rgg3d_edge(n: usize, avg_deg: usize, seed: u64, f: &mut dyn FnMut(NodeId, NodeId)) {
    try_for_each_rgg3d_edge(n, avg_deg, seed, &mut |u, v| {
        f(u, v);
        true
    });
}

/// [`for_each_rgg3d_edge`] with a visitor that can stop the stream early by returning
/// `false`. Returns `false` iff the visitor stopped early.
pub fn try_for_each_rgg3d_edge(
    n: usize,
    avg_deg: usize,
    seed: u64,
    f: &mut dyn FnMut(NodeId, NodeId) -> bool,
) -> bool {
    assert!(n >= 2);
    ids::assert_node_count(n, "rgg3d");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    // Expected degree of a point is n * (4/3)π r³ (ignoring boundary effects).
    let radius = ((avg_deg as f64) * 3.0 / (n as f64 * 4.0 * std::f64::consts::PI)).cbrt();
    let cells = ((1.0 / radius).floor() as usize).clamp(1, 256);
    let cell_size = 1.0 / cells as f64;
    let mut points: Vec<(f64, f64, f64)> = (0..n)
        .map(|_| (rng.gen::<f64>(), rng.gen::<f64>(), rng.gen::<f64>()))
        .collect();
    // Sort into row-major cell order (z, then y, then x) so nearby points get nearby IDs.
    points.sort_by(|a, b| {
        let ca = (
            (a.2 / cell_size) as usize,
            (a.1 / cell_size) as usize,
            (a.0 / cell_size) as usize,
        );
        let cb = (
            (b.2 / cell_size) as usize,
            (b.1 / cell_size) as usize,
            (b.0 / cell_size) as usize,
        );
        ca.cmp(&cb)
            .then(a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal))
    });
    let cell_coord = |x: f64| ((x / cell_size) as usize).min(cells - 1);
    let cell_of =
        |p: (f64, f64, f64)| (cell_coord(p.2) * cells + cell_coord(p.1)) * cells + cell_coord(p.0);
    let mut grid: Vec<Vec<NodeId>> = vec![Vec::new(); cells * cells * cells];
    for (i, &p) in points.iter().enumerate() {
        grid[cell_of(p)].push(ids::nid(i));
    }
    let r2 = radius * radius;
    for (i, &p) in points.iter().enumerate() {
        let (cx, cy, cz) = (cell_coord(p.0), cell_coord(p.1), cell_coord(p.2));
        for dz in -1i64..=1 {
            for dy in -1i64..=1 {
                for dx in -1i64..=1 {
                    let (nx, ny, nz) = (cx as i64 + dx, cy as i64 + dy, cz as i64 + dz);
                    if nx < 0 || ny < 0 || nz < 0 {
                        continue;
                    }
                    let (nx, ny, nz) = (nx as usize, ny as usize, nz as usize);
                    if nx >= cells || ny >= cells || nz >= cells {
                        continue;
                    }
                    for &j in &grid[(nz * cells + ny) * cells + nx] {
                        if (j as usize) <= i {
                            continue;
                        }
                        let q = points[j as usize];
                        let d2 = (p.0 - q.0).powi(2) + (p.1 - q.1).powi(2) + (p.2 - q.2).powi(2);
                        if d2 <= r2 && !f(ids::nid(i), j) {
                            return false;
                        }
                    }
                }
            }
        }
    }
    true
}

/// Power-law *clustered* graph (Holme–Kim preferential attachment with triad
/// formation): the hyperbolic-style family combining a skewed degree distribution with
/// high clustering, which neither [`rhg_like`] (no clustering) nor [`weblike`]
/// (no triangles beyond sampling noise) produces. Each new vertex attaches `attach`
/// edges: the first by preferential attachment, each further edge with probability
/// `triad_p` to a random neighbour of the previous target (closing a triangle) and by
/// preferential attachment otherwise. Models the social-network instances whose tight
/// communities make frontier-based local search hardest.
pub fn powerlaw_cluster(n: usize, attach: usize, triad_p: f64, seed: u64) -> CsrGraph {
    assert!(attach >= 1, "each vertex must attach at least one edge");
    assert!((0.0..=1.0).contains(&triad_p));
    assert!(n > attach, "need more vertices than attachment edges");
    ids::assert_node_count(n, "powerlaw_cluster");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let m0 = attach + 1;
    let mut adjacency: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    // Flat list of edge endpoints: sampling it uniformly is degree-proportional.
    let mut endpoints: Vec<NodeId> = Vec::with_capacity(2 * n * attach);
    let add = |adjacency: &mut Vec<Vec<NodeId>>, endpoints: &mut Vec<NodeId>, u, v| {
        adjacency[u as usize].push(v);
        adjacency[v as usize].push(u);
        endpoints.push(u);
        endpoints.push(v);
    };
    // Seed clique on the first `attach + 1` vertices.
    for u in 0..m0 {
        for v in (u + 1)..m0 {
            add(&mut adjacency, &mut endpoints, ids::nid(u), ids::nid(v));
        }
    }
    for u in m0..n {
        let u = ids::nid(u);
        let mut last_target: Option<NodeId> = None;
        let mut added = 0usize;
        let mut attempts = 0usize;
        while added < attach && attempts < 8 * attach {
            attempts += 1;
            let triad = added > 0 && rng.gen::<f64>() < triad_p;
            let candidate = if triad {
                // Close a triangle: a random neighbour of the previous target.
                let t = last_target.expect("triad steps follow an attachment");
                let nbrs = &adjacency[t as usize];
                nbrs[rng.gen_range(0..nbrs.len())]
            } else {
                endpoints[rng.gen_range(0..endpoints.len())]
            };
            if candidate == u || adjacency[u as usize].contains(&candidate) {
                continue;
            }
            add(&mut adjacency, &mut endpoints, u, candidate);
            last_target = Some(candidate);
            added += 1;
        }
    }
    let mut b = CsrGraphBuilder::new(n);
    for (u, neighbors) in adjacency.iter().enumerate() {
        let un = ids::nid(u);
        for &v in neighbors {
            if un < v {
                b.add_edge(un, v, 1);
            }
        }
    }
    b.build()
}

/// Power-law random graph standing in for the random hyperbolic (`rhg`) family.
///
/// Generates a degree sequence from a power law with exponent `gamma`, then pairs stubs
/// uniformly at random (configuration-model style, dropping self-loops and merging
/// multi-edges). Produces the skewed degree distribution with high-degree hubs that
/// models real-world social networks, as the paper describes for rhg graphs.
pub fn rhg_like(n: usize, avg_deg: usize, gamma: f64, seed: u64) -> CsrGraph {
    assert!(n >= 2);
    ids::assert_node_count(n, "rhg_like");
    assert!(gamma > 2.0, "power-law exponent must exceed 2");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    // Sample degrees proportional to a Pareto distribution, clamp to [1, n/4], and scale
    // to the requested average degree.
    let alpha = gamma - 1.0;
    let raw: Vec<f64> = (0..n)
        .map(|_| {
            let u: f64 = rng.gen_range(1e-9..1.0);
            u.powf(-1.0 / alpha)
        })
        .collect();
    let raw_sum: f64 = raw.iter().sum();
    let target_sum = (n * avg_deg) as f64;
    let max_deg = (n / 4).max(2) as f64;
    let mut degrees: Vec<usize> = raw
        .iter()
        .map(|&r| ((r / raw_sum * target_sum).round() as usize).clamp(1, max_deg as usize))
        .collect();
    // Make the stub count even.
    let total: usize = degrees.iter().sum();
    if total % 2 == 1 {
        degrees[0] += 1;
    }
    let mut stubs: Vec<NodeId> = Vec::with_capacity(degrees.iter().sum());
    for (u, &d) in degrees.iter().enumerate() {
        stubs.extend(std::iter::repeat_n(ids::nid(u), d));
    }
    stubs.shuffle(&mut rng);
    let mut b = CsrGraphBuilder::new(n);
    for pair in stubs.chunks_exact(2) {
        if pair[0] != pair[1] {
            b.add_edge(pair[0], pair[1], 1);
        }
    }
    b.build()
}

/// R-MAT style "web-like" graph: recursive quadrant sampling with the classic
/// `(a, b, c, d) = (0.57, 0.19, 0.19, 0.05)` parameters, which yields hubs, a heavy-tailed
/// degree distribution and locality in the ID space — the structural properties of the
/// paper's web crawl instances (Benchmark Set B).
pub fn weblike(scale: u32, avg_deg: usize, seed: u64) -> CsrGraph {
    let mut builder = CsrGraphBuilder::new(1usize << scale);
    for_each_rmat_edge(scale, avg_deg, seed, &mut |u, v| builder.add_edge(u, v, 1));
    builder.build()
}

/// Invokes `f(u, v)` for every sampled R-MAT edge [`weblike`] would add for the same
/// parameters (self-loop samples are skipped, duplicates are emitted as sampled). The
/// sampler keeps no per-edge state, so the streaming `.tpg` generator
/// ([`crate::store::stream_rmat_to_tpg`]) can produce graphs far larger than the memory
/// an in-memory build would need — while remaining bit-identical to [`weblike`] for a
/// fixed seed (duplicate samples merge into edge weights either way).
pub fn for_each_rmat_edge(
    scale: u32,
    avg_deg: usize,
    seed: u64,
    f: &mut dyn FnMut(NodeId, NodeId),
) {
    try_for_each_rmat_edge(scale, avg_deg, seed, &mut |u, v| {
        f(u, v);
        true
    });
}

/// [`for_each_rmat_edge`] with a visitor that can stop the stream: returning `false`
/// aborts sampling immediately (e.g. the streaming `.tpg` builder stops driving the
/// sampler once a spill I/O error is recorded). Returns `false` iff the visitor
/// stopped early.
pub fn try_for_each_rmat_edge(
    scale: u32,
    avg_deg: usize,
    seed: u64,
    f: &mut dyn FnMut(NodeId, NodeId) -> bool,
) -> bool {
    let n = 1usize << scale;
    ids::assert_node_count(n, "rmat");
    let m = n * avg_deg / 2;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let (a, b_, c) = (0.57, 0.19, 0.19);
    for _ in 0..m {
        let (mut u, mut v) = (0usize, 0usize);
        for level in (0..scale).rev() {
            let r: f64 = rng.gen();
            let bit = 1usize << level;
            if r < a {
                // upper-left quadrant: no bits set
            } else if r < a + b_ {
                v |= bit;
            } else if r < a + b_ + c {
                u |= bit;
            } else {
                u |= bit;
                v |= bit;
            }
        }
        if u != v && !f(ids::nid(u), ids::nid(v)) {
            return false;
        }
    }
    true
}

/// Rebuilds `graph` with uniformly random edge weights in `1..=max_weight`.
/// Used to model the weighted "text compression" instances of Benchmark Set A.
pub fn with_random_edge_weights(graph: &CsrGraph, max_weight: EdgeWeight, seed: u64) -> CsrGraph {
    use crate::traits::Graph;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut b = CsrGraphBuilder::new(graph.n());
    for u in 0..graph.n() as NodeId {
        graph.for_each_neighbor(u, &mut |v, _| {
            if u < v {
                b.add_edge(u, v, rng.gen_range(1..=max_weight));
            }
        });
    }
    b.build()
}

/// Rebuilds `graph` with uniformly random node weights in `1..=max_weight`.
pub fn with_random_node_weights(graph: &CsrGraph, max_weight: u64, seed: u64) -> CsrGraph {
    use crate::traits::Graph;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let weights: Vec<u64> = (0..graph.n())
        .map(|_| rng.gen_range(1..=max_weight))
        .collect();
    let mut b = CsrGraphBuilder::with_node_weights(weights);
    for u in 0..graph.n() as NodeId {
        graph.for_each_neighbor(u, &mut |v, w| {
            if u < v {
                b.add_edge(u, v, w);
            }
        });
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::Graph;

    #[test]
    fn grid_has_expected_shape() {
        let g = grid2d(4, 5);
        assert_eq!(g.n(), 20);
        // Horizontal edges: 4 * 4, vertical edges: 3 * 5.
        assert_eq!(g.m(), 16 + 15);
        assert_eq!(g.max_degree(), 4);
        assert!(g.is_symmetric());
    }

    #[test]
    fn grid3d_has_expected_edges() {
        let g = grid3d(3, 3, 3);
        assert_eq!(g.n(), 27);
        assert_eq!(g.m(), 3 * (2 * 3 * 3));
        assert_eq!(g.max_degree(), 6);
    }

    #[test]
    fn path_and_cycle() {
        let p = path(10);
        assert_eq!(p.m(), 9);
        assert_eq!(p.degree(0), 1);
        assert_eq!(p.degree(5), 2);
        let c = cycle(10);
        assert_eq!(c.m(), 10);
        assert!((0..10).all(|u| c.degree(u) == 2));
    }

    #[test]
    fn complete_and_star() {
        let k = complete(6);
        assert_eq!(k.m(), 15);
        assert!((0..6).all(|u| k.degree(u) == 5));
        let s = star(6);
        assert_eq!(s.m(), 5);
        assert_eq!(s.degree(0), 5);
        assert_eq!(s.degree(1), 1);
    }

    #[test]
    fn clique_chain_structure() {
        let g = clique_chain(3, 4);
        assert_eq!(g.n(), 12);
        // 3 cliques of 6 edges each plus 2 bridges.
        assert_eq!(g.m(), 3 * 6 + 2);
    }

    #[test]
    fn erdos_renyi_is_deterministic() {
        let a = erdos_renyi(100, 300, 7);
        let b = erdos_renyi(100, 300, 7);
        assert_eq!(a, b);
        let c = erdos_renyi(100, 300, 8);
        assert!(a.m() > 0);
        assert_ne!(a, c);
    }

    #[test]
    fn rgg2d_has_reasonable_degree_and_locality() {
        let g = rgg2d(2000, 16, 3);
        assert_eq!(g.n(), 2000);
        let avg = 2.0 * g.m() as f64 / g.n() as f64;
        assert!(
            avg > 4.0 && avg < 40.0,
            "average degree {} out of range",
            avg
        );
        // No high-degree hubs in a geometric graph.
        assert!(g.max_degree() < 100);
    }

    #[test]
    fn rhg_like_has_skewed_degrees() {
        let g = rhg_like(2000, 16, 3.0, 11);
        assert_eq!(g.n(), 2000);
        let avg = 2.0 * g.m() as f64 / g.n() as f64;
        assert!(avg > 2.0, "average degree too small: {}", avg);
        // Power-law graphs have hubs well above the average degree.
        assert!(
            g.max_degree() > 4 * avg as usize,
            "max degree {} not skewed",
            g.max_degree()
        );
    }

    #[test]
    fn weblike_is_heavy_tailed_and_deterministic() {
        let g = weblike(10, 8, 5);
        assert_eq!(g.n(), 1024);
        assert!(g.m() > 1000);
        assert!(g.max_degree() > 20);
        assert_eq!(g, weblike(10, 8, 5));
    }

    #[test]
    fn edge_samplers_short_circuit_when_the_visitor_stops() {
        // A visitor that fails (an I/O error in the streaming builder) must stop the
        // sampler immediately instead of driving the generator to completion.
        let mut seen = 0usize;
        let completed = try_for_each_rmat_edge(10, 8, 3, &mut |_, _| {
            seen += 1;
            seen < 5
        });
        assert!(
            !completed,
            "visitor stopped, sampler must report early exit"
        );
        assert_eq!(seen, 5, "sampler kept emitting after the visitor stopped");

        let mut seen = 0usize;
        let completed = try_for_each_rgg2d_edge(2000, 12, 7, &mut |_, _| {
            seen += 1;
            seen < 5
        });
        assert!(!completed);
        assert_eq!(seen, 5);

        // A visitor that never stops sees the full stream and `true`.
        let mut total = 0usize;
        assert!(try_for_each_rmat_edge(8, 6, 3, &mut |_, _| {
            total += 1;
            true
        }));
        assert!(total > 0);
    }

    #[test]
    fn rgg3d_is_geometric_and_deterministic() {
        let g = rgg3d(1500, 10, 7);
        assert_eq!(g.n(), 1500);
        let avg = 2.0 * g.m() as f64 / g.n() as f64;
        assert!(
            (4.0..20.0).contains(&avg),
            "average degree {} far from requested 10",
            avg
        );
        assert_eq!(g, rgg3d(1500, 10, 7));
        // Streaming sampler emits exactly the in-memory edge set.
        let mut streamed = 0usize;
        for_each_rgg3d_edge(1500, 10, 7, &mut |_, _| streamed += 1);
        assert_eq!(streamed, g.m());
        // Cell-order IDs give neighbour locality: most edges are short in ID space.
        let mut local = 0usize;
        let mut total = 0usize;
        for u in 0..g.n() as NodeId {
            crate::traits::Graph::for_each_neighbor(&g, u, &mut |v, _| {
                total += 1;
                if (v as i64 - u as i64).unsigned_abs() < 300 {
                    local += 1;
                }
            });
        }
        assert!(local * 2 > total, "IDs lack locality: {}/{}", local, total);
    }

    #[test]
    fn rgg3d_sampler_short_circuits() {
        let mut seen = 0usize;
        let completed = try_for_each_rgg3d_edge(1200, 10, 3, &mut |_, _| {
            seen += 1;
            seen < 5
        });
        assert!(!completed);
        assert_eq!(seen, 5);
    }

    #[test]
    fn powerlaw_cluster_is_skewed_clustered_and_deterministic() {
        let g = powerlaw_cluster(2000, 4, 0.6, 11);
        assert_eq!(g.n(), 2000);
        assert!(g.m() >= 2000 * 3, "too few edges: {}", g.m());
        assert!(
            g.max_degree() > 40,
            "degree distribution not skewed: max {}",
            g.max_degree()
        );
        assert_eq!(g, powerlaw_cluster(2000, 4, 0.6, 11));
        // Triad formation must produce many triangles; the configuration-model
        // power-law family has almost none. Count wedges closed at a sample of
        // vertices.
        let triangles = |g: &CsrGraph| {
            let mut count = 0usize;
            for u in (0..g.n() as NodeId).step_by(17) {
                let nbrs = crate::traits::Graph::neighbors_vec(g, u);
                for i in 0..nbrs.len().min(20) {
                    for j in (i + 1)..nbrs.len().min(20) {
                        let (a, b) = (nbrs[i].0, nbrs[j].0);
                        if crate::traits::Graph::neighbors_vec(g, a)
                            .iter()
                            .any(|&(x, _)| x == b)
                        {
                            count += 1;
                        }
                    }
                }
            }
            count
        };
        let clustered = triangles(&g);
        let unclustered = triangles(&rhg_like(2000, 8, 2.8, 11));
        assert!(
            clustered > 4 * unclustered.max(1),
            "expected far more triangles than the configuration model: {} vs {}",
            clustered,
            unclustered
        );
    }

    #[test]
    fn random_weights_preserve_structure() {
        let g = grid2d(6, 6);
        let w = with_random_edge_weights(&g, 50, 1);
        assert_eq!(g.n(), w.n());
        assert_eq!(g.m(), w.m());
        assert!(w.is_edge_weighted());
        let nw = with_random_node_weights(&g, 9, 2);
        assert_eq!(nw.n(), g.n());
        assert!(nw.is_node_weighted());
        assert!(nw.total_node_weight() >= g.total_node_weight());
    }
}
