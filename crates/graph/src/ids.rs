//! Graph index widths: the single place that decides how wide a vertex ID is.
//!
//! The paper's tera-scale experiments use 64-bit vertex IDs; the reproduction's default
//! regime is 32-bit (half the memory per id-indexed array, which is most of the resident
//! footprint). The `wide-ids` cargo feature switches [`NodeId`] — and everything derived
//! from it — to `u64`, lifting the vertex-count ceiling from 2^31 to 2^63 without any
//! other source change: every layer (coarsening, storage, I/O, pipeline) is written
//! against the aliases and helpers of this module instead of a concrete integer type.
//!
//! # The width contract
//!
//! * Valid vertex IDs and cluster labels live in `0..`[`MAX_NODE_COUNT`], which is
//!   2^(width − 1): the **top bit of the active width** is reserved as an in-place
//!   marking sentinel (see [`mark`] / [`unmark`] / [`is_marked`]), used by
//!   `Clustering::from_labels`-style allocation-free distinct counting, and
//!   [`INVALID_NODE`] (`NodeId::MAX`) is reserved as the "no vertex" sentinel.
//! * [`EdgeId`](crate::EdgeId) and the weight types are *always* `u64`: even a graph
//!   whose vertex count fits 32 bits can carry more than 2^32 half-edges or a total
//!   weight beyond 2^32, so those never had a narrow variant to begin with.
//! * Conversions **into** `NodeId` from untrusted sources (file counts, generator
//!   parameters) go through the checked helpers ([`nid`], [`assert_node_count`],
//!   [`node_count_supported`]) so truncation fails loudly, naming the offending value,
//!   instead of silently wrapping.

#[cfg(not(feature = "wide-ids"))]
mod width {
    /// Identifier of a vertex (32-bit default regime).
    pub type NodeId = u32;
    /// Atomic cell holding a [`NodeId`].
    pub type AtomicNodeId = std::sync::atomic::AtomicU32;
}

#[cfg(feature = "wide-ids")]
mod width {
    /// Identifier of a vertex (64-bit tera-scale regime).
    pub type NodeId = u64;
    /// Atomic cell holding a [`NodeId`].
    pub type AtomicNodeId = std::sync::atomic::AtomicU64;
}

pub use width::{AtomicNodeId, NodeId};

/// Identifier of a cluster during coarsening. Cluster labels are vertex IDs of the
/// clustered graph, so the type is — and must remain — exactly [`NodeId`].
pub type ClusterId = NodeId;

/// Width of the active [`NodeId`] in bytes (4 or 8); recorded in the `.tpg` container
/// header so files are self-describing.
pub const NODE_ID_BYTES: u8 = (NodeId::BITS / 8) as u8;

/// Sentinel for "no vertex" (used e.g. by contraction's label→coarse-ID remap).
pub const INVALID_NODE: NodeId = NodeId::MAX;

/// The top bit of the active width, reserved pipeline-wide as an in-place marking
/// sentinel. Never a valid vertex ID or cluster label.
pub const ID_MARK_BIT: NodeId = 1 << (NodeId::BITS - 1);

/// Largest supported vertex count: all IDs must stay strictly below [`ID_MARK_BIT`]
/// so the marking helpers and [`INVALID_NODE`] can never collide with a real ID.
/// 2^31 at the default width, 2^63 under `wide-ids`.
pub const MAX_NODE_COUNT: usize = {
    // At the 64-bit width the mark bit (2^63) still fits a 64-bit usize exactly.
    let cap = ID_MARK_BIT as u128;
    if cap > usize::MAX as u128 {
        usize::MAX
    } else {
        cap as usize
    }
};

/// Marks `id` by setting the reserved top bit.
#[inline]
pub const fn mark(id: NodeId) -> NodeId {
    id | ID_MARK_BIT
}

/// Clears the reserved top bit of `id`.
#[inline]
pub const fn unmark(id: NodeId) -> NodeId {
    id & !ID_MARK_BIT
}

/// Whether the reserved top bit of `id` is set.
#[inline]
pub const fn is_marked(id: NodeId) -> bool {
    id & ID_MARK_BIT != 0
}

/// Whether a graph with `n` vertices is representable at the active width.
#[inline]
pub const fn node_count_supported(n: usize) -> bool {
    n <= MAX_NODE_COUNT
}

/// Asserts that a graph with `n` vertices is representable at the active width,
/// panicking with a message that names the offending count and the remedy.
#[track_caller]
#[inline]
pub fn assert_node_count(n: usize, context: &str) {
    assert!(
        node_count_supported(n),
        "{}: vertex count {} exceeds the {}-bit NodeId limit of {} \
         (rebuild with `--features wide-ids` for 64-bit IDs)",
        context,
        n,
        NodeId::BITS,
        MAX_NODE_COUNT,
    );
}

/// Checked `usize` → [`NodeId`] conversion; panics (naming the offending value) on
/// truncation or on a value that collides with the reserved sentinel range.
#[track_caller]
#[inline]
pub fn nid(value: usize) -> NodeId {
    match NodeId::try_from(value) {
        Ok(id) if value < MAX_NODE_COUNT => id,
        _ => panic!(
            "value {} is not a valid {}-bit node id (limit {}; rebuild with \
             `--features wide-ids` for 64-bit IDs)",
            value,
            NodeId::BITS,
            MAX_NODE_COUNT,
        ),
    }
}

/// Checked `usize` → [`NodeId`] conversion for *count*-valued quantities (array
/// lengths, exclusive range ends, the final CSR offset): unlike [`nid`], the limit
/// [`MAX_NODE_COUNT`] itself is admissible — a maximal graph has `n == MAX_NODE_COUNT`
/// and its counts must still be representable even though no *id* may take that value.
#[track_caller]
#[inline]
pub fn nid_count(value: usize) -> NodeId {
    match NodeId::try_from(value) {
        Ok(count) if value <= MAX_NODE_COUNT => count,
        _ => panic!(
            "count {} exceeds the {}-bit NodeId limit of {} (rebuild with \
             `--features wide-ids` for 64-bit IDs)",
            value,
            NodeId::BITS,
            MAX_NODE_COUNT,
        ),
    }
}

/// Widens a [`NodeId`] into the 64-bit domain of the codecs and message payloads.
/// Identity under `wide-ids`; lossless widening at the default width. Spelled as a
/// function so width-generic call sites don't trip per-width "useless conversion"
/// lints.
#[inline]
pub fn widen(id: NodeId) -> u64 {
    #[allow(clippy::unnecessary_cast)]
    {
        id as u64
    }
}

/// The bit-layout contract of an ID width, for the few places that genuinely care about
/// layout rather than arithmetic (the `.tpg` header, packed sort keys, mark sentinels).
/// Implemented for both supported widths so layout-sensitive code can be written — and
/// tested — against either width regardless of which one the build selected.
pub trait IdWidth: Copy + Ord + Sized {
    /// Width in bits.
    const BITS: u32;
    /// Width in bytes, as recorded in the `.tpg` header.
    const BYTES: u8;
    /// The reserved top bit of this width.
    const MARK_BIT: Self;
    /// Largest vertex count addressable at this width (IDs stay below the mark bit).
    const MAX_COUNT: u128;
    /// Widening conversion for codecs (VarInt encoding is always 64-bit).
    fn to_u64(self) -> u64;
    /// Checked narrowing from the 64-bit codec domain.
    fn from_u64(value: u64) -> Option<Self>;
}

impl IdWidth for u32 {
    const BITS: u32 = 32;
    const BYTES: u8 = 4;
    const MARK_BIT: Self = 1 << 31;
    const MAX_COUNT: u128 = 1 << 31;

    #[inline]
    fn to_u64(self) -> u64 {
        u64::from(self)
    }

    #[inline]
    fn from_u64(value: u64) -> Option<Self> {
        Self::try_from(value).ok()
    }
}

impl IdWidth for u64 {
    const BITS: u32 = 64;
    const BYTES: u8 = 8;
    const MARK_BIT: Self = 1 << 63;
    const MAX_COUNT: u128 = 1 << 63;

    #[inline]
    fn to_u64(self) -> u64 {
        self
    }

    #[inline]
    fn from_u64(value: u64) -> Option<Self> {
        Some(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn active_width_is_consistent() {
        assert_eq!(NODE_ID_BYTES, <NodeId as IdWidth>::BYTES);
        assert_eq!(NodeId::BITS, <NodeId as IdWidth>::BITS);
        assert_eq!(ID_MARK_BIT, <NodeId as IdWidth>::MARK_BIT);
        assert_eq!(MAX_NODE_COUNT as u128, <NodeId as IdWidth>::MAX_COUNT);
        #[cfg(not(feature = "wide-ids"))]
        assert_eq!(NodeId::BITS, 32);
        #[cfg(feature = "wide-ids")]
        assert_eq!(NodeId::BITS, 64);
    }

    #[test]
    fn mark_helpers_round_trip_at_boundaries() {
        // The satellite boundary cases: 0, MAX/2 (the mark bit itself is MAX/2 + 1, so
        // MAX/2 is the largest markable value), and MAX−1 at the active width.
        let max_id = (MAX_NODE_COUNT - 1) as NodeId;
        for id in [0 as NodeId, 1, max_id / 2, max_id - 1, max_id] {
            assert!(!is_marked(id), "valid id {} must start unmarked", id);
            let m = mark(id);
            assert!(is_marked(m), "mark({}) lost the sentinel", id);
            assert_eq!(unmark(m), id, "unmark(mark({})) must round-trip", id);
            assert_eq!(unmark(id), id, "unmark of an unmarked id is a no-op");
            assert_eq!(mark(m), m, "mark is idempotent");
        }
    }

    #[test]
    fn both_width_impls_agree_on_layout() {
        assert_eq!(<u32 as IdWidth>::MARK_BIT, 1u32 << 31);
        assert_eq!(<u64 as IdWidth>::MARK_BIT, 1u64 << 63);
        assert_eq!(<u32 as IdWidth>::BYTES, 4);
        assert_eq!(<u64 as IdWidth>::BYTES, 8);
        assert_eq!(
            <u32 as IdWidth>::from_u64(u64::from(u32::MAX)),
            Some(u32::MAX)
        );
        assert_eq!(<u32 as IdWidth>::from_u64(u64::from(u32::MAX) + 1), None);
        assert_eq!(<u64 as IdWidth>::from_u64(u64::MAX), Some(u64::MAX));
        assert_eq!(123u32.to_u64(), 123);
        assert_eq!(123u64.to_u64(), 123);
    }

    #[test]
    fn checked_conversions_accept_valid_and_name_offenders() {
        assert_eq!(nid(0), 0);
        assert_eq!(nid(MAX_NODE_COUNT - 1), (MAX_NODE_COUNT - 1) as NodeId);
        assert!(node_count_supported(MAX_NODE_COUNT));
        assert!(!node_count_supported(MAX_NODE_COUNT + 1));
        assert_node_count(MAX_NODE_COUNT, "limit itself is fine");
        assert_eq!(nid_count(MAX_NODE_COUNT), MAX_NODE_COUNT as NodeId);
        let err = std::panic::catch_unwind(|| nid_count(MAX_NODE_COUNT + 1)).unwrap_err();
        let msg = err
            .downcast_ref::<String>()
            .expect("panic carries a message");
        assert!(
            msg.contains(&(MAX_NODE_COUNT + 1).to_string()),
            "panic message must name the offending count: {}",
            msg
        );
        let err = std::panic::catch_unwind(|| nid(MAX_NODE_COUNT)).unwrap_err();
        let msg = err
            .downcast_ref::<String>()
            .expect("panic carries a message");
        assert!(
            msg.contains(&MAX_NODE_COUNT.to_string()),
            "panic message must name the offending value: {}",
            msg
        );
        let err =
            std::panic::catch_unwind(|| assert_node_count(MAX_NODE_COUNT + 1, "test")).unwrap_err();
        let msg = err
            .downcast_ref::<String>()
            .expect("panic carries a message");
        assert!(msg.contains("wide-ids"), "remedy missing from: {}", msg);
    }

    proptest! {
        // Sentinel round-trip across the whole valid id range, at the active width.
        #[test]
        fn prop_mark_unmark_round_trip(raw in any::<u64>()) {
            let id = (raw % MAX_NODE_COUNT as u64) as NodeId;
            prop_assert!(!is_marked(id));
            prop_assert!(is_marked(mark(id)));
            prop_assert_eq!(unmark(mark(id)), id);
        }

        // The same property checked explicitly at BOTH widths through the trait, so the
        // 64-bit layout is exercised even in a default-width test run.
        #[test]
        fn prop_mark_bit_disjoint_from_ids_both_widths(raw in any::<u64>()) {
            let id32 = (raw % <u32 as IdWidth>::MAX_COUNT as u64) as u32;
            prop_assert_eq!(id32 & <u32 as IdWidth>::MARK_BIT, 0);
            prop_assert_eq!((id32 | <u32 as IdWidth>::MARK_BIT) & !<u32 as IdWidth>::MARK_BIT, id32);
            let id64 = raw % <u64 as IdWidth>::MAX_COUNT as u64;
            prop_assert_eq!(id64 & <u64 as IdWidth>::MARK_BIT, 0);
            prop_assert_eq!((id64 | <u64 as IdWidth>::MARK_BIT) & !<u64 as IdWidth>::MARK_BIT, id64);
        }
    }
}
