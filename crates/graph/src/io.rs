//! Graph I/O: METIS text format, a simple binary format, and streaming compression.
//!
//! The paper stores its instances in an uncompressed binary format on disk and compresses
//! them *during* the single streaming pass into memory (§III-B). [`read_metis_compressed`]
//! and [`read_binary_compressed`] reproduce that flow: neighbourhoods are encoded as they
//! are parsed, so the uncompressed graph never exists in memory.

use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::compressed::{encode_neighborhood, CompressedGraph, CompressionConfig};
use crate::csr::{CsrGraph, CsrGraphBuilder};
use crate::ids;
use crate::traits::Graph;
use crate::{EdgeId, EdgeWeight, NodeId, NodeWeight};

/// Magic bytes of the binary graph format.
pub(crate) const BINARY_MAGIC: &[u8; 4] = b"TPGB";
/// Version of the binary graph format.
const BINARY_VERSION: u32 = 1;

/// Errors produced by the I/O routines.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file is syntactically or semantically malformed.
    Format(String),
    /// The bytes were read successfully but failed checksum verification. Unlike
    /// [`IoError::Format`] this is treated as *transient* by retrying readers: a bit
    /// flipped in flight (bus, cable, controller) heals on a clean re-read, while
    /// persistent on-disk corruption exhausts the retry budget and still surfaces
    /// structurally.
    Corrupt(String),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "I/O error: {}", e),
            IoError::Format(msg) => write!(f, "format error: {}", msg),
            IoError::Corrupt(msg) => write!(f, "corruption detected: {}", msg),
        }
    }
}

impl std::error::Error for IoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IoError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl IoError {
    /// `true` when retrying the failed operation could plausibly succeed: transient
    /// I/O errors (interrupted syscalls, `EIO` from a momentarily unhappy device) and
    /// checksum mismatches. Structural errors — malformed files, out-of-range reads,
    /// missing paths, permission failures — are permanent and retrying them only
    /// delays the structured failure.
    pub fn is_transient(&self) -> bool {
        match self {
            IoError::Io(e) => io_error_is_transient(e),
            IoError::Format(_) => false,
            IoError::Corrupt(_) => true,
        }
    }
}

/// Retryability of an open-time failure — wider than [`IoError::is_transient`]:
/// a corrupted header or index *read* parses into arbitrary format/EOF errors
/// before any checksum can vouch for the bytes, and only a clean re-read
/// distinguishes that from a genuinely malformed file. Everything except the
/// errors that describe the request rather than the data (missing path,
/// permissions, invalid arguments) is worth the retry budget; retrying a truly
/// bad file costs a few extra small reads before the same structured error.
pub(crate) fn open_error_is_retryable(e: &IoError) -> bool {
    match e {
        IoError::Format(_) | IoError::Corrupt(_) => true,
        IoError::Io(err) => !matches!(
            err.kind(),
            io::ErrorKind::NotFound
                | io::ErrorKind::PermissionDenied
                | io::ErrorKind::InvalidInput
                | io::ErrorKind::Unsupported
        ),
    }
}

/// Retryability of a raw [`io::Error`]: everything except the kinds that describe a
/// structural property of the file or the request (which no retry can change).
pub(crate) fn io_error_is_transient(e: &io::Error) -> bool {
    !matches!(
        e.kind(),
        io::ErrorKind::UnexpectedEof
            | io::ErrorKind::NotFound
            | io::ErrorKind::PermissionDenied
            | io::ErrorKind::InvalidInput
            | io::ErrorKind::InvalidData
            | io::ErrorKind::Unsupported
    )
}

impl From<io::Error> for IoError {
    fn from(e: io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Checked conversion of a vertex count read from a file into the active ID width,
/// failing loudly — naming the offending count — instead of truncating.
pub(crate) fn checked_node_count(n: usize, what: &str) -> Result<usize, IoError> {
    if ids::node_count_supported(n) {
        Ok(n)
    } else {
        Err(IoError::Format(format!(
            "{} {} exceeds the {}-bit NodeId limit of {} (rebuild with `--features wide-ids`)",
            what,
            n,
            NodeId::BITS,
            ids::MAX_NODE_COUNT,
        )))
    }
}

/// Checked conversion of a vertex index read from a file into a [`NodeId`], failing
/// loudly — naming the offending index — instead of truncating.
pub(crate) fn checked_node_id(value: usize, what: &str) -> Result<NodeId, IoError> {
    match NodeId::try_from(value) {
        Ok(id) if value < ids::MAX_NODE_COUNT => Ok(id),
        _ => Err(IoError::Format(format!(
            "{} {} does not fit the {}-bit NodeId width (rebuild with `--features wide-ids`)",
            what,
            value,
            NodeId::BITS,
        ))),
    }
}

/// Checked narrowing of a [`NodeId`] into the 32-bit on-disk binary format, failing
/// loudly — naming the offending id — instead of truncating. (At the default width the
/// conversion is the identity; the `try_from` spelling keeps one code path per width.)
#[allow(clippy::useless_conversion)]
fn checked_binary_id(value: NodeId, what: &str) -> Result<u32, IoError> {
    u32::try_from(value).map_err(|_| {
        IoError::Format(format!(
            "{} {} does not fit the 32-bit on-disk binary format (use the .tpg container \
             for 64-bit instances)",
            what, value,
        ))
    })
}

/// Writes `graph` in the METIS text format.
///
/// The header is `n m [fmt]` where `fmt` is `1` for edge weights, `10` for node weights,
/// `11` for both. Vertex lines list neighbours 1-indexed, each followed by its edge
/// weight when edge weights are present.
pub fn write_metis(graph: &CsrGraph, path: impl AsRef<Path>) -> Result<(), IoError> {
    let file = File::create(path)?;
    let mut w = BufWriter::new(file);
    let fmt = match (graph.is_node_weighted(), graph.is_edge_weighted()) {
        (false, false) => String::new(),
        (false, true) => " 1".to_string(),
        (true, false) => " 10".to_string(),
        (true, true) => " 11".to_string(),
    };
    writeln!(w, "{} {}{}", graph.n(), graph.m(), fmt)?;
    for u in 0..graph.n() as NodeId {
        let mut line = String::new();
        if graph.is_node_weighted() {
            line.push_str(&format!("{} ", graph.node_weight(u)));
        }
        graph.for_each_neighbor(u, &mut |v, wt| {
            line.push_str(&format!("{} ", v + 1));
            if graph.is_edge_weighted() {
                line.push_str(&format!("{} ", wt));
            }
        });
        writeln!(w, "{}", line.trim_end())?;
    }
    Ok(())
}

/// Parsed METIS header.
pub(crate) struct MetisHeader {
    pub(crate) n: usize,
    pub(crate) m: usize,
    pub(crate) has_node_weights: bool,
    pub(crate) has_edge_weights: bool,
}

pub(crate) fn parse_metis_header(line: &str) -> Result<MetisHeader, IoError> {
    let mut it = line.split_whitespace();
    let n: usize = it
        .next()
        .ok_or_else(|| IoError::Format("missing vertex count".into()))?
        .parse()
        .map_err(|_| IoError::Format("invalid vertex count".into()))?;
    let m: usize = it
        .next()
        .ok_or_else(|| IoError::Format("missing edge count".into()))?
        .parse()
        .map_err(|_| IoError::Format("invalid edge count".into()))?;
    let fmt = it.next().unwrap_or("0");
    let (has_node_weights, has_edge_weights) = match fmt {
        "0" | "00" | "" => (false, false),
        "1" | "01" => (false, true),
        "10" => (true, false),
        "11" => (true, true),
        other => {
            return Err(IoError::Format(format!(
                "unsupported fmt field '{}'",
                other
            )))
        }
    };
    Ok(MetisHeader {
        n,
        m,
        has_node_weights,
        has_edge_weights,
    })
}

/// Reads a graph in the METIS text format into a CSR graph.
pub fn read_metis(path: impl AsRef<Path>) -> Result<CsrGraph, IoError> {
    let file = File::open(path)?;
    let reader = BufReader::new(file);
    let mut lines = reader.lines().filter(|l| {
        l.as_ref()
            .map(|s| !s.trim_start().starts_with('%'))
            .unwrap_or(true)
    });
    let header_line = lines
        .next()
        .ok_or_else(|| IoError::Format("empty file".into()))??;
    let header = parse_metis_header(&header_line)?;
    checked_node_count(header.n, "METIS vertex count")?;
    let mut builder = CsrGraphBuilder::new(header.n);
    for u in 0..header.n {
        let line = lines
            .next()
            .ok_or_else(|| IoError::Format(format!("missing line for vertex {}", u + 1)))??;
        let mut tokens = line.split_whitespace();
        if header.has_node_weights {
            let w: NodeWeight = tokens
                .next()
                .ok_or_else(|| IoError::Format("missing node weight".into()))?
                .parse()
                .map_err(|_| IoError::Format("invalid node weight".into()))?;
            builder.set_node_weight(checked_node_id(u, "METIS vertex")?, w);
        }
        while let Some(tok) = tokens.next() {
            let v: usize = tok
                .parse()
                .map_err(|_| IoError::Format(format!("invalid neighbor '{}'", tok)))?;
            if v == 0 || v > header.n {
                return Err(IoError::Format(format!("neighbor {} out of range", v)));
            }
            let weight: EdgeWeight = if header.has_edge_weights {
                tokens
                    .next()
                    .ok_or_else(|| IoError::Format("missing edge weight".into()))?
                    .parse()
                    .map_err(|_| IoError::Format("invalid edge weight".into()))?
            } else {
                1
            };
            // METIS files list every undirected edge in both endpoints' lines; add it
            // only once so the builder does not merge the two copies into weight 2w.
            if v - 1 > u {
                builder.add_edge(
                    checked_node_id(u, "METIS vertex")?,
                    checked_node_id(v - 1, "METIS neighbor")?,
                    weight,
                );
            }
        }
    }
    let graph = builder.build();
    if graph.m() != header.m {
        // METIS files may count each edge once; tolerate a mismatch but not silently.
        if graph.m() * 2 != header.m {
            return Err(IoError::Format(format!(
                "edge count mismatch: header says {}, file contains {}",
                header.m,
                graph.m()
            )));
        }
    }
    Ok(graph)
}

/// Visitor over the vertices of a METIS file: `(&header, u, node_weight, neighbors)`.
pub(crate) type MetisVertexVisitor<'a> = dyn FnMut(&MetisHeader, NodeId, NodeWeight, &[(NodeId, EdgeWeight)]) -> Result<(), IoError>
    + 'a;

/// Streams a METIS file one vertex at a time: `f(&header, u, node_weight, neighbors)`
/// is invoked for every vertex in ID order with its **sorted** neighbourhood (the
/// header is available from the first call, so encoders can fix weight handling up
/// front). Self-loops are dropped and duplicate neighbour entries merged by summing
/// their weights (matching [`CsrGraphBuilder`] semantics), so downstream encoders can
/// rely on a clean, strictly-increasing neighbour list. Shared by
/// [`read_metis_compressed`] and the `.tpg` converter
/// ([`crate::store::write_tpg_from_metis`]).
pub(crate) fn for_each_metis_vertex(
    path: impl AsRef<Path>,
    f: &mut MetisVertexVisitor<'_>,
) -> Result<MetisHeader, IoError> {
    let file = File::open(path)?;
    let reader = BufReader::new(file);
    let mut lines = reader.lines().filter(|l| {
        l.as_ref()
            .map(|s| !s.trim_start().starts_with('%'))
            .unwrap_or(true)
    });
    let header_line = lines
        .next()
        .ok_or_else(|| IoError::Format("empty file".into()))??;
    let header = parse_metis_header(&header_line)?;
    checked_node_count(header.n, "METIS vertex count")?;
    let mut nbrs: Vec<(NodeId, EdgeWeight)> = Vec::new();
    for u in 0..header.n {
        let line = lines
            .next()
            .ok_or_else(|| IoError::Format(format!("missing line for vertex {}", u + 1)))??;
        let mut tokens = line.split_whitespace();
        let node_weight: NodeWeight = if header.has_node_weights {
            tokens
                .next()
                .ok_or_else(|| IoError::Format("missing node weight".into()))?
                .parse()
                .map_err(|_| IoError::Format("invalid node weight".into()))?
        } else {
            1
        };
        nbrs.clear();
        while let Some(tok) = tokens.next() {
            let v: usize = tok
                .parse()
                .map_err(|_| IoError::Format(format!("invalid neighbor '{}'", tok)))?;
            if v == 0 || v > header.n {
                return Err(IoError::Format(format!("neighbor {} out of range", v)));
            }
            let weight: EdgeWeight = if header.has_edge_weights {
                tokens
                    .next()
                    .ok_or_else(|| IoError::Format("missing edge weight".into()))?
                    .parse()
                    .map_err(|_| IoError::Format("invalid edge weight".into()))?
            } else {
                1
            };
            if v - 1 != u {
                nbrs.push((checked_node_id(v - 1, "METIS neighbor")?, weight));
            }
        }
        nbrs.sort_unstable_by_key(|&(v, _)| v);
        crate::merge_sorted_duplicates(&mut nbrs);
        f(
            &header,
            checked_node_id(u, "METIS vertex")?,
            node_weight,
            &nbrs,
        )?;
    }
    Ok(header)
}

/// Reads a METIS file and compresses it on the fly in a single pass: each vertex line is
/// parsed and its neighbourhood immediately encoded, so no uncompressed adjacency array is
/// ever materialised.
pub fn read_metis_compressed(
    path: impl AsRef<Path>,
    config: &CompressionConfig,
) -> Result<CompressedGraph, IoError> {
    let mut offsets = vec![0u64];
    let mut data = Vec::new();
    let mut node_weights: Vec<NodeWeight> = Vec::new();
    let mut first_edge: EdgeId = 0;
    let mut total_edge_weight: EdgeWeight = 0;
    let mut max_degree = 0usize;
    let mut half_edges = 0usize;
    let header = for_each_metis_vertex(path, &mut |header, u, node_weight, nbrs| {
        if header.has_node_weights {
            node_weights.push(node_weight);
        }
        total_edge_weight += nbrs.iter().map(|&(_, w)| w).sum::<EdgeWeight>();
        max_degree = max_degree.max(nbrs.len());
        half_edges += nbrs.len();
        encode_neighborhood(
            u,
            first_edge,
            nbrs,
            header.has_edge_weights && config.compress_edge_weights,
            config,
            &mut data,
        );
        first_edge += nbrs.len() as EdgeId;
        offsets.push(data.len() as u64);
        Ok(())
    })?;
    let total_node_weight = if header.has_node_weights {
        node_weights.iter().sum()
    } else {
        header.n as NodeWeight
    };
    Ok(CompressedGraph::from_encoded_parts(
        header.n,
        half_edges / 2,
        offsets,
        data,
        node_weights,
        header.has_edge_weights,
        total_node_weight,
        total_edge_weight / 2,
        max_degree,
        config.clone(),
    ))
}

/// Writes `graph` in the binary format (`TPGB` magic, little-endian arrays).
pub fn write_binary(graph: &CsrGraph, path: impl AsRef<Path>) -> Result<(), IoError> {
    let file = File::create(path)?;
    let mut w = BufWriter::new(file);
    w.write_all(BINARY_MAGIC)?;
    w.write_all(&BINARY_VERSION.to_le_bytes())?;
    w.write_all(&(graph.n() as u64).to_le_bytes())?;
    w.write_all(&(graph.adjacency().len() as u64).to_le_bytes())?;
    let flags: u32 = (graph.is_edge_weighted() as u32) | ((graph.is_node_weighted() as u32) << 1);
    w.write_all(&flags.to_le_bytes())?;
    for &offset in graph.xadj() {
        w.write_all(&offset.to_le_bytes())?;
    }
    for &v in graph.adjacency() {
        w.write_all(&checked_binary_id(v, "adjacency entry")?.to_le_bytes())?;
    }
    if graph.is_edge_weighted() {
        for &ew in graph.raw_edge_weights() {
            w.write_all(&ew.to_le_bytes())?;
        }
    }
    if graph.is_node_weighted() {
        for &nw in graph.raw_node_weights() {
            w.write_all(&nw.to_le_bytes())?;
        }
    }
    Ok(())
}

pub(crate) fn read_exact_u64(r: &mut impl Read) -> Result<u64, IoError> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

pub(crate) fn read_exact_u32(r: &mut impl Read) -> Result<u32, IoError> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

/// Reads a graph written by [`write_binary`].
pub fn read_binary(path: impl AsRef<Path>) -> Result<CsrGraph, IoError> {
    let file = File::open(path)?;
    let mut r = BufReader::new(file);
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != BINARY_MAGIC {
        return Err(IoError::Format("bad magic".into()));
    }
    let version = read_exact_u32(&mut r)?;
    if version != BINARY_VERSION {
        return Err(IoError::Format(format!("unsupported version {}", version)));
    }
    let n = checked_node_count(read_exact_u64(&mut r)? as usize, "binary vertex count")?;
    let half_edges = read_exact_u64(&mut r)? as usize;
    let flags = read_exact_u32(&mut r)?;
    let edge_weighted = flags & 1 != 0;
    let node_weighted = flags & 2 != 0;
    let mut xadj = Vec::with_capacity(n + 1);
    for _ in 0..=n {
        xadj.push(read_exact_u64(&mut r)?);
    }
    let mut adjacency: Vec<NodeId> = Vec::with_capacity(half_edges);
    for _ in 0..half_edges {
        adjacency.push(NodeId::from(read_exact_u32(&mut r)?));
    }
    let mut edge_weights = Vec::new();
    if edge_weighted {
        edge_weights.reserve(half_edges);
        for _ in 0..half_edges {
            edge_weights.push(read_exact_u64(&mut r)?);
        }
    }
    let mut node_weights = Vec::new();
    if node_weighted {
        node_weights.reserve(n);
        for _ in 0..n {
            node_weights.push(read_exact_u64(&mut r)?);
        }
    }
    Ok(CsrGraph::from_parts(
        xadj,
        adjacency,
        edge_weights,
        node_weights,
    ))
}

/// Reads a binary graph and compresses it on the fly, one neighbourhood at a time.
/// This is the flow used for the huge-graph experiments: the CSR arrays of the whole graph
/// never exist in memory simultaneously (only one neighbourhood at a time is buffered).
pub fn read_binary_compressed(
    path: impl AsRef<Path>,
    config: &CompressionConfig,
) -> Result<CompressedGraph, IoError> {
    // The binary layout stores xadj before adjacency, so a strictly single-pass read is
    // possible by keeping only the offset array (O(n)) plus one neighbourhood buffer.
    let file = File::open(path)?;
    let mut r = BufReader::new(file);
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != BINARY_MAGIC {
        return Err(IoError::Format("bad magic".into()));
    }
    let version = read_exact_u32(&mut r)?;
    if version != BINARY_VERSION {
        return Err(IoError::Format(format!("unsupported version {}", version)));
    }
    let n = checked_node_count(read_exact_u64(&mut r)? as usize, "binary vertex count")?;
    let half_edges = read_exact_u64(&mut r)? as usize;
    let flags = read_exact_u32(&mut r)?;
    let edge_weighted = flags & 1 != 0;
    let node_weighted = flags & 2 != 0;
    let mut xadj = Vec::with_capacity(n + 1);
    for _ in 0..=n {
        xadj.push(read_exact_u64(&mut r)?);
    }
    // Adjacency: stream one neighbourhood at a time.
    let mut offsets = Vec::with_capacity(n + 1);
    offsets.push(0u64);
    let mut data = Vec::new();
    let mut max_degree = 0usize;
    // Edge weights are stored after the adjacency array in the file, so for weighted
    // graphs we must buffer neighbour IDs for a second sub-pass; for unweighted graphs
    // (the common huge-web-graph case) the compression is truly single-pass.
    let mut buffered: Vec<Vec<NodeId>> = Vec::new();
    for u in 0..n {
        let degree = (xadj[u + 1] - xadj[u]) as usize;
        max_degree = max_degree.max(degree);
        let mut nbrs: Vec<NodeId> = Vec::with_capacity(degree);
        for _ in 0..degree {
            nbrs.push(NodeId::from(read_exact_u32(&mut r)?));
        }
        nbrs.sort_unstable();
        if edge_weighted {
            buffered.push(nbrs);
        } else {
            let pairs: Vec<(NodeId, EdgeWeight)> = nbrs.into_iter().map(|v| (v, 1)).collect();
            encode_neighborhood(ids::nid(u), xadj[u], &pairs, false, config, &mut data);
            offsets.push(data.len() as u64);
        }
    }
    let mut total_edge_weight: EdgeWeight = (half_edges / 2) as EdgeWeight;
    if edge_weighted {
        let mut weights = Vec::with_capacity(half_edges);
        for _ in 0..half_edges {
            weights.push(read_exact_u64(&mut r)?);
        }
        total_edge_weight = weights.iter().sum::<EdgeWeight>() / 2;
        for (u, nbrs) in buffered.into_iter().enumerate() {
            let begin = xadj[u] as usize;
            let pairs: Vec<(NodeId, EdgeWeight)> = nbrs
                .iter()
                .enumerate()
                .map(|(i, &v)| (v, weights[begin + i]))
                .collect();
            encode_neighborhood(
                ids::nid(u),
                xadj[u],
                &pairs,
                config.compress_edge_weights,
                config,
                &mut data,
            );
            offsets.push(data.len() as u64);
        }
    }
    let mut node_weights = Vec::new();
    let mut total_node_weight = n as NodeWeight;
    if node_weighted {
        node_weights.reserve(n);
        for _ in 0..n {
            node_weights.push(read_exact_u64(&mut r)?);
        }
        total_node_weight = node_weights.iter().sum();
    }
    Ok(CompressedGraph::from_encoded_parts(
        n,
        half_edges / 2,
        offsets,
        data,
        node_weights,
        edge_weighted,
        total_node_weight,
        total_edge_weight,
        max_degree,
        config.clone(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("terapart_io_test_{}_{}", std::process::id(), name));
        p
    }

    fn assert_graph_eq_sorted(a: &CsrGraph, b: &CsrGraph) {
        assert_eq!(a.n(), b.n());
        assert_eq!(a.m(), b.m());
        for u in 0..a.n() as NodeId {
            let mut na = a.neighbors_vec(u);
            let mut nb = b.neighbors_vec(u);
            na.sort_unstable();
            nb.sort_unstable();
            assert_eq!(na, nb, "vertex {}", u);
            assert_eq!(a.node_weight(u), b.node_weight(u));
        }
    }

    #[test]
    fn metis_round_trip_unweighted() {
        let g = gen::grid2d(7, 5);
        let path = tmp("metis_unweighted.graph");
        write_metis(&g, &path).unwrap();
        let h = read_metis(&path).unwrap();
        assert_graph_eq_sorted(&g, &h);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn metis_round_trip_weighted() {
        let g = gen::with_random_edge_weights(&gen::erdos_renyi(50, 200, 1), 9, 2);
        let g = gen::with_random_node_weights(&g, 4, 3);
        let path = tmp("metis_weighted.graph");
        write_metis(&g, &path).unwrap();
        let h = read_metis(&path).unwrap();
        assert!(h.is_edge_weighted());
        assert!(h.is_node_weighted());
        assert_graph_eq_sorted(&g, &h);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn metis_streaming_compression_matches_two_pass() {
        let g = gen::rhg_like(400, 8, 3.0, 4);
        let path = tmp("metis_stream.graph");
        write_metis(&g, &path).unwrap();
        let config = CompressionConfig::default();
        let streamed = read_metis_compressed(&path, &config).unwrap();
        let csr = read_metis(&path).unwrap();
        let reference = CompressedGraph::from_csr(&csr, &config);
        assert_eq!(streamed.n(), reference.n());
        assert_eq!(streamed.m(), reference.m());
        assert_eq!(
            streamed.encoded_data_bytes(),
            reference.encoded_data_bytes()
        );
        for u in 0..csr.n() as NodeId {
            assert_eq!(streamed.neighbors_vec(u), reference.neighbors_vec(u));
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn binary_round_trip() {
        let g = gen::with_random_edge_weights(&gen::grid2d(10, 10), 7, 5);
        let path = tmp("binary.bin");
        write_binary(&g, &path).unwrap();
        let h = read_binary(&path).unwrap();
        assert_eq!(g, h);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn binary_streaming_compression_matches() {
        let g = gen::weblike(9, 6, 8);
        let path = tmp("binary_stream.bin");
        write_binary(&g, &path).unwrap();
        let config = CompressionConfig::default();
        let streamed = read_binary_compressed(&path, &config).unwrap();
        let reference = CompressedGraph::from_csr(&g, &config);
        assert_eq!(streamed.m(), reference.m());
        for u in 0..g.n() as NodeId {
            assert_eq!(streamed.neighbors_vec(u), reference.neighbors_vec(u));
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn metis_self_loops_dropped_and_duplicates_merged() {
        // Vertex 1's line lists itself (a self-loop) and vertex 2 twice with weights 2
        // and 3: the streamed reader must drop the loop and sum the duplicate to 5,
        // matching the CsrGraphBuilder semantics of the two-pass path.
        let path = tmp("selfloop_dups.graph");
        std::fs::write(&path, "2 1 1\n1 7 2 2 2 3\n1 5\n").unwrap();
        let g = read_metis_compressed(&path, &CompressionConfig::default()).unwrap();
        assert_eq!(g.n(), 2);
        assert_eq!(g.m(), 1);
        assert_eq!(g.neighbors_vec(0), vec![(1, 5)]);
        assert_eq!(g.neighbors_vec(1), vec![(0, 5)]);
        // The .tpg converter shares the parser, so the container round-trips cleanly
        // (previously this panicked in CsrGraph::from_parts on the self-loop).
        let tpg = tmp("selfloop_dups.tpg");
        crate::store::write_tpg_from_metis(&path, &tpg, &CompressionConfig::default()).unwrap();
        let h = crate::store::read_tpg(&tpg).unwrap();
        assert_eq!(h.m(), 1);
        assert_eq!(h.neighbors_vec(0), vec![(1, 5)]);
        std::fs::remove_file(path).ok();
        std::fs::remove_file(tpg).ok();
    }

    #[test]
    fn malformed_files_are_rejected() {
        let path = tmp("malformed.graph");
        std::fs::write(&path, "not a graph\n").unwrap();
        assert!(read_metis(&path).is_err());
        std::fs::write(&path, "3 2\n2 3\n1\n").unwrap();
        // Vertex 3's line is missing.
        assert!(read_metis(&path).is_err());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn binary_rejects_bad_magic() {
        let path = tmp("bad_magic.bin");
        std::fs::write(&path, b"XXXX0000000000000000").unwrap();
        assert!(read_binary(&path).is_err());
        std::fs::remove_file(path).ok();
    }
}
