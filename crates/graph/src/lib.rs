//! Graph substrate for the TeraPart reproduction.
//!
//! This crate provides everything the partitioner needs below the algorithmic layer:
//!
//! * [`csr`] — the uncompressed compressed-sparse-row ([`CsrGraph`]) representation and a
//!   validating builder.
//! * [`varint`] — the VarInt / zigzag byte codecs used by the compressed representation
//!   (paper §III-A).
//! * [`compressed`] — the gap + interval + VarInt encoded [`CompressedGraph`] with
//!   on-the-fly neighbourhood decoding and high-degree chunking (paper §III-A).
//! * [`builder`] — parallel single-pass compression with ordered packet commit
//!   (paper §III-B).
//! * [`traits`] — the [`Graph`] accessor trait that lets every algorithm run unchanged on
//!   either representation.
//! * [`gen`] — synthetic graph generators standing in for the paper's benchmark sets
//!   (random geometric `rgg2d`, power-law `rhg`-like, web-like R-MAT, meshes, ...).
//! * [`io`] — METIS text and binary formats, including a streaming loader that compresses
//!   during the single input pass.
//! * [`store`] — the external-memory graph store: the `.tpg` on-disk container, the
//!   page-cache-backed [`PagedGraph`] and bounded-memory streaming instance generation.
//! * [`permute`] — vertex relabelling (BFS / degree orderings) used to create the
//!   neighbour-ID locality that interval encoding exploits.
//! * [`stats`] — instance statistics for Table I / Figure 9.
//!
//! # Quick example
//!
//! ```
//! use graph::gen;
//! use graph::traits::Graph;
//! use graph::compressed::CompressedGraph;
//!
//! let csr = gen::grid2d(16, 16);
//! let compressed = CompressedGraph::from_csr(&csr, &Default::default());
//! assert_eq!(csr.n(), compressed.n());
//! assert_eq!(csr.m(), compressed.m());
//! // Both representations expose identical neighbourhoods.
//! assert_eq!(csr.neighbors_vec(0), compressed.neighbors_vec(0));
//! ```

pub mod builder;
pub mod checksum;
pub mod compressed;
pub mod csr;
pub mod gen;
pub mod ids;
pub mod io;
pub mod permute;
pub mod stats;
pub mod store;
pub mod traits;
pub mod varint;

pub use compressed::{CompressedGraph, CompressionConfig};
pub use csr::{CsrGraph, CsrGraphBuilder};
pub use ids::{AtomicNodeId, ClusterId, NodeId};
pub use store::{
    MmapGraph, OnDiskBackend, PagedGraph, PagedGraphOptions, StoreHandle, StoreRegistry,
    StoreSession,
};
pub use traits::Graph;

/// Identifier of a directed half-edge (an index into the adjacency array). Always
/// 64-bit: the half-edge count of a graph whose vertex count fits 32 bits can still
/// exceed 2^32 (see [`ids`] for the width contract).
pub type EdgeId = u64;

/// Weight of a vertex (always ≥ 1 for valid graphs).
pub type NodeWeight = u64;

/// Weight of an edge (always ≥ 1 for valid graphs).
pub type EdgeWeight = u64;

/// Merges duplicate entries of a neighbour list sorted by ID, summing their weights —
/// the [`CsrGraphBuilder`] duplicate semantics. Shared by every streaming path that
/// must match the in-memory builder byte for byte (METIS parsing, spill-bucket
/// aggregation).
pub(crate) fn merge_sorted_duplicates(nbrs: &mut Vec<(NodeId, EdgeWeight)>) {
    debug_assert!(nbrs.windows(2).all(|w| w[0].0 <= w[1].0), "must be sorted");
    let mut write = 0usize;
    for read in 0..nbrs.len() {
        if write > 0 && nbrs[write - 1].0 == nbrs[read].0 {
            nbrs[write - 1].1 += nbrs[read].1;
        } else {
            nbrs[write] = nbrs[read];
            write += 1;
        }
    }
    nbrs.truncate(write);
}

/// An undirected edge given by its two endpoints and a weight, used by builders and
/// generators before the CSR arrays exist.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Edge {
    /// First endpoint.
    pub u: NodeId,
    /// Second endpoint.
    pub v: NodeId,
    /// Edge weight.
    pub weight: EdgeWeight,
}

impl Edge {
    /// Creates an unweighted (weight 1) edge.
    pub fn new(u: NodeId, v: NodeId) -> Self {
        Self { u, v, weight: 1 }
    }

    /// Creates a weighted edge.
    pub fn weighted(u: NodeId, v: NodeId, weight: EdgeWeight) -> Self {
        Self { u, v, weight }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_constructors() {
        let e = Edge::new(1, 2);
        assert_eq!(e.weight, 1);
        let w = Edge::weighted(3, 4, 7);
        assert_eq!((w.u, w.v, w.weight), (3, 4, 7));
    }
}
