//! Vertex relabelling utilities.
//!
//! Compression ratios depend strongly on neighbour-ID locality (paper §VI-A2: "interval
//! encoding appears crucial for these graphs"). Real web crawls are crawled in an order
//! that already provides locality; synthetic graphs often are not. This module provides
//! permutations (BFS order, degree order, random order) and the machinery to apply them,
//! so experiments can control the locality of their inputs.

use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

use crate::csr::{CsrGraph, CsrGraphBuilder};
use crate::traits::Graph;
use crate::NodeId;

/// Applies a permutation to a graph: vertex `u` of the input becomes `perm[u]` in the
/// output. `perm` must be a bijection on `0..n`.
pub fn apply_permutation(graph: &CsrGraph, perm: &[NodeId]) -> CsrGraph {
    assert_eq!(perm.len(), graph.n(), "permutation length must equal n");
    debug_assert!(is_permutation(perm));
    let mut node_weights = vec![1u64; graph.n()];
    let mut any_node_weight = false;
    for u in 0..graph.n() as NodeId {
        let w = graph.node_weight(u);
        node_weights[perm[u as usize] as usize] = w;
        any_node_weight |= w != 1;
    }
    let mut b = if any_node_weight {
        CsrGraphBuilder::with_node_weights(node_weights)
    } else {
        CsrGraphBuilder::new(graph.n())
    };
    for u in 0..graph.n() as NodeId {
        graph.for_each_neighbor(u, &mut |v, w| {
            if u < v {
                b.add_edge(perm[u as usize], perm[v as usize], w);
            }
        });
    }
    b.build()
}

/// Returns `true` if `perm` is a bijection on `0..perm.len()`.
pub fn is_permutation(perm: &[NodeId]) -> bool {
    let mut seen = vec![false; perm.len()];
    for &p in perm {
        let idx = p as usize;
        if idx >= perm.len() || seen[idx] {
            return false;
        }
        seen[idx] = true;
    }
    true
}

/// Computes a breadth-first-search ordering: `perm[u]` is the BFS visit rank of `u`.
/// Unreached vertices (other components) are appended in ID order. BFS orderings give
/// neighbourhoods with small gaps, improving compression.
pub fn bfs_order(graph: &CsrGraph) -> Vec<NodeId> {
    let n = graph.n();
    let mut perm = vec![NodeId::MAX; n];
    let mut next_rank: NodeId = 0;
    let mut queue = std::collections::VecDeque::new();
    for start in 0..n as NodeId {
        if perm[start as usize] != NodeId::MAX {
            continue;
        }
        perm[start as usize] = next_rank;
        next_rank += 1;
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            graph.for_each_neighbor(u, &mut |v, _| {
                if perm[v as usize] == NodeId::MAX {
                    perm[v as usize] = next_rank;
                    next_rank += 1;
                    queue.push_back(v);
                }
            });
        }
    }
    perm
}

/// Orders vertices by decreasing degree (hubs first). Models the "layered label
/// propagation"-style orderings used to compress social networks.
pub fn degree_order(graph: &CsrGraph) -> Vec<NodeId> {
    let n = graph.n();
    let mut by_degree: Vec<NodeId> = (0..n as NodeId).collect();
    by_degree.sort_by_key(|&u| std::cmp::Reverse(graph.degree(u)));
    let mut perm = vec![0 as NodeId; n];
    for (rank, &u) in by_degree.iter().enumerate() {
        perm[u as usize] = rank as NodeId;
    }
    perm
}

/// A uniformly random permutation. Used to destroy locality in ablation experiments.
pub fn random_order(n: usize, seed: u64) -> Vec<NodeId> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut perm: Vec<NodeId> = (0..n as NodeId).collect();
    perm.shuffle(&mut rng);
    perm
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compressed::{CompressedGraph, CompressionConfig};
    use crate::gen;

    #[test]
    fn identity_permutation_preserves_graph() {
        let g = gen::grid2d(5, 5);
        let perm: Vec<NodeId> = (0..g.n() as NodeId).collect();
        let h = apply_permutation(&g, &perm);
        assert_eq!(g, h);
    }

    #[test]
    fn permutation_preserves_structure_metrics() {
        let g = gen::rhg_like(300, 8, 3.0, 1);
        let perm = random_order(g.n(), 9);
        let h = apply_permutation(&g, &perm);
        assert_eq!(g.n(), h.n());
        assert_eq!(g.m(), h.m());
        assert_eq!(g.max_degree(), h.max_degree());
        assert_eq!(g.total_edge_weight(), h.total_edge_weight());
        // Degrees are preserved pointwise through the permutation.
        for u in 0..g.n() as NodeId {
            assert_eq!(g.degree(u), h.degree(perm[u as usize]));
        }
    }

    #[test]
    fn bfs_order_is_a_permutation_and_improves_locality() {
        let g = gen::rgg2d(1500, 12, 4);
        let shuffled = apply_permutation(&g, &random_order(g.n(), 3));
        let bfs = apply_permutation(&shuffled, &bfs_order(&shuffled));
        assert!(is_permutation(&bfs_order(&shuffled)));
        let config = CompressionConfig::default();
        let c_shuffled = CompressedGraph::from_csr(&shuffled, &config);
        let c_bfs = CompressedGraph::from_csr(&bfs, &config);
        assert!(
            c_bfs.encoded_data_bytes() <= c_shuffled.encoded_data_bytes(),
            "BFS ordering should not hurt compression: {} vs {}",
            c_bfs.encoded_data_bytes(),
            c_shuffled.encoded_data_bytes()
        );
    }

    #[test]
    fn degree_order_puts_hubs_first() {
        let g = gen::star(50);
        let perm = degree_order(&g);
        assert_eq!(perm[0], 0, "the hub should receive rank 0");
        assert!(is_permutation(&perm));
    }

    #[test]
    fn is_permutation_detects_duplicates_and_out_of_range() {
        assert!(is_permutation(&[0, 1, 2]));
        assert!(!is_permutation(&[0, 1, 1]));
        assert!(!is_permutation(&[0, 1, 3]));
        assert!(is_permutation(&[]));
    }

    #[test]
    fn node_weights_travel_with_vertices() {
        let g = gen::with_random_node_weights(&gen::grid2d(4, 4), 5, 7);
        let perm = random_order(g.n(), 1);
        let h = apply_permutation(&g, &perm);
        for u in 0..g.n() as NodeId {
            assert_eq!(g.node_weight(u), h.node_weight(perm[u as usize]));
        }
    }
}
