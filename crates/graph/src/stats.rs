//! Instance statistics (Table I / Figure 9 of the paper).

use crate::traits::Graph;
use crate::NodeId;

/// Summary statistics of a graph instance, matching the columns of Table I:
/// number of vertices `n`, number of undirected edges `m`, average degree and maximum
/// degree, plus weightedness flags used by the experiment harness.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    /// Number of vertices.
    pub n: usize,
    /// Number of undirected edges.
    pub m: usize,
    /// Average degree `2m / n`.
    pub avg_degree: f64,
    /// Maximum degree.
    pub max_degree: usize,
    /// Minimum degree.
    pub min_degree: usize,
    /// Number of isolated (degree-zero) vertices.
    pub isolated: usize,
    /// Whether the graph carries non-uniform edge weights.
    pub edge_weighted: bool,
    /// Whether the graph carries non-uniform node weights.
    pub node_weighted: bool,
}

impl GraphStats {
    /// Computes statistics for `graph`.
    pub fn of(graph: &impl Graph) -> Self {
        let n = graph.n();
        let m = graph.m();
        let mut max_degree = 0;
        let mut min_degree = usize::MAX;
        let mut isolated = 0;
        for u in 0..n as NodeId {
            let d = graph.degree(u);
            max_degree = max_degree.max(d);
            min_degree = min_degree.min(d);
            if d == 0 {
                isolated += 1;
            }
        }
        if n == 0 {
            min_degree = 0;
        }
        Self {
            n,
            m,
            avg_degree: if n == 0 {
                0.0
            } else {
                2.0 * m as f64 / n as f64
            },
            max_degree,
            min_degree,
            isolated,
            edge_weighted: graph.is_edge_weighted(),
            node_weighted: graph.is_node_weighted(),
        }
    }

    /// Formats the statistics as one row of a Table-I-style report.
    pub fn table_row(&self, name: &str) -> String {
        format!(
            "{:<20} {:>12} {:>14} {:>8.1} {:>10}",
            name, self.n, self.m, self.avg_degree, self.max_degree
        )
    }
}

/// Computes the degree histogram of a graph as `(degree, count)` pairs sorted by degree.
/// Used for the Figure 9 style instance overview.
pub fn degree_histogram(graph: &impl Graph) -> Vec<(usize, usize)> {
    let mut counts = std::collections::BTreeMap::new();
    for u in 0..graph.n() as NodeId {
        *counts.entry(graph.degree(u)).or_insert(0usize) += 1;
    }
    counts.into_iter().collect()
}

/// Measures neighbour-ID locality: the average absolute gap between consecutive sorted
/// neighbour IDs, normalised by `n`. Smaller values mean better locality and better
/// compression.
pub fn locality_score(graph: &impl Graph) -> f64 {
    let n = graph.n();
    if n == 0 {
        return 0.0;
    }
    let mut total_gap = 0u64;
    let mut total_edges = 0u64;
    for u in 0..n as NodeId {
        let mut nbrs: Vec<NodeId> = Vec::with_capacity(graph.degree(u));
        graph.for_each_neighbor(u, &mut |v, _| nbrs.push(v));
        nbrs.sort_unstable();
        let mut prev = u;
        for &v in &nbrs {
            total_gap += crate::ids::widen(v.abs_diff(prev));
            prev = v;
            total_edges += 1;
        }
    }
    if total_edges == 0 {
        0.0
    } else {
        (total_gap as f64 / total_edges as f64) / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use crate::permute;

    #[test]
    fn stats_of_grid() {
        let g = gen::grid2d(4, 4);
        let s = GraphStats::of(&g);
        assert_eq!(s.n, 16);
        assert_eq!(s.m, 24);
        assert_eq!(s.max_degree, 4);
        assert_eq!(s.min_degree, 2);
        assert_eq!(s.isolated, 0);
        assert!((s.avg_degree - 3.0).abs() < 1e-9);
        assert!(!s.edge_weighted);
        let row = s.table_row("grid4x4");
        assert!(row.contains("grid4x4"));
        assert!(row.contains("16"));
    }

    #[test]
    fn stats_of_empty_graph() {
        let g = crate::csr::CsrGraphBuilder::new(0).build();
        let s = GraphStats::of(&g);
        assert_eq!(s.n, 0);
        assert_eq!(s.min_degree, 0);
        assert_eq!(s.avg_degree, 0.0);
    }

    #[test]
    fn histogram_sums_to_n() {
        let g = gen::rhg_like(500, 8, 3.0, 2);
        let hist = degree_histogram(&g);
        let total: usize = hist.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, g.n());
        assert!(hist.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn locality_score_detects_shuffling() {
        let g = gen::grid2d(30, 30);
        let shuffled = permute::apply_permutation(&g, &permute::random_order(g.n(), 1));
        assert!(locality_score(&g) < locality_score(&shuffled));
    }

    #[test]
    fn star_has_isolated_free_skewed_stats() {
        let g = gen::star(100);
        let s = GraphStats::of(&g);
        assert_eq!(s.max_degree, 99);
        assert_eq!(s.min_degree, 1);
        assert_eq!(s.isolated, 0);
    }
}
