//! The injectable storage seam under [`PagedGraph`] and [`TpgWriter`]: positional
//! reads, appends and fsync behind a small object-safe trait, with a real-file
//! implementation and a deterministic fault injector for robustness tests.
//!
//! [`PagedGraph`]: crate::store::PagedGraph
//! [`TpgWriter`]: crate::store::TpgWriter

use std::fs::File;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Positional storage used by the `.tpg` reader and writer. All methods take `&self`
/// so one backend can serve concurrent readers (the page-cache shards); writers are
/// single-owner by construction.
pub trait StorageBackend: Send + Sync + std::fmt::Debug {
    /// Reads up to `buf.len()` bytes at `offset`, returning how many were read.
    /// Short reads are legal (callers loop); `Ok(0)` means end of file.
    fn read_at(&self, buf: &mut [u8], offset: u64) -> io::Result<usize>;

    /// Appends `buf` at the current end of the store.
    fn append(&self, buf: &[u8]) -> io::Result<()>;

    /// Writes `buf` at an absolute offset (used to patch the header at finish).
    fn write_at(&self, offset: u64, buf: &[u8]) -> io::Result<()>;

    /// Durably flushes all written data to the underlying medium.
    fn sync(&self) -> io::Result<()>;

    /// Current length of the store in bytes.
    fn len(&self) -> io::Result<u64>;

    /// Whether the store is empty.
    fn is_empty(&self) -> io::Result<bool> {
        Ok(self.len()? == 0)
    }

    /// The underlying [`File`], if this backend is a plain file whose bytes may be
    /// memory-mapped directly. Fault-injecting and in-memory backends return `None`
    /// (the default), which routes the mmap store onto its heap fallback so every
    /// byte keeps flowing through [`read_at`](Self::read_at) — the seam the fault
    /// schedules hook.
    fn as_file(&self) -> Option<&File> {
        None
    }
}

/// Reads exactly `buf.len()` bytes at `offset`, looping over short reads. Fails with
/// [`io::ErrorKind::UnexpectedEof`] if the store ends first. This is the only place
/// short reads are resolved, so every backend read funnels through one code path.
pub fn read_full_at(
    backend: &dyn StorageBackend,
    mut buf: &mut [u8],
    mut offset: u64,
) -> io::Result<()> {
    while !buf.is_empty() {
        match backend.read_at(buf, offset) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    format!(
                        "storage ended {} bytes short at offset {}",
                        buf.len(),
                        offset
                    ),
                ))
            }
            Ok(read) => {
                buf = &mut buf[read..];
                offset += read as u64;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// The production backend: a plain [`File`] accessed with positional reads (no shared
/// cursor) and appends tracked by an explicit tail position.
#[derive(Debug)]
pub struct FileBackend {
    file: File,
    append_pos: AtomicU64,
}

impl FileBackend {
    /// Opens an existing file read-only.
    pub fn open(path: impl AsRef<Path>) -> io::Result<Self> {
        let file = File::open(path)?;
        let len = file.metadata()?.len();
        Ok(Self {
            file,
            append_pos: AtomicU64::new(len),
        })
    }

    /// Creates (truncating) a file for writing.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        let file = File::options()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(Self {
            file,
            append_pos: AtomicU64::new(0),
        })
    }

    fn write_all_at(&self, offset: u64, buf: &[u8]) -> io::Result<()> {
        #[cfg(unix)]
        {
            use std::os::unix::fs::FileExt;
            self.file.write_all_at(buf, offset)
        }
        #[cfg(windows)]
        {
            use std::os::windows::fs::FileExt;
            let mut done = 0;
            while done < buf.len() {
                done += self.file.seek_write(&buf[done..], offset + done as u64)?;
            }
            Ok(())
        }
    }
}

impl StorageBackend for FileBackend {
    fn read_at(&self, buf: &mut [u8], offset: u64) -> io::Result<usize> {
        #[cfg(unix)]
        {
            use std::os::unix::fs::FileExt;
            self.file.read_at(buf, offset)
        }
        #[cfg(windows)]
        {
            use std::os::windows::fs::FileExt;
            self.file.seek_read(buf, offset)
        }
    }

    fn append(&self, buf: &[u8]) -> io::Result<()> {
        let pos = self.append_pos.load(Ordering::Relaxed);
        self.write_all_at(pos, buf)?;
        self.append_pos
            .store(pos + buf.len() as u64, Ordering::Relaxed);
        Ok(())
    }

    fn write_at(&self, offset: u64, buf: &[u8]) -> io::Result<()> {
        self.write_all_at(offset, buf)
    }

    fn sync(&self) -> io::Result<()> {
        self.file.sync_all()
    }

    fn as_file(&self) -> Option<&File> {
        Some(&self.file)
    }

    fn len(&self) -> io::Result<u64> {
        Ok(self.file.metadata()?.len())
    }
}

/// Deterministic, seedable fault schedule for a [`FaultyBackend`].
///
/// Faults fire on a fixed modular schedule keyed by per-kind operation counters: read
/// operation number `op` suffers a fault of a given kind iff its period `p` is non-zero
/// and `op % p == phase(seed, kind)`. Two consecutive operations therefore never hit
/// the same fault kind (for `p >= 2`), which is what makes a **single** retry
/// sufficient against transient faults — the property the retry/backoff tests pin
/// down. `fail_reads_from` models a permanent outage instead: every read from that
/// operation number on fails, exhausting any retry budget.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed for the per-kind schedule phases.
    pub seed: u64,
    /// Every `eio_period`-th read fails with a transient `EIO` (0 = never).
    pub eio_period: u64,
    /// Every `short_read_period`-th read returns only half the requested bytes
    /// (0 = never). Exercises the short-read resolution loop.
    pub short_read_period: u64,
    /// Every `bit_flip_period`-th read flips one bit of the *returned* bytes
    /// (0 = never). The file itself stays intact, so a checksum-triggered re-read
    /// observes clean data — the transient-corruption case.
    pub bit_flip_period: u64,
    /// Every `write_fail_period`-th append/patch fails with `EIO` (0 = never).
    pub write_fail_period: u64,
    /// Every `sync_fail_period`-th fsync fails with `EIO` (0 = never).
    pub sync_fail_period: u64,
    /// Permanent outage: every read operation numbered `>= n` fails with `EIO`.
    pub fail_reads_from: Option<u64>,
    /// Restricts *read* faults to operations requesting more than this many bytes
    /// (targets the run-coalesced prefetch reads while foreground page faults pass).
    pub only_reads_longer_than: Option<usize>,
}

impl FaultPlan {
    /// A plan with only transient faults (EIO + short reads + bit flips) at moderate
    /// periods — every run under it must heal through retries.
    pub fn transient(seed: u64) -> Self {
        Self {
            seed,
            eio_period: 5,
            short_read_period: 3,
            bit_flip_period: 7,
            ..Self::default()
        }
    }
}

/// Counters of the faults a [`FaultyBackend`] actually injected, shared with the test
/// that owns the plan (the backend itself is consumed by the graph/writer).
#[derive(Debug, Default)]
pub struct FaultStats {
    /// Transient `EIO` read failures injected.
    pub eio: AtomicU64,
    /// Short reads injected.
    pub short_reads: AtomicU64,
    /// Bit flips injected into returned read buffers.
    pub bit_flips: AtomicU64,
    /// Write failures injected.
    pub write_failures: AtomicU64,
    /// Fsync failures injected.
    pub sync_failures: AtomicU64,
    /// Reads refused by the permanent-outage rule.
    pub outage_reads: AtomicU64,
}

impl FaultStats {
    /// Total number of injected faults of any kind.
    pub fn total(&self) -> u64 {
        self.eio.load(Ordering::Relaxed)
            + self.short_reads.load(Ordering::Relaxed)
            + self.bit_flips.load(Ordering::Relaxed)
            + self.write_failures.load(Ordering::Relaxed)
            + self.sync_failures.load(Ordering::Relaxed)
            + self.outage_reads.load(Ordering::Relaxed)
    }
}

/// SplitMix64: cheap, well-distributed mixer for the schedule phases and flip
/// positions.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn transient_eio(context: &str) -> io::Error {
    // Raw EIO: surfaces with an `Uncategorized` kind, exactly like a real disk error,
    // so the retry classification is tested against what production would see.
    io::Error::new(
        io::Error::from_raw_os_error(5).kind(),
        format!("injected transient I/O fault ({})", context),
    )
}

/// A [`StorageBackend`] decorator that injects faults on the deterministic schedule of
/// a [`FaultPlan`]. Wraps any backend (usually a [`FileBackend`]).
#[derive(Debug)]
pub struct FaultyBackend<B> {
    inner: B,
    plan: FaultPlan,
    read_ops: AtomicU64,
    write_ops: AtomicU64,
    sync_ops: AtomicU64,
    stats: Arc<FaultStats>,
}

impl<B: StorageBackend> FaultyBackend<B> {
    /// Wraps `inner` with the given fault plan.
    pub fn new(inner: B, plan: FaultPlan) -> Self {
        Self {
            inner,
            plan,
            read_ops: AtomicU64::new(0),
            write_ops: AtomicU64::new(0),
            sync_ops: AtomicU64::new(0),
            stats: Arc::new(FaultStats::default()),
        }
    }

    /// Handle to the injected-fault counters; stays valid after the backend is moved
    /// into a graph or writer.
    pub fn stats(&self) -> Arc<FaultStats> {
        Arc::clone(&self.stats)
    }

    /// Whether fault kind `kind` fires on operation number `op` under period `period`.
    fn fires(&self, kind: u64, op: u64, period: u64) -> bool {
        period != 0 && op % period == mix(self.plan.seed ^ kind) % period
    }
}

impl<B: StorageBackend> StorageBackend for FaultyBackend<B> {
    fn read_at(&self, buf: &mut [u8], offset: u64) -> io::Result<usize> {
        let op = self.read_ops.fetch_add(1, Ordering::Relaxed);
        let eligible = self
            .plan
            .only_reads_longer_than
            .is_none_or(|min| buf.len() > min);
        if eligible {
            if let Some(from) = self.plan.fail_reads_from {
                if op >= from {
                    self.stats.outage_reads.fetch_add(1, Ordering::Relaxed);
                    return Err(transient_eio("permanent outage"));
                }
            }
            if self.fires(1, op, self.plan.eio_period) {
                self.stats.eio.fetch_add(1, Ordering::Relaxed);
                return Err(transient_eio(&format!("read op {}", op)));
            }
        }
        if eligible && buf.len() > 1 && self.fires(2, op, self.plan.short_read_period) {
            self.stats.short_reads.fetch_add(1, Ordering::Relaxed);
            let half = buf.len() / 2;
            return self.inner.read_at(&mut buf[..half], offset);
        }
        let read = self.inner.read_at(buf, offset)?;
        if eligible && read > 0 && self.fires(3, op, self.plan.bit_flip_period) {
            let h = mix(self.plan.seed ^ op.rotate_left(17));
            buf[(h as usize) % read] ^= 1 << ((h >> 32) % 8);
            self.stats.bit_flips.fetch_add(1, Ordering::Relaxed);
        }
        Ok(read)
    }

    fn append(&self, buf: &[u8]) -> io::Result<()> {
        let op = self.write_ops.fetch_add(1, Ordering::Relaxed);
        if self.fires(4, op, self.plan.write_fail_period) {
            self.stats.write_failures.fetch_add(1, Ordering::Relaxed);
            return Err(transient_eio(&format!("append op {}", op)));
        }
        self.inner.append(buf)
    }

    fn write_at(&self, offset: u64, buf: &[u8]) -> io::Result<()> {
        let op = self.write_ops.fetch_add(1, Ordering::Relaxed);
        if self.fires(4, op, self.plan.write_fail_period) {
            self.stats.write_failures.fetch_add(1, Ordering::Relaxed);
            return Err(transient_eio(&format!("write op {}", op)));
        }
        self.inner.write_at(offset, buf)
    }

    fn sync(&self) -> io::Result<()> {
        let op = self.sync_ops.fetch_add(1, Ordering::Relaxed);
        if self.fires(5, op, self.plan.sync_fail_period) {
            self.stats.sync_failures.fetch_add(1, Ordering::Relaxed);
            return Err(transient_eio(&format!("fsync op {}", op)));
        }
        self.inner.sync()
    }

    fn len(&self) -> io::Result<u64> {
        self.inner.len()
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!(
            "terapart_backend_test_{}_{}",
            std::process::id(),
            name
        ))
    }

    #[test]
    fn file_backend_append_then_read_round_trips() {
        let path = tmp("roundtrip.bin");
        let backend = FileBackend::create(&path).unwrap();
        backend.append(b"hello ").unwrap();
        backend.append(b"world").unwrap();
        backend.write_at(0, b"HELLO").unwrap();
        backend.sync().unwrap();
        assert_eq!(backend.len().unwrap(), 11);
        let mut buf = [0u8; 11];
        read_full_at(&backend, &mut buf, 0).unwrap();
        assert_eq!(&buf, b"HELLO world");
        // Reading past the end is a clean UnexpectedEof through the resolution loop.
        let mut long = [0u8; 16];
        let err = read_full_at(&backend, &mut long, 0).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn fault_schedule_is_deterministic_and_seed_dependent() {
        let path = tmp("deterministic.bin");
        let data: Vec<u8> = (0..4096u32).map(|i| (i % 251) as u8).collect();
        std::fs::write(&path, &data).unwrap();
        let run = |seed: u64| -> Vec<Result<Vec<u8>, String>> {
            let backend = FaultyBackend::new(
                FileBackend::open(&path).unwrap(),
                FaultPlan::transient(seed),
            );
            (0..32)
                .map(|i| {
                    let mut buf = vec![0u8; 64];
                    match backend.read_at(&mut buf, (i * 64) as u64) {
                        Ok(k) => Ok(buf[..k].to_vec()),
                        Err(e) => Err(e.to_string()),
                    }
                })
                .collect()
        };
        assert_eq!(run(7), run(7), "same seed must replay identically");
        assert_ne!(run(7), run(8), "different seeds must differ");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn transient_faults_heal_on_the_next_operation() {
        // The schedule guarantee the retry layer builds on: the same fault kind never
        // fires on two consecutive operation numbers (period >= 2).
        let path = tmp("heal.bin");
        std::fs::write(&path, vec![0xABu8; 1024]).unwrap();
        for seed in 0..16u64 {
            let backend = FaultyBackend::new(
                FileBackend::open(&path).unwrap(),
                FaultPlan::transient(seed),
            );
            let mut previous_failed = false;
            for _ in 0..64 {
                let mut buf = [0u8; 16];
                let failed = backend.read_at(&mut buf, 0).is_err();
                assert!(
                    !(failed && previous_failed),
                    "EIO fired on two consecutive ops at seed {}",
                    seed
                );
                previous_failed = failed;
            }
            assert!(backend.stats().eio.load(Ordering::Relaxed) > 0);
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn bit_flips_corrupt_only_the_returned_buffer() {
        let path = tmp("flips.bin");
        let data = vec![0u8; 256];
        std::fs::write(&path, &data).unwrap();
        let backend = FaultyBackend::new(
            FileBackend::open(&path).unwrap(),
            FaultPlan {
                seed: 3,
                bit_flip_period: 2,
                ..FaultPlan::default()
            },
        );
        let mut flipped = 0;
        for _ in 0..16 {
            let mut buf = [0u8; 256];
            backend.read_at(&mut buf, 0).unwrap();
            if buf.iter().any(|&b| b != 0) {
                flipped += 1;
            }
        }
        assert!(flipped > 0, "no flips injected");
        assert_eq!(backend.stats().bit_flips.load(Ordering::Relaxed), flipped);
        // The file on disk is untouched.
        assert_eq!(std::fs::read(&path).unwrap(), data);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn outage_and_size_filter_apply() {
        let path = tmp("outage.bin");
        std::fs::write(&path, vec![1u8; 1024]).unwrap();
        let backend = FaultyBackend::new(
            FileBackend::open(&path).unwrap(),
            FaultPlan {
                fail_reads_from: Some(4),
                only_reads_longer_than: Some(32),
                ..FaultPlan::default()
            },
        );
        let mut small = [0u8; 8];
        let mut large = [0u8; 64];
        for _ in 0..8 {
            backend.read_at(&mut small, 0).unwrap();
        }
        // Small reads passed even beyond the outage point; a large one now fails.
        assert!(backend.read_at(&mut large, 0).is_err());
        assert!(backend.stats().outage_reads.load(Ordering::Relaxed) > 0);
        std::fs::remove_file(path).ok();
    }
}
