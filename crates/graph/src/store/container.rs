//! The `.tpg` on-disk container format and its streaming writer.
//!
//! # Layout (all integers little-endian)
//!
//! ```text
//! offset  size  field
//! 0       4     magic "TPGS"
//! 4       4     version (u32, currently 4; v1–v3 files remain readable)
//! 8       4     flags   (bit 0: edge weighted, bit 1: node weighted,
//!                        bit 2: interval encoding, bit 3: compressed edge weights,
//!                        bit 4: Elias-Fano offset index, v4 only)
//! 12      1     id width in bytes the writer was built with (4 or 8; v1 files carry 0
//!               here and imply 4)
//! 13      1     v3+: log2 of the checksum block length (zero in v1/v2 files)
//! 14      2     reserved (zero)
//! 16      8     n (vertices)
//! 24      8     m (undirected edges)
//! 32      8     total node weight
//! 40      8     total edge weight
//! 48      8     max degree
//! 56      8     high-degree threshold of the compression config
//! 64      8     chunk length of the compression config
//! 72      8     minimum interval length of the compression config
//! 80      8     data section length in bytes
//! 88      —     data section: concatenated encoded neighbourhoods (identical byte
//!               format to the in-memory CompressedGraph)
//! …       —     offset index: n + 1 byte offsets into the data section — plain u64s,
//!               or (flag bit 4, v4) the same monotone sequence Elias-Fano encoded as
//!               whole little-endian u64 words, low-bits array then upper-bits array
//!               (see `store::elias_fano`; both word counts derive from n and
//!               data_len, so later sections stay locatable from the header alone)
//! …       —     node weights: n u64 values, present iff flag bit 1 is set
//! …       —     v3 checksum footer:
//!                 magic "TPGC" (4 bytes)
//!                 per-block crc32 of the data section, ceil(data_len / B) u32 values
//!                   where B = 1 << header byte 13
//!                 crc32 of the offset index (4 bytes)
//!                 crc32 of the node-weight section (4 bytes; crc of zero bytes when
//!                   the section is absent)
//!                 crc32 of the final 88-byte header (4 bytes)
//! ```
//!
//! The offset index, node weights and checksum footer sit *after* the data section so
//! [`TpgWriter`] can stream neighbourhoods straight to disk behind a fixed-size header
//! placeholder and only write the header once, at [`TpgWriter::finish`], when the
//! totals (and the header checksum) are known. The writer's live memory is the offset
//! index under construction plus one encode buffer and one crc per data block —
//! `O(n + max_degree + data_len / B)` bytes, never `O(m)` — which is what lets
//! instances larger than RAM be produced and consumed on this machine.
//!
//! # Fault tolerance (v3)
//!
//! Every section of a v3 container is covered by a crc32: the data section at block
//! granularity (so the paged reader can verify exactly the pages it touches), the
//! offset index, the node weights and the header itself. Verification failures surface
//! as [`IoError::Corrupt`] — never a panic and never a silently wrong graph. The
//! writer is crash-safe: it streams into a hidden temp file in the destination
//! directory and atomically renames it over the destination only after `fsync`
//! succeeds, so a crashed or failed write can never leave a truncated `.tpg` under the
//! destination name. v1/v2 files carry no checksums and are read with verification
//! disabled.

use std::fs::File;
use std::io::{BufReader, Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::checksum::{crc32, Crc32};
use crate::compressed::{
    decode_neighborhood, encode_neighborhood, CompressedGraph, CompressionConfig,
};
use crate::csr::CsrGraph;
use crate::ids::{self, IdWidth};
use crate::io::{
    checked_node_count, for_each_metis_vertex, open_error_is_retryable, read_exact_u32,
    read_exact_u64, IoError, BINARY_MAGIC,
};
use crate::store::backend::{read_full_at, FileBackend, StorageBackend};
use crate::store::elias_fano::{EliasFanoIndex, OffsetIndex};
use crate::store::paged::RetryPolicy;
use crate::traits::Graph;
use crate::{EdgeId, EdgeWeight, NodeId, NodeWeight};

/// Magic bytes of the `.tpg` container.
pub const TPG_MAGIC: &[u8; 4] = b"TPGS";
/// Container format version. Version 2 added the explicit id-width byte in the
/// previously reserved header field; version 3 added the crc32 checksum footer and the
/// block-length byte; version 4 added the optional Elias-Fano offset index (flag
/// bit 4). Version 1–3 files are still accepted by the reader.
pub const TPG_VERSION: u32 = 4;
/// Size of the fixed header in bytes.
pub const TPG_HEADER_LEN: u64 = 88;
/// Magic bytes of the v3 checksum footer.
pub const TPG_FOOTER_MAGIC: &[u8; 4] = b"TPGC";
/// Default checksum block length of the data section (64 KiB — the default page size
/// of the paged reader, so page-granular reads verify exactly one block).
pub const TPG_CHECKSUM_BLOCK_LEN: usize = 64 * 1024;
/// Admissible log2 range of the checksum block length (64 B .. 1 GiB).
const TPG_BLOCK_LOG2_RANGE: std::ops::RangeInclusive<u32> = 6..=30;

const FLAG_EDGE_WEIGHTED: u32 = 1 << 0;
const FLAG_NODE_WEIGHTED: u32 = 1 << 1;
const FLAG_INTERVALS: u32 = 1 << 2;
const FLAG_COMPRESS_EDGE_WEIGHTS: u32 = 1 << 3;
/// The offset index is Elias-Fano encoded (v4 only; rejected in older versions).
const FLAG_EF_OFFSETS: u32 = 1 << 4;

/// Parsed `.tpg` header plus derived section positions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TpgMeta {
    /// Format version the file was written with (1 through 4).
    pub version: u32,
    /// ID width in bytes the writer was built with (4 or 8). Advisory: the data
    /// section is VarInt-encoded and therefore width-agnostic, so any file whose
    /// vertex count fits the active build's width can be read regardless of this
    /// value. Version-1 files imply 4.
    pub id_width: u8,
    /// Number of vertices.
    pub n: usize,
    /// Number of undirected edges.
    pub m: usize,
    /// Whether the graph carries non-uniform edge weights.
    pub edge_weighted: bool,
    /// Whether the graph carries non-uniform node weights.
    pub node_weighted: bool,
    /// Sum of all node weights.
    pub total_node_weight: NodeWeight,
    /// Sum of all edge weights (each undirected edge counted once).
    pub total_edge_weight: EdgeWeight,
    /// Maximum vertex degree.
    pub max_degree: usize,
    /// Compression configuration the data section was encoded with.
    pub config: CompressionConfig,
    /// Length of the encoded data section in bytes.
    pub data_len: u64,
    /// Checksum block length of the data section (v3+ files), or `None` for v1/v2
    /// files, which carry no checksums and are read with verification disabled.
    pub checksum_block_len: Option<u32>,
    /// Whether the offset index is Elias-Fano encoded (v4 files with flag bit 4).
    pub ef_offsets: bool,
}

impl TpgMeta {
    /// Byte offset of the data section within the file.
    pub fn data_start(&self) -> u64 {
        TPG_HEADER_LEN
    }

    /// Byte offset of the offset index within the file.
    pub fn offsets_start(&self) -> u64 {
        TPG_HEADER_LEN + self.data_len
    }

    /// Length of the offset-index section in bytes. For Elias-Fano indices the word
    /// counts derive from `n` and `data_len` alone, which is what keeps the following
    /// sections locatable without decoding the index first.
    pub fn offsets_len_bytes(&self) -> u64 {
        if self.ef_offsets {
            crate::store::elias_fano::ef_section_bytes(self.n as u64 + 1, self.data_len)
        } else {
            8 * (self.n as u64 + 1)
        }
    }

    /// Byte offset of the node-weight section within the file (meaningful only when
    /// `node_weighted`).
    pub fn node_weights_start(&self) -> u64 {
        self.offsets_start() + self.offsets_len_bytes()
    }

    /// Number of checksum blocks covering the data section (0 for v1/v2 files).
    pub fn checksum_block_count(&self) -> u64 {
        match self.checksum_block_len {
            Some(b) => self.data_len.div_ceil(u64::from(b)),
            None => 0,
        }
    }

    /// Byte offset of the v3 checksum footer (== end of file for v1/v2 files).
    pub fn footer_start(&self) -> u64 {
        self.node_weights_start()
            + if self.node_weighted {
                8 * self.n as u64
            } else {
                0
            }
    }

    /// Length of the v3 checksum footer in bytes (0 for v1/v2 files).
    pub fn footer_len(&self) -> u64 {
        if self.checksum_block_len.is_none() {
            return 0;
        }
        4 + 4 * self.checksum_block_count() + 12
    }

    /// Byte offset of the stored header crc32 (the last 4 bytes of the v3 footer).
    pub(crate) fn header_crc_pos(&self) -> u64 {
        self.footer_start() + self.footer_len() - 4
    }

    /// Size in bytes of the uncompressed CSR representation of the stored graph — the
    /// reference point of the memory-ladder experiments.
    pub fn csr_size_in_bytes(&self) -> usize {
        let half_edges = 2 * self.m;
        (self.n + 1) * std::mem::size_of::<EdgeId>()
            + half_edges * std::mem::size_of::<NodeId>()
            + if self.edge_weighted {
                half_edges * std::mem::size_of::<EdgeWeight>()
            } else {
                0
            }
            + if self.node_weighted {
                self.n * std::mem::size_of::<NodeWeight>()
            } else {
                0
            }
    }
}

/// Summary returned by [`TpgWriter::finish`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TpgSummary {
    /// Number of vertices written.
    pub n: usize,
    /// Number of undirected edges written.
    pub m: usize,
    /// Bytes of the encoded data section.
    pub data_bytes: u64,
    /// Total size of the container file.
    pub file_bytes: u64,
}

/// Flush threshold of the writer's append buffer.
const WRITER_FLUSH_LEN: usize = 256 * 1024;

/// Process-wide counter making concurrent writers' temp-file names unique.
static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Hidden temp-file path in the destination's directory (same filesystem, so the
/// commit rename is atomic).
fn temp_path_for(dst: &Path) -> Result<PathBuf, IoError> {
    let name = dst
        .file_name()
        .ok_or_else(|| IoError::Format(format!(".tpg path {:?} has no file name", dst)))?;
    let id = TMP_COUNTER.fetch_add(1, Ordering::Relaxed);
    Ok(dst.with_file_name(format!(
        ".{}.tmp.{}.{}",
        name.to_string_lossy(),
        std::process::id(),
        id
    )))
}

/// Streaming `.tpg` writer: feed neighbourhoods in vertex order, then [`finish`].
///
/// The path-based constructor is crash-safe: bytes stream into a hidden temp file next
/// to the destination and the destination only comes into existence through an atomic
/// rename after a successful `fsync` in [`finish`]. Dropping an unfinished writer (or
/// any error path) removes the temp file, so no partial container ever leaks.
///
/// [`finish`]: TpgWriter::finish
pub struct TpgWriter {
    out: Box<dyn StorageBackend>,
    /// Append buffer between the encode path and the backend.
    buf: Vec<u8>,
    /// Temp and destination paths of the crash-safe path-based writer; `None` when
    /// writing to a caller-provided backend.
    paths: Option<(PathBuf, PathBuf)>,
    committed: bool,
    config: CompressionConfig,
    /// Whether the source graph carries edge weights (controls weight encoding together
    /// with [`CompressionConfig::compress_edge_weights`]).
    edge_weighted: bool,
    n: usize,
    next_vertex: usize,
    offsets: Vec<u64>,
    node_weights: Vec<NodeWeight>,
    any_node_weight: bool,
    first_edge: EdgeId,
    total_edge_weight: EdgeWeight,
    max_degree: usize,
    half_edges: usize,
    encode_buf: Vec<u8>,
    /// Checksum block length of the data section.
    block_len: usize,
    /// Completed per-block crc32 values of the data section.
    block_crcs: Vec<u32>,
    /// Streaming crc of the block currently being filled.
    block_crc: Crc32,
    /// Bytes absorbed into `block_crc` so far.
    block_fill: usize,
    /// Whether to emit the offset index Elias-Fano encoded (v4 flag bit 4).
    ef_offsets: bool,
}

impl TpgWriter {
    /// Creates a writer for a graph with `n` vertices at `path`. `edge_weighted`
    /// declares whether the neighbourhoods that will be pushed carry meaningful weights.
    pub fn create(
        path: impl AsRef<Path>,
        n: usize,
        edge_weighted: bool,
        config: &CompressionConfig,
    ) -> Result<Self, IoError> {
        let dst = path.as_ref().to_path_buf();
        let tmp = temp_path_for(&dst)?;
        let backend = FileBackend::create(&tmp)?;
        Self::with_backend(
            Box::new(backend),
            Some((tmp, dst)),
            n,
            edge_weighted,
            config,
        )
    }

    /// Creates a writer streaming into a caller-provided backend (no temp file or
    /// commit rename — the fault-injection seam). The backend must be empty.
    pub fn create_with_backend(
        out: Box<dyn StorageBackend>,
        n: usize,
        edge_weighted: bool,
        config: &CompressionConfig,
    ) -> Result<Self, IoError> {
        Self::with_backend(out, None, n, edge_weighted, config)
    }

    fn with_backend(
        out: Box<dyn StorageBackend>,
        paths: Option<(PathBuf, PathBuf)>,
        n: usize,
        edge_weighted: bool,
        config: &CompressionConfig,
    ) -> Result<Self, IoError> {
        checked_node_count(n, ".tpg vertex count")?;
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0);
        Ok(Self {
            out,
            // Placeholder header, overwritten in `finish` once the totals are known.
            buf: vec![0u8; TPG_HEADER_LEN as usize],
            paths,
            committed: false,
            config: config.clone(),
            edge_weighted,
            n,
            next_vertex: 0,
            offsets,
            node_weights: Vec::new(),
            any_node_weight: false,
            first_edge: 0,
            total_edge_weight: 0,
            max_degree: 0,
            half_edges: 0,
            encode_buf: Vec::new(),
            block_len: TPG_CHECKSUM_BLOCK_LEN,
            block_crcs: Vec::new(),
            block_crc: Crc32::new(),
            block_fill: 0,
            // EF offsets are the default writer path: ~10x smaller offset index,
            // readable by every v4-aware reader. `with_plain_offsets` opts out for
            // containers that must stay readable by v3 tooling.
            ef_offsets: true,
        })
    }

    /// Selects the offset-index encoding: Elias-Fano (the default) shrinks the index
    /// from 8 bytes per vertex toward `2 + log2(data_len / n)` *bits* per vertex and
    /// is readable by every v4-aware reader (both store backends and the eager
    /// reader). Pass `false` for plain u64 offsets (see [`Self::with_plain_offsets`]).
    pub fn with_ef_offsets(mut self, ef_offsets: bool) -> Self {
        self.ef_offsets = ef_offsets;
        self
    }

    /// Opts out of the Elias-Fano offset index and emits plain u64 offsets, keeping
    /// the container readable by v3 tooling at 8 bytes per vertex.
    pub fn with_plain_offsets(self) -> Self {
        self.with_ef_offsets(false)
    }

    /// Overrides the checksum block length (must be a power of two in the format's
    /// admissible range, before any neighbourhood is pushed). Smaller blocks mean
    /// finer-grained corruption detection at the cost of a larger footer.
    pub fn with_checksum_block_len(mut self, block_len: usize) -> Self {
        assert!(
            block_len.is_power_of_two()
                && TPG_BLOCK_LOG2_RANGE.contains(&block_len.trailing_zeros()),
            "checksum block length {} not a power of two in 2^{}..=2^{}",
            block_len,
            TPG_BLOCK_LOG2_RANGE.start(),
            TPG_BLOCK_LOG2_RANGE.end(),
        );
        assert_eq!(
            self.next_vertex, 0,
            "checksum block length must be set before pushing neighbourhoods"
        );
        self.block_len = block_len;
        self
    }

    /// Byte offset of the end of the data section written so far.
    fn last_offset(&self) -> u64 {
        self.offsets.last().copied().unwrap_or(0)
    }

    /// Buffers `bytes` for appending; flushes to the backend past the threshold.
    fn buffered_write(&mut self, bytes: &[u8]) -> Result<(), IoError> {
        self.buf.extend_from_slice(bytes);
        if self.buf.len() >= WRITER_FLUSH_LEN {
            self.flush_buf()?;
        }
        Ok(())
    }

    fn flush_buf(&mut self) -> Result<(), IoError> {
        if !self.buf.is_empty() {
            self.out.append(&self.buf)?;
            self.buf.clear();
        }
        Ok(())
    }

    /// Appends data-section bytes, folding them into the per-block streaming crc.
    fn write_data(&mut self, bytes: &[u8]) -> Result<(), IoError> {
        let mut rest = bytes;
        while !rest.is_empty() {
            let room = self.block_len - self.block_fill;
            let take = room.min(rest.len());
            self.block_crc.update(&rest[..take]);
            self.block_fill += take;
            if self.block_fill == self.block_len {
                self.block_crcs.push(self.block_crc.take());
                self.block_fill = 0;
            }
            rest = &rest[take..];
        }
        self.buffered_write(bytes)
    }

    /// Appends the neighbourhood of the next vertex (vertices must be pushed in ID
    /// order). `neighbors` must be sorted by neighbour ID and free of duplicates and
    /// self-loops; `node_weight` is the vertex's weight (1 for uniform graphs).
    pub fn push_neighborhood(
        &mut self,
        u: NodeId,
        neighbors: &[(NodeId, EdgeWeight)],
        node_weight: NodeWeight,
    ) -> Result<(), IoError> {
        assert_eq!(
            u as usize, self.next_vertex,
            "neighbourhoods must be pushed in vertex order"
        );
        assert!(self.next_vertex < self.n, "vertex {} out of range", u);
        let mut encode_buf = std::mem::take(&mut self.encode_buf);
        encode_buf.clear();
        encode_neighborhood(
            u,
            self.first_edge,
            neighbors,
            self.edge_weighted && self.config.compress_edge_weights,
            &self.config,
            &mut encode_buf,
        );
        let written = self.write_data(&encode_buf);
        let encoded_len = encode_buf.len() as u64;
        self.encode_buf = encode_buf;
        written?;
        let last = self.last_offset();
        self.offsets.push(last + encoded_len);
        self.first_edge += neighbors.len() as EdgeId;
        self.half_edges += neighbors.len();
        self.max_degree = self.max_degree.max(neighbors.len());
        self.total_edge_weight += neighbors.iter().map(|&(_, w)| w).sum::<EdgeWeight>();
        self.node_weights.push(node_weight);
        self.any_node_weight |= node_weight != 1;
        self.next_vertex += 1;
        Ok(())
    }

    /// Commits a worker-encoded [`EncodedSection`] — the out-of-order commit path.
    ///
    /// Sections must arrive in vertex order (the caller serialises commits, e.g. with
    /// the packet scheme of [`compress_csr_parallel`]); the section must additionally
    /// have been encoded against the writer's current half-edge prefix, which the
    /// writer verifies. The resulting container is byte-identical to pushing the same
    /// neighbourhoods sequentially through [`push_neighborhood`].
    ///
    /// [`compress_csr_parallel`]: crate::builder::compress_csr_parallel
    /// [`push_neighborhood`]: TpgWriter::push_neighborhood
    pub fn push_section(&mut self, section: &EncodedSection) -> Result<(), IoError> {
        assert_eq!(
            section.first_vertex, self.next_vertex,
            "sections must be committed in vertex order"
        );
        assert_eq!(
            section.base_first_edge, self.first_edge,
            "section was encoded against a stale half-edge prefix"
        );
        assert!(
            self.next_vertex + section.vertex_count <= self.n,
            "section [{}, {}) out of range for {} vertices",
            section.first_vertex,
            section.first_vertex + section.vertex_count,
            self.n
        );
        // The section travelled through a channel between an encoder worker and this
        // writer; re-derive its crc so corruption in flight is caught before the bytes
        // reach disk with a checksum vouching for them.
        let actual = crc32(&section.bytes);
        if actual != section.crc {
            return Err(IoError::Corrupt(format!(
                "encoded section [{}, {}) checksum mismatch: encoder {:#010x}, commit {:#010x}",
                section.first_vertex,
                section.first_vertex + section.vertex_count,
                section.crc,
                actual
            )));
        }
        self.write_data(&section.bytes)?;
        let mut last = self.last_offset();
        for &size in &section.sizes {
            last += u64::from(size);
            self.offsets.push(last);
        }
        for &w in &section.node_weights {
            self.node_weights.push(w);
            self.any_node_weight |= w != 1;
        }
        self.first_edge += section.half_edges as EdgeId;
        self.half_edges += section.half_edges;
        self.max_degree = self.max_degree.max(section.max_degree);
        self.total_edge_weight += section.total_edge_weight;
        self.next_vertex += section.vertex_count;
        Ok(())
    }

    /// Writes the offset index, node weights and checksum footer, writes the header,
    /// syncs the file and — for path-based writers — atomically renames the temp file
    /// over the destination.
    pub fn finish(mut self) -> Result<TpgSummary, IoError> {
        assert_eq!(
            self.next_vertex, self.n,
            "expected {} vertices, got {}",
            self.n, self.next_vertex
        );
        let data_len = self.last_offset();
        // Seal the final partial data block.
        if self.block_fill > 0 {
            self.block_crcs.push(self.block_crc.take());
            self.block_fill = 0;
        }
        let offsets = std::mem::take(&mut self.offsets);
        let mut offsets_crc = Crc32::new();
        if self.ef_offsets {
            let ef = EliasFanoIndex::encode(&offsets, data_len);
            for &word in ef.lower_words().iter().chain(ef.upper_words().iter()) {
                let bytes = word.to_le_bytes();
                offsets_crc.update(&bytes);
                self.buffered_write(&bytes)?;
            }
        } else {
            for &offset in &offsets {
                let bytes = offset.to_le_bytes();
                offsets_crc.update(&bytes);
                self.buffered_write(&bytes)?;
            }
        }
        let node_weighted = self.any_node_weight;
        let mut weights_crc = Crc32::new();
        if node_weighted {
            let weights = std::mem::take(&mut self.node_weights);
            for &w in &weights {
                let bytes = w.to_le_bytes();
                weights_crc.update(&bytes);
                self.buffered_write(&bytes)?;
            }
            self.node_weights = weights;
        }
        let total_node_weight: NodeWeight = if node_weighted {
            self.node_weights.iter().sum()
        } else {
            self.n as NodeWeight
        };
        let mut flags = 0u32;
        if self.edge_weighted {
            flags |= FLAG_EDGE_WEIGHTED;
        }
        if node_weighted {
            flags |= FLAG_NODE_WEIGHTED;
        }
        if self.config.enable_intervals {
            flags |= FLAG_INTERVALS;
        }
        if self.config.compress_edge_weights {
            flags |= FLAG_COMPRESS_EDGE_WEIGHTS;
        }
        if self.ef_offsets {
            flags |= FLAG_EF_OFFSETS;
        }
        let mut header = Vec::with_capacity(TPG_HEADER_LEN as usize);
        header.extend_from_slice(TPG_MAGIC);
        header.extend_from_slice(&TPG_VERSION.to_le_bytes());
        header.extend_from_slice(&flags.to_le_bytes());
        // v3 reserved field: byte 0 the writer's id width, byte 1 the log2 of the
        // checksum block length.
        let block_log2 = self.block_len.trailing_zeros() as u8;
        header.extend_from_slice(&[ids::NODE_ID_BYTES, block_log2, 0, 0]);
        header.extend_from_slice(&(self.n as u64).to_le_bytes());
        header.extend_from_slice(&((self.half_edges / 2) as u64).to_le_bytes());
        header.extend_from_slice(&total_node_weight.to_le_bytes());
        header.extend_from_slice(&(self.total_edge_weight / 2).to_le_bytes());
        header.extend_from_slice(&(self.max_degree as u64).to_le_bytes());
        header.extend_from_slice(&(self.config.high_degree_threshold as u64).to_le_bytes());
        header.extend_from_slice(&(self.config.chunk_len as u64).to_le_bytes());
        header.extend_from_slice(&(self.config.min_interval_len as u64).to_le_bytes());
        header.extend_from_slice(&data_len.to_le_bytes());
        debug_assert_eq!(header.len() as u64, TPG_HEADER_LEN);
        // Checksum footer: per-block data crcs, section crcs, then the header crc
        // (computable only now that the header bytes are final).
        let block_crcs = std::mem::take(&mut self.block_crcs);
        self.buffered_write(TPG_FOOTER_MAGIC)?;
        for &c in &block_crcs {
            self.buffered_write(&c.to_le_bytes())?;
        }
        self.buffered_write(&offsets_crc.finalize().to_le_bytes())?;
        self.buffered_write(&weights_crc.finalize().to_le_bytes())?;
        self.buffered_write(&crc32(&header).to_le_bytes())?;
        self.flush_buf()?;
        self.out.write_at(0, &header)?;
        // fsync before the commit rename: the destination name must never refer to
        // bytes that could still be lost in the page cache.
        self.out.sync()?;
        let file_bytes = self.out.len()?;
        if let Some((tmp, dst)) = self.paths.take() {
            std::fs::rename(&tmp, &dst)?;
        }
        self.committed = true;
        Ok(TpgSummary {
            n: self.n,
            m: self.half_edges / 2,
            data_bytes: data_len,
            file_bytes,
        })
    }
}

impl Drop for TpgWriter {
    fn drop(&mut self) {
        // An unfinished (or failed) path-based writer removes its temp file so error
        // paths never leak partial containers.
        if !self.committed {
            if let Some((tmp, _)) = &self.paths {
                let _ = std::fs::remove_file(tmp);
            }
        }
    }
}

/// One encoded run of consecutive vertex neighbourhoods, produced by a
/// [`SectionEncoder`] and committed through [`TpgWriter::push_section`].
///
/// Sections are the unit of the out-of-order commit path: workers encode disjoint
/// vertex ranges into local `EncodedSection` buffers in any order and commit them to
/// the writer in vertex order (the packet scheme of
/// [`compress_csr_parallel`](crate::builder::compress_csr_parallel)). The committed
/// byte stream is identical to pushing the same neighbourhoods one by one through
/// [`TpgWriter::push_neighborhood`].
#[derive(Debug)]
pub struct EncodedSection {
    /// First vertex of the section.
    first_vertex: usize,
    /// Number of vertices encoded into the section.
    vertex_count: usize,
    /// The half-edge ID the section's first neighbourhood was encoded against. The
    /// writer checks it at commit time: a section encoded against the wrong prefix
    /// would embed wrong `first_edge` headers.
    base_first_edge: EdgeId,
    /// Concatenated encoded neighbourhoods.
    bytes: Vec<u8>,
    /// Encoded size of each vertex's neighbourhood within `bytes`.
    sizes: Vec<u32>,
    /// Node weight of each vertex in the section.
    node_weights: Vec<NodeWeight>,
    /// Half-edges (directed neighbour entries) in the section.
    half_edges: usize,
    /// Sum of all neighbour weights in the section (each half-edge counted once).
    total_edge_weight: EdgeWeight,
    /// Maximum degree within the section.
    max_degree: usize,
    /// crc32 of `bytes`, computed streaming by the encoder and re-verified by
    /// [`TpgWriter::push_section`] before the bytes reach disk.
    crc: u32,
}

impl EncodedSection {
    /// Number of half-edges encoded into the section.
    pub fn half_edges(&self) -> usize {
        self.half_edges
    }
}

/// Encodes a run of consecutive vertex neighbourhoods into an [`EncodedSection`]
/// without touching the output file — the worker-local half of the out-of-order
/// commit path (see [`TpgWriter::push_section`]).
///
/// `base_first_edge` must equal the number of half-edges of all vertices preceding
/// `first_vertex` in the final container; the caller learns it from the preceding
/// section's totals (the neighbourhood header embeds the absolute first-edge ID, so
/// it cannot be patched after encoding).
pub struct SectionEncoder {
    config: CompressionConfig,
    edge_weighted: bool,
    next_vertex: usize,
    first_edge: EdgeId,
    section: EncodedSection,
    /// Streaming crc over the section bytes encoded so far.
    crc: Crc32,
}

impl SectionEncoder {
    /// Creates an encoder for the vertex run starting at `first_vertex`, whose first
    /// neighbourhood begins at half-edge `base_first_edge`. `edge_weighted` and
    /// `config` must match the target [`TpgWriter`].
    pub fn new(
        first_vertex: NodeId,
        base_first_edge: EdgeId,
        edge_weighted: bool,
        config: &CompressionConfig,
    ) -> Self {
        Self {
            config: config.clone(),
            edge_weighted,
            next_vertex: first_vertex as usize,
            first_edge: base_first_edge,
            section: EncodedSection {
                first_vertex: first_vertex as usize,
                vertex_count: 0,
                base_first_edge,
                bytes: Vec::new(),
                sizes: Vec::new(),
                node_weights: Vec::new(),
                half_edges: 0,
                total_edge_weight: 0,
                max_degree: 0,
                crc: 0,
            },
            crc: Crc32::new(),
        }
    }

    /// Appends the next vertex's neighbourhood (same contract as
    /// [`TpgWriter::push_neighborhood`]: vertices in ID order, neighbours sorted,
    /// duplicate- and self-loop-free).
    pub fn push_neighborhood(
        &mut self,
        u: NodeId,
        neighbors: &[(NodeId, EdgeWeight)],
        node_weight: NodeWeight,
    ) {
        assert_eq!(
            u as usize, self.next_vertex,
            "section neighbourhoods must be pushed in vertex order"
        );
        let before = self.section.bytes.len();
        encode_neighborhood(
            u,
            self.first_edge,
            neighbors,
            self.edge_weighted && self.config.compress_edge_weights,
            &self.config,
            &mut self.section.bytes,
        );
        self.crc.update(&self.section.bytes[before..]);
        self.section
            .sizes
            .push((self.section.bytes.len() - before) as u32);
        self.section.node_weights.push(node_weight);
        self.first_edge += neighbors.len() as EdgeId;
        self.section.half_edges += neighbors.len();
        self.section.max_degree = self.section.max_degree.max(neighbors.len());
        self.section.total_edge_weight += neighbors.iter().map(|&(_, w)| w).sum::<EdgeWeight>();
        self.section.vertex_count += 1;
        self.next_vertex += 1;
    }

    /// Finalises the section for commit.
    pub fn finish(mut self) -> EncodedSection {
        self.section.crc = self.crc.finalize();
        self.section
    }
}

/// Reads and validates the header of a `.tpg` file (including the stored header crc32
/// for v3 files).
pub fn read_tpg_meta(path: impl AsRef<Path>) -> Result<TpgMeta, IoError> {
    let backend = FileBackend::open(path)?;
    read_tpg_meta_backend(&backend)
}

/// Backend-generic [`read_tpg_meta`]: parses the header and, for v3 files, verifies it
/// against the crc32 stored in the checksum footer, so any flipped header bit —
/// including one in the version or length fields the footer position itself is derived
/// from — surfaces as a structured error rather than garbage section offsets.
pub fn read_tpg_meta_backend(backend: &dyn StorageBackend) -> Result<TpgMeta, IoError> {
    let mut header = [0u8; TPG_HEADER_LEN as usize];
    read_full_at(backend, &mut header, 0)?;
    let meta = read_meta_from(&mut &header[..])?;
    if meta.checksum_block_len.is_some() {
        let mut stored = [0u8; 4];
        read_full_at(backend, &mut stored, meta.header_crc_pos())?;
        let stored = u32::from_le_bytes(stored);
        let computed = crc32(&header);
        if computed != stored {
            return Err(IoError::Corrupt(format!(
                ".tpg header checksum mismatch: stored {:#010x}, computed {:#010x}",
                stored, computed
            )));
        }
    }
    Ok(meta)
}

fn read_meta_from(r: &mut impl Read) -> Result<TpgMeta, IoError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != TPG_MAGIC {
        return Err(IoError::Format("bad .tpg magic".into()));
    }
    let version = read_exact_u32(r)?;
    if version == 0 || version > TPG_VERSION {
        return Err(IoError::Format(format!(
            "unsupported .tpg version {}",
            version
        )));
    }
    let flags = read_exact_u32(r)?;
    let reserved = read_exact_u32(r)?;
    // v1 wrote a zero reserved field (implicit 32-bit ids); v2 stores the writer's id
    // width in the low byte; v3 additionally stores the log2 of the checksum block
    // length in the second byte. The remaining bytes stay reserved and must be zero.
    let mut checksum_block_len = None;
    let id_width = if version == 1 {
        if reserved != 0 {
            return Err(IoError::Format(format!(
                "non-zero reserved field {:#x} in a v1 .tpg header",
                reserved
            )));
        }
        <u32 as IdWidth>::BYTES
    } else {
        let reserved_tail = if version == 2 {
            reserved >> 8
        } else {
            let block_log2 = (reserved >> 8) & 0xff;
            if !TPG_BLOCK_LOG2_RANGE.contains(&block_log2) {
                return Err(IoError::Format(format!(
                    "unsupported .tpg checksum block length 2^{}",
                    block_log2
                )));
            }
            checksum_block_len = Some(1u32 << block_log2);
            reserved >> 16
        };
        if reserved_tail != 0 {
            return Err(IoError::Format(format!(
                "non-zero reserved bytes {:#x} in a v{} .tpg header",
                reserved_tail, version
            )));
        }
        match (reserved & 0xff) as u8 {
            w @ (<u32 as IdWidth>::BYTES | <u64 as IdWidth>::BYTES) => w,
            other => {
                return Err(IoError::Format(format!(
                    "unsupported .tpg id width {} bytes",
                    other
                )))
            }
        }
    };
    let ef_offsets = flags & FLAG_EF_OFFSETS != 0;
    if ef_offsets && version < 4 {
        return Err(IoError::Format(format!(
            "Elias-Fano offset flag set in a v{} .tpg header (requires v4)",
            version
        )));
    }
    let n = read_exact_u64(r)? as usize;
    // The data section is width-agnostic (VarInt gaps), so the only hard requirement
    // is that every vertex id is representable at the *active* width.
    checked_node_count(n, ".tpg vertex count")?;
    let m = read_exact_u64(r)? as usize;
    let total_node_weight = read_exact_u64(r)?;
    let total_edge_weight = read_exact_u64(r)?;
    let max_degree = read_exact_u64(r)? as usize;
    let high_degree_threshold = read_exact_u64(r)? as usize;
    let chunk_len = read_exact_u64(r)? as usize;
    let min_interval_len = read_exact_u64(r)? as usize;
    let data_len = read_exact_u64(r)?;
    Ok(TpgMeta {
        version,
        id_width,
        n,
        m,
        edge_weighted: flags & FLAG_EDGE_WEIGHTED != 0,
        node_weighted: flags & FLAG_NODE_WEIGHTED != 0,
        total_node_weight,
        total_edge_weight,
        max_degree,
        config: CompressionConfig {
            enable_intervals: flags & FLAG_INTERVALS != 0,
            compress_edge_weights: flags & FLAG_COMPRESS_EDGE_WEIGHTS != 0,
            high_degree_threshold,
            chunk_len,
            min_interval_len,
        },
        data_len,
        checksum_block_len,
        ef_offsets,
    })
}

/// The per-block data-section checksums of an open v3 container, held by readers that
/// verify pages incrementally (the paged graph).
#[derive(Debug, Clone)]
pub(crate) struct TpgChecksums {
    /// Block length the data section was checksummed at.
    pub(crate) block_len: u32,
    /// crc32 of each `block_len`-sized data block (the last one may be shorter).
    pub(crate) blocks: Vec<u32>,
}

/// Decodes a little-endian u32 from the first 4 bytes of `bytes`.
fn le_u32(bytes: &[u8]) -> u32 {
    let mut raw = [0u8; 4];
    raw.copy_from_slice(&bytes[..4]);
    u32::from_le_bytes(raw)
}

/// Decodes a little-endian u64 from the first 8 bytes of `bytes`.
fn le_u64(bytes: &[u8]) -> u64 {
    let mut raw = [0u8; 8];
    raw.copy_from_slice(&bytes[..8]);
    u64::from_le_bytes(raw)
}

/// Chunk size of the section readers: large enough to amortise syscalls, small enough
/// to keep the transient buffer out of the accounted budget's way.
const SECTION_READ_CHUNK: usize = 64 * 1024;

/// Reads `count` little-endian u64 values starting at `start`, folding the raw bytes
/// into `crc`.
fn read_u64_section(
    backend: &dyn StorageBackend,
    start: u64,
    count: usize,
    crc: &mut Crc32,
) -> Result<Vec<u64>, IoError> {
    let mut out = Vec::with_capacity(count);
    let mut chunk = vec![0u8; SECTION_READ_CHUNK.min(count.max(1) * 8)];
    let mut offset = start;
    let mut remaining = count;
    while remaining > 0 {
        let take = remaining.min(chunk.len() / 8);
        let bytes = &mut chunk[..take * 8];
        read_full_at(backend, bytes, offset)?;
        crc.update(bytes);
        for i in 0..take {
            out.push(le_u64(&bytes[i * 8..]));
        }
        offset += (take * 8) as u64;
        remaining -= take;
    }
    Ok(out)
}

/// Reads `count` little-endian u32 values starting at `start`.
fn read_u32_section(
    backend: &dyn StorageBackend,
    start: u64,
    count: usize,
) -> Result<Vec<u32>, IoError> {
    let mut out = Vec::with_capacity(count);
    let mut chunk = vec![0u8; SECTION_READ_CHUNK.min(count.max(1) * 4)];
    let mut offset = start;
    let mut remaining = count;
    while remaining > 0 {
        let take = remaining.min(chunk.len() / 4);
        let bytes = &mut chunk[..take * 4];
        read_full_at(backend, bytes, offset)?;
        for i in 0..take {
            out.push(le_u32(&bytes[i * 4..]));
        }
        offset += (take * 4) as u64;
        remaining -= take;
    }
    Ok(out)
}

/// Offset index, node weights and (v3+ only) checksum footer of an open container.
pub(crate) type TpgIndexParts = (OffsetIndex, Vec<NodeWeight>, Option<TpgChecksums>);

/// Runs one retryable unit of the open path under `retry`, re-attempting every
/// failure [`open_error_is_retryable`] admits (transient I/O *and* checksum or
/// format errors — corrupt reads parse into arbitrary nonsense, so only a clean
/// re-read can acquit the bytes). Retries taken are added to `retries`.
pub(crate) fn retry_section<T>(
    retry: &RetryPolicy,
    retries: &mut u64,
    mut op: impl FnMut() -> Result<T, IoError>,
) -> Result<T, IoError> {
    let mut attempt = 0u32;
    loop {
        match op() {
            Ok(v) => return Ok(v),
            Err(e) => {
                if attempt >= retry.max_retries || !open_error_is_retryable(&e) {
                    return Err(e);
                }
                *retries += 1;
                std::thread::sleep(retry.delay_for(attempt));
                attempt += 1;
            }
        }
    }
}

/// Reads the offset index, (optional) node weights and — for v3 files — the checksum
/// footer of an open `.tpg` container, verifying the index and weight sections against
/// their stored crcs.
///
/// Each section is read, verified and *retried* as its own unit (footer first, so the
/// stored crcs are in hand when the sections they cover arrive): under a flaky
/// backend, a fault in one section only re-reads that section, which keeps the
/// whole-open success probability high where an all-or-nothing retry of the full
/// header/index chain would almost never see a fault-free pass. Retries taken are
/// added to `retries`.
pub(crate) fn read_tpg_index_backend(
    backend: &dyn StorageBackend,
    meta: &TpgMeta,
    retry: &RetryPolicy,
    retries: &mut u64,
) -> Result<TpgIndexParts, IoError> {
    // Footer first (v3): magic, per-block data crcs and the stored section crcs.
    let footer = match meta.checksum_block_len {
        None => None,
        Some(block_len) => Some(retry_section(retry, retries, || {
            let mut pos = meta.footer_start();
            let mut magic = [0u8; 4];
            read_full_at(backend, &mut magic, pos)?;
            if &magic != TPG_FOOTER_MAGIC {
                return Err(IoError::Format("missing .tpg v3 checksum footer".into()));
            }
            pos += 4;
            let count = meta.checksum_block_count() as usize;
            let blocks = read_u32_section(backend, pos, count)?;
            pos += 4 * count as u64;
            let mut tail = [0u8; 12];
            read_full_at(backend, &mut tail, pos)?;
            // tail[8..12] is the header crc, verified at meta-read time.
            Ok((
                TpgChecksums { block_len, blocks },
                le_u32(&tail[0..]),
                le_u32(&tail[4..]),
            ))
        })?),
    };
    let stored_offsets = footer.as_ref().map(|(_, offsets_crc, _)| *offsets_crc);
    let stored_weights = footer.as_ref().map(|(_, _, weights_crc)| *weights_crc);

    let offsets = retry_section(retry, retries, || {
        let mut crc = Crc32::new();
        // For an Elias-Fano index the stored unit is whole u64 words; the word count
        // derives from the header, so the crc covers exactly the section bytes.
        let count = if meta.ef_offsets {
            (meta.offsets_len_bytes() / 8) as usize
        } else {
            meta.n + 1
        };
        let raw = read_u64_section(backend, meta.offsets_start(), count, &mut crc)?;
        if let Some(stored) = stored_offsets {
            let computed = crc.finalize();
            if computed != stored {
                return Err(IoError::Corrupt(format!(
                    ".tpg offset index checksum mismatch: stored {:#010x}, computed {:#010x}",
                    stored, computed
                )));
            }
        }
        let index = if meta.ef_offsets {
            OffsetIndex::EliasFano(EliasFanoIndex::from_words(meta.n + 1, meta.data_len, raw)?)
        } else {
            OffsetIndex::Plain(raw)
        };
        if index.last() != meta.data_len {
            return Err(IoError::Format(
                "offset index does not cover the data section".into(),
            ));
        }
        Ok(index)
    })?;

    let node_weights = retry_section(retry, retries, || {
        let mut crc = Crc32::new();
        let weights = if meta.node_weighted {
            read_u64_section(backend, meta.node_weights_start(), meta.n, &mut crc)?
        } else {
            Vec::new()
        };
        if let Some(stored) = stored_weights {
            let computed = crc.finalize();
            if computed != stored {
                return Err(IoError::Corrupt(format!(
                    ".tpg node-weight checksum mismatch: stored {:#010x}, computed {:#010x}",
                    stored, computed
                )));
            }
        }
        Ok(weights)
    })?;

    Ok((offsets, node_weights, footer.map(|(ck, _, _)| ck)))
}

/// Verifies a fully materialised data section against its per-block crcs.
pub(crate) fn verify_data_blocks(data: &[u8], checksums: &TpgChecksums) -> Result<(), IoError> {
    let block_len = checksums.block_len as usize;
    let expected = data.len().div_ceil(block_len);
    if checksums.blocks.len() != expected {
        return Err(IoError::Format(format!(
            ".tpg footer carries {} block checksums, data section needs {}",
            checksums.blocks.len(),
            expected
        )));
    }
    verify_data_blocks_at(data, 0, checksums)
}

/// Verifies a data-section slice starting at block-aligned byte offset `start`
/// against the per-block crcs. A partial trailing chunk is only admissible at the end
/// of the data section, where the writer checksummed the short block as-is.
pub(crate) fn verify_data_blocks_at(
    data: &[u8],
    start: u64,
    checksums: &TpgChecksums,
) -> Result<(), IoError> {
    let block_len = checksums.block_len as usize;
    debug_assert_eq!(start % block_len as u64, 0);
    let first = (start / block_len as u64) as usize;
    for (i, chunk) in data.chunks(block_len).enumerate() {
        let stored = match checksums.blocks.get(first + i) {
            Some(&c) => c,
            None => {
                return Err(IoError::Format(format!(
                    ".tpg footer carries {} block checksums, block {} requested",
                    checksums.blocks.len(),
                    first + i
                )))
            }
        };
        let computed = crc32(chunk);
        if computed != stored {
            return Err(IoError::Corrupt(format!(
                ".tpg data block {} checksum mismatch: stored {:#010x}, computed {:#010x}",
                first + i,
                stored,
                computed
            )));
        }
    }
    Ok(())
}

/// Verification chunk target of [`verify_or_load_data`], rounded down to a whole
/// number of checksum blocks.
const DATA_VERIFY_CHUNK: usize = 1024 * 1024;

/// Streams the data section of an open container through the backend in
/// checksum-block-aligned chunks, verifying each chunk against the footer's per-block
/// crcs and optionally collecting the bytes into `sink` (the mmap backend's heap
/// fallback). Each chunk is its own retry unit, so a transient fault re-reads only
/// the chunk it hit — and because every byte flows through
/// [`StorageBackend::read_at`], injected fault schedules apply to this path exactly
/// as they do to the paged reader.
pub(crate) fn verify_or_load_data(
    backend: &dyn StorageBackend,
    meta: &TpgMeta,
    checksums: Option<&TpgChecksums>,
    retry: &RetryPolicy,
    retries: &mut u64,
    mut sink: Option<&mut Vec<u8>>,
) -> Result<(), IoError> {
    if let Some(out) = sink.as_deref_mut() {
        out.clear();
        out.reserve(meta.data_len as usize);
    }
    if meta.data_len == 0 {
        return Ok(());
    }
    let block_len = checksums.map_or(DATA_VERIFY_CHUNK as u64, |ck| u64::from(ck.block_len));
    let chunk_len = block_len * (DATA_VERIFY_CHUNK as u64 / block_len).max(1);
    let mut buf = vec![0u8; chunk_len.min(meta.data_len) as usize];
    let mut pos = 0u64;
    while pos < meta.data_len {
        let take = chunk_len.min(meta.data_len - pos) as usize;
        retry_section(retry, retries, || {
            let bytes = &mut buf[..take];
            read_full_at(backend, bytes, meta.data_start() + pos)?;
            if let Some(ck) = checksums {
                verify_data_blocks_at(bytes, pos, ck)?;
            }
            Ok(())
        })?;
        if let Some(out) = sink.as_deref_mut() {
            out.extend_from_slice(&buf[..take]);
        }
        pos += take as u64;
    }
    Ok(())
}

/// Writes any [`Graph`] into a `.tpg` container. Neighbourhoods are sorted before
/// encoding, so the container is canonical regardless of the source's iteration order.
/// Emits the Elias-Fano offset index (the writer default); use
/// [`write_tpg_from_graph_plain`] for containers that must stay readable by v3 tooling.
pub fn write_tpg_from_graph(
    graph: &impl Graph,
    path: impl AsRef<Path>,
    config: &CompressionConfig,
) -> Result<TpgSummary, IoError> {
    let mut writer = TpgWriter::create(path, graph.n(), graph.is_edge_weighted(), config)?;
    for u in 0..graph.n() as NodeId {
        let mut nbrs = graph.neighbors_vec(u);
        nbrs.sort_unstable_by_key(|&(v, _)| v);
        writer.push_neighborhood(u, &nbrs, graph.node_weight(u))?;
    }
    writer.finish()
}

/// [`write_tpg_from_graph`] with the Elias-Fano offset index explicitly enabled.
/// Identical to the default path now that EF is the writer default; kept for callers
/// that want the encoding spelled out.
pub fn write_tpg_from_graph_ef(
    graph: &impl Graph,
    path: impl AsRef<Path>,
    config: &CompressionConfig,
) -> Result<TpgSummary, IoError> {
    let mut writer =
        TpgWriter::create(path, graph.n(), graph.is_edge_weighted(), config)?.with_ef_offsets(true);
    for u in 0..graph.n() as NodeId {
        let mut nbrs = graph.neighbors_vec(u);
        nbrs.sort_unstable_by_key(|&(v, _)| v);
        writer.push_neighborhood(u, &nbrs, graph.node_weight(u))?;
    }
    writer.finish()
}

/// [`write_tpg_from_graph`] with the plain u64 offset index: identical data section,
/// 8 bytes per vertex of offsets, readable by v3 tooling.
pub fn write_tpg_from_graph_plain(
    graph: &impl Graph,
    path: impl AsRef<Path>,
    config: &CompressionConfig,
) -> Result<TpgSummary, IoError> {
    let mut writer =
        TpgWriter::create(path, graph.n(), graph.is_edge_weighted(), config)?.with_plain_offsets();
    for u in 0..graph.n() as NodeId {
        let mut nbrs = graph.neighbors_vec(u);
        nbrs.sort_unstable_by_key(|&(v, _)| v);
        writer.push_neighborhood(u, &nbrs, graph.node_weight(u))?;
    }
    writer.finish()
}

/// Converts a METIS text file into a `.tpg` container in one streaming pass: each vertex
/// line is parsed, cleaned (self-loops dropped, duplicate entries weight-merged — the
/// same parser [`crate::io::read_metis_compressed`] uses), sorted and encoded
/// immediately, so no uncompressed adjacency is ever materialised.
pub fn write_tpg_from_metis(
    src: impl AsRef<Path>,
    dst: impl AsRef<Path>,
    config: &CompressionConfig,
) -> Result<TpgSummary, IoError> {
    let mut writer: Option<TpgWriter> = None;
    let dst = dst.as_ref();
    let header = for_each_metis_vertex(src, &mut |header, u, node_weight, nbrs| {
        if writer.is_none() {
            writer = Some(TpgWriter::create(
                dst,
                header.n,
                header.has_edge_weights,
                config,
            )?);
        }
        match writer.as_mut() {
            Some(w) => w.push_neighborhood(u, nbrs, node_weight),
            None => unreachable!("writer initialised above"),
        }
    })?;
    match writer {
        Some(w) => w.finish(),
        // Zero-vertex file: the closure never ran, so create the empty container here.
        None => TpgWriter::create(dst, header.n, header.has_edge_weights, config)?.finish(),
    }
}

/// Converts a binary graph file (see [`crate::io::write_binary`]) into a `.tpg`
/// container with bounded memory. Edge weights are stored after the adjacency in the
/// source format, so the weighted case reads the file through *two* cursors advancing in
/// lockstep — one over the adjacency, one over the weights — instead of buffering the
/// whole adjacency as [`crate::io::read_binary_compressed`] does.
pub fn write_tpg_from_binary(
    src: impl AsRef<Path>,
    dst: impl AsRef<Path>,
    config: &CompressionConfig,
) -> Result<TpgSummary, IoError> {
    let file = File::open(&src)?;
    let mut r = BufReader::new(file);
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != BINARY_MAGIC {
        return Err(IoError::Format("bad magic".into()));
    }
    let version = read_exact_u32(&mut r)?;
    if version != 1 {
        return Err(IoError::Format(format!("unsupported version {}", version)));
    }
    let n = read_exact_u64(&mut r)? as usize;
    let half_edges = read_exact_u64(&mut r)? as usize;
    let flags = read_exact_u32(&mut r)?;
    let edge_weighted = flags & 1 != 0;
    let node_weighted = flags & 2 != 0;
    let mut xadj = Vec::with_capacity(n + 1);
    for _ in 0..=n {
        xadj.push(read_exact_u64(&mut r)?);
    }
    // Section offsets within the source file.
    let adjacency_start = 4 + 4 + 8 + 8 + 4 + 8 * (n as u64 + 1);
    let weights_start = adjacency_start + 4 * half_edges as u64;
    let node_weights_start = if edge_weighted {
        weights_start + 8 * half_edges as u64
    } else {
        weights_start
    };
    // Second cursor over the edge-weight section (weighted graphs only).
    let mut weight_reader = if edge_weighted {
        let mut f = File::open(&src)?;
        f.seek(SeekFrom::Start(weights_start))?;
        Some(BufReader::new(f))
    } else {
        None
    };
    // Third cursor over the node weights, read up front (`O(n)` is in budget).
    let node_weights: Vec<NodeWeight> = if node_weighted {
        let mut f = File::open(&src)?;
        f.seek(SeekFrom::Start(node_weights_start))?;
        let mut nr = BufReader::new(f);
        (0..n)
            .map(|_| read_exact_u64(&mut nr))
            .collect::<Result<_, _>>()?
    } else {
        Vec::new()
    };
    let mut writer = TpgWriter::create(dst, n, edge_weighted, config)?;
    let mut nbrs: Vec<(NodeId, EdgeWeight)> = Vec::new();
    for u in 0..n {
        let degree = (xadj[u + 1] - xadj[u]) as usize;
        nbrs.clear();
        for _ in 0..degree {
            nbrs.push((NodeId::from(read_exact_u32(&mut r)?), 1));
        }
        if let Some(wr) = weight_reader.as_mut() {
            for entry in nbrs.iter_mut() {
                entry.1 = read_exact_u64(wr)?;
            }
        }
        nbrs.sort_unstable_by_key(|&(v, _)| v);
        let node_weight = if node_weighted { node_weights[u] } else { 1 };
        writer.push_neighborhood(u as NodeId, &nbrs, node_weight)?;
    }
    writer.finish()
}

/// Materialises a `.tpg` container as an in-memory [`CsrGraph`] (sequential full read).
/// Intended for tests, instance inspection and the in-memory experiment binaries; the
/// partitioner itself should open a [`PagedGraph`](crate::store::PagedGraph) instead.
pub fn read_tpg(path: impl AsRef<Path>) -> Result<CsrGraph, IoError> {
    let compressed = read_tpg_compressed(path)?;
    let n = compressed.n();
    let mut xadj: Vec<EdgeId> = Vec::with_capacity(n + 1);
    let mut adjacency: Vec<NodeId> = Vec::new();
    let mut edge_weights: Vec<EdgeWeight> = Vec::new();
    let edge_weighted = compressed.is_edge_weighted();
    xadj.push(0);
    for u in 0..n as NodeId {
        let mut nbrs = compressed.neighbors_vec(u);
        nbrs.sort_unstable_by_key(|&(v, _)| v);
        for (v, w) in nbrs {
            adjacency.push(v);
            if edge_weighted {
                edge_weights.push(w);
            }
        }
        xadj.push(adjacency.len() as EdgeId);
    }
    let node_weights = if compressed.is_node_weighted() {
        (0..n as NodeId)
            .map(|u| compressed.node_weight(u))
            .collect()
    } else {
        Vec::new()
    };
    Ok(CsrGraph::from_parts(
        xadj,
        adjacency,
        edge_weights,
        node_weights,
    ))
}

/// Loads a `.tpg` container fully into memory as a [`CompressedGraph`]. The data section
/// is used verbatim, so the result iterates neighbourhoods in exactly the order a
/// [`PagedGraph`](crate::store::PagedGraph) over the same file would — the property the
/// bit-identical on-disk partitioning tests rely on.
pub fn read_tpg_compressed(path: impl AsRef<Path>) -> Result<CompressedGraph, IoError> {
    let backend = FileBackend::open(&path)?;
    read_tpg_compressed_backend(&backend)
}

/// Backend-generic [`read_tpg_compressed`]; v3 containers have every section verified
/// against the checksum footer before the graph is handed out.
pub fn read_tpg_compressed_backend(
    backend: &dyn StorageBackend,
) -> Result<CompressedGraph, IoError> {
    let meta = read_tpg_meta_backend(backend)?;
    // The eager reader surfaces the first failure; retrying is the paged reader's job.
    let (offsets, node_weights, checksums) =
        read_tpg_index_backend(backend, &meta, &RetryPolicy::disabled(), &mut 0)?;
    let mut data = vec![0u8; meta.data_len as usize];
    read_full_at(backend, &mut data, meta.data_start())?;
    if let Some(ck) = &checksums {
        verify_data_blocks(&data, ck)?;
    }
    Ok(CompressedGraph::from_encoded_parts(
        meta.n,
        meta.m,
        offsets.into_vec(),
        data,
        node_weights,
        meta.edge_weighted,
        meta.total_node_weight,
        meta.total_edge_weight,
        meta.max_degree,
        meta.config,
    ))
}

/// Decodes every neighbourhood of an in-memory data section sequentially, invoking
/// `f(u, neighbor, weight)`. Shared by consistency checks and tests.
#[allow(dead_code)]
pub(crate) fn for_each_encoded_neighbor(
    data: &[u8],
    offsets: &[u64],
    weighted: bool,
    config: &CompressionConfig,
    f: &mut dyn FnMut(NodeId, NodeId, EdgeWeight),
) {
    for (u, offset) in offsets
        .iter()
        .take(offsets.len().saturating_sub(1))
        .enumerate()
    {
        decode_neighborhood(
            data,
            *offset as usize,
            u as NodeId,
            weighted,
            config,
            &mut |v, w| f(u as NodeId, v, w),
        );
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use crate::compressed::CompressionConfig;
    use crate::gen;
    use crate::io::{write_binary, write_metis};

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "terapart_store_test_{}_{}",
            std::process::id(),
            name
        ));
        p
    }

    fn assert_graph_eq(a: &CsrGraph, b: &CsrGraph) {
        assert_eq!(a.n(), b.n());
        assert_eq!(a.m(), b.m());
        assert_eq!(a.total_node_weight(), b.total_node_weight());
        assert_eq!(a.total_edge_weight(), b.total_edge_weight());
        for u in 0..a.n() as NodeId {
            let mut na = a.neighbors_vec(u);
            let mut nb = b.neighbors_vec(u);
            na.sort_unstable();
            nb.sort_unstable();
            assert_eq!(na, nb, "vertex {}", u);
            assert_eq!(a.node_weight(u), b.node_weight(u));
        }
    }

    #[test]
    fn container_round_trip_unweighted() {
        let g = gen::grid2d(13, 9);
        let path = tmp("roundtrip_unweighted.tpg");
        let summary = write_tpg_from_graph(&g, &path, &CompressionConfig::default()).unwrap();
        assert_eq!(summary.n, g.n());
        assert_eq!(summary.m, g.m());
        let meta = read_tpg_meta(&path).unwrap();
        assert_eq!(meta.n, g.n());
        assert_eq!(meta.m, g.m());
        assert!(!meta.edge_weighted && !meta.node_weighted);
        assert_eq!(meta.max_degree, g.max_degree());
        assert_eq!(meta.csr_size_in_bytes(), g.size_in_bytes());
        let h = read_tpg(&path).unwrap();
        assert_graph_eq(&g, &h);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn container_round_trip_weighted() {
        let g = gen::with_random_node_weights(
            &gen::with_random_edge_weights(&gen::rhg_like(300, 8, 3.0, 5), 9, 6),
            5,
            7,
        );
        let path = tmp("roundtrip_weighted.tpg");
        write_tpg_from_graph(&g, &path, &CompressionConfig::default()).unwrap();
        let meta = read_tpg_meta(&path).unwrap();
        assert!(meta.edge_weighted && meta.node_weighted);
        let h = read_tpg(&path).unwrap();
        assert_graph_eq(&g, &h);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn container_data_section_matches_in_memory_encoding() {
        // The on-disk data must be byte-identical to CompressedGraph::from_csr so that
        // paged iteration is bit-identical to the in-memory compressed path.
        let g = gen::weblike(9, 8, 3);
        let config = CompressionConfig::default();
        let path = tmp("matches_in_memory.tpg");
        let summary = write_tpg_from_graph(&g, &path, &config).unwrap();
        let reference = CompressedGraph::from_csr(&g, &config);
        assert_eq!(summary.data_bytes as usize, reference.encoded_data_bytes());
        let loaded = read_tpg_compressed(&path).unwrap();
        assert_eq!(loaded.encoded_data_bytes(), reference.encoded_data_bytes());
        for u in 0..g.n() as NodeId {
            assert_eq!(loaded.neighbors_vec(u), reference.neighbors_vec(u));
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn metis_to_tpg_matches_graph_to_tpg() {
        let g = gen::with_random_edge_weights(&gen::rgg2d(400, 10, 8), 7, 9);
        let metis = tmp("via_metis.graph");
        write_metis(&g, &metis).unwrap();
        let direct = tmp("direct.tpg");
        let via_metis = tmp("via_metis.tpg");
        let config = CompressionConfig::default();
        let a = write_tpg_from_graph(&g, &direct, &config).unwrap();
        let b = write_tpg_from_metis(&metis, &via_metis, &config).unwrap();
        assert_eq!(a, b);
        assert_graph_eq(&read_tpg(&direct).unwrap(), &read_tpg(&via_metis).unwrap());
        for p in [metis, direct, via_metis] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn binary_to_tpg_two_cursor_pass_matches() {
        // Weighted graphs exercise the two-cursor (adjacency + weights) read.
        let g = gen::with_random_edge_weights(&gen::weblike(9, 6, 4), 50, 10);
        let bin = tmp("via_binary.bin");
        write_binary(&g, &bin).unwrap();
        let direct = tmp("direct_b.tpg");
        let via_bin = tmp("via_binary.tpg");
        let config = CompressionConfig::default();
        let a = write_tpg_from_graph(&g, &direct, &config).unwrap();
        let b = write_tpg_from_binary(&bin, &via_bin, &config).unwrap();
        assert_eq!(a, b);
        assert_graph_eq(&read_tpg(&direct).unwrap(), &read_tpg(&via_bin).unwrap());
        for p in [bin, direct, via_bin] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn bad_magic_and_truncated_files_are_rejected() {
        let path = tmp("bad.tpg");
        std::fs::write(&path, b"XXXX").unwrap();
        assert!(read_tpg_meta(&path).is_err());
        std::fs::write(&path, b"TP").unwrap();
        assert!(read_tpg_meta(&path).is_err());
        std::fs::remove_file(path).ok();
    }

    /// Path of the checked-in version-1 fixture (written before the v2 header existed;
    /// its reserved field is zero and its version field is 1).
    fn v1_fixture() -> std::path::PathBuf {
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("testdata/v1-grid2d-13x9.tpg")
    }

    #[test]
    fn v1_fixture_reads_through_the_v2_reader() {
        let meta = read_tpg_meta(v1_fixture()).unwrap();
        assert_eq!(meta.version, 1);
        assert_eq!(meta.id_width, 4, "v1 files imply 32-bit ids");
        let g = read_tpg(v1_fixture()).unwrap();
        assert_graph_eq(&g, &gen::grid2d(13, 9));
    }

    #[test]
    fn v1_fixture_round_trips_section_identically_through_the_v3_writer() {
        // Re-encoding the fixture's graph with the current writer must reproduce every
        // pre-footer section byte for byte; the fixed-size header may differ only in
        // the version field and the reserved field (id width + checksum-block log2),
        // and the only new bytes are the appended v3 checksum footer.
        let g = read_tpg(v1_fixture()).unwrap();
        let rewritten = tmp("v1_rewrite.tpg");
        let meta = read_tpg_meta(v1_fixture()).unwrap();
        // The fixture predates the EF offset index, so re-encode with plain offsets.
        write_tpg_from_graph_plain(&g, &rewritten, &meta.config).unwrap();
        let old_bytes = std::fs::read(v1_fixture()).unwrap();
        let new_bytes = std::fs::read(&rewritten).unwrap();
        let rewritten_meta = read_tpg_meta(&rewritten).unwrap();
        assert_eq!(
            new_bytes.len() as u64,
            old_bytes.len() as u64 + rewritten_meta.footer_len(),
            "v3 must only append the checksum footer"
        );
        let header = TPG_HEADER_LEN as usize;
        assert_eq!(
            old_bytes[header..],
            new_bytes[header..old_bytes.len()],
            "data/offset/node-weight sections must be byte-identical across versions"
        );
        assert_eq!(old_bytes[..4], new_bytes[..4], "magic");
        assert_eq!(&old_bytes[4..8], &1u32.to_le_bytes(), "fixture is v1");
        assert_eq!(&new_bytes[4..8], &TPG_VERSION.to_le_bytes());
        assert_eq!(old_bytes[8..12], new_bytes[8..12], "flags");
        assert_eq!(&old_bytes[12..16], &[0u8; 4], "v1 reserved field is zero");
        assert_eq!(
            &new_bytes[12..16],
            &[
                ids::NODE_ID_BYTES,
                TPG_CHECKSUM_BLOCK_LEN.trailing_zeros() as u8,
                0,
                0
            ],
            "v3 records the writer's id width and checksum-block length"
        );
        assert_eq!(old_bytes[16..header], new_bytes[16..header], "counts");
        assert_eq!(
            &new_bytes[old_bytes.len()..old_bytes.len() + 4],
            TPG_FOOTER_MAGIC,
            "footer magic"
        );
        // And the v3 reader agrees with itself on the rewritten file.
        assert_eq!(rewritten_meta.version, TPG_VERSION);
        assert_eq!(rewritten_meta.id_width, ids::NODE_ID_BYTES);
        assert_eq!(
            rewritten_meta.checksum_block_len,
            Some(TPG_CHECKSUM_BLOCK_LEN as u32)
        );
        assert_eq!(rewritten_meta.n, meta.n);
        assert_eq!(rewritten_meta.m, meta.m);
        std::fs::remove_file(rewritten).ok();
    }

    /// Recomputes and re-stamps the v3 header crc after the test patched header bytes,
    /// so the patch under test (not the checksum) decides the outcome.
    fn restamp_header_crc(bytes: &mut [u8], meta: &TpgMeta) {
        let crc = crate::checksum::crc32(&bytes[..TPG_HEADER_LEN as usize]);
        let pos = meta.header_crc_pos() as usize;
        bytes[pos..pos + 4].copy_from_slice(&crc.to_le_bytes());
    }

    #[test]
    fn v3_headers_record_and_validate_the_id_width() {
        let g = gen::grid2d(5, 4);
        let path = tmp("width_byte.tpg");
        write_tpg_from_graph(&g, &path, &CompressionConfig::default()).unwrap();
        let meta = read_tpg_meta(&path).unwrap();
        assert_eq!(meta.version, TPG_VERSION);
        assert_eq!(meta.id_width, ids::NODE_ID_BYTES);
        // A file claiming the *other* supported width stays readable: the data section
        // is VarInt-encoded, so the recorded width is advisory provenance.
        let mut bytes = std::fs::read(&path).unwrap();
        let other_width = if ids::NODE_ID_BYTES == 4 { 8u8 } else { 4u8 };
        bytes[12] = other_width;
        restamp_header_crc(&mut bytes, &meta);
        std::fs::write(&path, &bytes).unwrap();
        assert_eq!(read_tpg_meta(&path).unwrap().id_width, other_width);
        assert_graph_eq(&read_tpg(&path).unwrap(), &g);
        // An unsupported width byte is rejected loudly even with a valid checksum.
        bytes[12] = 3;
        restamp_header_crc(&mut bytes, &meta);
        std::fs::write(&path, &bytes).unwrap();
        let err = read_tpg_meta(&path).unwrap_err().to_string();
        assert!(err.contains("id width"), "unexpected error: {}", err);
        // Non-zero bytes in the still-reserved remainder are rejected too.
        bytes[12] = ids::NODE_ID_BYTES;
        bytes[14] = 1;
        restamp_header_crc(&mut bytes, &meta);
        std::fs::write(&path, &bytes).unwrap();
        assert!(read_tpg_meta(&path).is_err());
        // A patched header *without* a matching re-stamp is caught by the header crc.
        bytes[14] = 0;
        bytes[12] = other_width;
        std::fs::write(&path, &bytes).unwrap();
        let err = read_tpg_meta(&path).unwrap_err();
        assert!(
            matches!(&err, IoError::Corrupt(msg) if msg.contains("header checksum")),
            "unexpected error: {}",
            err
        );
        std::fs::remove_file(path).ok();
    }

    /// Path of the checked-in version-2 fixture (written by the pre-checksum writer:
    /// id-width byte in `reserved`, no footer).
    fn v2_fixture() -> std::path::PathBuf {
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("testdata/v2-grid2d-13x9.tpg")
    }

    #[test]
    fn v2_fixture_reads_through_the_v3_reader() {
        let meta = read_tpg_meta(v2_fixture()).unwrap();
        assert_eq!(meta.version, 2);
        assert_eq!(
            meta.checksum_block_len, None,
            "v2 files carry no checksums; verification must be disabled"
        );
        assert_eq!(meta.footer_len(), 0);
        let g = read_tpg(v2_fixture()).unwrap();
        assert_graph_eq(&g, &gen::grid2d(13, 9));
    }

    #[test]
    fn section_commit_is_byte_identical_to_per_vertex_pushes() {
        // The out-of-order commit path: encoding vertex ranges into sections (as the
        // pipelined streaming builder does) and committing them in order must produce
        // exactly the bytes of the sequential per-vertex writer.
        let g = gen::with_random_node_weights(&gen::weblike(9, 7, 11), 4, 2);
        let config = CompressionConfig::default();
        let sequential = tmp("sections_seq.tpg");
        let a = write_tpg_from_graph(&g, &sequential, &config).unwrap();

        let sectioned = tmp("sections_par.tpg");
        let mut writer =
            TpgWriter::create(&sectioned, g.n(), g.is_edge_weighted(), &config).unwrap();
        let ranges = [(0usize, 100usize), (100, 101), (101, 350), (350, g.n())];
        let mut base: EdgeId = 0;
        for &(lo, hi) in &ranges {
            let mut enc = SectionEncoder::new(lo as NodeId, base, g.is_edge_weighted(), &config);
            for u in lo..hi {
                let mut nbrs = g.neighbors_vec(u as NodeId);
                nbrs.sort_unstable_by_key(|&(v, _)| v);
                enc.push_neighborhood(u as NodeId, &nbrs, g.node_weight(u as NodeId));
            }
            let section = enc.finish();
            base += section.half_edges() as EdgeId;
            writer.push_section(&section).unwrap();
        }
        let b = writer.finish().unwrap();
        assert_eq!(a, b);
        assert_eq!(
            std::fs::read(&sequential).unwrap(),
            std::fs::read(&sectioned).unwrap(),
            "section-committed container differs from the per-vertex one"
        );
        for p in [sequential, sectioned] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    #[should_panic(expected = "stale half-edge prefix")]
    fn section_with_wrong_edge_prefix_is_rejected() {
        let g = gen::grid2d(6, 6);
        let config = CompressionConfig::default();
        let path = tmp("sections_stale.tpg");
        let mut writer = TpgWriter::create(&path, g.n(), false, &config).unwrap();
        // Encoded as if 5 half-edges preceded vertex 0: the commit must refuse.
        let mut enc = SectionEncoder::new(0, 5, false, &config);
        enc.push_neighborhood(0, &g.neighbors_vec(0), 1);
        let _ = writer.push_section(&enc.finish());
    }

    #[test]
    fn empty_and_isolated_vertices_survive() {
        let mut b = crate::csr::CsrGraphBuilder::new(5);
        b.add_edge(0, 3, 2);
        let g = b.build();
        let path = tmp("isolated.tpg");
        write_tpg_from_graph(&g, &path, &CompressionConfig::default()).unwrap();
        let h = read_tpg(&path).unwrap();
        assert_graph_eq(&g, &h);
        assert_eq!(h.degree(1), 0);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn corrupted_data_blocks_are_detected_on_read() {
        let g = gen::weblike(8, 6, 3);
        let path = tmp("bitrot.tpg");
        write_tpg_from_graph(&g, &path, &CompressionConfig::default()).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip one bit in the middle of the data section.
        let mid = TPG_HEADER_LEN as usize + (bytes.len() - TPG_HEADER_LEN as usize) / 4;
        bytes[mid] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();
        let err = read_tpg_compressed(&path).unwrap_err();
        assert!(
            matches!(&err, IoError::Corrupt(msg) if msg.contains("block")),
            "unexpected error: {}",
            err
        );
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn small_checksum_blocks_round_trip_and_detect_corruption() {
        // A 64-byte block length forces many blocks even on a small instance,
        // exercising block sealing inside `write_data` and the multi-block footer.
        let g = gen::with_random_node_weights(&gen::weblike(8, 7, 9), 4, 2);
        let config = CompressionConfig::default();
        let path = tmp("small_blocks.tpg");
        let mut writer = TpgWriter::create(&path, g.n(), g.is_edge_weighted(), &config)
            .unwrap()
            .with_checksum_block_len(64);
        for u in 0..g.n() as NodeId {
            let mut nbrs = g.neighbors_vec(u);
            nbrs.sort_unstable_by_key(|&(v, _)| v);
            writer
                .push_neighborhood(u, &nbrs, g.node_weight(u))
                .unwrap();
        }
        writer.finish().unwrap();
        let meta = read_tpg_meta(&path).unwrap();
        assert_eq!(meta.checksum_block_len, Some(64));
        assert!(meta.checksum_block_count() > 4, "expected many blocks");
        assert_graph_eq(&read_tpg(&path).unwrap(), &g);
        // Corrupt the final (short) block: it is covered too.
        let mut bytes = std::fs::read(&path).unwrap();
        let last = (TPG_HEADER_LEN + meta.data_len) as usize - 1;
        bytes[last] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            read_tpg_compressed(&path).unwrap_err(),
            IoError::Corrupt(_)
        ));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn unfinished_writers_leave_no_files_behind() {
        let dir = std::env::temp_dir();
        let path = tmp("abandoned.tpg");
        let tmp_prefix = format!(".{}.tmp.", path.file_name().unwrap().to_string_lossy());
        let stale_tmps = |dir: &std::path::Path| {
            std::fs::read_dir(dir)
                .unwrap()
                .filter_map(|e| e.ok())
                .filter(|e| e.file_name().to_string_lossy().starts_with(&tmp_prefix))
                .count()
        };
        {
            let mut writer =
                TpgWriter::create(&path, 4, false, &CompressionConfig::default()).unwrap();
            writer.push_neighborhood(0, &[(1, 1)], 1).unwrap();
            assert_eq!(stale_tmps(&dir), 1, "writer works through a temp file");
            // Dropped without `finish()`: simulates a crash/error mid-write.
        }
        assert_eq!(stale_tmps(&dir), 0, "temp file must be cleaned up on drop");
        assert!(
            !path.exists(),
            "the destination must not exist after an abandoned write"
        );
    }

    #[test]
    fn finished_writers_publish_atomically_and_keep_no_temp() {
        let dir = std::env::temp_dir();
        let path = tmp("published.tpg");
        let g = gen::grid2d(4, 4);
        write_tpg_from_graph(&g, &path, &CompressionConfig::default()).unwrap();
        let tmp_prefix = format!(".{}.tmp.", path.file_name().unwrap().to_string_lossy());
        let leftovers = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().starts_with(&tmp_prefix))
            .count();
        assert_eq!(leftovers, 0, "no temp files after a committed write");
        assert_graph_eq(&read_tpg(&path).unwrap(), &g);
        std::fs::remove_file(path).ok();
    }
}
