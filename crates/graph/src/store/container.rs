//! The `.tpg` on-disk container format and its streaming writer.
//!
//! # Layout (all integers little-endian)
//!
//! ```text
//! offset  size  field
//! 0       4     magic "TPGS"
//! 4       4     version (u32, currently 2; v1 files remain readable)
//! 8       4     flags   (bit 0: edge weighted, bit 1: node weighted,
//!                        bit 2: interval encoding, bit 3: compressed edge weights)
//! 12      1     id width in bytes the writer was built with (4 or 8; v1 files carry 0
//!               here and imply 4)
//! 13      3     reserved (zero)
//! 16      8     n (vertices)
//! 24      8     m (undirected edges)
//! 32      8     total node weight
//! 40      8     total edge weight
//! 48      8     max degree
//! 56      8     high-degree threshold of the compression config
//! 64      8     chunk length of the compression config
//! 72      8     minimum interval length of the compression config
//! 80      8     data section length in bytes
//! 88      —     data section: concatenated encoded neighbourhoods (identical byte
//!               format to the in-memory CompressedGraph)
//! …       —     offset index: n + 1 u64 byte offsets into the data section
//! …       —     node weights: n u64 values, present iff flag bit 1 is set
//! ```
//!
//! The offset index and node weights sit *after* the data section so [`TpgWriter`] can
//! stream neighbourhoods straight to disk behind a fixed-size header placeholder and
//! only seek back once, at [`TpgWriter::finish`], to patch the header. The writer's
//! live memory is the offset index under construction plus one encode buffer —
//! `O(n + max_degree)` bytes, never `O(m)` — which is what lets instances larger than
//! RAM be produced and consumed on this machine.

use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::Path;

use crate::compressed::{
    decode_neighborhood, encode_neighborhood, CompressedGraph, CompressionConfig,
};
use crate::csr::CsrGraph;
use crate::ids::{self, IdWidth};
use crate::io::{
    checked_node_count, for_each_metis_vertex, read_exact_u32, read_exact_u64, IoError,
    BINARY_MAGIC,
};
use crate::traits::Graph;
use crate::{EdgeId, EdgeWeight, NodeId, NodeWeight};

/// Magic bytes of the `.tpg` container.
pub const TPG_MAGIC: &[u8; 4] = b"TPGS";
/// Container format version. Version 2 added the explicit id-width byte in the
/// previously reserved header field; version 1 files (implicit 32-bit width) are still
/// accepted by the reader.
pub const TPG_VERSION: u32 = 2;
/// Size of the fixed header in bytes.
pub const TPG_HEADER_LEN: u64 = 88;

const FLAG_EDGE_WEIGHTED: u32 = 1 << 0;
const FLAG_NODE_WEIGHTED: u32 = 1 << 1;
const FLAG_INTERVALS: u32 = 1 << 2;
const FLAG_COMPRESS_EDGE_WEIGHTS: u32 = 1 << 3;

/// Parsed `.tpg` header plus derived section positions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TpgMeta {
    /// Format version the file was written with (1 or 2).
    pub version: u32,
    /// ID width in bytes the writer was built with (4 or 8). Advisory: the data
    /// section is VarInt-encoded and therefore width-agnostic, so any file whose
    /// vertex count fits the active build's width can be read regardless of this
    /// value. Version-1 files imply 4.
    pub id_width: u8,
    /// Number of vertices.
    pub n: usize,
    /// Number of undirected edges.
    pub m: usize,
    /// Whether the graph carries non-uniform edge weights.
    pub edge_weighted: bool,
    /// Whether the graph carries non-uniform node weights.
    pub node_weighted: bool,
    /// Sum of all node weights.
    pub total_node_weight: NodeWeight,
    /// Sum of all edge weights (each undirected edge counted once).
    pub total_edge_weight: EdgeWeight,
    /// Maximum vertex degree.
    pub max_degree: usize,
    /// Compression configuration the data section was encoded with.
    pub config: CompressionConfig,
    /// Length of the encoded data section in bytes.
    pub data_len: u64,
}

impl TpgMeta {
    /// Byte offset of the data section within the file.
    pub fn data_start(&self) -> u64 {
        TPG_HEADER_LEN
    }

    /// Byte offset of the offset index within the file.
    pub fn offsets_start(&self) -> u64 {
        TPG_HEADER_LEN + self.data_len
    }

    /// Byte offset of the node-weight section within the file (meaningful only when
    /// `node_weighted`).
    pub fn node_weights_start(&self) -> u64 {
        self.offsets_start() + 8 * (self.n as u64 + 1)
    }

    /// Size in bytes of the uncompressed CSR representation of the stored graph — the
    /// reference point of the memory-ladder experiments.
    pub fn csr_size_in_bytes(&self) -> usize {
        let half_edges = 2 * self.m;
        (self.n + 1) * std::mem::size_of::<EdgeId>()
            + half_edges * std::mem::size_of::<NodeId>()
            + if self.edge_weighted {
                half_edges * std::mem::size_of::<EdgeWeight>()
            } else {
                0
            }
            + if self.node_weighted {
                self.n * std::mem::size_of::<NodeWeight>()
            } else {
                0
            }
    }
}

/// Summary returned by [`TpgWriter::finish`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TpgSummary {
    /// Number of vertices written.
    pub n: usize,
    /// Number of undirected edges written.
    pub m: usize,
    /// Bytes of the encoded data section.
    pub data_bytes: u64,
    /// Total size of the container file.
    pub file_bytes: u64,
}

/// Streaming `.tpg` writer: feed neighbourhoods in vertex order, then [`finish`].
///
/// [`finish`]: TpgWriter::finish
pub struct TpgWriter {
    out: BufWriter<File>,
    config: CompressionConfig,
    /// Whether the source graph carries edge weights (controls weight encoding together
    /// with [`CompressionConfig::compress_edge_weights`]).
    edge_weighted: bool,
    n: usize,
    next_vertex: usize,
    offsets: Vec<u64>,
    node_weights: Vec<NodeWeight>,
    any_node_weight: bool,
    first_edge: EdgeId,
    total_edge_weight: EdgeWeight,
    max_degree: usize,
    half_edges: usize,
    encode_buf: Vec<u8>,
}

impl TpgWriter {
    /// Creates a writer for a graph with `n` vertices at `path`. `edge_weighted`
    /// declares whether the neighbourhoods that will be pushed carry meaningful weights.
    pub fn create(
        path: impl AsRef<Path>,
        n: usize,
        edge_weighted: bool,
        config: &CompressionConfig,
    ) -> Result<Self, IoError> {
        checked_node_count(n, ".tpg vertex count")?;
        let file = File::create(path)?;
        let mut out = BufWriter::new(file);
        // Placeholder header, patched in `finish` once the totals are known.
        out.write_all(&[0u8; TPG_HEADER_LEN as usize])?;
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0);
        Ok(Self {
            out,
            config: config.clone(),
            edge_weighted,
            n,
            next_vertex: 0,
            offsets,
            node_weights: Vec::new(),
            any_node_weight: false,
            first_edge: 0,
            total_edge_weight: 0,
            max_degree: 0,
            half_edges: 0,
            encode_buf: Vec::new(),
        })
    }

    /// Appends the neighbourhood of the next vertex (vertices must be pushed in ID
    /// order). `neighbors` must be sorted by neighbour ID and free of duplicates and
    /// self-loops; `node_weight` is the vertex's weight (1 for uniform graphs).
    pub fn push_neighborhood(
        &mut self,
        u: NodeId,
        neighbors: &[(NodeId, EdgeWeight)],
        node_weight: NodeWeight,
    ) -> Result<(), IoError> {
        assert_eq!(
            u as usize, self.next_vertex,
            "neighbourhoods must be pushed in vertex order"
        );
        assert!(self.next_vertex < self.n, "vertex {} out of range", u);
        self.encode_buf.clear();
        encode_neighborhood(
            u,
            self.first_edge,
            neighbors,
            self.edge_weighted && self.config.compress_edge_weights,
            &self.config,
            &mut self.encode_buf,
        );
        self.out.write_all(&self.encode_buf)?;
        let last = *self.offsets.last().unwrap();
        self.offsets.push(last + self.encode_buf.len() as u64);
        self.first_edge += neighbors.len() as EdgeId;
        self.half_edges += neighbors.len();
        self.max_degree = self.max_degree.max(neighbors.len());
        self.total_edge_weight += neighbors.iter().map(|&(_, w)| w).sum::<EdgeWeight>();
        self.node_weights.push(node_weight);
        self.any_node_weight |= node_weight != 1;
        self.next_vertex += 1;
        Ok(())
    }

    /// Commits a worker-encoded [`EncodedSection`] — the out-of-order commit path.
    ///
    /// Sections must arrive in vertex order (the caller serialises commits, e.g. with
    /// the packet scheme of [`compress_csr_parallel`]); the section must additionally
    /// have been encoded against the writer's current half-edge prefix, which the
    /// writer verifies. The resulting container is byte-identical to pushing the same
    /// neighbourhoods sequentially through [`push_neighborhood`].
    ///
    /// [`compress_csr_parallel`]: crate::builder::compress_csr_parallel
    /// [`push_neighborhood`]: TpgWriter::push_neighborhood
    pub fn push_section(&mut self, section: &EncodedSection) -> Result<(), IoError> {
        assert_eq!(
            section.first_vertex, self.next_vertex,
            "sections must be committed in vertex order"
        );
        assert_eq!(
            section.base_first_edge, self.first_edge,
            "section was encoded against a stale half-edge prefix"
        );
        assert!(
            self.next_vertex + section.vertex_count <= self.n,
            "section [{}, {}) out of range for {} vertices",
            section.first_vertex,
            section.first_vertex + section.vertex_count,
            self.n
        );
        self.out.write_all(&section.bytes)?;
        let mut last = *self.offsets.last().unwrap();
        for &size in &section.sizes {
            last += u64::from(size);
            self.offsets.push(last);
        }
        for &w in &section.node_weights {
            self.node_weights.push(w);
            self.any_node_weight |= w != 1;
        }
        self.first_edge += section.half_edges as EdgeId;
        self.half_edges += section.half_edges;
        self.max_degree = self.max_degree.max(section.max_degree);
        self.total_edge_weight += section.total_edge_weight;
        self.next_vertex += section.vertex_count;
        Ok(())
    }

    /// Writes the offset index and node weights, patches the header and syncs the file.
    pub fn finish(mut self) -> Result<TpgSummary, IoError> {
        assert_eq!(
            self.next_vertex, self.n,
            "expected {} vertices, got {}",
            self.n, self.next_vertex
        );
        let data_len = *self.offsets.last().unwrap();
        for &offset in &self.offsets {
            self.out.write_all(&offset.to_le_bytes())?;
        }
        let node_weighted = self.any_node_weight;
        if node_weighted {
            for &w in &self.node_weights {
                self.out.write_all(&w.to_le_bytes())?;
            }
        }
        let total_node_weight: NodeWeight = if node_weighted {
            self.node_weights.iter().sum()
        } else {
            self.n as NodeWeight
        };
        let mut flags = 0u32;
        if self.edge_weighted {
            flags |= FLAG_EDGE_WEIGHTED;
        }
        if node_weighted {
            flags |= FLAG_NODE_WEIGHTED;
        }
        if self.config.enable_intervals {
            flags |= FLAG_INTERVALS;
        }
        if self.config.compress_edge_weights {
            flags |= FLAG_COMPRESS_EDGE_WEIGHTS;
        }
        let mut header = Vec::with_capacity(TPG_HEADER_LEN as usize);
        header.extend_from_slice(TPG_MAGIC);
        header.extend_from_slice(&TPG_VERSION.to_le_bytes());
        header.extend_from_slice(&flags.to_le_bytes());
        // v2: low byte of the reserved field records the writer's id width.
        header.extend_from_slice(&u32::from(ids::NODE_ID_BYTES).to_le_bytes());
        header.extend_from_slice(&(self.n as u64).to_le_bytes());
        header.extend_from_slice(&((self.half_edges / 2) as u64).to_le_bytes());
        header.extend_from_slice(&total_node_weight.to_le_bytes());
        header.extend_from_slice(&(self.total_edge_weight / 2).to_le_bytes());
        header.extend_from_slice(&(self.max_degree as u64).to_le_bytes());
        header.extend_from_slice(&(self.config.high_degree_threshold as u64).to_le_bytes());
        header.extend_from_slice(&(self.config.chunk_len as u64).to_le_bytes());
        header.extend_from_slice(&(self.config.min_interval_len as u64).to_le_bytes());
        header.extend_from_slice(&data_len.to_le_bytes());
        debug_assert_eq!(header.len() as u64, TPG_HEADER_LEN);
        self.out.flush()?;
        let file = self.out.get_mut();
        file.seek(SeekFrom::Start(0))?;
        file.write_all(&header)?;
        file.sync_all()?;
        let file_bytes = file.metadata()?.len();
        Ok(TpgSummary {
            n: self.n,
            m: self.half_edges / 2,
            data_bytes: data_len,
            file_bytes,
        })
    }
}

/// One encoded run of consecutive vertex neighbourhoods, produced by a
/// [`SectionEncoder`] and committed through [`TpgWriter::push_section`].
///
/// Sections are the unit of the out-of-order commit path: workers encode disjoint
/// vertex ranges into local `EncodedSection` buffers in any order and commit them to
/// the writer in vertex order (the packet scheme of
/// [`compress_csr_parallel`](crate::builder::compress_csr_parallel)). The committed
/// byte stream is identical to pushing the same neighbourhoods one by one through
/// [`TpgWriter::push_neighborhood`].
#[derive(Debug)]
pub struct EncodedSection {
    /// First vertex of the section.
    first_vertex: usize,
    /// Number of vertices encoded into the section.
    vertex_count: usize,
    /// The half-edge ID the section's first neighbourhood was encoded against. The
    /// writer checks it at commit time: a section encoded against the wrong prefix
    /// would embed wrong `first_edge` headers.
    base_first_edge: EdgeId,
    /// Concatenated encoded neighbourhoods.
    bytes: Vec<u8>,
    /// Encoded size of each vertex's neighbourhood within `bytes`.
    sizes: Vec<u32>,
    /// Node weight of each vertex in the section.
    node_weights: Vec<NodeWeight>,
    /// Half-edges (directed neighbour entries) in the section.
    half_edges: usize,
    /// Sum of all neighbour weights in the section (each half-edge counted once).
    total_edge_weight: EdgeWeight,
    /// Maximum degree within the section.
    max_degree: usize,
}

impl EncodedSection {
    /// Number of half-edges encoded into the section.
    pub fn half_edges(&self) -> usize {
        self.half_edges
    }
}

/// Encodes a run of consecutive vertex neighbourhoods into an [`EncodedSection`]
/// without touching the output file — the worker-local half of the out-of-order
/// commit path (see [`TpgWriter::push_section`]).
///
/// `base_first_edge` must equal the number of half-edges of all vertices preceding
/// `first_vertex` in the final container; the caller learns it from the preceding
/// section's totals (the neighbourhood header embeds the absolute first-edge ID, so
/// it cannot be patched after encoding).
pub struct SectionEncoder {
    config: CompressionConfig,
    edge_weighted: bool,
    next_vertex: usize,
    first_edge: EdgeId,
    section: EncodedSection,
}

impl SectionEncoder {
    /// Creates an encoder for the vertex run starting at `first_vertex`, whose first
    /// neighbourhood begins at half-edge `base_first_edge`. `edge_weighted` and
    /// `config` must match the target [`TpgWriter`].
    pub fn new(
        first_vertex: NodeId,
        base_first_edge: EdgeId,
        edge_weighted: bool,
        config: &CompressionConfig,
    ) -> Self {
        Self {
            config: config.clone(),
            edge_weighted,
            next_vertex: first_vertex as usize,
            first_edge: base_first_edge,
            section: EncodedSection {
                first_vertex: first_vertex as usize,
                vertex_count: 0,
                base_first_edge,
                bytes: Vec::new(),
                sizes: Vec::new(),
                node_weights: Vec::new(),
                half_edges: 0,
                total_edge_weight: 0,
                max_degree: 0,
            },
        }
    }

    /// Appends the next vertex's neighbourhood (same contract as
    /// [`TpgWriter::push_neighborhood`]: vertices in ID order, neighbours sorted,
    /// duplicate- and self-loop-free).
    pub fn push_neighborhood(
        &mut self,
        u: NodeId,
        neighbors: &[(NodeId, EdgeWeight)],
        node_weight: NodeWeight,
    ) {
        assert_eq!(
            u as usize, self.next_vertex,
            "section neighbourhoods must be pushed in vertex order"
        );
        let before = self.section.bytes.len();
        encode_neighborhood(
            u,
            self.first_edge,
            neighbors,
            self.edge_weighted && self.config.compress_edge_weights,
            &self.config,
            &mut self.section.bytes,
        );
        self.section
            .sizes
            .push((self.section.bytes.len() - before) as u32);
        self.section.node_weights.push(node_weight);
        self.first_edge += neighbors.len() as EdgeId;
        self.section.half_edges += neighbors.len();
        self.section.max_degree = self.section.max_degree.max(neighbors.len());
        self.section.total_edge_weight += neighbors.iter().map(|&(_, w)| w).sum::<EdgeWeight>();
        self.section.vertex_count += 1;
        self.next_vertex += 1;
    }

    /// Finalises the section for commit.
    pub fn finish(self) -> EncodedSection {
        self.section
    }
}

/// Reads and validates the header of a `.tpg` file.
pub fn read_tpg_meta(path: impl AsRef<Path>) -> Result<TpgMeta, IoError> {
    let file = File::open(path)?;
    let mut r = BufReader::new(file);
    read_meta_from(&mut r)
}

fn read_meta_from(r: &mut impl Read) -> Result<TpgMeta, IoError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != TPG_MAGIC {
        return Err(IoError::Format("bad .tpg magic".into()));
    }
    let version = read_exact_u32(r)?;
    if version == 0 || version > TPG_VERSION {
        return Err(IoError::Format(format!(
            "unsupported .tpg version {}",
            version
        )));
    }
    let flags = read_exact_u32(r)?;
    let reserved = read_exact_u32(r)?;
    // v1 wrote a zero reserved field (implicit 32-bit ids); v2 stores the writer's id
    // width in the low byte. The remaining bytes stay reserved and must be zero.
    let id_width = if version == 1 {
        if reserved != 0 {
            return Err(IoError::Format(format!(
                "non-zero reserved field {:#x} in a v1 .tpg header",
                reserved
            )));
        }
        <u32 as IdWidth>::BYTES
    } else {
        if reserved >> 8 != 0 {
            return Err(IoError::Format(format!(
                "non-zero reserved bytes {:#x} in a v2 .tpg header",
                reserved >> 8
            )));
        }
        match (reserved & 0xff) as u8 {
            w @ (<u32 as IdWidth>::BYTES | <u64 as IdWidth>::BYTES) => w,
            other => {
                return Err(IoError::Format(format!(
                    "unsupported .tpg id width {} bytes",
                    other
                )))
            }
        }
    };
    let n = read_exact_u64(r)? as usize;
    // The data section is width-agnostic (VarInt gaps), so the only hard requirement
    // is that every vertex id is representable at the *active* width.
    checked_node_count(n, ".tpg vertex count")?;
    let m = read_exact_u64(r)? as usize;
    let total_node_weight = read_exact_u64(r)?;
    let total_edge_weight = read_exact_u64(r)?;
    let max_degree = read_exact_u64(r)? as usize;
    let high_degree_threshold = read_exact_u64(r)? as usize;
    let chunk_len = read_exact_u64(r)? as usize;
    let min_interval_len = read_exact_u64(r)? as usize;
    let data_len = read_exact_u64(r)?;
    Ok(TpgMeta {
        version,
        id_width,
        n,
        m,
        edge_weighted: flags & FLAG_EDGE_WEIGHTED != 0,
        node_weighted: flags & FLAG_NODE_WEIGHTED != 0,
        total_node_weight,
        total_edge_weight,
        max_degree,
        config: CompressionConfig {
            enable_intervals: flags & FLAG_INTERVALS != 0,
            compress_edge_weights: flags & FLAG_COMPRESS_EDGE_WEIGHTS != 0,
            high_degree_threshold,
            chunk_len,
            min_interval_len,
        },
        data_len,
    })
}

/// Reads the offset index and (optional) node weights of an open `.tpg` file.
pub(crate) fn read_tpg_index(
    file: &mut File,
    meta: &TpgMeta,
) -> Result<(Vec<u64>, Vec<NodeWeight>), IoError> {
    file.seek(SeekFrom::Start(meta.offsets_start()))?;
    let mut r = BufReader::new(file);
    let mut offsets = Vec::with_capacity(meta.n + 1);
    for _ in 0..=meta.n {
        offsets.push(read_exact_u64(&mut r)?);
    }
    if *offsets.last().unwrap() != meta.data_len {
        return Err(IoError::Format(
            "offset index does not cover the data section".into(),
        ));
    }
    let mut node_weights = Vec::new();
    if meta.node_weighted {
        node_weights.reserve(meta.n);
        for _ in 0..meta.n {
            node_weights.push(read_exact_u64(&mut r)?);
        }
    }
    Ok((offsets, node_weights))
}

/// Writes any [`Graph`] into a `.tpg` container. Neighbourhoods are sorted before
/// encoding, so the container is canonical regardless of the source's iteration order.
pub fn write_tpg_from_graph(
    graph: &impl Graph,
    path: impl AsRef<Path>,
    config: &CompressionConfig,
) -> Result<TpgSummary, IoError> {
    let mut writer = TpgWriter::create(path, graph.n(), graph.is_edge_weighted(), config)?;
    for u in 0..graph.n() as NodeId {
        let mut nbrs = graph.neighbors_vec(u);
        nbrs.sort_unstable_by_key(|&(v, _)| v);
        writer.push_neighborhood(u, &nbrs, graph.node_weight(u))?;
    }
    writer.finish()
}

/// Converts a METIS text file into a `.tpg` container in one streaming pass: each vertex
/// line is parsed, cleaned (self-loops dropped, duplicate entries weight-merged — the
/// same parser [`crate::io::read_metis_compressed`] uses), sorted and encoded
/// immediately, so no uncompressed adjacency is ever materialised.
pub fn write_tpg_from_metis(
    src: impl AsRef<Path>,
    dst: impl AsRef<Path>,
    config: &CompressionConfig,
) -> Result<TpgSummary, IoError> {
    let mut writer: Option<TpgWriter> = None;
    let dst = dst.as_ref();
    let header = for_each_metis_vertex(src, &mut |header, u, node_weight, nbrs| {
        if writer.is_none() {
            writer = Some(TpgWriter::create(
                dst,
                header.n,
                header.has_edge_weights,
                config,
            )?);
        }
        writer
            .as_mut()
            .unwrap()
            .push_neighborhood(u, nbrs, node_weight)
    })?;
    match writer {
        Some(w) => w.finish(),
        // Zero-vertex file: the closure never ran, so create the empty container here.
        None => TpgWriter::create(dst, header.n, header.has_edge_weights, config)?.finish(),
    }
}

/// Converts a binary graph file (see [`crate::io::write_binary`]) into a `.tpg`
/// container with bounded memory. Edge weights are stored after the adjacency in the
/// source format, so the weighted case reads the file through *two* cursors advancing in
/// lockstep — one over the adjacency, one over the weights — instead of buffering the
/// whole adjacency as [`crate::io::read_binary_compressed`] does.
pub fn write_tpg_from_binary(
    src: impl AsRef<Path>,
    dst: impl AsRef<Path>,
    config: &CompressionConfig,
) -> Result<TpgSummary, IoError> {
    let file = File::open(&src)?;
    let mut r = BufReader::new(file);
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != BINARY_MAGIC {
        return Err(IoError::Format("bad magic".into()));
    }
    let version = read_exact_u32(&mut r)?;
    if version != 1 {
        return Err(IoError::Format(format!("unsupported version {}", version)));
    }
    let n = read_exact_u64(&mut r)? as usize;
    let half_edges = read_exact_u64(&mut r)? as usize;
    let flags = read_exact_u32(&mut r)?;
    let edge_weighted = flags & 1 != 0;
    let node_weighted = flags & 2 != 0;
    let mut xadj = Vec::with_capacity(n + 1);
    for _ in 0..=n {
        xadj.push(read_exact_u64(&mut r)?);
    }
    // Section offsets within the source file.
    let adjacency_start = 4 + 4 + 8 + 8 + 4 + 8 * (n as u64 + 1);
    let weights_start = adjacency_start + 4 * half_edges as u64;
    let node_weights_start = if edge_weighted {
        weights_start + 8 * half_edges as u64
    } else {
        weights_start
    };
    // Second cursor over the edge-weight section (weighted graphs only).
    let mut weight_reader = if edge_weighted {
        let mut f = File::open(&src)?;
        f.seek(SeekFrom::Start(weights_start))?;
        Some(BufReader::new(f))
    } else {
        None
    };
    // Third cursor over the node weights, read up front (`O(n)` is in budget).
    let node_weights: Vec<NodeWeight> = if node_weighted {
        let mut f = File::open(&src)?;
        f.seek(SeekFrom::Start(node_weights_start))?;
        let mut nr = BufReader::new(f);
        (0..n)
            .map(|_| read_exact_u64(&mut nr))
            .collect::<Result<_, _>>()?
    } else {
        Vec::new()
    };
    let mut writer = TpgWriter::create(dst, n, edge_weighted, config)?;
    let mut nbrs: Vec<(NodeId, EdgeWeight)> = Vec::new();
    for u in 0..n {
        let degree = (xadj[u + 1] - xadj[u]) as usize;
        nbrs.clear();
        for _ in 0..degree {
            nbrs.push((NodeId::from(read_exact_u32(&mut r)?), 1));
        }
        if let Some(wr) = weight_reader.as_mut() {
            for entry in nbrs.iter_mut() {
                entry.1 = read_exact_u64(wr)?;
            }
        }
        nbrs.sort_unstable_by_key(|&(v, _)| v);
        let node_weight = if node_weighted { node_weights[u] } else { 1 };
        writer.push_neighborhood(u as NodeId, &nbrs, node_weight)?;
    }
    writer.finish()
}

/// Materialises a `.tpg` container as an in-memory [`CsrGraph`] (sequential full read).
/// Intended for tests, instance inspection and the in-memory experiment binaries; the
/// partitioner itself should open a [`PagedGraph`](crate::store::PagedGraph) instead.
pub fn read_tpg(path: impl AsRef<Path>) -> Result<CsrGraph, IoError> {
    let compressed = read_tpg_compressed(path)?;
    let n = compressed.n();
    let mut xadj: Vec<EdgeId> = Vec::with_capacity(n + 1);
    let mut adjacency: Vec<NodeId> = Vec::new();
    let mut edge_weights: Vec<EdgeWeight> = Vec::new();
    let edge_weighted = compressed.is_edge_weighted();
    xadj.push(0);
    for u in 0..n as NodeId {
        let mut nbrs = compressed.neighbors_vec(u);
        nbrs.sort_unstable_by_key(|&(v, _)| v);
        for (v, w) in nbrs {
            adjacency.push(v);
            if edge_weighted {
                edge_weights.push(w);
            }
        }
        xadj.push(adjacency.len() as EdgeId);
    }
    let node_weights = if compressed.is_node_weighted() {
        (0..n as NodeId)
            .map(|u| compressed.node_weight(u))
            .collect()
    } else {
        Vec::new()
    };
    Ok(CsrGraph::from_parts(
        xadj,
        adjacency,
        edge_weights,
        node_weights,
    ))
}

/// Loads a `.tpg` container fully into memory as a [`CompressedGraph`]. The data section
/// is used verbatim, so the result iterates neighbourhoods in exactly the order a
/// [`PagedGraph`](crate::store::PagedGraph) over the same file would — the property the
/// bit-identical on-disk partitioning tests rely on.
pub fn read_tpg_compressed(path: impl AsRef<Path>) -> Result<CompressedGraph, IoError> {
    let mut file = File::open(&path)?;
    let meta = {
        let mut r = BufReader::new(&mut file);
        read_meta_from(&mut r)?
    };
    let (offsets, node_weights) = read_tpg_index(&mut file, &meta)?;
    file.seek(SeekFrom::Start(meta.data_start()))?;
    let mut data = vec![0u8; meta.data_len as usize];
    let mut r = BufReader::new(&mut file);
    r.read_exact(&mut data)?;
    Ok(CompressedGraph::from_encoded_parts(
        meta.n,
        meta.m,
        offsets,
        data,
        node_weights,
        meta.edge_weighted,
        meta.total_node_weight,
        meta.total_edge_weight,
        meta.max_degree,
        meta.config,
    ))
}

/// Decodes every neighbourhood of an in-memory data section sequentially, invoking
/// `f(u, neighbor, weight)`. Shared by consistency checks and tests.
#[allow(dead_code)]
pub(crate) fn for_each_encoded_neighbor(
    data: &[u8],
    offsets: &[u64],
    weighted: bool,
    config: &CompressionConfig,
    f: &mut dyn FnMut(NodeId, NodeId, EdgeWeight),
) {
    for (u, offset) in offsets
        .iter()
        .take(offsets.len().saturating_sub(1))
        .enumerate()
    {
        decode_neighborhood(
            data,
            *offset as usize,
            u as NodeId,
            weighted,
            config,
            &mut |v, w| f(u as NodeId, v, w),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compressed::CompressionConfig;
    use crate::gen;
    use crate::io::{write_binary, write_metis};

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "terapart_store_test_{}_{}",
            std::process::id(),
            name
        ));
        p
    }

    fn assert_graph_eq(a: &CsrGraph, b: &CsrGraph) {
        assert_eq!(a.n(), b.n());
        assert_eq!(a.m(), b.m());
        assert_eq!(a.total_node_weight(), b.total_node_weight());
        assert_eq!(a.total_edge_weight(), b.total_edge_weight());
        for u in 0..a.n() as NodeId {
            let mut na = a.neighbors_vec(u);
            let mut nb = b.neighbors_vec(u);
            na.sort_unstable();
            nb.sort_unstable();
            assert_eq!(na, nb, "vertex {}", u);
            assert_eq!(a.node_weight(u), b.node_weight(u));
        }
    }

    #[test]
    fn container_round_trip_unweighted() {
        let g = gen::grid2d(13, 9);
        let path = tmp("roundtrip_unweighted.tpg");
        let summary = write_tpg_from_graph(&g, &path, &CompressionConfig::default()).unwrap();
        assert_eq!(summary.n, g.n());
        assert_eq!(summary.m, g.m());
        let meta = read_tpg_meta(&path).unwrap();
        assert_eq!(meta.n, g.n());
        assert_eq!(meta.m, g.m());
        assert!(!meta.edge_weighted && !meta.node_weighted);
        assert_eq!(meta.max_degree, g.max_degree());
        assert_eq!(meta.csr_size_in_bytes(), g.size_in_bytes());
        let h = read_tpg(&path).unwrap();
        assert_graph_eq(&g, &h);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn container_round_trip_weighted() {
        let g = gen::with_random_node_weights(
            &gen::with_random_edge_weights(&gen::rhg_like(300, 8, 3.0, 5), 9, 6),
            5,
            7,
        );
        let path = tmp("roundtrip_weighted.tpg");
        write_tpg_from_graph(&g, &path, &CompressionConfig::default()).unwrap();
        let meta = read_tpg_meta(&path).unwrap();
        assert!(meta.edge_weighted && meta.node_weighted);
        let h = read_tpg(&path).unwrap();
        assert_graph_eq(&g, &h);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn container_data_section_matches_in_memory_encoding() {
        // The on-disk data must be byte-identical to CompressedGraph::from_csr so that
        // paged iteration is bit-identical to the in-memory compressed path.
        let g = gen::weblike(9, 8, 3);
        let config = CompressionConfig::default();
        let path = tmp("matches_in_memory.tpg");
        let summary = write_tpg_from_graph(&g, &path, &config).unwrap();
        let reference = CompressedGraph::from_csr(&g, &config);
        assert_eq!(summary.data_bytes as usize, reference.encoded_data_bytes());
        let loaded = read_tpg_compressed(&path).unwrap();
        assert_eq!(loaded.encoded_data_bytes(), reference.encoded_data_bytes());
        for u in 0..g.n() as NodeId {
            assert_eq!(loaded.neighbors_vec(u), reference.neighbors_vec(u));
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn metis_to_tpg_matches_graph_to_tpg() {
        let g = gen::with_random_edge_weights(&gen::rgg2d(400, 10, 8), 7, 9);
        let metis = tmp("via_metis.graph");
        write_metis(&g, &metis).unwrap();
        let direct = tmp("direct.tpg");
        let via_metis = tmp("via_metis.tpg");
        let config = CompressionConfig::default();
        let a = write_tpg_from_graph(&g, &direct, &config).unwrap();
        let b = write_tpg_from_metis(&metis, &via_metis, &config).unwrap();
        assert_eq!(a, b);
        assert_graph_eq(&read_tpg(&direct).unwrap(), &read_tpg(&via_metis).unwrap());
        for p in [metis, direct, via_metis] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn binary_to_tpg_two_cursor_pass_matches() {
        // Weighted graphs exercise the two-cursor (adjacency + weights) read.
        let g = gen::with_random_edge_weights(&gen::weblike(9, 6, 4), 50, 10);
        let bin = tmp("via_binary.bin");
        write_binary(&g, &bin).unwrap();
        let direct = tmp("direct_b.tpg");
        let via_bin = tmp("via_binary.tpg");
        let config = CompressionConfig::default();
        let a = write_tpg_from_graph(&g, &direct, &config).unwrap();
        let b = write_tpg_from_binary(&bin, &via_bin, &config).unwrap();
        assert_eq!(a, b);
        assert_graph_eq(&read_tpg(&direct).unwrap(), &read_tpg(&via_bin).unwrap());
        for p in [bin, direct, via_bin] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn bad_magic_and_truncated_files_are_rejected() {
        let path = tmp("bad.tpg");
        std::fs::write(&path, b"XXXX").unwrap();
        assert!(read_tpg_meta(&path).is_err());
        std::fs::write(&path, b"TP").unwrap();
        assert!(read_tpg_meta(&path).is_err());
        std::fs::remove_file(path).ok();
    }

    /// Path of the checked-in version-1 fixture (written before the v2 header existed;
    /// its reserved field is zero and its version field is 1).
    fn v1_fixture() -> std::path::PathBuf {
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("testdata/v1-grid2d-13x9.tpg")
    }

    #[test]
    fn v1_fixture_reads_through_the_v2_reader() {
        let meta = read_tpg_meta(v1_fixture()).unwrap();
        assert_eq!(meta.version, 1);
        assert_eq!(meta.id_width, 4, "v1 files imply 32-bit ids");
        let g = read_tpg(v1_fixture()).unwrap();
        assert_graph_eq(&g, &gen::grid2d(13, 9));
    }

    #[test]
    fn v1_fixture_round_trips_byte_identically_through_the_v2_writer() {
        // Re-encoding the fixture's graph with the current writer must reproduce every
        // section byte for byte; the fixed-size header may differ only in the version
        // field and the id-width byte that v2 added to the reserved field.
        let g = read_tpg(v1_fixture()).unwrap();
        let rewritten = tmp("v1_rewrite.tpg");
        let meta = read_tpg_meta(v1_fixture()).unwrap();
        write_tpg_from_graph(&g, &rewritten, &meta.config).unwrap();
        let old_bytes = std::fs::read(v1_fixture()).unwrap();
        let new_bytes = std::fs::read(&rewritten).unwrap();
        assert_eq!(old_bytes.len(), new_bytes.len());
        let header = TPG_HEADER_LEN as usize;
        assert_eq!(
            old_bytes[header..],
            new_bytes[header..],
            "data/offset/node-weight sections must be byte-identical across versions"
        );
        assert_eq!(old_bytes[..4], new_bytes[..4], "magic");
        assert_eq!(&old_bytes[4..8], &1u32.to_le_bytes(), "fixture is v1");
        assert_eq!(&new_bytes[4..8], &TPG_VERSION.to_le_bytes());
        assert_eq!(old_bytes[8..12], new_bytes[8..12], "flags");
        assert_eq!(&old_bytes[12..16], &[0u8; 4], "v1 reserved field is zero");
        assert_eq!(
            &new_bytes[12..16],
            &u32::from(ids::NODE_ID_BYTES).to_le_bytes(),
            "v2 records the writer's id width"
        );
        assert_eq!(old_bytes[16..header], new_bytes[16..header], "counts");
        // And the v2 reader agrees with itself on the rewritten file.
        let rewritten_meta = read_tpg_meta(&rewritten).unwrap();
        assert_eq!(rewritten_meta.version, TPG_VERSION);
        assert_eq!(rewritten_meta.id_width, ids::NODE_ID_BYTES);
        assert_eq!(rewritten_meta.n, meta.n);
        assert_eq!(rewritten_meta.m, meta.m);
        std::fs::remove_file(rewritten).ok();
    }

    #[test]
    fn v2_headers_record_and_validate_the_id_width() {
        let g = gen::grid2d(5, 4);
        let path = tmp("width_byte.tpg");
        write_tpg_from_graph(&g, &path, &CompressionConfig::default()).unwrap();
        let meta = read_tpg_meta(&path).unwrap();
        assert_eq!(meta.version, TPG_VERSION);
        assert_eq!(meta.id_width, ids::NODE_ID_BYTES);
        // A file claiming the *other* supported width stays readable: the data section
        // is VarInt-encoded, so the recorded width is advisory provenance.
        let mut bytes = std::fs::read(&path).unwrap();
        let other_width = if ids::NODE_ID_BYTES == 4 { 8u8 } else { 4u8 };
        bytes[12] = other_width;
        std::fs::write(&path, &bytes).unwrap();
        assert_eq!(read_tpg_meta(&path).unwrap().id_width, other_width);
        assert_graph_eq(&read_tpg(&path).unwrap(), &g);
        // An unsupported width byte is rejected loudly.
        bytes[12] = 3;
        std::fs::write(&path, &bytes).unwrap();
        let err = read_tpg_meta(&path).unwrap_err().to_string();
        assert!(err.contains("id width"), "unexpected error: {}", err);
        // Non-zero bytes in the still-reserved remainder are rejected too.
        bytes[12] = ids::NODE_ID_BYTES;
        bytes[14] = 1;
        std::fs::write(&path, &bytes).unwrap();
        assert!(read_tpg_meta(&path).is_err());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn section_commit_is_byte_identical_to_per_vertex_pushes() {
        // The out-of-order commit path: encoding vertex ranges into sections (as the
        // pipelined streaming builder does) and committing them in order must produce
        // exactly the bytes of the sequential per-vertex writer.
        let g = gen::with_random_node_weights(&gen::weblike(9, 7, 11), 4, 2);
        let config = CompressionConfig::default();
        let sequential = tmp("sections_seq.tpg");
        let a = write_tpg_from_graph(&g, &sequential, &config).unwrap();

        let sectioned = tmp("sections_par.tpg");
        let mut writer =
            TpgWriter::create(&sectioned, g.n(), g.is_edge_weighted(), &config).unwrap();
        let ranges = [(0usize, 100usize), (100, 101), (101, 350), (350, g.n())];
        let mut base: EdgeId = 0;
        for &(lo, hi) in &ranges {
            let mut enc = SectionEncoder::new(lo as NodeId, base, g.is_edge_weighted(), &config);
            for u in lo..hi {
                let mut nbrs = g.neighbors_vec(u as NodeId);
                nbrs.sort_unstable_by_key(|&(v, _)| v);
                enc.push_neighborhood(u as NodeId, &nbrs, g.node_weight(u as NodeId));
            }
            let section = enc.finish();
            base += section.half_edges() as EdgeId;
            writer.push_section(&section).unwrap();
        }
        let b = writer.finish().unwrap();
        assert_eq!(a, b);
        assert_eq!(
            std::fs::read(&sequential).unwrap(),
            std::fs::read(&sectioned).unwrap(),
            "section-committed container differs from the per-vertex one"
        );
        for p in [sequential, sectioned] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    #[should_panic(expected = "stale half-edge prefix")]
    fn section_with_wrong_edge_prefix_is_rejected() {
        let g = gen::grid2d(6, 6);
        let config = CompressionConfig::default();
        let path = tmp("sections_stale.tpg");
        let mut writer = TpgWriter::create(&path, g.n(), false, &config).unwrap();
        // Encoded as if 5 half-edges preceded vertex 0: the commit must refuse.
        let mut enc = SectionEncoder::new(0, 5, false, &config);
        enc.push_neighborhood(0, &g.neighbors_vec(0), 1);
        let _ = writer.push_section(&enc.finish());
    }

    #[test]
    fn empty_and_isolated_vertices_survive() {
        let mut b = crate::csr::CsrGraphBuilder::new(5);
        b.add_edge(0, 3, 2);
        let g = b.build();
        let path = tmp("isolated.tpg");
        write_tpg_from_graph(&g, &path, &CompressionConfig::default()).unwrap();
        let h = read_tpg(&path).unwrap();
        assert_graph_eq(&g, &h);
        assert_eq!(h.degree(1), 0);
        std::fs::remove_file(path).ok();
    }
}
