//! Elias–Fano encoding of the `.tpg` offset index, and the [`OffsetIndex`] the
//! store backends read neighbourhood byte ranges from.
//!
//! The offset index of a `.tpg` container is a monotone sequence of `n + 1` byte
//! positions into the data section. Stored plainly it costs 8 bytes per vertex; the
//! Elias–Fano representation stores the same sequence in roughly
//! `2 + log2(data_len / (n + 1))` bits per entry — within half a bit per element of
//! the information-theoretic minimum for a monotone sequence (the webgraph idiom:
//! memory-mapped adjacency plus a compressed offset index).
//!
//! # Layout
//!
//! For `count` values over universe `[0, universe]` the low `l` bits of every value
//! (`l = floor(log2(universe / count))`, 0 when the quotient vanishes) are packed
//! LSB-first into little-endian u64 words; the high parts are stored as a unary
//! (negated) bit vector with a set bit at position `i + (v_i >> l)` for the `i`-th
//! value. Both word counts derive from `count` and `universe` alone, so a reader can
//! locate every following container section from the header without decoding the
//! index first (see [`ef_section_bytes`]). Lookups use a sampled `select1` over the
//! upper bits: the position of every [`SELECT_QUANTUM`]-th set bit is kept, and a
//! query popcount-scans at most a few words from the preceding sample.

use crate::io::IoError;

/// Set bits between consecutive select samples. The upper bit vector holds
/// `count + (universe >> l)` bits for `count` set bits, and `universe >> l` is below
/// `2 * count` by the choice of `l`, so a quantum of 64 set bits spans at most ~3
/// words of scan per lookup.
const SELECT_QUANTUM: usize = 64;

/// Number of low bits stored explicitly per value: `floor(log2(universe / count))`,
/// or 0 when the quotient vanishes.
pub fn ef_low_bits(count: u64, universe: u64) -> u32 {
    if count == 0 {
        return 0;
    }
    let per = universe / count;
    if per == 0 {
        0
    } else {
        per.ilog2()
    }
}

/// Little-endian u64 words of the packed low-bits array.
pub fn ef_lower_words(count: u64, universe: u64) -> u64 {
    (count * u64::from(ef_low_bits(count, universe))).div_ceil(64)
}

/// Little-endian u64 words of the unary upper-bits array.
pub fn ef_upper_words(count: u64, universe: u64) -> u64 {
    let l = ef_low_bits(count, universe);
    (count + (universe >> l)).div_ceil(64)
}

/// On-disk size in bytes of the Elias–Fano section for `count` monotone values over
/// `[0, universe]`. Derivable from the `.tpg` header alone (`count = n + 1`,
/// `universe = data_len`), which is what keeps the node-weight and footer offsets of
/// a v4 container computable without reading the index.
pub fn ef_section_bytes(count: u64, universe: u64) -> u64 {
    8 * (ef_lower_words(count, universe) + ef_upper_words(count, universe))
}

/// A monotone sequence in Elias–Fano representation with sampled `select1` lookup.
#[derive(Debug, Clone)]
pub struct EliasFanoIndex {
    count: usize,
    universe: u64,
    low_bits: u32,
    /// Packed low bits, `low_bits` per value, LSB-first.
    lower: Box<[u64]>,
    /// Unary upper bits: bit `i + (v_i >> low_bits)` is set for the `i`-th value.
    upper: Box<[u64]>,
    /// Bit position of every [`SELECT_QUANTUM`]-th set bit of `upper` (in-memory
    /// acceleration only, never stored).
    select: Box<[u64]>,
}

/// Position of the `k`-th (0-based) set bit of `word`; `word` must have more than
/// `k` set bits.
fn select_in_word(mut word: u64, mut k: u32) -> u64 {
    loop {
        let bit = word.trailing_zeros();
        if k == 0 {
            return u64::from(bit);
        }
        word &= word - 1;
        k -= 1;
    }
}

impl EliasFanoIndex {
    /// Encodes a sorted slice of values over `[0, universe]`.
    pub fn encode(values: &[u64], universe: u64) -> Self {
        let count = values.len();
        let l = ef_low_bits(count as u64, universe);
        let mut lower = vec![0u64; ef_lower_words(count as u64, universe) as usize];
        let mut upper = vec![0u64; ef_upper_words(count as u64, universe) as usize];
        for (i, &v) in values.iter().enumerate() {
            debug_assert!(v <= universe, "value {} beyond universe {}", v, universe);
            debug_assert!(i == 0 || values[i - 1] <= v, "values must be sorted");
            if l > 0 {
                let low = v & ((1u64 << l) - 1);
                let pos = i as u64 * u64::from(l);
                let (w, s) = ((pos / 64) as usize, (pos % 64) as u32);
                lower[w] |= low << s;
                if s + l > 64 {
                    lower[w + 1] |= low >> (64 - s);
                }
            }
            let hi = i as u64 + (v >> l);
            upper[(hi / 64) as usize] |= 1u64 << (hi % 64);
        }
        Self::with_select(count, universe, l, lower.into(), upper.into())
    }

    /// Rebuilds an index from the words read back from a container. Validates shape
    /// (word count, exactly `count` set upper bits) and semantics (monotone values
    /// within the universe), so lookups on the returned index can never scan out of
    /// bounds — a corrupted-but-plausible section becomes a structured error here,
    /// never a panic later.
    pub fn from_words(count: usize, universe: u64, mut words: Vec<u64>) -> Result<Self, IoError> {
        let lower_words = ef_lower_words(count as u64, universe) as usize;
        let upper_words = ef_upper_words(count as u64, universe) as usize;
        if words.len() != lower_words + upper_words {
            return Err(IoError::Format(format!(
                ".tpg Elias-Fano offset index holds {} words, expected {}",
                words.len(),
                lower_words + upper_words
            )));
        }
        let upper: Box<[u64]> = words[lower_words..].into();
        words.truncate(lower_words);
        let ones: u64 = upper.iter().map(|w| u64::from(w.count_ones())).sum();
        if ones != count as u64 {
            return Err(IoError::Format(format!(
                ".tpg Elias-Fano offset index has {} upper bits set, expected {}",
                ones, count
            )));
        }
        let l = ef_low_bits(count as u64, universe);
        let index = Self::with_select(count, universe, l, words.into(), upper);
        let mut prev = 0u64;
        for i in 0..count {
            let v = index.get(i);
            if v < prev || v > universe {
                return Err(IoError::Format(format!(
                    ".tpg Elias-Fano offset index is not monotone at entry {}",
                    i
                )));
            }
            prev = v;
        }
        Ok(index)
    }

    fn with_select(
        count: usize,
        universe: u64,
        low_bits: u32,
        lower: Box<[u64]>,
        upper: Box<[u64]>,
    ) -> Self {
        let mut select = Vec::with_capacity(count / SELECT_QUANTUM + 1);
        let mut rank = 0usize;
        for (w, &bits) in upper.iter().enumerate() {
            let mut bits = bits;
            while bits != 0 {
                if rank.is_multiple_of(SELECT_QUANTUM) {
                    select.push(w as u64 * 64 + u64::from(bits.trailing_zeros()));
                }
                rank += 1;
                bits &= bits - 1;
            }
        }
        Self {
            count,
            universe,
            low_bits,
            lower,
            upper,
            select: select.into(),
        }
    }

    /// Number of encoded values.
    pub fn len(&self) -> usize {
        self.count
    }

    /// Whether the index holds no values.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The upper bound of the encoded universe.
    pub fn universe(&self) -> u64 {
        self.universe
    }

    /// Position of the `i`-th set bit of the upper array. The construction-time
    /// validation guarantees at least `count` set bits, so the scan cannot overrun
    /// for `i < count`.
    fn select1(&self, i: usize) -> u64 {
        let sample = self.select[i / SELECT_QUANTUM];
        let mut word_idx = (sample / 64) as usize;
        let mut remaining = (i % SELECT_QUANTUM) as u32;
        // The sample bit itself is the (i - remaining)-th set bit; mask off the bits
        // below it and scan forward.
        let mut word = self.upper[word_idx] & (u64::MAX << (sample % 64));
        loop {
            let ones = word.count_ones();
            if remaining < ones {
                return word_idx as u64 * 64 + select_in_word(word, remaining);
            }
            remaining -= ones;
            word_idx += 1;
            word = self.upper[word_idx];
        }
    }

    /// The `i`-th value (`i < len()`).
    pub fn get(&self, i: usize) -> u64 {
        debug_assert!(i < self.count, "index {} out of {} values", i, self.count);
        let hi = self.select1(i) - i as u64;
        let low = if self.low_bits == 0 {
            0
        } else {
            let pos = i as u64 * u64::from(self.low_bits);
            let (w, s) = ((pos / 64) as usize, (pos % 64) as u32);
            let mut low = self.lower[w] >> s;
            if s + self.low_bits > 64 {
                low |= self.lower[w + 1] << (64 - s);
            }
            low & ((1u64 << self.low_bits) - 1)
        };
        (hi << self.low_bits) | low
    }

    /// The packed low-bits words, in storage order.
    pub fn lower_words(&self) -> &[u64] {
        &self.lower
    }

    /// The unary upper-bits words, in storage order.
    pub fn upper_words(&self) -> &[u64] {
        &self.upper
    }

    /// In-memory footprint (stored words plus the select samples).
    pub fn size_in_bytes(&self) -> usize {
        (self.lower.len() + self.upper.len() + self.select.len()) * std::mem::size_of::<u64>()
    }
}

/// The offset index of an open `.tpg` container: plain trailing u64s (v1–v3, and v4
/// without the flag) or the Elias–Fano section of a v4 container. Both store backends
/// resolve neighbourhood byte ranges through this one type, so the representation is
/// invisible to everything above the store layer.
#[derive(Debug, Clone)]
pub enum OffsetIndex {
    /// One u64 byte offset per vertex plus the terminating `data_len` entry.
    Plain(Vec<u64>),
    /// The same sequence, Elias–Fano encoded.
    EliasFano(EliasFanoIndex),
}

impl OffsetIndex {
    /// Number of entries (`n + 1` for an n-vertex container).
    pub fn len(&self) -> usize {
        match self {
            OffsetIndex::Plain(v) => v.len(),
            OffsetIndex::EliasFano(ef) => ef.len(),
        }
    }

    /// Whether the index holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `i`-th byte offset.
    pub fn get(&self, i: usize) -> u64 {
        match self {
            OffsetIndex::Plain(v) => v[i],
            OffsetIndex::EliasFano(ef) => ef.get(i),
        }
    }

    /// The byte range `[get(i), get(i + 1))` of vertex `i`'s encoded neighbourhood.
    pub fn pair(&self, i: usize) -> (u64, u64) {
        (self.get(i), self.get(i + 1))
    }

    /// The final entry (the data-section length), or 0 for an empty index.
    pub fn last(&self) -> u64 {
        match self.len() {
            0 => 0,
            len => self.get(len - 1),
        }
    }

    /// In-memory footprint of the index.
    pub fn size_in_bytes(&self) -> usize {
        match self {
            OffsetIndex::Plain(v) => v.len() * std::mem::size_of::<u64>(),
            OffsetIndex::EliasFano(ef) => ef.size_in_bytes(),
        }
    }

    /// Materialises the index as a plain vector (the eager reader's path).
    pub fn into_vec(self) -> Vec<u64> {
        match self {
            OffsetIndex::Plain(v) => v,
            OffsetIndex::EliasFano(ef) => (0..ef.len()).map(|i| ef.get(i)).collect(),
        }
    }

    /// Validates monotonicity and that the final entry equals `data_len`. The
    /// Elias–Fano variant is already validated at construction; a plain index read
    /// from a v1/v2 container (no checksums) or stamped by a broken writer is not,
    /// and the mmap backend — which decodes without per-access range checks — must
    /// reject it at open.
    pub(crate) fn check_monotone(&self, data_len: u64) -> Result<(), IoError> {
        if let OffsetIndex::Plain(v) = self {
            let mut prev = 0u64;
            for (i, &offset) in v.iter().enumerate() {
                if offset < prev || offset > data_len {
                    return Err(IoError::Format(format!(
                        ".tpg offset index is not monotone within the data section \
                         at entry {}",
                        i
                    )));
                }
                prev = offset;
            }
        }
        if self.last() != data_len {
            return Err(IoError::Format(
                "offset index does not cover the data section".into(),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use proptest::prelude::*;

    fn roundtrip(values: &[u64], universe: u64) {
        let encoded = EliasFanoIndex::encode(values, universe);
        for (i, &v) in values.iter().enumerate() {
            assert_eq!(encoded.get(i), v, "entry {} of {:?}", i, values);
        }
        // Through the storage words, as a reader would rebuild it.
        let words: Vec<u64> = encoded
            .lower_words()
            .iter()
            .chain(encoded.upper_words())
            .copied()
            .collect();
        let decoded = EliasFanoIndex::from_words(values.len(), universe, words).unwrap();
        let as_vec: Vec<u64> = (0..decoded.len()).map(|i| decoded.get(i)).collect();
        assert_eq!(as_vec, values);
    }

    #[test]
    fn boundary_sequences_round_trip() {
        // Empty graph: the offset index still has one entry (0) over universe 0.
        roundtrip(&[0], 0);
        // Single node, empty and non-empty neighbourhood.
        roundtrip(&[0, 0], 0);
        roundtrip(&[0, 17], 17);
        // Repeated values (runs of empty neighbourhoods).
        roundtrip(&[0, 0, 0, 5, 5, 5, 9], 9);
        // A max-degree node: one giant step dominating the universe.
        roundtrip(&[0, 1, 1_000_000, 1_000_001], 1_000_001);
        // Dense consecutive values.
        let dense: Vec<u64> = (0..1000).collect();
        roundtrip(&dense, 999);
        // Sparse values over a huge universe (forces a large low-bit width).
        roundtrip(&[0, 1 << 40, (1 << 50) + 3, u64::MAX / 2], u64::MAX / 2);
    }

    #[test]
    fn section_bytes_match_encoding_and_beat_plain_offsets() {
        // A typical offsets shape: ~5 bytes per neighbourhood.
        let values: Vec<u64> = (0..10_001u64).map(|i| i * 5).collect();
        let universe = *values.last().unwrap();
        let encoded = EliasFanoIndex::encode(&values, universe);
        let bytes = ef_section_bytes(values.len() as u64, universe);
        assert_eq!(
            bytes as usize,
            (encoded.lower_words().len() + encoded.upper_words().len()) * 8
        );
        let plain = 8 * values.len() as u64;
        assert!(
            bytes * 2 < plain,
            "Elias-Fano section {} not substantially below plain {}",
            bytes,
            plain
        );
    }

    #[test]
    fn corrupt_words_are_structured_errors() {
        let values: Vec<u64> = (0..257u64).map(|i| i * 3).collect();
        let universe = *values.last().unwrap();
        let encoded = EliasFanoIndex::encode(&values, universe);
        let words: Vec<u64> = encoded
            .lower_words()
            .iter()
            .chain(encoded.upper_words())
            .copied()
            .collect();
        // Wrong word count.
        assert!(EliasFanoIndex::from_words(values.len(), universe, words[1..].to_vec()).is_err());
        // Flipping an upper bit changes the set-bit count.
        let mut flipped = words.clone();
        let upper_start = encoded.lower_words().len();
        flipped[upper_start] ^= 1 << 7;
        assert!(EliasFanoIndex::from_words(values.len(), universe, flipped).is_err());
    }

    #[test]
    fn offset_index_variants_agree() {
        let values: Vec<u64> = vec![0, 3, 3, 10, 64, 64, 128];
        let universe = *values.last().unwrap();
        let plain = OffsetIndex::Plain(values.clone());
        let ef = OffsetIndex::EliasFano(EliasFanoIndex::encode(&values, universe));
        assert_eq!(plain.len(), ef.len());
        for i in 0..values.len() {
            assert_eq!(plain.get(i), ef.get(i));
            if i + 1 < values.len() {
                assert_eq!(plain.pair(i), ef.pair(i));
            }
        }
        assert_eq!(plain.last(), ef.last());
        assert!(ef.size_in_bytes() < plain.size_in_bytes());
        assert!(plain.check_monotone(universe).is_ok());
        assert!(plain.check_monotone(universe + 1).is_err());
        assert!(OffsetIndex::Plain(vec![5, 2, 9]).check_monotone(9).is_err());
        assert_eq!(ef.clone().into_vec(), values);
        assert_eq!(plain.into_vec(), values);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        // Arbitrary monotone sequences (built from deltas) round-trip through encode
        // and through the storage words, including a universe strictly larger than
        // the last value.
        #[test]
        fn prop_monotone_sequences_round_trip(
            deltas in proptest::collection::vec(0u64..10_000, 1..300),
            slack in 0u64..1000,
        ) {
            let mut values = Vec::with_capacity(deltas.len());
            let mut acc = 0u64;
            for d in deltas {
                acc += d;
                values.push(acc);
            }
            roundtrip(&values, acc + slack);
        }
    }
}
