//! [`StoreHandle`] and [`StoreSession`]: the engine/session split at the storage layer.
//!
//! A partitioning *engine* keeps graphs open and shares them across concurrent
//! requests; a *session* is one request's view of one store. The split assigns every
//! piece of state to exactly one side:
//!
//! * [`StoreHandle`] — the **shared, immutable** side: any of the four graph
//!   representations behind one `Arc`-shareable, [`Sync`] type. All read access is
//!   lock-free or internally synchronised (the paged backend's page cache), so any
//!   number of sessions may read one handle concurrently.
//! * [`StoreSession`] — the **per-request** side: a cheap view carrying the poison /
//!   fault-observer machinery that used to live on [`PagedGraph`] itself. A session
//!   reads the paged store through its fault-neutral accessors
//!   ([`PagedGraph::try_header`] / [`PagedGraph::try_for_each_neighbor`]) and records
//!   the first unrecoverable fault *on the session*, so one request's disk failure
//!   never poisons the shared store out from under its co-tenants.
//!
//! The in-memory and mmap representations are infallible after construction, so their
//! sessions are plain pass-throughs; the protocol only does work on the paged variant.

use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};

use parking_lot::Mutex;

use crate::compressed::CompressedGraph;
use crate::csr::CsrGraph;
use crate::io::IoError;
use crate::store::mmap::MmapGraph;
use crate::store::paged::{
    CacheStatsSnapshot, FatalIoError, OnDiskBackend, PagedGraph, PagedGraphOptions,
};
use crate::traits::Graph;
use crate::{EdgeWeight, NodeId, NodeWeight};

/// One open graph store, in whichever representation it was opened or built:
/// shareable (`Arc<StoreHandle>`), [`Sync`], and readable by any number of concurrent
/// [`StoreSession`]s. See the module docs for the engine/session split.
#[derive(Debug)]
pub enum StoreHandle {
    /// Uncompressed in-memory CSR.
    Csr(CsrGraph),
    /// Compressed in-memory neighbourhoods.
    Compressed(CompressedGraph),
    /// On-disk container behind the strict-budget page cache.
    Paged(PagedGraph),
    /// On-disk container behind a read-only memory mapping.
    Mmap(MmapGraph),
}

impl StoreHandle {
    /// Opens a `.tpg` container with the backend selected by
    /// [`options.backend`](PagedGraphOptions::backend). This is the open the
    /// [`StoreRegistry`](crate::store::StoreRegistry) deduplicates.
    pub fn open(path: impl AsRef<Path>, options: &PagedGraphOptions) -> Result<Self, IoError> {
        match options.backend {
            OnDiskBackend::Paged => Ok(Self::Paged(PagedGraph::open_with_options(path, options)?)),
            OnDiskBackend::Mmap => Ok(Self::Mmap(MmapGraph::open_with_options(path, options)?)),
        }
    }

    /// Starts a per-request session view of this store (see [`StoreSession`]).
    pub fn session(&self) -> StoreSession<'_> {
        match self {
            StoreHandle::Csr(g) => StoreSession::infallible(g),
            StoreHandle::Compressed(g) => StoreSession::infallible(g),
            StoreHandle::Paged(g) => StoreSession::paged(g),
            StoreHandle::Mmap(g) => StoreSession::infallible(g),
        }
    }

    /// The paged store behind this handle, if that is the representation.
    pub fn as_paged(&self) -> Option<&PagedGraph> {
        match self {
            StoreHandle::Paged(g) => Some(g),
            _ => None,
        }
    }

    /// The mmap store behind this handle, if that is the representation.
    pub fn as_mmap(&self) -> Option<&MmapGraph> {
        match self {
            StoreHandle::Mmap(g) => Some(g),
            _ => None,
        }
    }

    /// Short name of the representation (for logs and bench output).
    pub fn backend_name(&self) -> &'static str {
        match self {
            StoreHandle::Csr(_) => "csr",
            StoreHandle::Compressed(_) => "compressed",
            StoreHandle::Paged(_) => "paged",
            StoreHandle::Mmap(_) => "mmap",
        }
    }

    /// Bytes currently charged to the memory accounting for this store (zero for the
    /// in-memory CSR, which predates the accounting seam).
    pub fn accounted_bytes(&self) -> usize {
        match self {
            StoreHandle::Csr(g) => g.size_in_bytes(),
            StoreHandle::Compressed(g) => g.size_in_bytes(),
            StoreHandle::Paged(g) => g.accounted_bytes(),
            StoreHandle::Mmap(g) => g.accounted_bytes(),
        }
    }

    /// Current page-cache counters (on-disk paged representation only).
    pub fn cache_stats(&self) -> Option<CacheStatsSnapshot> {
        self.as_paged().map(|g| g.cache_stats())
    }

    /// Blocks until queued prefetch hints have been processed (no-op for
    /// representations without a prefetcher).
    pub fn wait_prefetch_idle(&self) {
        if let Some(g) = self.as_paged() {
            g.wait_prefetch_idle();
        }
    }
}

macro_rules! forward_to_variant {
    ($self:ident, $g:ident => $body:expr) => {
        match $self {
            StoreHandle::Csr($g) => $body,
            StoreHandle::Compressed($g) => $body,
            StoreHandle::Paged($g) => $body,
            StoreHandle::Mmap($g) => $body,
        }
    };
}

impl Graph for StoreHandle {
    fn n(&self) -> usize {
        forward_to_variant!(self, g => g.n())
    }
    fn m(&self) -> usize {
        forward_to_variant!(self, g => g.m())
    }
    fn degree(&self, u: NodeId) -> usize {
        forward_to_variant!(self, g => g.degree(u))
    }
    fn node_weight(&self, u: NodeId) -> NodeWeight {
        forward_to_variant!(self, g => g.node_weight(u))
    }
    fn total_node_weight(&self) -> NodeWeight {
        forward_to_variant!(self, g => g.total_node_weight())
    }
    fn total_edge_weight(&self) -> EdgeWeight {
        forward_to_variant!(self, g => g.total_edge_weight())
    }
    fn for_each_neighbor(&self, u: NodeId, f: &mut dyn FnMut(NodeId, EdgeWeight)) {
        forward_to_variant!(self, g => g.for_each_neighbor(u, f))
    }
    fn for_each_neighbor_indexed(&self, u: NodeId, f: &mut dyn FnMut(usize, NodeId, EdgeWeight)) {
        forward_to_variant!(self, g => g.for_each_neighbor_indexed(u, f))
    }
    fn is_edge_weighted(&self) -> bool {
        forward_to_variant!(self, g => g.is_edge_weighted())
    }
    fn is_node_weighted(&self) -> bool {
        forward_to_variant!(self, g => g.is_node_weighted())
    }
    fn max_degree(&self) -> usize {
        forward_to_variant!(self, g => g.max_degree())
    }
    fn prefetch(&self, nodes: &[NodeId]) {
        forward_to_variant!(self, g => g.prefetch(nodes))
    }
    fn record_obs_metrics(&self, metrics: &obs::MetricsRegistry) {
        forward_to_variant!(self, g => g.record_obs_metrics(metrics))
    }
}

/// Callback capturing ambient context (e.g. the active pipeline phase) the moment a
/// session records its fatal error; same shape as the observer [`PagedGraph`] takes.
type FaultObserver = Box<dyn Fn() -> String + Send + Sync>;

/// What a session reads through: the fallible paged store (routed through its
/// fault-neutral accessors) or any of the infallible representations.
enum StoreRef<'a> {
    /// Representations with no post-open I/O error paths: plain pass-through.
    Infallible(&'a dyn Graph),
    /// The paged store: reads go through [`PagedGraph::try_header`] /
    /// [`PagedGraph::try_for_each_neighbor`] so faults land on the session.
    Paged(&'a PagedGraph),
}

/// One request's view of a [`StoreHandle`] — a [`Graph`] carrying the per-request
/// poison protocol.
///
/// Reads against the paged representation surface unrecoverable faults *here*: the
/// first fatal error (with the installed observer's context) is kept, the session
/// flips to the poisoned state, and every later accessor returns empty neighbourhoods
/// without touching the disk — exactly the degradation contract [`PagedGraph`]
/// documents, scoped to one request. The shared store, and with it every co-tenant
/// session, stays healthy.
pub struct StoreSession<'a> {
    store: StoreRef<'a>,
    poisoned: AtomicBool,
    fatal: Mutex<Option<FatalIoError>>,
    fault_observer: Mutex<Option<FaultObserver>>,
}

impl<'a> StoreSession<'a> {
    /// A session over a representation with no post-open I/O error paths.
    pub fn infallible(graph: &'a (impl Graph + 'a)) -> Self {
        Self::from_ref(StoreRef::Infallible(graph))
    }

    /// A session over a paged store (reads route through the fault-neutral
    /// accessors; faults poison this session, not the store).
    pub fn paged(graph: &'a PagedGraph) -> Self {
        Self::from_ref(StoreRef::Paged(graph))
    }

    fn from_ref(store: StoreRef<'a>) -> Self {
        Self {
            store,
            poisoned: AtomicBool::new(false),
            fatal: Mutex::new(None),
            fault_observer: Mutex::new(None),
        }
    }

    fn as_graph(&self) -> &dyn Graph {
        match &self.store {
            StoreRef::Infallible(g) => *g,
            StoreRef::Paged(g) => *g,
        }
    }

    /// Poisons the session with `error` unless it is already poisoned: the *first*
    /// fatal error (and the observer's context) is kept; later ones are dropped.
    fn poison(&self, error: std::io::Error) {
        let mut fatal = self.fatal.lock();
        if fatal.is_none() {
            let context = self.fault_observer.lock().as_ref().map(|observe| observe());
            *fatal = Some(FatalIoError { error, context });
            self.poisoned.store(true, Ordering::Release);
        }
    }

    /// Whether a fatal read error has poisoned this session (accessors now return
    /// empty neighbourhoods without touching the disk).
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::Acquire)
    }

    /// Takes the first fatal error if the session poisoned itself (leaving the
    /// session poisoned). Drivers call this after a run to decide whether the result
    /// is valid.
    pub fn take_fatal_error(&self) -> Option<FatalIoError> {
        self.fatal.lock().take()
    }

    /// Installs a callback that captures ambient context (e.g. the active pipeline
    /// phase) the moment the session poisons itself; the captured string travels in
    /// [`FatalIoError::context`]. Replaces any previous observer.
    pub fn set_fault_observer(&self, observe: impl Fn() -> String + Send + Sync + 'static) {
        *self.fault_observer.lock() = Some(Box::new(observe));
    }
}

impl Graph for StoreSession<'_> {
    fn n(&self) -> usize {
        self.as_graph().n()
    }
    fn m(&self) -> usize {
        self.as_graph().m()
    }

    fn degree(&self, u: NodeId) -> usize {
        match &self.store {
            StoreRef::Infallible(g) => g.degree(u),
            StoreRef::Paged(g) => {
                if self.is_poisoned() {
                    return 0;
                }
                match g.try_header(u) {
                    Ok((_, degree)) => degree,
                    Err(e) => {
                        self.poison(e);
                        0
                    }
                }
            }
        }
    }

    fn node_weight(&self, u: NodeId) -> NodeWeight {
        self.as_graph().node_weight(u)
    }
    fn total_node_weight(&self) -> NodeWeight {
        self.as_graph().total_node_weight()
    }
    fn total_edge_weight(&self) -> EdgeWeight {
        self.as_graph().total_edge_weight()
    }

    fn for_each_neighbor(&self, u: NodeId, f: &mut dyn FnMut(NodeId, EdgeWeight)) {
        match &self.store {
            StoreRef::Infallible(g) => g.for_each_neighbor(u, f),
            StoreRef::Paged(g) => {
                if self.is_poisoned() {
                    return;
                }
                if let Err(e) = g.try_for_each_neighbor(u, f) {
                    self.poison(e);
                }
            }
        }
    }

    fn is_edge_weighted(&self) -> bool {
        self.as_graph().is_edge_weighted()
    }
    fn is_node_weighted(&self) -> bool {
        self.as_graph().is_node_weighted()
    }
    fn max_degree(&self) -> usize {
        self.as_graph().max_degree()
    }
    fn prefetch(&self, nodes: &[NodeId]) {
        self.as_graph().prefetch(nodes)
    }
    fn record_obs_metrics(&self, metrics: &obs::MetricsRegistry) {
        self.as_graph().record_obs_metrics(metrics)
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use crate::compressed::CompressionConfig;
    use crate::gen;
    use crate::store::backend::{FaultPlan, FaultyBackend, FileBackend};
    use crate::store::container::write_tpg_from_graph;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "terapart_handle_test_{}_{}",
            std::process::id(),
            name
        ));
        p
    }

    #[test]
    fn handle_forwards_graph_access_for_every_representation() {
        let csr = gen::with_random_edge_weights(&gen::grid2d(9, 7), 5, 3);
        let config = CompressionConfig::default();
        let path = tmp("forwarding.tpg");
        write_tpg_from_graph(&csr, &path, &config).unwrap();
        let handles = [
            StoreHandle::Csr(csr.clone()),
            StoreHandle::Compressed(crate::compressed::CompressedGraph::from_csr(&csr, &config)),
            StoreHandle::open(&path, &PagedGraphOptions::default()).unwrap(),
            StoreHandle::open(
                &path,
                &PagedGraphOptions {
                    backend: OnDiskBackend::Mmap,
                    ..PagedGraphOptions::default()
                },
            )
            .unwrap(),
        ];
        assert!(handles[2].as_paged().is_some());
        assert!(handles[3].as_mmap().is_some());
        for handle in &handles {
            assert_eq!(handle.n(), csr.n(), "{}", handle.backend_name());
            assert_eq!(handle.m(), csr.m());
            assert_eq!(handle.max_degree(), csr.max_degree());
            let session = handle.session();
            for u in 0..csr.n() as NodeId {
                assert_eq!(session.degree(u), csr.degree(u));
                assert_eq!(session.neighbors_vec(u), csr.neighbors_vec(u));
            }
            assert!(!session.is_poisoned());
            assert!(session.take_fatal_error().is_none());
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn session_fault_poisons_the_session_but_not_the_store_or_cotenants() {
        let csr = gen::grid2d(64, 64);
        let path = tmp("session_poison.tpg");
        write_tpg_from_graph(&csr, &path, &CompressionConfig::default()).unwrap();
        // A tiny cache so sweeps keep faulting pages in; reads fail permanently
        // once the open (a handful of operations) is past.
        let backend = FileBackend::open(&path).unwrap();
        let plan = FaultPlan {
            fail_reads_from: Some(50),
            ..FaultPlan::default()
        };
        let faulty = FaultyBackend::new(backend, plan);
        let options = PagedGraphOptions {
            page_size: 256,
            budget_bytes: 1024,
            shards: 1,
            retry: crate::store::RetryPolicy::disabled(),
            ..PagedGraphOptions::default()
        };
        let paged = PagedGraph::open_with_backend(Box::new(faulty), &options).unwrap();
        let handle = StoreHandle::Paged(paged);

        // Session A sweeps until the injected outage poisons it.
        let a = handle.session();
        a.set_fault_observer(|| "session-a".to_string());
        for _ in 0..8 {
            for u in 0..csr.n() as NodeId {
                let _ = a.neighbors_vec(u);
            }
            if a.is_poisoned() {
                break;
            }
        }
        assert!(a.is_poisoned(), "the outage must surface in session A");
        let fatal = a.take_fatal_error().unwrap();
        assert_eq!(fatal.context.as_deref(), Some("session-a"));

        // The shared store never engaged its own poison protocol...
        let paged = handle.as_paged().unwrap();
        assert!(!paged.is_poisoned());
        assert!(paged.take_fatal_error().is_none());
        // ...and a fresh co-tenant session starts healthy (the injected plan has
        // exhausted its healthy reads, so it may fault too — but independently).
        let b = handle.session();
        assert!(!b.is_poisoned());
        std::fs::remove_file(path).ok();
    }
}
