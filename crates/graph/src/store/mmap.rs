//! [`MmapGraph`]: the zero-copy store backend — a [`Graph`] decoding neighbourhoods
//! straight out of a memory mapping of a `.tpg` container.
//!
//! Where [`PagedGraph`](crate::store::PagedGraph) pays a shard lock and a frame copy
//! per neighbourhood access in exchange for a strict resident-memory budget, this
//! backend maps the whole container read-only and decodes in place: no frame copies,
//! no locks, no per-access bookkeeping. Residency is delegated to the OS page cache,
//! so the accounted footprint is the full mapping — the fits-in-RAM fast path of
//! [`OnDiskBackend`](crate::store::OnDiskBackend) (webgraph idiom: memory-mapped
//! compressed adjacency plus an Elias-Fano offset index).
//!
//! # Integrity and fault tolerance
//!
//! Everything is verified *at open*, through [`StorageBackend::read_at`] — header
//! crc, offset-index crc (plus monotonicity, so in-place decoding can never run out
//! of the data section), node-weight crc, and the entire data section against the
//! per-block crcs of a v3+ footer, chunk by chunk with the same per-section retry
//! policy the paged open uses. Because every verification byte flows through the
//! backend trait, injected fault schedules ([`FaultyBackend`]) exercise this path
//! exactly like the paged one: transient faults heal through retries, persistent
//! corruption surfaces as a structured [`IoError`] from `open` — never a panic. After
//! a successful open there are no further I/O error paths, so the type needs no
//! poison protocol.
//!
//! Backends that are not plain files (the fault injector, in-memory stores) do not
//! expose a mappable [`File`]; for those the verified data section is materialised on
//! the heap instead, keeping behaviour identical minus the zero-copy property.
//!
//! [`FaultyBackend`]: crate::store::backend::FaultyBackend
//! [`StorageBackend::read_at`]: crate::store::backend::StorageBackend::read_at

use std::fs::File;
use std::path::{Path, PathBuf};

use crate::compressed::{decode_neighborhood, decode_neighborhood_header, CompressionConfig};
use crate::io::IoError;
use crate::store::backend::{FileBackend, StorageBackend};
use crate::store::container::{
    read_tpg_index_backend, read_tpg_meta_backend, retry_section, verify_or_load_data, TpgMeta,
};
use crate::store::elias_fano::OffsetIndex;
use crate::store::paged::PagedGraphOptions;
use crate::traits::Graph;
use crate::{EdgeId, EdgeWeight, NodeId, NodeWeight};

/// Raw `mmap`/`munmap` bindings (no libc crate in the dependency-free build). The
/// `off_t` argument is declared `i64`, which matches every 64-bit unix ABI — the
/// mapping path is gated accordingly, with the heap fallback everywhere else.
#[cfg(all(unix, target_pointer_width = "64"))]
mod sys {
    use std::os::raw::{c_int, c_void};

    pub const PROT_READ: c_int = 0x1;
    pub const MAP_PRIVATE: c_int = 0x2;
    // Advice values shared by Linux and the BSDs (macOS included).
    pub const MADV_SEQUENTIAL: c_int = 2;
    pub const MADV_WILLNEED: c_int = 3;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
        pub fn madvise(addr: *mut c_void, len: usize, advice: c_int) -> c_int;
    }
}

/// The bytes behind an open [`MmapGraph`]: a read-only mapping of the whole container
/// file, or a heap copy of the data section for backends that are not plain files
/// (and platforms without the mmap binding).
enum Mapping {
    #[cfg(all(unix, target_pointer_width = "64"))]
    Mmap {
        ptr: std::ptr::NonNull<u8>,
        /// Length of the whole mapping (the full file).
        len: usize,
        /// Offset of the data section within the mapping.
        data_offset: usize,
        /// Length of the data section.
        data_len: usize,
    },
    Heap(Vec<u8>),
}

// The mapping is immutable after construction (PROT_READ, or a never-mutated Vec),
// so shared references from any thread are sound.
unsafe impl Send for Mapping {}
unsafe impl Sync for Mapping {}

impl Mapping {
    /// Maps the whole file read-only and hints the kernel about the access pattern.
    /// Returns the mapping plus the number of successfully applied readahead hints,
    /// or `None` (falling back to the heap path) if the platform has no mapping
    /// binding or the kernel refuses the mapping.
    fn try_map(file: &File, meta: &TpgMeta) -> Option<(Mapping, u64)> {
        #[cfg(all(unix, target_pointer_width = "64"))]
        {
            use std::os::unix::io::AsRawFd;
            let len = file.metadata().ok()?.len() as usize;
            let needed = meta.data_start() as usize + meta.data_len as usize;
            if len < needed || len == 0 {
                return None;
            }
            let ptr = unsafe {
                sys::mmap(
                    std::ptr::null_mut(),
                    len,
                    sys::PROT_READ,
                    sys::MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr as isize == -1 {
                return None;
            }
            let ptr = std::ptr::NonNull::new(ptr.cast::<u8>())?;
            // Readahead hints: the multilevel pipeline sweeps neighbourhoods mostly
            // in vertex order, so MADV_SEQUENTIAL raises the kernel's readahead
            // window, and MADV_WILLNEED starts faulting the file in right away.
            // Purely advisory — a refusal costs nothing, so failures are only
            // reflected in the hint count.
            let mut hints = 0u64;
            for advice in [sys::MADV_SEQUENTIAL, sys::MADV_WILLNEED] {
                if unsafe { sys::madvise(ptr.as_ptr().cast(), len, advice) } == 0 {
                    hints += 1;
                }
            }
            Some((
                Mapping::Mmap {
                    ptr,
                    len,
                    data_offset: meta.data_start() as usize,
                    data_len: meta.data_len as usize,
                },
                hints,
            ))
        }
        #[cfg(not(all(unix, target_pointer_width = "64")))]
        {
            let _ = (file, meta);
            None
        }
    }

    /// The data section.
    fn data(&self) -> &[u8] {
        match self {
            #[cfg(all(unix, target_pointer_width = "64"))]
            Mapping::Mmap {
                ptr,
                data_offset,
                data_len,
                ..
            } => unsafe { std::slice::from_raw_parts(ptr.as_ptr().add(*data_offset), *data_len) },
            Mapping::Heap(data) => data,
        }
    }

    /// Bytes this mapping pins (charged to the memory accounting): the whole file
    /// for a real mapping, the data section for the heap fallback.
    fn size_in_bytes(&self) -> usize {
        match self {
            #[cfg(all(unix, target_pointer_width = "64"))]
            Mapping::Mmap { len, .. } => *len,
            Mapping::Heap(data) => data.len(),
        }
    }

    /// Whether this is a real memory mapping (vs the heap fallback).
    fn is_mmap(&self) -> bool {
        match self {
            #[cfg(all(unix, target_pointer_width = "64"))]
            Mapping::Mmap { .. } => true,
            Mapping::Heap(_) => false,
        }
    }
}

impl Drop for Mapping {
    fn drop(&mut self) {
        #[cfg(all(unix, target_pointer_width = "64"))]
        if let Mapping::Mmap { ptr, len, .. } = self {
            // A failing munmap leaks address space but cannot corrupt anything;
            // there is no meaningful recovery in a destructor.
            unsafe {
                sys::munmap(ptr.as_ptr().cast(), *len);
            }
        }
    }
}

/// A graph stored in a `.tpg` container, decoded in place from a read-only memory
/// mapping (see the module docs). Fully verified at open; infallible afterwards, so
/// unlike [`PagedGraph`](crate::store::PagedGraph) it carries no poison protocol and
/// no cache statistics.
pub struct MmapGraph {
    meta: TpgMeta,
    path: PathBuf,
    offsets: OffsetIndex,
    node_weights: Vec<NodeWeight>,
    mapping: Mapping,
    /// Bytes charged to the global memory accounting, released on drop.
    charged: usize,
    /// Open-time reads retried under the retry policy (exported to obs).
    open_retries: u64,
    /// Readahead hints (`madvise`) successfully applied to the mapping — zero on
    /// the heap fallback and on non-unix platforms (exported to obs).
    madvise_hints: u64,
}

impl std::fmt::Debug for MmapGraph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MmapGraph")
            .field("path", &self.path)
            .field("n", &self.meta.n)
            .field("m", &self.meta.m)
            .field("mmap", &self.mapping.is_mmap())
            .finish()
    }
}

impl MmapGraph {
    /// Opens a `.tpg` container with default options.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, IoError> {
        Self::open_with_options(path, &PagedGraphOptions::default())
    }

    /// Opens a `.tpg` container; of `options` only the [`retry`] policy applies (it
    /// governs the open-time verification reads).
    ///
    /// [`retry`]: PagedGraphOptions::retry
    pub fn open_with_options(
        path: impl AsRef<Path>,
        options: &PagedGraphOptions,
    ) -> Result<Self, IoError> {
        let path = path.as_ref().to_path_buf();
        let backend = FileBackend::open(&path)?;
        Self::open_backend_at(Box::new(backend), path, options)
    }

    /// Opens a `.tpg` container through a caller-provided backend — the seam the
    /// fault-injection harness uses. Backends that do not expose a mappable file
    /// (the fault injector among them) are served by the heap fallback, so the
    /// injected fault schedule covers every byte of the open, data section included.
    pub fn open_with_backend(
        backend: Box<dyn StorageBackend>,
        options: &PagedGraphOptions,
    ) -> Result<Self, IoError> {
        Self::open_backend_at(backend, PathBuf::from("<storage backend>"), options)
    }

    fn open_backend_at(
        backend: Box<dyn StorageBackend>,
        path: PathBuf,
        options: &PagedGraphOptions,
    ) -> Result<Self, IoError> {
        // Same open discipline as the paged backend: each verified section is its
        // own retry unit, and format/corruption errors retry too (a corrupt read
        // parses into nonsense only a clean re-read can acquit).
        let mut open_retries = 0u64;
        let meta = retry_section(&options.retry, &mut open_retries, || {
            read_tpg_meta_backend(backend.as_ref())
        })?;
        let (offsets, node_weights, checksums) =
            read_tpg_index_backend(backend.as_ref(), &meta, &options.retry, &mut open_retries)?;
        // In-place decoding has no per-access range checks, so the offset index must
        // be proven monotone-within-the-data-section here. (Elias-Fano indices are
        // validated at construction; plain ones — including unchecksummed v1/v2 and
        // crc-restamped corruption — are checked now.)
        offsets.check_monotone(meta.data_len)?;
        // Verify the whole data section through the backend (block crcs, per-chunk
        // retry). For a plain-file backend the verified bytes are then mapped
        // zero-copy; anything else keeps the verified heap copy.
        let mut madvise_hints = 0u64;
        let mapping = match backend.as_file() {
            Some(file) => {
                verify_or_load_data(
                    backend.as_ref(),
                    &meta,
                    checksums.as_ref(),
                    &options.retry,
                    &mut open_retries,
                    None,
                )?;
                match Mapping::try_map(file, &meta) {
                    Some((mapping, hints)) => {
                        madvise_hints = hints;
                        mapping
                    }
                    None => {
                        let mut data = Vec::new();
                        verify_or_load_data(
                            backend.as_ref(),
                            &meta,
                            checksums.as_ref(),
                            &options.retry,
                            &mut open_retries,
                            Some(&mut data),
                        )?;
                        Mapping::Heap(data)
                    }
                }
            }
            None => {
                let mut data = Vec::new();
                verify_or_load_data(
                    backend.as_ref(),
                    &meta,
                    checksums.as_ref(),
                    &options.retry,
                    &mut open_retries,
                    Some(&mut data),
                )?;
                Mapping::Heap(data)
            }
        };
        let charged = mapping.size_in_bytes()
            + offsets.size_in_bytes()
            + node_weights.len() * std::mem::size_of::<NodeWeight>();
        memtrack::global().add(charged);
        Ok(Self {
            meta,
            path,
            offsets,
            node_weights,
            mapping,
            charged,
            open_retries,
            madvise_hints,
        })
    }

    /// The container header this graph was opened from.
    pub fn meta(&self) -> &TpgMeta {
        &self.meta
    }

    /// Path of the backing container file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The compression configuration of the stored neighbourhoods.
    pub fn config(&self) -> &CompressionConfig {
        &self.meta.config
    }

    /// Whether neighbourhoods decode from a real memory mapping (`false`: the heap
    /// fallback for file-less backends and unsupported platforms).
    pub fn is_mmap(&self) -> bool {
        self.mapping.is_mmap()
    }

    /// Bytes charged to the memory accounting: the mapping (whole file) or heap copy
    /// (data section), plus the offset index and node weights.
    pub fn accounted_bytes(&self) -> usize {
        self.charged
    }

    /// In-memory size of the offset index (the Elias-Fano savings show up here).
    pub fn offset_index_bytes(&self) -> usize {
        self.offsets.size_in_bytes()
    }

    /// Readahead hints (`madvise`) successfully applied to the mapping at open:
    /// up to two (`MADV_SEQUENTIAL` + `MADV_WILLNEED`) on unix, zero on the heap
    /// fallback and elsewhere.
    pub fn madvise_hints(&self) -> u64 {
        self.madvise_hints
    }

    /// Size in bytes of the uncompressed CSR form of the stored graph.
    pub fn csr_size_in_bytes(&self) -> usize {
        self.meta.csr_size_in_bytes()
    }

    fn weighted(&self) -> bool {
        self.meta.edge_weighted && self.meta.config.compress_edge_weights
    }

    fn data(&self) -> &[u8] {
        self.mapping.data()
    }

    /// Decoded header `(first_edge, degree)` of `u`'s neighbourhood.
    fn header(&self, u: NodeId) -> (EdgeId, usize) {
        let (start, end) = self.offsets.pair(u as usize);
        if start == end {
            return (0, 0);
        }
        let (first_edge, degree, _) = decode_neighborhood_header(self.data(), start as usize);
        (first_edge, degree)
    }

    /// ID of the first half-edge of `u`'s neighbourhood.
    pub fn first_edge(&self, u: NodeId) -> EdgeId {
        self.header(u).0
    }
}

impl Drop for MmapGraph {
    fn drop(&mut self) {
        memtrack::global().sub(self.charged);
    }
}

impl Graph for MmapGraph {
    fn n(&self) -> usize {
        self.meta.n
    }

    fn m(&self) -> usize {
        self.meta.m
    }

    fn degree(&self, u: NodeId) -> usize {
        self.header(u).1
    }

    fn node_weight(&self, u: NodeId) -> NodeWeight {
        if self.node_weights.is_empty() {
            1
        } else {
            self.node_weights[u as usize]
        }
    }

    fn total_node_weight(&self) -> NodeWeight {
        self.meta.total_node_weight
    }

    fn total_edge_weight(&self) -> EdgeWeight {
        self.meta.total_edge_weight
    }

    fn for_each_neighbor(&self, u: NodeId, f: &mut dyn FnMut(NodeId, EdgeWeight)) {
        let (start, end) = self.offsets.pair(u as usize);
        if start == end {
            return;
        }
        // Same decode routine, same byte stream, same order as CompressedGraph and
        // PagedGraph — which is what keeps fixed-seed runs bit-identical across
        // backends.
        decode_neighborhood(
            self.data(),
            start as usize,
            u,
            self.weighted(),
            &self.meta.config,
            f,
        );
    }

    fn is_edge_weighted(&self) -> bool {
        self.meta.edge_weighted
    }

    fn is_node_weighted(&self) -> bool {
        !self.node_weights.is_empty()
    }

    fn max_degree(&self) -> usize {
        self.meta.max_degree
    }

    fn record_obs_metrics(&self, metrics: &obs::MetricsRegistry) {
        use obs::Counter;
        metrics.add(Counter::MmapOpens, 1);
        metrics.record_max(
            Counter::MmapMappedBytes,
            self.mapping.size_in_bytes() as u64,
        );
        metrics.record_max(
            Counter::MmapOffsetIndexBytes,
            self.offsets.size_in_bytes() as u64,
        );
        metrics.add(Counter::MmapOpenRetriedReads, self.open_retries);
        metrics.add(Counter::MmapMadviseHints, self.madvise_hints);
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use crate::compressed::CompressedGraph;
    use crate::gen;
    use crate::store::container::{
        write_tpg_from_graph, write_tpg_from_graph_ef, write_tpg_from_graph_plain,
    };

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "terapart_mmap_test_{}_{}",
            std::process::id(),
            name
        ));
        p
    }

    fn assert_matches(mmap: &MmapGraph, reference: &impl Graph) {
        assert_eq!(mmap.n(), reference.n());
        assert_eq!(mmap.m(), reference.m());
        assert_eq!(mmap.total_node_weight(), reference.total_node_weight());
        assert_eq!(mmap.total_edge_weight(), reference.total_edge_weight());
        assert_eq!(mmap.max_degree(), reference.max_degree());
        for u in 0..reference.n() as NodeId {
            assert_eq!(mmap.degree(u), reference.degree(u), "degree of {}", u);
            assert_eq!(mmap.node_weight(u), reference.node_weight(u));
            assert_eq!(
                mmap.neighbors_vec(u),
                reference.neighbors_vec(u),
                "neighbourhood of {}",
                u
            );
        }
    }

    #[test]
    fn mmap_iteration_is_identical_to_compressed() {
        let csr = gen::with_random_node_weights(
            &gen::with_random_edge_weights(&gen::weblike(10, 8, 2), 30, 4),
            6,
            9,
        );
        let config = CompressionConfig::default();
        let compressed = CompressedGraph::from_csr(&csr, &config);
        for ef in [false, true] {
            let path = tmp(&format!("identical_{}.tpg", ef));
            if ef {
                write_tpg_from_graph_ef(&csr, &path, &config).unwrap();
            } else {
                write_tpg_from_graph(&csr, &path, &config).unwrap();
            }
            let mmap = MmapGraph::open(&path).unwrap();
            assert!(mmap.is_mmap() || cfg!(not(unix)));
            assert_matches(&mmap, &compressed);
            assert_eq!(mmap.first_edge(3), compressed.first_edge(3));
            std::fs::remove_file(path).ok();
        }
    }

    #[test]
    fn memory_accounting_is_charged_and_released() {
        let csr = gen::grid2d(40, 40);
        let path = tmp("accounting.tpg");
        write_tpg_from_graph(&csr, &path, &CompressionConfig::default()).unwrap();
        let before = memtrack::global().current();
        {
            let mmap = MmapGraph::open(&path).unwrap();
            assert!(mmap.accounted_bytes() > 0);
            assert!(memtrack::global().current() >= before + mmap.accounted_bytes());
        }
        assert!(
            memtrack::global().current() <= before,
            "mmap graph charge not fully released"
        );
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn empty_graph_opens_and_decodes() {
        let csr = gen::grid2d(1, 1); // single vertex, no edges
        let config = CompressionConfig::default();
        for ef in [false, true] {
            let path = tmp(&format!("empty_{}.tpg", ef));
            if ef {
                write_tpg_from_graph_ef(&csr, &path, &config).unwrap();
            } else {
                write_tpg_from_graph(&csr, &path, &config).unwrap();
            }
            let mmap = MmapGraph::open(&path).unwrap();
            assert_eq!(mmap.n(), 1);
            assert_eq!(mmap.degree(0), 0);
            assert!(mmap.neighbors_vec(0).is_empty());
            std::fs::remove_file(path).ok();
        }
    }

    #[test]
    fn madvise_hints_are_applied_to_real_mappings() {
        let csr = gen::grid2d(20, 20);
        let path = tmp("madvise.tpg");
        write_tpg_from_graph(&csr, &path, &CompressionConfig::default()).unwrap();
        let mmap = MmapGraph::open(&path).unwrap();
        if mmap.is_mmap() {
            assert_eq!(mmap.madvise_hints(), 2, "SEQUENTIAL + WILLNEED");
        } else {
            assert_eq!(mmap.madvise_hints(), 0, "heap fallback takes no hints");
        }
        let metrics = obs::MetricsRegistry::new();
        mmap.record_obs_metrics(&metrics);
        assert_eq!(
            metrics.get(obs::Counter::MmapMadviseHints),
            mmap.madvise_hints()
        );
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn corrupt_plain_offsets_are_rejected_at_open() {
        // A crc-restamped non-monotone offset index (a "bad writer") must be caught
        // by the open-time monotonicity check: the mmap path decodes in place and
        // has no later bounds check to fall back on.
        let csr = gen::grid2d(12, 12);
        let path = tmp("corrupt_offsets.tpg");
        // Plain offsets: the patch below rewrites fixed-width u64 entries in place.
        write_tpg_from_graph_plain(&csr, &path, &CompressionConfig::default()).unwrap();
        let meta = crate::store::read_tpg_meta(&path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        for (index, value) in [
            (2u64, meta.data_len + (1 << 30)),
            (3, meta.data_len + (1 << 30) + 8),
        ] {
            let entry = (meta.offsets_start() + 8 * index) as usize;
            bytes[entry..entry + 8].copy_from_slice(&value.to_le_bytes());
        }
        let offsets_start = meta.offsets_start() as usize;
        let offsets_len = 8 * (meta.n + 1);
        let offsets_crc =
            crate::checksum::crc32(&bytes[offsets_start..offsets_start + offsets_len]);
        let crc_pos = (meta.footer_start() + 4 + 4 * meta.checksum_block_count()) as usize;
        bytes[crc_pos..crc_pos + 4].copy_from_slice(&offsets_crc.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        assert!(MmapGraph::open(&path).is_err());
        std::fs::remove_file(path).ok();
    }
}
