//! External-memory graph store: the `.tpg` on-disk container and the page-cache-backed
//! [`PagedGraph`].
//!
//! The paper's headline claim — partitioning tera-scale graphs on a single machine —
//! rests on keeping the *input* in a compressed representation whose footprint the rest
//! of the pipeline never exceeds (TeraPart §III). This module family pushes that one
//! step further: the compressed neighbourhood bytes live **on disk** and the partitioner
//! touches them through a fixed-budget page cache, so the accounted in-memory footprint
//! of the input drops from "compressed size" to "offset index + node weights + page
//! budget". The semi-external regime this implements keeps the `O(n)` per-vertex arrays
//! in memory and streams the `O(m)` adjacency from disk — the classic trade-off of
//! semi-external graph algorithms.
//!
//! Three cooperating pieces:
//!
//! * [`container`] — the `.tpg` container format: a fixed header, the varint/gap/interval
//!   encoded neighbourhood sections (byte-identical to [`CompressedGraph`]'s in-memory
//!   encoding), a per-vertex offset index and optional node weights. [`TpgWriter`]
//!   streams a graph into the container in one bounded-memory pass (`O(n + max_degree)`
//!   live bytes, never `O(m)`).
//! * [`paged`] — [`PagedGraph`], a [`Graph`](crate::traits::Graph) implementation that
//!   decodes neighbourhoods out of a sharded, memtrack-charged page cache backed by pure
//!   positional reads (`pread`-style, no mmap). Iteration order is bit-identical to the
//!   in-memory [`CompressedGraph`], so a fixed-seed partitioning run produces the same
//!   partition from either representation.
//! * [`mmap`] — [`MmapGraph`], the zero-copy fast path: the container is memory-mapped
//!   read-only (after full open-time verification) and neighbourhoods decode in place —
//!   no frame copies, no shard locks. Selected via [`OnDiskBackend`].
//! * [`elias_fano`] — the quasi-succinct [`OffsetIndex`] shared by both backends: a
//!   `.tpg` v4 container can store the per-vertex offsets Elias-Fano encoded
//!   (~`2 + log2(bytes/node)` bits per entry instead of 64).
//! * [`stream`] — bounded-memory streaming instance generation: an external
//!   bucket-spilling builder that accepts arbitrary edge streams and produces a `.tpg`
//!   without ever materialising the full adjacency, plus streaming variants of the
//!   R-MAT and random-geometric generators that feed it chunk by chunk.
//! * [`handle`] / [`registry`] — the engine/session split: [`StoreHandle`] unifies all
//!   four graph representations behind one `Arc`-shareable type whose per-request
//!   [`StoreSession`] views carry the poison protocol, and [`StoreRegistry`]
//!   deduplicates opens by `(path, options)` so concurrent requests share one open
//!   store (and one memory charge).
//!
//! [`CompressedGraph`]: crate::compressed::CompressedGraph

// The storage layer must degrade structurally — poison, `IoError`, retry — never by
// panicking mid-pipeline, so unwrap/expect are banned outside test modules (which
// opt back in with `#![allow]`).
#![deny(clippy::unwrap_used, clippy::expect_used)]

pub mod backend;
pub mod container;
pub mod elias_fano;
pub mod handle;
pub mod mmap;
pub mod paged;
pub mod registry;
pub mod stream;

pub use backend::{
    read_full_at, FaultPlan, FaultStats, FaultyBackend, FileBackend, StorageBackend,
};
pub use container::{
    read_tpg, read_tpg_compressed, read_tpg_meta, write_tpg_from_binary, write_tpg_from_graph,
    write_tpg_from_graph_ef, write_tpg_from_graph_plain, write_tpg_from_metis, EncodedSection,
    SectionEncoder, TpgMeta, TpgSummary, TpgWriter,
};
pub use elias_fano::{ef_section_bytes, EliasFanoIndex, OffsetIndex};
pub use handle::{StoreHandle, StoreSession};
pub use mmap::MmapGraph;
pub use paged::{
    CacheStatsSnapshot, FatalIoError, OnDiskBackend, PagedGraph, PagedGraphOptions, RetryPolicy,
};
pub use registry::StoreRegistry;
pub use stream::{
    stream_rgg2d_to_tpg, stream_rgg3d_to_tpg, stream_rmat_to_tpg, SpillStats, StreamingTpgBuilder,
    MAX_SPILL_BUCKETS,
};
