//! [`PagedGraph`]: a [`Graph`] backed by a `.tpg` container through a fixed-budget,
//! sharded page cache.
//!
//! The semi-external layout keeps the `O(n)` arrays (offset index, node weights) in
//! memory and leaves the `O(m)` encoded neighbourhood bytes on disk. Neighbourhood
//! accesses copy the needed byte range out of cached pages into a thread-local buffer
//! and decode with the same routine the in-memory [`CompressedGraph`] uses, so
//! iteration order — and therefore a fixed-seed partitioning run — is bit-identical
//! across the two representations.
//!
//! The cache is sharded by page index; each shard owns a fixed number of page frames
//! and evicts with the CLOCK (second-chance) policy. Pages are filled with positional
//! reads (`pread`-style via `FileExt`), so no seeks are shared between threads and no
//! memory mapping is involved. Frames are charged to the global memory accounting as
//! they are first allocated, the semi-external arrays at open — the accounted footprint
//! of an open `PagedGraph` is `offset index + node weights + committed page budget`,
//! which the memory-ladder experiments compare against the uncompressed CSR size.
//!
//! [`CompressedGraph`]: crate::compressed::CompressedGraph

use std::cell::RefCell;
use std::collections::HashMap;
use std::fs::File;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use parking_lot::Mutex;

use crate::compressed::{decode_neighborhood, decode_neighborhood_header, CompressionConfig};
use crate::io::IoError;
use crate::store::container::{read_tpg_index, read_tpg_meta, TpgMeta};
use crate::traits::Graph;
use crate::varint::MAX_VARINT_LEN;
use crate::{EdgeId, EdgeWeight, NodeId, NodeWeight};

/// Tuning knobs of the page cache behind a [`PagedGraph`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PagedGraphOptions {
    /// Bytes per cache page. Smaller pages waste less budget on cold neighbourhoods;
    /// larger pages amortise syscalls on sequential sweeps.
    pub page_size: usize,
    /// Total page-cache budget in bytes. The cache never holds more than
    /// `budget_bytes / page_size` frames (at least one per shard).
    pub budget_bytes: usize,
    /// Number of independently locked shards.
    pub shards: usize,
}

impl Default for PagedGraphOptions {
    fn default() -> Self {
        Self {
            page_size: 64 * 1024,
            budget_bytes: 8 * 1024 * 1024,
            shards: 8,
        }
    }
}

impl PagedGraphOptions {
    /// Options with the given total budget and the default page size and sharding.
    pub fn with_budget(budget_bytes: usize) -> Self {
        Self {
            budget_bytes,
            ..Self::default()
        }
    }
}

/// Point-in-time counters of one page cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStatsSnapshot {
    /// Page lookups served from a resident frame.
    pub hits: u64,
    /// Page lookups that required a disk read.
    pub misses: u64,
    /// Frames whose previous page was evicted to serve a miss.
    pub evictions: u64,
    /// Bytes read from disk.
    pub bytes_read: u64,
}

impl CacheStatsSnapshot {
    /// Fraction of lookups served from memory.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Default)]
struct CacheStats {
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    bytes_read: AtomicU64,
}

struct Frame {
    page: u64,
    len: u32,
    referenced: bool,
    data: Box<[u8]>,
}

struct Shard {
    map: HashMap<u64, usize>,
    frames: Vec<Frame>,
    capacity: usize,
    hand: usize,
}

/// Positional read that does not move any shared cursor.
fn read_exact_at(file: &File, buf: &mut [u8], offset: u64) -> io::Result<()> {
    #[cfg(unix)]
    {
        use std::os::unix::fs::FileExt;
        file.read_exact_at(buf, offset)
    }
    #[cfg(windows)]
    {
        use std::os::windows::fs::FileExt;
        let mut done = 0;
        while done < buf.len() {
            let read = file.seek_read(&mut buf[done..], offset + done as u64)?;
            if read == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "failed to fill buffer",
                ));
            }
            done += read;
        }
        Ok(())
    }
    #[cfg(not(any(unix, windows)))]
    {
        compile_error!("PagedGraph requires positional reads (unix or windows)");
    }
}

/// Sharded CLOCK page cache over the data section of one `.tpg` file.
struct PageCache {
    file: File,
    data_start: u64,
    data_len: u64,
    page_size: usize,
    shards: Vec<Mutex<Shard>>,
    stats: CacheStats,
    /// Bytes charged to the global memory accounting for allocated frames.
    charged: AtomicUsize,
}

impl PageCache {
    fn new(file: File, data_start: u64, data_len: u64, options: &PagedGraphOptions) -> Self {
        let page_size = options.page_size.max(64);
        let shards = options.shards.max(1);
        let total_frames = (options.budget_bytes / page_size).max(shards);
        let per_shard = total_frames.div_ceil(shards);
        let shards: Vec<Mutex<Shard>> = (0..shards)
            .map(|_| {
                Mutex::new(Shard {
                    map: HashMap::new(),
                    frames: Vec::new(),
                    capacity: per_shard.max(1),
                    hand: 0,
                })
            })
            .collect();
        Self {
            file,
            data_start,
            data_len,
            page_size,
            shards,
            stats: CacheStats::default(),
            charged: AtomicUsize::new(0),
        }
    }

    /// Runs `f` on the bytes of `page` while the owning shard is locked. The page is
    /// faulted in (possibly evicting another) if it is not resident.
    fn with_page<R>(&self, page: u64, f: impl FnOnce(&[u8]) -> R) -> io::Result<R> {
        let shard = &self.shards[(page as usize) % self.shards.len()];
        let mut s = shard.lock();
        if let Some(&idx) = s.map.get(&page) {
            self.stats.hits.fetch_add(1, Ordering::Relaxed);
            let frame = &mut s.frames[idx];
            frame.referenced = true;
            return Ok(f(&frame.data[..frame.len as usize]));
        }
        self.stats.misses.fetch_add(1, Ordering::Relaxed);
        let idx = if s.frames.len() < s.capacity {
            s.frames.push(Frame {
                page: u64::MAX,
                len: 0,
                referenced: false,
                data: vec![0u8; self.page_size].into_boxed_slice(),
            });
            // Charge the frame the moment it is first committed, so the accounting
            // reflects touched pages rather than the configured upper bound (the
            // overcommit model of the rest of the code base).
            self.charged.fetch_add(self.page_size, Ordering::Relaxed);
            memtrack::global().add(self.page_size);
            s.frames.len() - 1
        } else {
            // CLOCK second-chance scan.
            loop {
                let hand = s.hand;
                s.hand = (s.hand + 1) % s.frames.len();
                if s.frames[hand].referenced {
                    s.frames[hand].referenced = false;
                } else {
                    break hand;
                }
            }
        };
        if s.frames[idx].page != u64::MAX {
            let old = s.frames[idx].page;
            s.map.remove(&old);
            self.stats.evictions.fetch_add(1, Ordering::Relaxed);
        }
        let offset = page * self.page_size as u64;
        let len = (self.data_len - offset).min(self.page_size as u64) as usize;
        {
            let frame = &mut s.frames[idx];
            read_exact_at(&self.file, &mut frame.data[..len], self.data_start + offset)?;
            frame.page = page;
            frame.len = len as u32;
            frame.referenced = true;
        }
        self.stats
            .bytes_read
            .fetch_add(len as u64, Ordering::Relaxed);
        s.map.insert(page, idx);
        let frame = &s.frames[idx];
        Ok(f(&frame.data[..frame.len as usize]))
    }

    /// Copies the byte range `[start, end)` of the data section into `out` (cleared
    /// first), faulting pages as needed.
    fn read_range(&self, start: u64, end: u64, out: &mut Vec<u8>) -> io::Result<()> {
        debug_assert!(start <= end && end <= self.data_len);
        out.clear();
        out.reserve((end - start) as usize);
        let ps = self.page_size as u64;
        let mut pos = start;
        while pos < end {
            let page = pos / ps;
            let offset_in_page = (pos % ps) as usize;
            let take = (end - pos).min(ps - pos % ps) as usize;
            self.with_page(page, |data| {
                out.extend_from_slice(&data[offset_in_page..offset_in_page + take]);
            })?;
            pos += take as u64;
        }
        Ok(())
    }

    fn snapshot(&self) -> CacheStatsSnapshot {
        CacheStatsSnapshot {
            hits: self.stats.hits.load(Ordering::Relaxed),
            misses: self.stats.misses.load(Ordering::Relaxed),
            evictions: self.stats.evictions.load(Ordering::Relaxed),
            bytes_read: self.stats.bytes_read.load(Ordering::Relaxed),
        }
    }
}

impl Drop for PageCache {
    fn drop(&mut self) {
        memtrack::global().sub(self.charged.load(Ordering::Relaxed));
    }
}

thread_local! {
    /// Per-thread neighbourhood assembly buffer. `try_borrow_mut` guards against nested
    /// neighbourhood iteration (e.g. symmetry checks), which falls back to a fresh
    /// buffer instead of deadlocking on the `RefCell`.
    static DECODE_BUF: RefCell<Vec<u8>> = const { RefCell::new(Vec::new()) };
}

fn with_decode_buf<R>(f: impl FnOnce(&mut Vec<u8>) -> R) -> R {
    DECODE_BUF.with(|cell| match cell.try_borrow_mut() {
        Ok(mut buf) => f(&mut buf),
        Err(_) => f(&mut Vec::new()),
    })
}

/// A graph stored in a `.tpg` container on disk, accessed through a fixed-budget page
/// cache. Implements [`Graph`], so the full multilevel pipeline runs against it
/// unchanged.
pub struct PagedGraph {
    meta: TpgMeta,
    path: PathBuf,
    /// Byte offset of each vertex's encoded neighbourhood within the data section.
    offsets: Vec<u64>,
    /// Node weights, empty when uniform.
    node_weights: Vec<NodeWeight>,
    cache: PageCache,
    /// Bytes charged for the semi-external arrays, released on drop.
    resident_charge: usize,
}

impl std::fmt::Debug for PagedGraph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PagedGraph")
            .field("path", &self.path)
            .field("n", &self.meta.n)
            .field("m", &self.meta.m)
            .field("page_size", &self.cache.page_size)
            .finish()
    }
}

impl PagedGraph {
    /// Opens a `.tpg` container with default cache options.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, IoError> {
        Self::open_with_options(path, &PagedGraphOptions::default())
    }

    /// Opens a `.tpg` container with the given page-cache options.
    pub fn open_with_options(
        path: impl AsRef<Path>,
        options: &PagedGraphOptions,
    ) -> Result<Self, IoError> {
        let path = path.as_ref().to_path_buf();
        let meta = read_tpg_meta(&path)?;
        let mut file = File::open(&path)?;
        let (offsets, node_weights) = read_tpg_index(&mut file, &meta)?;
        let resident_charge = offsets.len() * std::mem::size_of::<u64>()
            + node_weights.len() * std::mem::size_of::<NodeWeight>();
        memtrack::global().add(resident_charge);
        let cache = PageCache::new(file, meta.data_start(), meta.data_len, options);
        Ok(Self {
            meta,
            path,
            offsets,
            node_weights,
            cache,
            resident_charge,
        })
    }

    /// The container header this graph was opened from.
    pub fn meta(&self) -> &TpgMeta {
        &self.meta
    }

    /// Path of the backing container file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The compression configuration of the stored neighbourhoods.
    pub fn config(&self) -> &CompressionConfig {
        &self.meta.config
    }

    /// Current page-cache counters.
    pub fn cache_stats(&self) -> CacheStatsSnapshot {
        self.cache.snapshot()
    }

    /// Bytes currently charged to the memory accounting for this graph: the
    /// semi-external arrays plus all committed page frames.
    pub fn accounted_bytes(&self) -> usize {
        self.resident_charge + self.cache.charged.load(Ordering::Relaxed)
    }

    /// Size in bytes of the uncompressed CSR form of the stored graph.
    pub fn csr_size_in_bytes(&self) -> usize {
        self.meta.csr_size_in_bytes()
    }

    fn weighted(&self) -> bool {
        self.meta.edge_weighted && self.meta.config.compress_edge_weights
    }

    /// Decoded header `(first_edge, degree)` of `u`'s neighbourhood. Only the first few
    /// bytes of the encoding are fetched.
    fn header(&self, u: NodeId) -> (EdgeId, usize) {
        let start = self.offsets[u as usize];
        let end = self.offsets[u as usize + 1].min(start + 2 * MAX_VARINT_LEN as u64);
        with_decode_buf(|buf| {
            self.cache
                .read_range(start, end, buf)
                .expect("I/O error reading .tpg header");
            let (first_edge, degree, _) = decode_neighborhood_header(buf, 0);
            (first_edge, degree)
        })
    }

    /// ID of the first half-edge of `u`'s neighbourhood.
    pub fn first_edge(&self, u: NodeId) -> EdgeId {
        self.header(u).0
    }
}

impl Drop for PagedGraph {
    fn drop(&mut self) {
        memtrack::global().sub(self.resident_charge);
    }
}

impl Graph for PagedGraph {
    fn n(&self) -> usize {
        self.meta.n
    }

    fn m(&self) -> usize {
        self.meta.m
    }

    fn degree(&self, u: NodeId) -> usize {
        self.header(u).1
    }

    fn node_weight(&self, u: NodeId) -> NodeWeight {
        if self.node_weights.is_empty() {
            1
        } else {
            self.node_weights[u as usize]
        }
    }

    fn total_node_weight(&self) -> NodeWeight {
        self.meta.total_node_weight
    }

    fn total_edge_weight(&self) -> EdgeWeight {
        self.meta.total_edge_weight
    }

    fn for_each_neighbor(&self, u: NodeId, f: &mut dyn FnMut(NodeId, EdgeWeight)) {
        let start = self.offsets[u as usize];
        let end = self.offsets[u as usize + 1];
        if start == end {
            return;
        }
        with_decode_buf(|buf| {
            self.cache
                .read_range(start, end, buf)
                .expect("I/O error reading .tpg neighbourhood");
            decode_neighborhood(buf, 0, u, self.weighted(), &self.meta.config, f);
        });
    }

    fn is_edge_weighted(&self) -> bool {
        self.meta.edge_weighted
    }

    fn is_node_weighted(&self) -> bool {
        !self.node_weights.is_empty()
    }

    fn max_degree(&self) -> usize {
        self.meta.max_degree
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compressed::CompressedGraph;
    use crate::csr::CsrGraphBuilder;
    use crate::gen;
    use crate::store::container::write_tpg_from_graph;
    use proptest::prelude::*;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "terapart_paged_test_{}_{}",
            std::process::id(),
            name
        ));
        p
    }

    fn tiny_options() -> PagedGraphOptions {
        PagedGraphOptions {
            page_size: 64,
            budget_bytes: 256,
            shards: 2,
        }
    }

    fn assert_matches_graph(paged: &PagedGraph, reference: &impl Graph) {
        assert_eq!(paged.n(), reference.n());
        assert_eq!(paged.m(), reference.m());
        assert_eq!(paged.total_node_weight(), reference.total_node_weight());
        assert_eq!(paged.total_edge_weight(), reference.total_edge_weight());
        assert_eq!(paged.max_degree(), reference.max_degree());
        for u in 0..reference.n() as NodeId {
            assert_eq!(paged.degree(u), reference.degree(u), "degree of {}", u);
            assert_eq!(paged.node_weight(u), reference.node_weight(u));
            // Iteration order must match exactly (not just as sets): partitioning
            // determinism depends on it.
            assert_eq!(
                paged.neighbors_vec(u),
                reference.neighbors_vec(u),
                "neighbourhood of {}",
                u
            );
        }
    }

    #[test]
    fn paged_iteration_is_identical_to_compressed_and_csr() {
        let csr = gen::weblike(10, 8, 2);
        let config = CompressionConfig::default();
        let compressed = CompressedGraph::from_csr(&csr, &config);
        let path = tmp("identical.tpg");
        write_tpg_from_graph(&csr, &path, &config).unwrap();
        let paged = PagedGraph::open_with_options(&path, &tiny_options()).unwrap();
        assert_matches_graph(&paged, &compressed);
        // CSR neighbourhoods are sorted; compare as sets against the paged view.
        for u in 0..csr.n() as NodeId {
            let mut a = paged.neighbors_vec(u);
            a.sort_unstable();
            assert_eq!(a, csr.neighbors_vec(u));
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn tiny_budget_forces_eviction_but_stays_correct() {
        let csr = gen::rgg2d(1500, 12, 5);
        let path = tmp("eviction.tpg");
        let summary = write_tpg_from_graph(&csr, &path, &CompressionConfig::default()).unwrap();
        let options = tiny_options();
        assert!(
            (summary.data_bytes as usize) > options.budget_bytes * 4,
            "instance too small to stress the cache: {} data bytes",
            summary.data_bytes
        );
        let paged = PagedGraph::open_with_options(&path, &options).unwrap();
        // Two full sweeps: the second must re-fault pages (the working set exceeds the
        // budget), yet decode identical neighbourhoods.
        let first: Vec<Vec<(NodeId, EdgeWeight)>> = (0..csr.n() as NodeId)
            .map(|u| paged.neighbors_vec(u))
            .collect();
        let stats_after_first = paged.cache_stats();
        assert!(
            stats_after_first.evictions > 0,
            "no evictions at tiny budget"
        );
        for u in 0..csr.n() as NodeId {
            assert_eq!(paged.neighbors_vec(u), first[u as usize]);
        }
        // The committed frames never exceed the configured budget (rounded up to one
        // frame per shard).
        let max_frames = (options.budget_bytes / options.page_size).max(options.shards);
        assert!(paged.cache.charged.load(Ordering::Relaxed) <= max_frames * options.page_size);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn weighted_graphs_decode_through_pages() {
        let csr = gen::with_random_node_weights(
            &gen::with_random_edge_weights(&gen::rhg_like(600, 10, 2.8, 7), 30, 8),
            6,
            9,
        );
        let config = CompressionConfig::default();
        let compressed = CompressedGraph::from_csr(&csr, &config);
        let path = tmp("weighted.tpg");
        write_tpg_from_graph(&csr, &path, &config).unwrap();
        let paged = PagedGraph::open_with_options(&path, &tiny_options()).unwrap();
        assert!(paged.is_edge_weighted() && paged.is_node_weighted());
        assert_matches_graph(&paged, &compressed);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn high_degree_chunked_neighbourhoods_span_pages() {
        let csr = gen::star(3000);
        let config = CompressionConfig {
            high_degree_threshold: 100,
            chunk_len: 64,
            ..CompressionConfig::default()
        };
        let compressed = CompressedGraph::from_csr(&csr, &config);
        let path = tmp("chunked.tpg");
        write_tpg_from_graph(&csr, &path, &config).unwrap();
        // Page size far below the hub neighbourhood size: the decode buffer must be
        // assembled from many pages.
        let paged = PagedGraph::open_with_options(
            &path,
            &PagedGraphOptions {
                page_size: 128,
                budget_bytes: 1024,
                shards: 2,
            },
        )
        .unwrap();
        assert_matches_graph(&paged, &compressed);
        assert_eq!(paged.degree(0), 2999);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn memory_accounting_is_charged_and_released() {
        let csr = gen::grid2d(40, 40);
        let path = tmp("accounting.tpg");
        write_tpg_from_graph(&csr, &path, &CompressionConfig::default()).unwrap();
        let before = memtrack::global().current();
        {
            let paged = PagedGraph::open_with_options(&path, &tiny_options()).unwrap();
            let semi_external = (csr.n() + 1) * 8;
            assert!(memtrack::global().current() >= before + semi_external);
            // Touch everything so frames get committed and charged.
            for u in 0..csr.n() as NodeId {
                paged.for_each_neighbor(u, &mut |_, _| {});
            }
            assert!(paged.accounted_bytes() >= semi_external + 64);
            assert!(memtrack::global().current() >= before + paged.accounted_bytes());
        }
        assert!(
            memtrack::global().current() <= before,
            "paged graph charge not fully released"
        );
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn first_edge_ids_match_compressed() {
        let csr = gen::grid2d(9, 9);
        let config = CompressionConfig::default();
        let compressed = CompressedGraph::from_csr(&csr, &config);
        let path = tmp("first_edge.tpg");
        write_tpg_from_graph(&csr, &path, &config).unwrap();
        let paged = PagedGraph::open_with_options(&path, &tiny_options()).unwrap();
        for u in 0..csr.n() as NodeId {
            assert_eq!(paged.first_edge(u), compressed.first_edge(u));
        }
        std::fs::remove_file(path).ok();
    }

    /// Body of the three-way equivalence property below, out of the macro so the shim's
    /// token-muncher stays shallow.
    fn check_three_way_equivalence(
        n: usize,
        edges: Vec<(u32, u32, u64)>,
        intervals: bool,
        page_size: usize,
    ) {
        let mut b = CsrGraphBuilder::new(n);
        for (u, v, w) in edges {
            let (u, v) = (NodeId::from(u % n as u32), NodeId::from(v % n as u32));
            if u != v {
                b.add_edge(u, v, w);
            }
        }
        let csr = b.build();
        let config = CompressionConfig {
            enable_intervals: intervals,
            high_degree_threshold: 8,
            chunk_len: 4,
            ..CompressionConfig::default()
        };
        let compressed = CompressedGraph::from_csr(&csr, &config);
        let path = tmp(&format!("prop_{}_{}", n, page_size));
        write_tpg_from_graph(&csr, &path, &config).unwrap();
        let paged = PagedGraph::open_with_options(
            &path,
            &PagedGraphOptions {
                page_size,
                budget_bytes: page_size * 3,
                shards: 2,
            },
        )
        .unwrap();
        assert_eq!(paged.n(), csr.n());
        assert_eq!(paged.m(), csr.m());
        for u in 0..n as NodeId {
            assert_eq!(paged.degree(u), csr.degree(u));
            assert_eq!(paged.neighbors_vec(u), compressed.neighbors_vec(u));
            let mut sorted = paged.neighbors_vec(u);
            sorted.sort_unstable();
            assert_eq!(sorted, csr.neighbors_vec(u));
        }
        std::fs::remove_file(path).ok();
    }

    // The satellite acceptance property: paged neighbour iteration ≡ in-memory
    // compressed ≡ CSR, on random graphs, under a pathologically small page cache.
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn prop_paged_equals_compressed_equals_csr(
            n in 2usize..50,
            edges in proptest::collection::vec((0u32..50, 0u32..50, 1u64..9), 0..160),
            intervals in proptest::bool::ANY,
            page_size in 64usize..192,
        ) {
            check_three_way_equivalence(n, edges, intervals, page_size);
        }
    }
}
