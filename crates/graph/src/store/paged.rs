//! [`PagedGraph`]: a [`Graph`] backed by a `.tpg` container through a fixed-budget,
//! sharded page cache.
//!
//! The semi-external layout keeps the `O(n)` arrays (offset index, node weights) in
//! memory and leaves the `O(m)` encoded neighbourhood bytes on disk. Neighbourhood
//! accesses copy the needed byte range out of cached pages into a thread-local buffer
//! and decode with the same routine the in-memory [`CompressedGraph`] uses, so
//! iteration order — and therefore a fixed-seed partitioning run — is bit-identical
//! across the two representations.
//!
//! The cache is sharded by page index; each shard owns a fixed number of page frames
//! and evicts with the CLOCK (second-chance) policy. Pages are filled with positional
//! reads (`pread`-style via `FileExt`), so no seeks are shared between threads and no
//! memory mapping is involved. Frames are charged to the global memory accounting as
//! they are first allocated, the semi-external arrays at open — the accounted footprint
//! of an open `PagedGraph` is `offset index + node weights + committed page budget`,
//! which the memory-ladder experiments compare against the uncompressed CSR size.
//!
//! # Prefetch
//!
//! With [`PagedGraphOptions::prefetch`] enabled, [`Graph::prefetch`] hints are honoured
//! by the readahead machinery: the hinted nodes' byte ranges are translated to a
//! deduplicated page list (in visit order); one window of that list is faulted
//! synchronously at the hint (between LP rounds, never inside a lookup) and the rest
//! is handed to a dedicated worker that faults the missing pages with batched,
//! run-coalesced positional reads — overlapping the disk work with the caller's
//! compute. The worker is **consumption-coupled**: it advances one window at a time
//! and, before each window, waits until the CLOCK reference bits show the foreground
//! has visited at least half of the previous one (prefetch installs clear the bit,
//! foreground lookups set it), so readahead stays roughly one window ahead of the LP
//! visit cursor instead of racing the whole hint into the cache at once. Readahead
//! never blocks foreground lookups (pages are read outside the shard locks and
//! installed under a brief lock) and never claims more than **half the frame budget
//! per hint**, so CLOCK cannot be pressured into evicting the foreground's recent
//! working set wholesale. Prefetched pages are installed with a clear reference bit:
//! if the hint was wrong, they are the first candidates CLOCK recycles. Prefetch is
//! purely an optimisation — results of all accesses, and therefore fixed-seed
//! partitioning runs, are unaffected.
//!
//! [`CompressedGraph`]: crate::compressed::CompressedGraph
//! [`Graph::prefetch`]: crate::traits::Graph::prefetch

use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex as StdMutex, PoisonError};
use std::time::Duration;

use parking_lot::Mutex;

use crate::compressed::{decode_neighborhood, decode_neighborhood_header, CompressionConfig};
use crate::io::{io_error_is_transient, IoError};
use crate::store::backend::{read_full_at, FileBackend, StorageBackend};
use crate::store::container::{
    read_tpg_index_backend, read_tpg_meta_backend, retry_section, TpgChecksums, TpgMeta,
};
use crate::store::elias_fano::OffsetIndex;
use crate::traits::Graph;
use crate::varint::MAX_VARINT_LEN;
use crate::{EdgeId, EdgeWeight, NodeId, NodeWeight};

/// Bounded retry with exponential backoff for transient read failures (`EIO`,
/// interrupted syscalls, checksum mismatches that heal on a clean re-read).
///
/// `max_retries` counts *additional* attempts after the first failure; 0 disables
/// retrying. The delay before retry `i` is `base_delay << i`, capped at `max_delay`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RetryPolicy {
    /// Additional attempts after the first failure (0 = fail immediately).
    pub max_retries: u32,
    /// Backoff before the first retry.
    pub base_delay: Duration,
    /// Upper bound of the exponential backoff.
    pub max_delay: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_retries: 2,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(50),
        }
    }
}

impl RetryPolicy {
    /// No retrying: every read failure surfaces immediately.
    pub fn disabled() -> Self {
        Self {
            max_retries: 0,
            ..Self::default()
        }
    }

    /// Backoff before retry number `attempt` (0-based).
    pub fn delay_for(&self, attempt: u32) -> Duration {
        self.base_delay
            .saturating_mul(1u32 << attempt.min(16))
            .min(self.max_delay)
    }
}

/// Which store implementation the on-disk entry points open a `.tpg` container
/// with. Fixed-seed results are bit-identical across backends — both decode with the
/// same routine in the same order — so the choice is purely a speed/footprint
/// trade-off.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum OnDiskBackend {
    /// The strict-budget sharded CLOCK page cache ([`PagedGraph`]): resident bytes
    /// never exceed `offset index + node weights + page budget`, suitable for
    /// containers larger than RAM.
    #[default]
    Paged,
    /// The zero-copy mmap fast path ([`MmapGraph`](crate::store::MmapGraph)):
    /// neighbourhoods decode straight out of a read-only memory mapping — no frame
    /// copies, no shard locks, no per-access bookkeeping — with residency delegated
    /// to the OS page cache. The fits-in-RAM choice.
    Mmap,
}

/// Tuning knobs of the page cache behind a [`PagedGraph`].
///
/// `Hash`/`Eq` make the options usable as part of a registry key: the open-store
/// registry ([`StoreRegistry`](crate::store::StoreRegistry)) deduplicates opens by
/// `(path, options)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PagedGraphOptions {
    /// Bytes per cache page. Smaller pages waste less budget on cold neighbourhoods;
    /// larger pages amortise syscalls on sequential sweeps.
    pub page_size: usize,
    /// Total page-cache budget in bytes. The cache never holds more than
    /// `budget_bytes / page_size` frames (at least one per shard).
    pub budget_bytes: usize,
    /// Number of independently locked shards.
    pub shards: usize,
    /// Honour [`Graph::prefetch`] readahead hints with a
    /// background readahead worker (see the module docs). Off by default; purely an
    /// optimisation — results are identical either way.
    pub prefetch: bool,
    /// Retry policy for transient read failures (applies to page faults, readahead
    /// and the open-time index read).
    pub retry: RetryPolicy,
    /// Store implementation the on-disk entry points (`partition_ondisk`) open the
    /// container with. The page-cache knobs above only apply to [`Paged`]; the
    /// [`Mmap`] backend shares `retry` for its open-time verification reads.
    ///
    /// [`Paged`]: OnDiskBackend::Paged
    /// [`Mmap`]: OnDiskBackend::Mmap
    pub backend: OnDiskBackend,
}

impl Default for PagedGraphOptions {
    fn default() -> Self {
        Self {
            page_size: 64 * 1024,
            budget_bytes: 8 * 1024 * 1024,
            shards: 8,
            prefetch: false,
            retry: RetryPolicy::default(),
            backend: OnDiskBackend::Paged,
        }
    }
}

impl PagedGraphOptions {
    /// Options with the given total budget and the default page size and sharding.
    pub fn with_budget(budget_bytes: usize) -> Self {
        Self {
            budget_bytes,
            ..Self::default()
        }
    }

    /// Enables or disables the readahead worker, returning the modified options.
    pub fn with_prefetch(mut self, prefetch: bool) -> Self {
        self.prefetch = prefetch;
        self
    }
}

/// Point-in-time counters of one page cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStatsSnapshot {
    /// Foreground page lookups served from a resident frame.
    pub hits: u64,
    /// Foreground page lookups that required a disk read.
    pub misses: u64,
    /// Frames whose previous page was evicted to serve a miss or a prefetch install.
    pub evictions: u64,
    /// Bytes read from disk by foreground faults (prefetch reads are counted in
    /// [`prefetch_bytes`](Self::prefetch_bytes) instead).
    pub bytes_read: u64,
    /// Pages installed by readahead. Foreground lookups that land on them count as
    /// hits, which is how prefetch lifts the cold-sweep hit rate.
    pub prefetched_pages: u64,
    /// Bytes read from disk by readahead.
    pub prefetch_bytes: u64,
    /// Read attempts repeated after a transient failure (see
    /// [`PagedGraphOptions::retry`]).
    pub retried_reads: u64,
    /// Checksum verification failures observed (each failed attempt counts; a
    /// mismatch healed by a retry still shows up here).
    pub checksum_failures: u64,
}

impl CacheStatsSnapshot {
    /// Fraction of lookups served from memory.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Pours this snapshot into an observability registry, making the snapshot a view
    /// over the unified counter set rather than a parallel ad-hoc struct.
    pub fn export_into(&self, metrics: &obs::MetricsRegistry) {
        use obs::Counter;
        metrics.add(Counter::CacheHits, self.hits);
        metrics.add(Counter::CacheMisses, self.misses);
        metrics.add(Counter::CachePrefetchedPages, self.prefetched_pages);
        metrics.add(Counter::CachePrefetchBytes, self.prefetch_bytes);
        metrics.add(Counter::CacheRetriedReads, self.retried_reads);
        metrics.add(Counter::CacheChecksumFailures, self.checksum_failures);
    }
}

#[derive(Default)]
struct CacheStats {
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    bytes_read: AtomicU64,
    prefetched_pages: AtomicU64,
    prefetch_bytes: AtomicU64,
    retried_reads: AtomicU64,
    checksum_failures: AtomicU64,
}

struct Frame {
    page: u64,
    len: u32,
    referenced: bool,
    data: Box<[u8]>,
}

struct Shard {
    map: HashMap<u64, usize>,
    frames: Vec<Frame>,
    capacity: usize,
    hand: usize,
}

/// Typed payload of a checksum-verification failure, carried inside an
/// [`io::Error`] of kind `InvalidData` so the retry predicate can recognise it
/// (checksum mismatches are retryable — a transient in-flight flip heals on a clean
/// re-read — while every other `InvalidData` is structural).
#[derive(Debug)]
struct ChecksumMismatch {
    block: u64,
    stored: u32,
    computed: u32,
}

impl std::fmt::Display for ChecksumMismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            ".tpg data block {} checksum mismatch: stored {:#010x}, computed {:#010x}",
            self.block, self.stored, self.computed
        )
    }
}

impl std::error::Error for ChecksumMismatch {}

fn is_checksum_mismatch(e: &io::Error) -> bool {
    e.get_ref().is_some_and(|p| p.is::<ChecksumMismatch>())
}

/// Retryability of a read error inside the page cache's retry loop.
fn read_error_is_transient(e: &io::Error) -> bool {
    is_checksum_mismatch(e) || io_error_is_transient(e)
}

/// Longest run of consecutive pages coalesced into a single readahead syscall; bounds
/// the prefetch staging buffer (`MAX_PREFETCH_RUN_PAGES · page_size` bytes).
const MAX_PREFETCH_RUN_PAGES: usize = 16;

/// Consecutive readahead-batch failures after which the worker downgrades the run to
/// prefetch-off (graceful degradation: foreground faults keep the pipeline alive).
const PREFETCH_FAILURE_LIMIT: u32 = 3;

/// Readahead staging buffer: grows to the largest coalesced run actually read and
/// charges that footprint to the global memory accounting until dropped (covering
/// early error returns too).
#[derive(Default)]
struct StagingBuf {
    buf: Vec<u8>,
    charged: usize,
}

impl StagingBuf {
    /// The first `len` staging bytes, growing (and charging) the buffer as needed.
    fn ensure(&mut self, len: usize) -> &mut [u8] {
        if self.buf.len() < len {
            let grow = len - self.buf.len();
            self.buf.resize(len, 0);
            memtrack::global().add(grow);
            self.charged += grow;
        }
        &mut self.buf[..len]
    }
}

impl Drop for StagingBuf {
    fn drop(&mut self) {
        memtrack::global().sub(self.charged);
    }
}

/// Fraction of the previous window's pages the foreground must have consumed before
/// the readahead worker faults the next window (see [`PageCache::prefetch_window`]).
const PREFETCH_CONSUMED_FRACTION: f64 = 0.5;

/// Poll interval of the worker's consumption gate. Short enough that a freshly
/// consumed window releases the next one well within a page-fault's latency; long
/// enough that a stalled consumer costs no measurable CPU.
const PREFETCH_POLL_INTERVAL: Duration = Duration::from_micros(200);

/// A visit-ordered page list handed to the readahead worker. `pages[..start]` was
/// already faulted synchronously at the hint (the head-start window); the worker
/// works through `pages[start..]` window by window under the consumption gate.
struct PrefetchHint {
    pages: Vec<u64>,
    start: usize,
}

/// Sharded CLOCK page cache over the data section of one `.tpg` file.
struct PageCache {
    backend: Box<dyn StorageBackend>,
    data_start: u64,
    data_len: u64,
    page_size: usize,
    /// Total frame budget across all shards (the prefetch cap derives from it).
    total_frames: usize,
    shards: Vec<Mutex<Shard>>,
    stats: CacheStats,
    /// Bytes charged to the global memory accounting for allocated frames.
    charged: AtomicUsize,
    /// Per-block crcs of the data section (v3 containers); `None` disables read
    /// verification (v1/v2 containers).
    checksums: Option<TpgChecksums>,
    /// Retry policy for transient read failures.
    retry: RetryPolicy,
    /// Set by the readahead worker after repeated failures: readahead is disabled for
    /// the rest of the run while foreground reads keep working (graceful degradation).
    prefetch_disabled: AtomicBool,
}

impl PageCache {
    fn new(
        backend: Box<dyn StorageBackend>,
        data_start: u64,
        data_len: u64,
        checksums: Option<TpgChecksums>,
        options: &PagedGraphOptions,
    ) -> Self {
        let page_size = options.page_size.max(64);
        let shards = options.shards.max(1);
        let total_frames = (options.budget_bytes / page_size).max(shards);
        let per_shard = total_frames.div_ceil(shards);
        let shards: Vec<Mutex<Shard>> = (0..shards)
            .map(|_| {
                Mutex::new(Shard {
                    map: HashMap::new(),
                    frames: Vec::new(),
                    capacity: per_shard.max(1),
                    hand: 0,
                })
            })
            .collect();
        Self {
            backend,
            data_start,
            data_len,
            page_size,
            total_frames: shards.len() * per_shard.max(1),
            shards,
            stats: CacheStats::default(),
            charged: AtomicUsize::new(0),
            checksums,
            retry: options.retry,
            prefetch_disabled: AtomicBool::new(false),
        }
    }

    /// Verifies `bytes` (starting at block-aligned data offset `start`) against the
    /// stored per-block crcs. The caller guarantees every chunk is either a full block
    /// or the final (short) block of the data section.
    fn verify_blocks(&self, bytes: &[u8], start: u64) -> io::Result<()> {
        let Some(ck) = &self.checksums else {
            return Ok(());
        };
        let block_len = ck.block_len as usize;
        debug_assert_eq!(start % block_len as u64, 0);
        let first = (start / block_len as u64) as usize;
        for (i, chunk) in bytes.chunks(block_len).enumerate() {
            let block = first + i;
            let stored = *ck.blocks.get(block).ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    format!(
                        "data block {} beyond the container's {} checksummed blocks",
                        block,
                        ck.blocks.len()
                    ),
                )
            })?;
            let computed = crate::checksum::crc32(chunk);
            if computed != stored {
                self.stats.checksum_failures.fetch_add(1, Ordering::Relaxed);
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    ChecksumMismatch {
                        block: block as u64,
                        stored,
                        computed,
                    },
                ));
            }
        }
        Ok(())
    }

    /// One attempt at reading `dest.len()` bytes at data-section offset `offset`,
    /// verifying the covering checksum blocks. When the requested range is not
    /// block-aligned, the covering block range is staged and verified before the
    /// requested bytes are copied out (zero staging when `page_size` is a multiple of
    /// the block length — the default geometry).
    fn try_read_verified(&self, dest: &mut [u8], offset: u64) -> io::Result<()> {
        let Some(ck) = &self.checksums else {
            return read_full_at(self.backend.as_ref(), dest, self.data_start + offset);
        };
        if dest.is_empty() {
            return Ok(());
        }
        let block_len = u64::from(ck.block_len);
        let end = offset + dest.len() as u64;
        let cover_start = offset / block_len * block_len;
        let cover_end = end
            .div_ceil(block_len)
            .saturating_mul(block_len)
            .min(self.data_len);
        if cover_start == offset && cover_end == end {
            read_full_at(self.backend.as_ref(), dest, self.data_start + offset)?;
            self.verify_blocks(dest, cover_start)
        } else {
            let mut staging = vec![0u8; (cover_end - cover_start) as usize];
            read_full_at(
                self.backend.as_ref(),
                &mut staging,
                self.data_start + cover_start,
            )?;
            self.verify_blocks(&staging, cover_start)?;
            let skip = (offset - cover_start) as usize;
            dest.copy_from_slice(&staging[skip..skip + dest.len()]);
            Ok(())
        }
    }

    /// Reads `dest.len()` bytes at data-section offset `offset` with verification,
    /// retrying transient failures per [`PagedGraphOptions::retry`] with exponential
    /// backoff. All page-cache disk reads (foreground faults and readahead) funnel
    /// through here.
    fn read_verified(&self, dest: &mut [u8], offset: u64) -> io::Result<()> {
        let mut attempt = 0u32;
        loop {
            match self.try_read_verified(dest, offset) {
                Ok(()) => return Ok(()),
                Err(e) => {
                    if attempt >= self.retry.max_retries || !read_error_is_transient(&e) {
                        return Err(e);
                    }
                    self.stats.retried_reads.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(self.retry.delay_for(attempt));
                    attempt += 1;
                }
            }
        }
    }

    fn shard_of(&self, page: u64) -> &Mutex<Shard> {
        &self.shards[(page as usize) % self.shards.len()]
    }

    /// Bytes of `page` within the data section, or an `UnexpectedEof`-style error for
    /// a page at or beyond the section's end (a corrupted or truncated container —
    /// never a wrapped subtraction).
    fn page_len(&self, page: u64) -> io::Result<usize> {
        match page
            .checked_mul(self.page_size as u64)
            .and_then(|offset| self.data_len.checked_sub(offset))
        {
            Some(remaining) if remaining > 0 => Ok(remaining.min(self.page_size as u64) as usize),
            _ => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                format!(
                    "page {} starts at or beyond the {}-byte data section (corrupted or \
                     truncated .tpg container)",
                    page, self.data_len
                ),
            )),
        }
    }

    /// Returns the index of a frame to (re)use in `s`: a freshly allocated one while
    /// the shard is below capacity (charged to the accounting), else the CLOCK
    /// second-chance victim. Any previous occupant is unmapped and counted as an
    /// eviction; the caller installs the new page.
    fn claim_frame(&self, s: &mut Shard) -> usize {
        let idx = if s.frames.len() < s.capacity {
            s.frames.push(Frame {
                page: u64::MAX,
                len: 0,
                referenced: false,
                data: vec![0u8; self.page_size].into_boxed_slice(),
            });
            // Charge the frame the moment it is first committed, so the accounting
            // reflects touched pages rather than the configured upper bound (the
            // overcommit model of the rest of the code base).
            self.charged.fetch_add(self.page_size, Ordering::Relaxed);
            memtrack::global().add(self.page_size);
            s.frames.len() - 1
        } else {
            // CLOCK second-chance scan.
            loop {
                let hand = s.hand;
                s.hand = (s.hand + 1) % s.frames.len();
                if s.frames[hand].referenced {
                    s.frames[hand].referenced = false;
                } else {
                    break hand;
                }
            }
        };
        if s.frames[idx].page != u64::MAX {
            let old = s.frames[idx].page;
            s.map.remove(&old);
            self.stats.evictions.fetch_add(1, Ordering::Relaxed);
        }
        idx
    }

    /// Runs `f` on the bytes of `page` while the owning shard is locked. The page is
    /// faulted in (possibly evicting another) if it is not resident.
    fn with_page<R>(&self, page: u64, f: impl FnOnce(&[u8]) -> R) -> io::Result<R> {
        let mut s = self.shard_of(page).lock();
        if let Some(&idx) = s.map.get(&page) {
            self.stats.hits.fetch_add(1, Ordering::Relaxed);
            let frame = &mut s.frames[idx];
            frame.referenced = true;
            return Ok(f(&frame.data[..frame.len as usize]));
        }
        self.stats.misses.fetch_add(1, Ordering::Relaxed);
        // Validate the page before claiming a frame, so a corrupted offset cannot
        // pollute the cache (or wrap the length arithmetic) on its way to the error.
        let len = self.page_len(page)?;
        let offset = page * self.page_size as u64;
        let idx = self.claim_frame(&mut s);
        {
            let frame = &mut s.frames[idx];
            self.read_verified(&mut frame.data[..len], offset)?;
            frame.page = page;
            frame.len = len as u32;
            frame.referenced = true;
        }
        self.stats
            .bytes_read
            .fetch_add(len as u64, Ordering::Relaxed);
        s.map.insert(page, idx);
        let frame = &s.frames[idx];
        Ok(f(&frame.data[..frame.len as usize]))
    }

    /// Copies the byte range `[start, end)` of the data section into `out` (cleared
    /// first), faulting pages as needed.
    fn read_range(&self, start: u64, end: u64, out: &mut Vec<u8>) -> io::Result<()> {
        if start > end || end > self.data_len {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                format!(
                    "byte range [{}, {}) outside the {}-byte data section (corrupted \
                     offset index?)",
                    start, end, self.data_len
                ),
            ));
        }
        out.clear();
        out.reserve((end - start) as usize);
        let ps = self.page_size as u64;
        let mut pos = start;
        while pos < end {
            let page = pos / ps;
            let offset_in_page = (pos % ps) as usize;
            let take = (end - pos).min(ps - pos % ps) as usize;
            self.with_page(page, |data| {
                out.extend_from_slice(&data[offset_in_page..offset_in_page + take]);
            })?;
            pos += take as u64;
        }
        Ok(())
    }

    fn is_resident(&self, page: u64) -> bool {
        self.shard_of(page).lock().map.contains_key(&page)
    }

    /// Installs `data` as `page` unless it is already resident (e.g. a foreground
    /// fault raced the readahead); the shard lock is held only for the frame copy.
    /// Prefetched pages enter with a **clear** reference bit so that mispredicted
    /// readahead is the first thing CLOCK recycles. Returns whether it installed.
    fn install_page(&self, page: u64, data: &[u8]) -> bool {
        let mut s = self.shard_of(page).lock();
        if s.map.contains_key(&page) {
            return false;
        }
        let idx = self.claim_frame(&mut s);
        let frame = &mut s.frames[idx];
        frame.data[..data.len()].copy_from_slice(data);
        frame.page = page;
        frame.len = data.len() as u32;
        frame.referenced = false;
        s.map.insert(page, idx);
        true
    }

    /// Batched readahead of `pages` (in the given order): missing pages are read with
    /// run-coalesced positional reads *outside* any shard lock and installed
    /// afterwards, so foreground lookups are never blocked behind prefetch I/O.
    /// Returns the number of pages installed.
    fn prefetch_pages(&self, pages: &[u64]) -> io::Result<usize> {
        let ps = self.page_size as u64;
        // Staging grows to the largest coalesced run actually seen (shuffled orders
        // produce 1–2-page runs, far below the cap) and is charged to the memory
        // accounting for the duration of the call.
        let mut staging = StagingBuf::default();
        let mut installed = 0usize;
        let mut i = 0usize;
        while i < pages.len() {
            if self.is_resident(pages[i]) {
                i += 1;
                continue;
            }
            // Coalesce a run of consecutive, non-resident pages into one read.
            let mut run = 1usize;
            while run < MAX_PREFETCH_RUN_PAGES
                && i + run < pages.len()
                && pages[i + run] == pages[i] + run as u64
                && !self.is_resident(pages[i + run])
            {
                run += 1;
            }
            let first_len = self.page_len(pages[i])?;
            let offset = pages[i] * ps;
            let available = self.data_len - offset;
            let run_len = available.min(run as u64 * ps) as usize;
            debug_assert!(first_len <= run_len);
            self.read_verified(staging.ensure(run_len), offset)?;
            self.stats
                .prefetch_bytes
                .fetch_add(run_len as u64, Ordering::Relaxed);
            for j in 0..run {
                let page_offset = j * self.page_size;
                if page_offset >= run_len {
                    // A later page of the run starts beyond the data section: surface
                    // the same corruption error a foreground fault would.
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        format!(
                            "page {} starts at or beyond the {}-byte data section \
                             (corrupted or truncated .tpg container)",
                            pages[i + j],
                            self.data_len
                        ),
                    ));
                }
                let page_len = (run_len - page_offset).min(self.page_size);
                if self.install_page(
                    pages[i + j],
                    &staging.buf[page_offset..page_offset + page_len],
                ) {
                    installed += 1;
                }
            }
            i += run;
        }
        self.stats
            .prefetched_pages
            .fetch_add(installed as u64, Ordering::Relaxed);
        Ok(installed)
    }

    /// Most pages a single prefetch hint may claim: half the frame budget, so
    /// readahead can never displace the foreground's recent working set wholesale.
    fn max_prefetch_pages(&self) -> usize {
        (self.total_frames / 2).max(1)
    }

    /// Pages per readahead window — the granularity the consumption-coupled throttle
    /// advances at. An eighth of the frame budget keeps a full window plus the
    /// foreground's working set comfortably resident at any cache geometry; the
    /// clamp bounds syscall overhead on tiny caches and hint latency on huge ones.
    fn prefetch_window(&self) -> usize {
        (self.total_frames / 8).clamp(4, 256)
    }

    /// Fraction of `pages` the foreground has consumed, judged by the CLOCK
    /// reference bits: prefetch installs a page with the bit clear, a foreground
    /// lookup sets it. A page that is *gone* from the cache (evicted, or never
    /// installed because the hint raced teardown) also counts as consumed — a
    /// mispredicted or pressure-evicted window must never stall the worker forever.
    fn referenced_fraction(&self, pages: &[u64]) -> f64 {
        if pages.is_empty() {
            return 1.0;
        }
        let mut consumed = 0usize;
        for &page in pages {
            let s = self.shard_of(page).lock();
            match s.map.get(&page) {
                Some(&idx) => {
                    if s.frames[idx].referenced {
                        consumed += 1;
                    }
                }
                None => consumed += 1,
            }
        }
        consumed as f64 / pages.len() as f64
    }

    fn snapshot(&self) -> CacheStatsSnapshot {
        CacheStatsSnapshot {
            hits: self.stats.hits.load(Ordering::Relaxed),
            misses: self.stats.misses.load(Ordering::Relaxed),
            evictions: self.stats.evictions.load(Ordering::Relaxed),
            bytes_read: self.stats.bytes_read.load(Ordering::Relaxed),
            prefetched_pages: self.stats.prefetched_pages.load(Ordering::Relaxed),
            prefetch_bytes: self.stats.prefetch_bytes.load(Ordering::Relaxed),
            retried_reads: self.stats.retried_reads.load(Ordering::Relaxed),
            checksum_failures: self.stats.checksum_failures.load(Ordering::Relaxed),
        }
    }
}

impl Drop for PageCache {
    fn drop(&mut self) {
        memtrack::global().sub(self.charged.load(Ordering::Relaxed));
    }
}

thread_local! {
    /// Per-thread neighbourhood assembly buffer. `try_borrow_mut` guards against nested
    /// neighbourhood iteration (e.g. symmetry checks), which falls back to a fresh
    /// buffer instead of deadlocking on the `RefCell`.
    static DECODE_BUF: RefCell<Vec<u8>> = const { RefCell::new(Vec::new()) };
}

fn with_decode_buf<R>(f: impl FnOnce(&mut Vec<u8>) -> R) -> R {
    DECODE_BUF.with(|cell| match cell.try_borrow_mut() {
        Ok(mut buf) => f(&mut buf),
        Err(_) => f(&mut Vec::new()),
    })
}

/// Pending-hint bookkeeping of the readahead worker, used to drain the queue
/// deterministically ([`PagedGraph::wait_prefetch_idle`]) before snapshotting stats or
/// dropping the graph.
struct PrefetchQueue {
    pending: StdMutex<usize>,
    idle: Condvar,
    /// Callers currently blocked in [`wait_idle`](Self::wait_idle). While non-zero
    /// the worker's consumption gate is lifted — the waiter *wants* the queue
    /// drained, and gating on a consumer that is itself blocked waiting would
    /// deadlock.
    draining: AtomicUsize,
    /// Set (permanently) at graph teardown, before the hint channel closes, so a
    /// worker stalled in the consumption gate exits its current hint promptly
    /// instead of deadlocking the joining `Drop`.
    shutdown: AtomicBool,
}

impl PrefetchQueue {
    // Poison-tolerant locking throughout: the counter is a plain usize that is valid
    // under any interleaving, so a hint sender that panicked while holding the lock
    // must not wedge `wait_prefetch_idle` (or take the whole run down) — recover the
    // guard and keep draining.

    fn enqueue_one(&self) {
        *self.pending.lock().unwrap_or_else(PoisonError::into_inner) += 1;
    }

    fn finish_one(&self) {
        let mut pending = self.pending.lock().unwrap_or_else(PoisonError::into_inner);
        *pending = pending.saturating_sub(1);
        if *pending == 0 {
            self.idle.notify_all();
        }
    }

    fn pending_count(&self) -> usize {
        *self.pending.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Whether the worker should stop gating on consumption and drain outstanding
    /// hints as fast as it can.
    fn drain_requested(&self) -> bool {
        self.shutdown.load(Ordering::Acquire) || self.draining.load(Ordering::Acquire) > 0
    }

    fn wait_idle(&self) {
        self.draining.fetch_add(1, Ordering::AcqRel);
        let mut pending = self.pending.lock().unwrap_or_else(PoisonError::into_inner);
        while *pending > 0 {
            pending = self
                .idle
                .wait(pending)
                .unwrap_or_else(PoisonError::into_inner);
        }
        drop(pending);
        self.draining.fetch_sub(1, Ordering::AcqRel);
    }
}

/// The background readahead worker of one [`PagedGraph`] (present iff
/// [`PagedGraphOptions::prefetch`] is set).
struct Prefetcher {
    /// Hint channel to the worker; `None` once the graph is shutting down. Bounded so
    /// a stalled worker makes `try_send` drop hints instead of queueing unboundedly.
    tx: Option<mpsc::SyncSender<PrefetchHint>>,
    queue: Arc<PrefetchQueue>,
    handle: Option<std::thread::JoinHandle<()>>,
}

/// The first fatal I/O error of a poisoned [`PagedGraph`], plus the context the fault
/// observer captured at poison time (typically the active pipeline phase).
#[derive(Debug)]
pub struct FatalIoError {
    /// The error of the first failed access.
    pub error: io::Error,
    /// Context recorded by the [fault observer](PagedGraph::set_fault_observer), if
    /// one was installed.
    pub context: Option<String>,
}

/// Callback capturing ambient context (e.g. the active memtrack phase) the moment a
/// graph poisons itself.
type FaultObserver = Box<dyn Fn() -> String + Send + Sync>;

/// A graph stored in a `.tpg` container on disk, accessed through a fixed-budget page
/// cache. Implements [`Graph`], so the full multilevel pipeline runs against it
/// unchanged.
///
/// # Failure protocol
///
/// [`Graph`] accessors cannot return `Result`s, so a read that still fails after
/// checksum verification and retries **poisons** the graph instead of panicking: the
/// first fatal error is stored, and every subsequent accessor returns empty
/// neighbourhoods (degree 0) without touching the disk again. The pipeline thereby
/// degrades to computing on a partial graph and terminates normally; the driver must
/// call [`take_fatal_error`](PagedGraph::take_fatal_error) afterwards and discard the
/// result if the graph poisoned mid-run (which is what `partition_ondisk` does,
/// surfacing a structured error).
pub struct PagedGraph {
    meta: TpgMeta,
    path: PathBuf,
    /// Byte offset of each vertex's encoded neighbourhood within the data section
    /// (plain or Elias-Fano, as stored).
    offsets: OffsetIndex,
    /// Node weights, empty when uniform.
    node_weights: Vec<NodeWeight>,
    /// Shared with the readahead worker (when enabled).
    cache: Arc<PageCache>,
    prefetcher: Option<Prefetcher>,
    /// Bytes charged for the semi-external arrays, released on drop.
    resident_charge: usize,
    /// Fast-path flag of the poison protocol (see the type-level docs).
    poisoned: AtomicBool,
    /// First fatal error (with observer context), kept until taken.
    fatal: Mutex<Option<FatalIoError>>,
    /// Observer invoked once, at poison time.
    fault_observer: Mutex<Option<FaultObserver>>,
}

impl std::fmt::Debug for PagedGraph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PagedGraph")
            .field("path", &self.path)
            .field("n", &self.meta.n)
            .field("m", &self.meta.m)
            .field("page_size", &self.cache.page_size)
            .finish()
    }
}

impl PagedGraph {
    /// Opens a `.tpg` container with default cache options.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, IoError> {
        Self::open_with_options(path, &PagedGraphOptions::default())
    }

    /// Opens a `.tpg` container with the given page-cache options.
    pub fn open_with_options(
        path: impl AsRef<Path>,
        options: &PagedGraphOptions,
    ) -> Result<Self, IoError> {
        let path = path.as_ref().to_path_buf();
        let backend = FileBackend::open(&path)?;
        Self::open_backend_at(Box::new(backend), path, options)
    }

    /// Opens a `.tpg` container through a caller-provided backend — the seam the
    /// fault-injection harness uses to put a [`FaultyBackend`] under the whole
    /// pipeline.
    ///
    /// [`FaultyBackend`]: crate::store::backend::FaultyBackend
    pub fn open_with_backend(
        backend: Box<dyn StorageBackend>,
        options: &PagedGraphOptions,
    ) -> Result<Self, IoError> {
        Self::open_backend_at(backend, PathBuf::from("<storage backend>"), options)
    }

    fn open_backend_at(
        backend: Box<dyn StorageBackend>,
        path: PathBuf,
        options: &PagedGraphOptions,
    ) -> Result<Self, IoError> {
        // The open-time reads (header, offset index, node weights, checksum footer)
        // retry under the same policy as page faults, each verified section as its
        // own retry unit (see `read_tpg_index_backend`); the retries are folded into
        // the cache's counter afterwards. Unlike page faults, open also retries on
        // format/corruption/EOF errors: a bit flip in the header read parses into
        // arbitrary nonsense (bad version, absurd counts, out-of-range crc
        // positions) *before* the header checksum can be verified, and only a clean
        // re-read distinguishes that from a genuinely malformed file.
        let mut open_retries = 0u64;
        let meta = retry_section(&options.retry, &mut open_retries, || {
            read_tpg_meta_backend(backend.as_ref())
        })?;
        let (offsets, node_weights, checksums) =
            read_tpg_index_backend(backend.as_ref(), &meta, &options.retry, &mut open_retries)?;
        let resident_charge = offsets.size_in_bytes()
            + node_weights.len() * std::mem::size_of::<NodeWeight>()
            + checksums
                .as_ref()
                .map_or(0, |ck| ck.blocks.len() * std::mem::size_of::<u32>());
        memtrack::global().add(resident_charge);
        let cache = Arc::new(PageCache::new(
            backend,
            meta.data_start(),
            meta.data_len,
            checksums,
            options,
        ));
        cache
            .stats
            .retried_reads
            .fetch_add(open_retries, Ordering::Relaxed);
        let prefetcher = if options.prefetch {
            let (tx, rx) = mpsc::sync_channel::<PrefetchHint>(8);
            let queue = Arc::new(PrefetchQueue {
                pending: StdMutex::new(0),
                idle: Condvar::new(),
                draining: AtomicUsize::new(0),
                shutdown: AtomicBool::new(false),
            });
            let worker_cache = Arc::clone(&cache);
            let worker_queue = Arc::clone(&queue);
            let spawned = std::thread::Builder::new()
                .name("tpg-prefetch".into())
                .spawn(move || {
                    /// `finish_one` must run even if a hint handler panics, so
                    /// `wait_prefetch_idle` can never wedge on a dead worker.
                    struct FinishGuard<'a>(&'a PrefetchQueue);
                    impl Drop for FinishGuard<'_> {
                        fn drop(&mut self) {
                            self.0.finish_one();
                        }
                    }
                    let mut consecutive_failures = 0u32;
                    while let Ok(hint) = rx.recv() {
                        let _guard = FinishGuard(&worker_queue);
                        if worker_cache.prefetch_disabled.load(Ordering::Acquire) {
                            continue;
                        }
                        // Consumption-coupled readahead: advance one window at a
                        // time, and before each window wait until the reference
                        // bits show the foreground has visited at least half of
                        // the previous one (the synchronous head-start is the
                        // first "previous window"). A drain request lifts the
                        // gate; a newer pending hint supersedes this one — the LP
                        // cursor has moved on, so the rest of this hint is stale.
                        let window = worker_cache.prefetch_window();
                        let mut prev = 0..hint.start;
                        let mut next = hint.start;
                        let mut failed = false;
                        'windows: while next < hint.pages.len() {
                            while !worker_queue.drain_requested()
                                && worker_cache.referenced_fraction(&hint.pages[prev.clone()])
                                    < PREFETCH_CONSUMED_FRACTION
                            {
                                if worker_queue.pending_count() > 1 {
                                    break 'windows;
                                }
                                std::thread::sleep(PREFETCH_POLL_INTERVAL);
                            }
                            let end = (next + window).min(hint.pages.len());
                            // Readahead is advisory: an I/O error here will
                            // surface (with full context) on the foreground access
                            // instead. But a *persistently* failing worker stops
                            // burning the disk with doomed readahead — prefetch
                            // downgrades to off and the run stays alive on
                            // foreground faults alone.
                            if worker_cache.prefetch_pages(&hint.pages[next..end]).is_err() {
                                failed = true;
                                break 'windows;
                            }
                            prev = next..end;
                            next = end;
                        }
                        if failed {
                            consecutive_failures += 1;
                            if consecutive_failures >= PREFETCH_FAILURE_LIMIT {
                                worker_cache
                                    .prefetch_disabled
                                    .store(true, Ordering::Release);
                            }
                        } else {
                            consecutive_failures = 0;
                        }
                    }
                });
            let handle = match spawned {
                Ok(handle) => handle,
                Err(e) => {
                    memtrack::global().sub(resident_charge);
                    return Err(IoError::Format(format!(
                        "failed to spawn the prefetch worker: {}",
                        e
                    )));
                }
            };
            Some(Prefetcher {
                tx: Some(tx),
                queue,
                handle: Some(handle),
            })
        } else {
            None
        };
        Ok(Self {
            meta,
            path,
            offsets,
            node_weights,
            cache,
            prefetcher,
            resident_charge,
            poisoned: AtomicBool::new(false),
            fatal: Mutex::new(None),
            fault_observer: Mutex::new(None),
        })
    }

    /// The container header this graph was opened from.
    pub fn meta(&self) -> &TpgMeta {
        &self.meta
    }

    /// Path of the backing container file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The compression configuration of the stored neighbourhoods.
    pub fn config(&self) -> &CompressionConfig {
        &self.meta.config
    }

    /// Current page-cache counters.
    pub fn cache_stats(&self) -> CacheStatsSnapshot {
        self.cache.snapshot()
    }

    /// Bytes currently charged to the memory accounting for this graph: the
    /// semi-external arrays plus all committed page frames.
    pub fn accounted_bytes(&self) -> usize {
        self.resident_charge + self.cache.charged.load(Ordering::Relaxed)
    }

    /// Size in bytes of the uncompressed CSR form of the stored graph.
    pub fn csr_size_in_bytes(&self) -> usize {
        self.meta.csr_size_in_bytes()
    }

    fn weighted(&self) -> bool {
        self.meta.edge_weighted && self.meta.config.compress_edge_weights
    }

    /// Poisons the graph with `error` unless it is already poisoned: the *first* fatal
    /// error (and the observer's context) is kept; later ones are dropped. See the
    /// type-level "Failure protocol" docs.
    fn poison(&self, error: io::Error) {
        let mut fatal = self.fatal.lock();
        if fatal.is_none() {
            let context = self.fault_observer.lock().as_ref().map(|observe| observe());
            *fatal = Some(FatalIoError { error, context });
            self.poisoned.store(true, Ordering::Release);
        }
    }

    /// Whether a fatal read error has poisoned this graph (accessors now return empty
    /// neighbourhoods without touching the disk).
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::Acquire)
    }

    /// Takes the first fatal error if the graph poisoned itself (leaving the graph
    /// poisoned). Drivers call this after a run to decide whether the result is valid.
    pub fn take_fatal_error(&self) -> Option<FatalIoError> {
        self.fatal.lock().take()
    }

    /// Installs a callback that captures ambient context (e.g. the active pipeline
    /// phase) the moment the graph poisons itself; the captured string travels in
    /// [`FatalIoError::context`]. Replaces any previous observer.
    pub fn set_fault_observer(&self, observe: impl Fn() -> String + Send + Sync + 'static) {
        *self.fault_observer.lock() = Some(Box::new(observe));
    }

    /// Decoded header `(first_edge, degree)` of `u`'s neighbourhood, surfacing read
    /// failures as `Err` instead of engaging the built-in poison protocol. This is the
    /// seam per-session views ([`StoreSession`](crate::store::StoreSession)) read
    /// through, so one session's unrecoverable fault stays confined to that session.
    pub fn try_header(&self, u: NodeId) -> io::Result<(EdgeId, usize)> {
        let (start, end) = self.offsets.pair(u as usize);
        let end = end.min(start + 2 * MAX_VARINT_LEN as u64);
        with_decode_buf(|buf| {
            self.cache.read_range(start, end, buf)?;
            let (first_edge, degree, _) = decode_neighborhood_header(buf, 0);
            Ok((first_edge, degree))
        })
    }

    /// Iterates `u`'s neighbourhood, surfacing read failures as `Err` instead of
    /// engaging the built-in poison protocol (the per-session counterpart of
    /// [`Graph::for_each_neighbor`]).
    pub fn try_for_each_neighbor(
        &self,
        u: NodeId,
        f: &mut dyn FnMut(NodeId, EdgeWeight),
    ) -> io::Result<()> {
        let (start, end) = self.offsets.pair(u as usize);
        if start == end {
            return Ok(());
        }
        with_decode_buf(|buf| {
            self.cache.read_range(start, end, buf)?;
            decode_neighborhood(buf, 0, u, self.weighted(), &self.meta.config, f);
            Ok(())
        })
    }

    /// Decoded header `(first_edge, degree)` of `u`'s neighbourhood. Only the first few
    /// bytes of the encoding are fetched. Returns `(0, 0)` on a poisoned graph.
    fn header(&self, u: NodeId) -> (EdgeId, usize) {
        if self.is_poisoned() {
            return (0, 0);
        }
        match self.try_header(u) {
            Ok(header) => header,
            Err(e) => {
                self.poison(e);
                (0, 0)
            }
        }
    }

    /// ID of the first half-edge of `u`'s neighbourhood.
    pub fn first_edge(&self, u: NodeId) -> EdgeId {
        self.header(u).0
    }

    /// Translates a node visit order into the (deduplicated, visit-ordered) list of
    /// data-section pages covering their encoded neighbourhoods, capped at half the
    /// frame budget (see [`PageCache::max_prefetch_pages`]).
    fn pages_covering(&self, nodes: &[NodeId]) -> Vec<u64> {
        let cap = self.cache.max_prefetch_pages();
        let ps = self.cache.page_size as u64;
        let mut pages = Vec::new();
        let mut seen: HashSet<u64> = HashSet::new();
        for &u in nodes {
            let (start, end) = self.offsets.pair(u as usize);
            if start >= end {
                continue;
            }
            for page in (start / ps)..=((end - 1) / ps) {
                if seen.insert(page) {
                    pages.push(page);
                    if pages.len() >= cap {
                        return pages;
                    }
                }
            }
        }
        pages
    }

    /// Synchronous readahead of the neighbourhood byte ranges of `nodes` (in visit
    /// order, capped at half the frame budget): missing pages are faulted with batched
    /// run-coalesced positional reads. Returns the number of pages installed. The
    /// asynchronous variant is the [`Graph::prefetch`] hint (requires
    /// [`PagedGraphOptions::prefetch`]); this one works on any open graph and is what
    /// deterministic tests use.
    pub fn prefetch_sync(&self, nodes: &[NodeId]) -> io::Result<usize> {
        let pages = self.pages_covering(nodes);
        self.cache.prefetch_pages(&pages)
    }

    /// Blocks until every queued [`Graph::prefetch`] hint has been processed (no-op
    /// when prefetch is disabled). Call before reading [`cache_stats`] for settled
    /// prefetch counters.
    ///
    /// [`cache_stats`]: PagedGraph::cache_stats
    pub fn wait_prefetch_idle(&self) {
        if let Some(prefetcher) = &self.prefetcher {
            prefetcher.queue.wait_idle();
        }
    }
}

impl Drop for PagedGraph {
    fn drop(&mut self) {
        if let Some(prefetcher) = &mut self.prefetcher {
            // Lift the consumption gate *before* closing the hint channel: a worker
            // stalled mid-hint waiting for a consumer that will never come must
            // drain and exit, or the join below would deadlock.
            prefetcher.queue.shutdown.store(true, Ordering::Release);
            // Close the hint channel and join the worker so the shared cache (and its
            // memory charge) is released deterministically with the graph.
            drop(prefetcher.tx.take());
            if let Some(handle) = prefetcher.handle.take() {
                let _ = handle.join();
            }
        }
        memtrack::global().sub(self.resident_charge);
    }
}

impl Graph for PagedGraph {
    fn n(&self) -> usize {
        self.meta.n
    }

    fn m(&self) -> usize {
        self.meta.m
    }

    fn degree(&self, u: NodeId) -> usize {
        self.header(u).1
    }

    fn node_weight(&self, u: NodeId) -> NodeWeight {
        if self.node_weights.is_empty() {
            1
        } else {
            self.node_weights[u as usize]
        }
    }

    fn total_node_weight(&self) -> NodeWeight {
        self.meta.total_node_weight
    }

    fn total_edge_weight(&self) -> EdgeWeight {
        self.meta.total_edge_weight
    }

    fn for_each_neighbor(&self, u: NodeId, f: &mut dyn FnMut(NodeId, EdgeWeight)) {
        if self.is_poisoned() {
            return;
        }
        if let Err(e) = self.try_for_each_neighbor(u, f) {
            self.poison(e);
        }
    }

    fn is_edge_weighted(&self) -> bool {
        self.meta.edge_weighted
    }

    fn is_node_weighted(&self) -> bool {
        !self.node_weights.is_empty()
    }

    fn record_obs_metrics(&self, metrics: &obs::MetricsRegistry) {
        // Settle queued readahead first so the exported prefetch counters are final.
        self.wait_prefetch_idle();
        self.cache_stats().export_into(metrics);
    }

    fn max_degree(&self) -> usize {
        self.meta.max_degree
    }

    /// Hands the upcoming visit order to the readahead machinery (no-op unless the
    /// graph was opened with [`PagedGraphOptions::prefetch`]). One window of pages is
    /// faulted synchronously as the head-start — coalesced reads issued between
    /// rounds, so the round's first accesses hit even when the worker thread has not
    /// been scheduled yet (the single-core case). The remainder goes to the worker,
    /// which follows the foreground's consumption window by window (see the module
    /// docs); if the worker is behind, the hint is dropped — page *lookups* are never
    /// blocked, and the foreground simply faults on demand.
    fn prefetch(&self, nodes: &[NodeId]) {
        let Some(prefetcher) = &self.prefetcher else {
            return;
        };
        if nodes.is_empty()
            || self.is_poisoned()
            || self.cache.prefetch_disabled.load(Ordering::Acquire)
        {
            return;
        }
        let pages = self.pages_covering(nodes);
        if pages.is_empty() {
            return;
        }
        // Halve the head-start against the per-hint cap: a hint at the cap always
        // leaves a tail for the worker, so the asynchronous path is reachable at any
        // cache geometry (not only when the cap exceeds the window size).
        let head_start = self
            .cache
            .prefetch_window()
            .min((self.cache.max_prefetch_pages() / 2).max(1))
            .min(pages.len());
        // Advisory: readahead errors are dropped; the foreground access surfaces them.
        let _ = self.cache.prefetch_pages(&pages[..head_start]);
        if head_start == pages.len() {
            return;
        }
        // The channel is only taken in `Drop`, but a hint racing teardown must not
        // panic — it is advisory either way.
        let Some(tx) = prefetcher.tx.as_ref() else {
            return;
        };
        prefetcher.queue.enqueue_one();
        let hint = PrefetchHint {
            pages,
            start: head_start,
        };
        if tx.try_send(hint).is_err() {
            prefetcher.queue.finish_one();
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use crate::compressed::CompressedGraph;
    use crate::csr::CsrGraphBuilder;
    use crate::gen;
    use crate::store::container::{write_tpg_from_graph, write_tpg_from_graph_plain};
    use proptest::prelude::*;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "terapart_paged_test_{}_{}",
            std::process::id(),
            name
        ));
        p
    }

    fn tiny_options() -> PagedGraphOptions {
        PagedGraphOptions {
            page_size: 64,
            budget_bytes: 256,
            shards: 2,
            ..PagedGraphOptions::default()
        }
    }

    fn assert_matches_graph(paged: &PagedGraph, reference: &impl Graph) {
        assert_eq!(paged.n(), reference.n());
        assert_eq!(paged.m(), reference.m());
        assert_eq!(paged.total_node_weight(), reference.total_node_weight());
        assert_eq!(paged.total_edge_weight(), reference.total_edge_weight());
        assert_eq!(paged.max_degree(), reference.max_degree());
        for u in 0..reference.n() as NodeId {
            assert_eq!(paged.degree(u), reference.degree(u), "degree of {}", u);
            assert_eq!(paged.node_weight(u), reference.node_weight(u));
            // Iteration order must match exactly (not just as sets): partitioning
            // determinism depends on it.
            assert_eq!(
                paged.neighbors_vec(u),
                reference.neighbors_vec(u),
                "neighbourhood of {}",
                u
            );
        }
    }

    #[test]
    fn paged_iteration_is_identical_to_compressed_and_csr() {
        let csr = gen::weblike(10, 8, 2);
        let config = CompressionConfig::default();
        let compressed = CompressedGraph::from_csr(&csr, &config);
        let path = tmp("identical.tpg");
        write_tpg_from_graph(&csr, &path, &config).unwrap();
        let paged = PagedGraph::open_with_options(&path, &tiny_options()).unwrap();
        assert_matches_graph(&paged, &compressed);
        // CSR neighbourhoods are sorted; compare as sets against the paged view.
        for u in 0..csr.n() as NodeId {
            let mut a = paged.neighbors_vec(u);
            a.sort_unstable();
            assert_eq!(a, csr.neighbors_vec(u));
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn tiny_budget_forces_eviction_but_stays_correct() {
        let csr = gen::rgg2d(1500, 12, 5);
        let path = tmp("eviction.tpg");
        let summary = write_tpg_from_graph(&csr, &path, &CompressionConfig::default()).unwrap();
        let options = tiny_options();
        assert!(
            (summary.data_bytes as usize) > options.budget_bytes * 4,
            "instance too small to stress the cache: {} data bytes",
            summary.data_bytes
        );
        let paged = PagedGraph::open_with_options(&path, &options).unwrap();
        // Two full sweeps: the second must re-fault pages (the working set exceeds the
        // budget), yet decode identical neighbourhoods.
        let first: Vec<Vec<(NodeId, EdgeWeight)>> = (0..csr.n() as NodeId)
            .map(|u| paged.neighbors_vec(u))
            .collect();
        let stats_after_first = paged.cache_stats();
        assert!(
            stats_after_first.evictions > 0,
            "no evictions at tiny budget"
        );
        for u in 0..csr.n() as NodeId {
            assert_eq!(paged.neighbors_vec(u), first[u as usize]);
        }
        // The committed frames never exceed the configured budget (rounded up to one
        // frame per shard).
        let max_frames = (options.budget_bytes / options.page_size).max(options.shards);
        assert!(paged.cache.charged.load(Ordering::Relaxed) <= max_frames * options.page_size);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn weighted_graphs_decode_through_pages() {
        let csr = gen::with_random_node_weights(
            &gen::with_random_edge_weights(&gen::rhg_like(600, 10, 2.8, 7), 30, 8),
            6,
            9,
        );
        let config = CompressionConfig::default();
        let compressed = CompressedGraph::from_csr(&csr, &config);
        let path = tmp("weighted.tpg");
        write_tpg_from_graph(&csr, &path, &config).unwrap();
        let paged = PagedGraph::open_with_options(&path, &tiny_options()).unwrap();
        assert!(paged.is_edge_weighted() && paged.is_node_weighted());
        assert_matches_graph(&paged, &compressed);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn high_degree_chunked_neighbourhoods_span_pages() {
        let csr = gen::star(3000);
        let config = CompressionConfig {
            high_degree_threshold: 100,
            chunk_len: 64,
            ..CompressionConfig::default()
        };
        let compressed = CompressedGraph::from_csr(&csr, &config);
        let path = tmp("chunked.tpg");
        write_tpg_from_graph(&csr, &path, &config).unwrap();
        // Page size far below the hub neighbourhood size: the decode buffer must be
        // assembled from many pages.
        let paged = PagedGraph::open_with_options(
            &path,
            &PagedGraphOptions {
                page_size: 128,
                budget_bytes: 1024,
                shards: 2,
                ..PagedGraphOptions::default()
            },
        )
        .unwrap();
        assert_matches_graph(&paged, &compressed);
        assert_eq!(paged.degree(0), 2999);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn memory_accounting_is_charged_and_released() {
        let csr = gen::grid2d(40, 40);
        let path = tmp("accounting.tpg");
        // Plain offsets so the expected semi-external charge is exactly 8 bytes per
        // vertex (the EF index is smaller and its size is data-dependent).
        write_tpg_from_graph_plain(&csr, &path, &CompressionConfig::default()).unwrap();
        let before = memtrack::global().current();
        {
            let paged = PagedGraph::open_with_options(&path, &tiny_options()).unwrap();
            let semi_external = (csr.n() + 1) * 8;
            assert!(memtrack::global().current() >= before + semi_external);
            // Touch everything so frames get committed and charged.
            for u in 0..csr.n() as NodeId {
                paged.for_each_neighbor(u, &mut |_, _| {});
            }
            assert!(paged.accounted_bytes() >= semi_external + 64);
            assert!(memtrack::global().current() >= before + paged.accounted_bytes());
        }
        assert!(
            memtrack::global().current() <= before,
            "paged graph charge not fully released"
        );
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn first_edge_ids_match_compressed() {
        let csr = gen::grid2d(9, 9);
        let config = CompressionConfig::default();
        let compressed = CompressedGraph::from_csr(&csr, &config);
        let path = tmp("first_edge.tpg");
        write_tpg_from_graph(&csr, &path, &config).unwrap();
        let paged = PagedGraph::open_with_options(&path, &tiny_options()).unwrap();
        for u in 0..csr.n() as NodeId {
            assert_eq!(paged.first_edge(u), compressed.first_edge(u));
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn out_of_bounds_pages_are_clean_errors_not_underflow() {
        // A page index past the data section used to compute `data_len - offset`,
        // underflowing (wrapping in release) before the read could fail. It must be a
        // structured `UnexpectedEof`-style error instead.
        let csr = gen::grid2d(10, 10);
        let path = tmp("oob_page.tpg");
        write_tpg_from_graph(&csr, &path, &CompressionConfig::default()).unwrap();
        let paged = PagedGraph::open_with_options(&path, &tiny_options()).unwrap();
        let beyond = paged.cache.data_len / paged.cache.page_size as u64 + 3;
        let err = paged.cache.with_page(beyond, |_| ()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        assert!(
            err.to_string().contains("data section"),
            "unexpected error: {}",
            err
        );
        // Same for a page so large that `page * page_size` itself would overflow.
        let err = paged.cache.with_page(u64::MAX / 2, |_| ()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        // And for a byte range beyond the section (a corrupted offset index).
        let mut buf = Vec::new();
        let err = paged
            .cache
            .read_range(0, paged.cache.data_len + 17, &mut buf)
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        // The cache stays fully usable after the rejected accesses.
        assert_eq!(paged.neighbors_vec(0).len(), paged.degree(0));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn corrupted_offset_index_surfaces_unexpected_eof() {
        // Regression (satellite bugfix): an offset entry pointing past the data
        // section must produce a proper error through the public prefetch path, not a
        // wrapped subtraction and a bogus read.
        let csr = gen::grid2d(12, 12);
        let path = tmp("corrupt_offsets.tpg");
        // Plain offsets: the patch below rewrites fixed-width u64 entries in place.
        write_tpg_from_graph_plain(&csr, &path, &CompressionConfig::default()).unwrap();
        let meta = crate::store::read_tpg_meta(&path).unwrap();
        // Patch vertex 2's offset range to sit entirely past the data section. The
        // reader only validates the final offset, so the corruption goes unnoticed
        // until the range is touched.
        let mut bytes = std::fs::read(&path).unwrap();
        for (index, value) in [
            (2u64, meta.data_len + (1 << 30)),
            (3, meta.data_len + (1 << 30) + 8),
        ] {
            let entry = (meta.offsets_start() + 8 * index) as usize;
            bytes[entry..entry + 8].copy_from_slice(&value.to_le_bytes());
        }
        // Re-stamp the offsets checksum so the (simulated) corruption models a bad
        // writer rather than bit rot — open must succeed and the error surface on use.
        let offsets_start = meta.offsets_start() as usize;
        let offsets_len = 8 * (meta.n + 1);
        let offsets_crc =
            crate::checksum::crc32(&bytes[offsets_start..offsets_start + offsets_len]);
        let crc_pos = (meta.footer_start() + 4 + 4 * meta.checksum_block_count()) as usize;
        bytes[crc_pos..crc_pos + 4].copy_from_slice(&offsets_crc.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let paged = PagedGraph::open_with_options(&path, &tiny_options()).unwrap();
        let err = paged.prefetch_sync(&[2]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        assert!(
            err.to_string().contains("data section"),
            "unexpected error: {}",
            err
        );
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn prefetch_sync_raises_the_cold_sweep_hit_rate() {
        // The satellite acceptance assertion: warming each window of a shuffled cold
        // sweep through the prefetch API must turn that window's foreground faults
        // into hits — strictly fewer misses, strictly higher hit rate — while decoding
        // identical neighbourhoods.
        let csr = gen::rgg2d(20_000, 12, 21);
        let config = CompressionConfig::default();
        let path = tmp("prefetch_hit_rate.tpg");
        let summary = write_tpg_from_graph(&csr, &path, &config).unwrap();
        let options = PagedGraphOptions {
            page_size: 4096,
            budget_bytes: 64 * 1024,
            shards: 2,
            ..PagedGraphOptions::default()
        };
        assert!(
            summary.data_bytes as usize > 2 * options.budget_bytes,
            "instance too small to stress the cache: {} data bytes",
            summary.data_bytes
        );
        // A shuffled visit order (stride permutation) defeats sequential locality,
        // like the shuffled LP round orders do.
        let n = csr.n();
        let order: Vec<NodeId> = (0..n).map(|i| ((i * 811) % n) as NodeId).collect();

        let baseline = PagedGraph::open_with_options(&path, &options).unwrap();
        let baseline_nbrs: Vec<_> = order.iter().map(|&u| baseline.neighbors_vec(u)).collect();
        let cold = baseline.cache_stats();
        assert!(cold.evictions > 0, "budget too large to stress the cache");

        let prefetched = PagedGraph::open_with_options(&path, &options).unwrap();
        // Window of nodes small enough that its page set fits the per-hint cap.
        let window = 8;
        let mut warmed_nbrs = Vec::with_capacity(n);
        for chunk in order.chunks(window) {
            prefetched.prefetch_sync(chunk).unwrap();
            for &u in chunk {
                warmed_nbrs.push(prefetched.neighbors_vec(u));
            }
        }
        let warmed = prefetched.cache_stats();
        assert_eq!(
            baseline_nbrs, warmed_nbrs,
            "prefetch changed decode results"
        );
        assert!(warmed.prefetched_pages > 0, "no pages were prefetched");
        assert!(
            warmed.misses < cold.misses,
            "prefetch did not reduce foreground misses: {:?} vs {:?}",
            warmed,
            cold
        );
        assert!(
            warmed.hit_rate() > cold.hit_rate(),
            "prefetch did not raise the hit rate: {:.3} vs {:.3}",
            warmed.hit_rate(),
            cold.hit_rate()
        );
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn async_prefetch_hints_are_advisory_and_results_identical() {
        let csr = gen::weblike(13, 12, 5);
        let config = CompressionConfig::default();
        let compressed = CompressedGraph::from_csr(&csr, &config);
        let path = tmp("async_prefetch.tpg");
        let summary = write_tpg_from_graph(&csr, &path, &config).unwrap();
        // Small pages so the hint far exceeds the synchronous head-start window: the
        // tail of the page list must flow through the background worker.
        let options = PagedGraphOptions {
            prefetch: true,
            page_size: 1024,
            budget_bytes: 256 * 1024,
            ..PagedGraphOptions::default()
        };
        let paged = PagedGraph::open_with_options(&path, &options).unwrap();
        let head_start = paged
            .cache
            .prefetch_window()
            .min((paged.cache.max_prefetch_pages() / 2).max(1));
        let data_pages = summary.data_bytes.div_ceil(options.page_size as u64);
        assert!(
            data_pages > 2 * head_start as u64,
            "instance too small to reach the worker path: {} pages, head {}",
            data_pages,
            head_start
        );
        let order: Vec<NodeId> = (0..csr.n() as NodeId).collect();
        // Hint through the Graph trait (what the LP round driver calls), then drain:
        // the drain request lifts the consumption gate, so the worker must finish the
        // whole hint without any foreground consumption.
        Graph::prefetch(&paged, &order);
        paged.wait_prefetch_idle();
        let stats = paged.cache_stats();
        assert!(
            stats.prefetched_pages > head_start as u64,
            "the background worker installed nothing beyond the synchronous \
             head-start: {:?}",
            stats
        );
        for u in 0..csr.n() as NodeId {
            assert_eq!(paged.neighbors_vec(u), compressed.neighbors_vec(u));
        }
        // Hints on a graph without the worker are cheap no-ops.
        let plain = PagedGraph::open_with_options(&path, &tiny_options()).unwrap();
        Graph::prefetch(&plain, &order);
        plain.wait_prefetch_idle();
        assert_eq!(plain.cache_stats().prefetched_pages, 0);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn prefetch_worker_is_throttled_by_consumption() {
        // The consumption-coupled throttle: after the synchronous head start, the
        // background worker must not run ahead of the foreground — each readahead
        // window is gated on the previous one being at least half consumed (judged
        // by the CLOCK reference bits). A stalled consumer therefore pins the worker
        // at the head; consuming the head releases the next window; a drain request
        // lifts the gate entirely.
        let csr = gen::weblike(13, 12, 5);
        let config = CompressionConfig::default();
        let compressed = CompressedGraph::from_csr(&csr, &config);
        let path = tmp("throttle.tpg");
        write_tpg_from_graph(&csr, &path, &config).unwrap();
        let options = PagedGraphOptions {
            prefetch: true,
            page_size: 512,
            budget_bytes: 128 * 1024,
            ..PagedGraphOptions::default()
        };
        let paged = PagedGraph::open_with_options(&path, &options).unwrap();
        let window = paged.cache.prefetch_window();
        let head = window.min((paged.cache.max_prefetch_pages() / 2).max(1));
        let order: Vec<NodeId> = (0..csr.n() as NodeId).collect();
        let pages = paged.pages_covering(&order);
        // The geometry the assertions below rely on: the hint spans well over two
        // windows beyond the head, and every hinted page fits in the frame budget
        // at once (no evictions, so the reference bits are trustworthy).
        assert!(
            pages.len() >= head + 2 * window && pages.len() <= paged.cache.total_frames / 2,
            "bad test geometry: {} pages, head {}, window {}",
            pages.len(),
            head,
            window
        );

        Graph::prefetch(&paged, &order);
        // Nothing consumed yet: the head start is installed synchronously with its
        // reference bits clear, so the worker's gate on it cannot open. Give the
        // worker ample real time to overrun if it were going to.
        std::thread::sleep(Duration::from_millis(100));
        let stalled = paged.cache_stats().prefetched_pages;
        assert_eq!(stalled, head as u64, "worker ran ahead of an idle consumer");

        // Consume the visit order from the front. Decoding sets the reference bits,
        // which opens the gate one window at a time; the worker must make progress.
        let mut consumed = Vec::new();
        let mut advanced = false;
        'consume: for chunk in order.chunks(64) {
            for &u in chunk {
                consumed.push((u, paged.neighbors_vec(u)));
            }
            for _ in 0..200 {
                if paged.cache_stats().prefetched_pages > stalled {
                    advanced = true;
                    break 'consume;
                }
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        assert!(advanced, "consumption did not release the throttle");
        // One window released, not the whole tail: the worker stays coupled to the
        // consumer. (The consumption loop may have referenced a little past the
        // head before we observed the release, hence the one-extra-window slack.)
        std::thread::sleep(Duration::from_millis(50));
        let after = paged.cache_stats().prefetched_pages;
        assert!(
            after <= (head + 2 * window) as u64,
            "worker overran the consumption gate: {} installed, head {}, window {}",
            after,
            head,
            window
        );

        // Draining lifts the gate: the rest of the hint must complete without any
        // further consumption, and decode results are unchanged throughout.
        paged.wait_prefetch_idle();
        let final_stats = paged.cache_stats();
        assert!(final_stats.prefetched_pages >= after);
        assert!(final_stats.prefetched_pages <= pages.len() as u64);
        for (u, nbrs) in consumed {
            assert_eq!(nbrs, compressed.neighbors_vec(u), "neighbourhood of {}", u);
        }
        std::fs::remove_file(path).ok();
    }

    /// Body of the backend equivalence property below, out of the macro so the shim's
    /// token-muncher stays shallow.
    fn check_three_way_equivalence(
        n: usize,
        edges: Vec<(u32, u32, u64)>,
        intervals: bool,
        page_size: usize,
    ) {
        let mut b = CsrGraphBuilder::new(n);
        for (u, v, w) in edges {
            let (u, v) = (NodeId::from(u % n as u32), NodeId::from(v % n as u32));
            if u != v {
                b.add_edge(u, v, w);
            }
        }
        let csr = b.build();
        let config = CompressionConfig {
            enable_intervals: intervals,
            high_degree_threshold: 8,
            chunk_len: 4,
            ..CompressionConfig::default()
        };
        let compressed = CompressedGraph::from_csr(&csr, &config);
        let path = tmp(&format!("prop_{}_{}", n, page_size));
        write_tpg_from_graph_plain(&csr, &path, &config).unwrap();
        let paged = PagedGraph::open_with_options(
            &path,
            &PagedGraphOptions {
                page_size,
                budget_bytes: page_size * 3,
                shards: 2,
                ..PagedGraphOptions::default()
            },
        )
        .unwrap();
        assert_eq!(paged.n(), csr.n());
        assert_eq!(paged.m(), csr.m());
        // The mmap backend must agree too — on the same plain container, and on an
        // Elias-Fano-offset v4 container (which the paged backend must also read).
        let mmap = crate::store::mmap::MmapGraph::open(&path).unwrap();
        let ef_path = tmp(&format!("prop_ef_{}_{}", n, page_size));
        crate::store::container::write_tpg_from_graph_ef(&csr, &ef_path, &config).unwrap();
        let paged_ef = PagedGraph::open_with_options(
            &ef_path,
            &PagedGraphOptions {
                page_size,
                budget_bytes: page_size * 3,
                shards: 2,
                ..PagedGraphOptions::default()
            },
        )
        .unwrap();
        let mmap_ef = crate::store::mmap::MmapGraph::open(&ef_path).unwrap();
        assert_eq!(mmap.n(), csr.n());
        assert_eq!(mmap_ef.m(), csr.m());
        for u in 0..n as NodeId {
            assert_eq!(paged.degree(u), csr.degree(u));
            let reference = compressed.neighbors_vec(u);
            assert_eq!(paged.neighbors_vec(u), reference);
            assert_eq!(
                mmap.neighbors_vec(u),
                reference,
                "mmap neighbourhood of {}",
                u
            );
            assert_eq!(
                paged_ef.neighbors_vec(u),
                reference,
                "paged-EF neighbourhood of {}",
                u
            );
            assert_eq!(
                mmap_ef.neighbors_vec(u),
                reference,
                "mmap-EF neighbourhood of {}",
                u
            );
            assert_eq!(mmap_ef.degree(u), compressed.degree(u));
            let mut sorted = paged.neighbors_vec(u);
            sorted.sort_unstable();
            assert_eq!(sorted, csr.neighbors_vec(u));
        }
        std::fs::remove_file(path).ok();
        std::fs::remove_file(ef_path).ok();
    }

    // The satellite acceptance property: paged and mmap neighbour iteration (plain
    // and Elias-Fano containers) ≡ in-memory compressed ≡ CSR, on random graphs,
    // under a pathologically small page cache.
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn prop_paged_equals_compressed_equals_csr(
            n in 2usize..50,
            edges in proptest::collection::vec((0u32..50, 0u32..50, 1u64..9), 0..160),
            intervals in proptest::bool::ANY,
            page_size in 64usize..192,
        ) {
            check_three_way_equivalence(n, edges, intervals, page_size);
        }
    }
}
