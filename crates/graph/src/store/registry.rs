//! [`StoreRegistry`]: deduplicating open-store registry.
//!
//! An engine serving concurrent partition requests must not open (and memtrack-charge)
//! the same container once per request. The registry keys open stores by
//! `(canonical path, options)` and hands out `Arc<StoreHandle>` clones: a repeated
//! open of the same container with the same options returns the *same* handle — one
//! file descriptor, one page cache or mapping, one memory charge. Entries are held
//! weakly, so a store closes (and releases its charge) as soon as the last session's
//! `Arc` drops; the registry never pins anything.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Weak};

use parking_lot::Mutex;

use crate::io::IoError;
use crate::store::handle::StoreHandle;
use crate::store::paged::PagedGraphOptions;

/// Key of one open store: canonicalised path plus the full option set. Two opens with
/// different options (page budget, backend, retry policy, ...) are different stores —
/// they would behave differently, so they must not alias.
type StoreKey = (PathBuf, PagedGraphOptions);

/// Deduplicating registry of open stores (see the module docs).
#[derive(Debug, Default)]
pub struct StoreRegistry {
    stores: Mutex<HashMap<StoreKey, Weak<StoreHandle>>>,
}

impl StoreRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Opens the container at `path` with `options`, or returns the already-open
    /// handle if a live store with the same key exists. The registry lock is held
    /// across the open, so two racing first opens of the same container resolve to
    /// one store rather than charging the memory accounting twice.
    pub fn open(
        &self,
        path: impl AsRef<Path>,
        options: &PagedGraphOptions,
    ) -> Result<Arc<StoreHandle>, IoError> {
        // Canonicalise so `./g.tpg` and an absolute spelling of the same file share
        // an entry; a path that cannot be canonicalised (yet to be created, exotic
        // backend) keys by its raw spelling.
        let path = path.as_ref();
        let canonical = std::fs::canonicalize(path).unwrap_or_else(|_| path.to_path_buf());
        let key = (canonical, options.clone());
        let mut stores = self.stores.lock();
        if let Some(handle) = stores.get(&key).and_then(Weak::upgrade) {
            return Ok(handle);
        }
        let handle = Arc::new(StoreHandle::open(&key.0, options)?);
        stores.retain(|_, weak| weak.strong_count() > 0);
        stores.insert(key, Arc::downgrade(&handle));
        Ok(handle)
    }

    /// Registers an already-built handle (an in-memory graph, a store opened through
    /// a custom backend) under `path`, returning the shared `Arc`. If a live store
    /// with the same key exists it wins and `handle` is dropped.
    pub fn insert(
        &self,
        path: impl AsRef<Path>,
        options: &PagedGraphOptions,
        handle: StoreHandle,
    ) -> Arc<StoreHandle> {
        let path = path.as_ref();
        let canonical = std::fs::canonicalize(path).unwrap_or_else(|_| path.to_path_buf());
        let key = (canonical, options.clone());
        let mut stores = self.stores.lock();
        if let Some(existing) = stores.get(&key).and_then(Weak::upgrade) {
            return existing;
        }
        let handle = Arc::new(handle);
        stores.retain(|_, weak| weak.strong_count() > 0);
        stores.insert(key, Arc::downgrade(&handle));
        handle
    }

    /// Number of stores currently open (live entries; dead weak entries are not
    /// counted and are pruned on the next open).
    pub fn open_count(&self) -> usize {
        self.stores
            .lock()
            .values()
            .filter(|weak| weak.strong_count() > 0)
            .count()
    }

    /// Drops dead entries (stores whose last `Arc` is gone).
    pub fn prune(&self) {
        self.stores.lock().retain(|_, weak| weak.strong_count() > 0);
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use crate::compressed::CompressionConfig;
    use crate::gen;
    use crate::store::container::write_tpg_from_graph;
    use crate::store::paged::OnDiskBackend;
    use crate::traits::Graph;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "terapart_registry_test_{}_{}",
            std::process::id(),
            name
        ));
        p
    }

    #[test]
    fn repeated_opens_return_the_same_store() {
        let csr = gen::grid2d(10, 10);
        let path = tmp("dedup.tpg");
        write_tpg_from_graph(&csr, &path, &CompressionConfig::default()).unwrap();
        let registry = StoreRegistry::new();
        let options = PagedGraphOptions::default();
        let a = registry.open(&path, &options).unwrap();
        let b = registry.open(&path, &options).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "same key must alias the same store");
        assert_eq!(registry.open_count(), 1);
        assert_eq!(a.n(), csr.n());

        // Different options are a different store...
        let mmap = registry
            .open(
                &path,
                &PagedGraphOptions {
                    backend: OnDiskBackend::Mmap,
                    ..PagedGraphOptions::default()
                },
            )
            .unwrap();
        assert!(!Arc::ptr_eq(&a, &mmap));
        assert_eq!(registry.open_count(), 2);

        // ...and dropping every Arc closes the store (weak entry, pruned lazily).
        drop((a, b, mmap));
        assert_eq!(registry.open_count(), 0);
        registry.prune();
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn dedup_charges_memtrack_once_and_reopens_after_close() {
        let csr = gen::grid2d(24, 24);
        let path = tmp("charge_once.tpg");
        write_tpg_from_graph(&csr, &path, &CompressionConfig::default()).unwrap();
        let registry = StoreRegistry::new();
        let options = PagedGraphOptions::default();
        let before = memtrack::global().current();
        let a = registry.open(&path, &options).unwrap();
        let after_one = memtrack::global().current();
        let b = registry.open(&path, &options).unwrap();
        assert_eq!(
            memtrack::global().current(),
            after_one,
            "the deduplicated open must not charge a second time"
        );
        drop((a, b));
        assert!(
            memtrack::global().current() <= before,
            "closing the last handle must release the store's charge"
        );
        // A fresh open after the close works and is a new store.
        let c = registry.open(&path, &options).unwrap();
        assert_eq!(registry.open_count(), 1);
        drop(c);
        std::fs::remove_file(path).ok();
    }
}
