//! Bounded-memory streaming construction of `.tpg` containers from edge streams.
//!
//! [`StreamingTpgBuilder`] accepts an arbitrary stream of undirected edges and produces
//! a `.tpg` container without ever materialising the full adjacency in memory. It is an
//! external counting/bucket sort: every edge is written as two directed half-edge
//! records into spill files bucketed by source-vertex range; [`finish`] then processes
//! the buckets — aggregate, sort, merge duplicates (summing weights, exactly like
//! [`CsrGraphBuilder`](crate::csr::CsrGraphBuilder)) — and feeds the neighbourhoods to
//! the streaming [`TpgWriter`] in vertex order.
//!
//! # The finish pipeline
//!
//! Buckets are independent until their encoded bytes must land in the container, so
//! [`finish`] runs them as a pipeline on worker threads: while bucket *b*'s encoded
//! section commits to the writer, buckets *b+1…* are already being read, sorted and
//! merged. Three ordered hand-offs keep the output deterministic (the packet scheme of
//! [`compress_csr_parallel`](crate::builder::compress_csr_parallel)):
//!
//! 1. *claim* — workers claim bucket indices from an atomic counter;
//! 2. *base grant* — the first-edge ID of a bucket's first vertex is the running
//!    half-edge total of all preceding buckets, known only after they aggregated, so
//!    workers receive their base in bucket order (aggregation itself is unordered);
//! 3. *commit* — encoded sections commit to the [`TpgWriter`] in bucket order through
//!    its out-of-order commit path ([`TpgWriter::push_section`]).
//!
//! The output container is **byte-identical** to the sequential reference path
//! ([`finish_sequential`]) for any thread count and bucket count. Peak memory grows
//! from one aggregated bucket to at most `threads` aggregated buckets in flight.
//!
//! Whether the graph carries edge weights is a *global* property (duplicate unit-weight
//! samples merge into weights > 1, matching the in-memory builder), so `finish` runs two
//! passes over the spill files: a cheap parallel scan that detects merged weights, then
//! the encoding pipeline. Both passes stream; nothing exceeds the per-bucket budget
//! times the worker count.
//!
//! [`stream_rmat_to_tpg`] and [`stream_rgg2d_to_tpg`] connect the repository's R-MAT and
//! random-geometric edge samplers to the builder; both produce graphs **bit-identical**
//! to their in-memory counterparts ([`gen::weblike`](crate::gen::weblike) /
//! [`gen::rgg2d`](crate::gen::rgg2d)) for a fixed seed, which the instance cache relies
//! on for reproducible Set A/B experiments. A spill I/O error short-circuits the edge
//! sampler immediately instead of driving it to completion.
//!
//! [`finish`]: StreamingTpgBuilder::finish
//! [`finish_sequential`]: StreamingTpgBuilder::finish_sequential

use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

use parking_lot::Mutex;

use crate::compressed::CompressionConfig;
use crate::gen::{try_for_each_rgg2d_edge, try_for_each_rgg3d_edge, try_for_each_rmat_edge};
use crate::ids;
use crate::io::IoError;
use crate::store::container::{SectionEncoder, TpgSummary, TpgWriter};
use crate::{EdgeId, EdgeWeight, NodeId};

/// Bytes of one spilled half-edge record's id fields (source, target), at the active
/// id width.
const ID_BYTES: usize = std::mem::size_of::<NodeId>();

/// Size of one *weighted* spilled half-edge record: source id, target id, weight u64.
const RECORD_BYTES: usize = 2 * ID_BYTES + std::mem::size_of::<EdgeWeight>();

/// Size of one *unit-weight* spilled half-edge record: source id, target id; the
/// weight is implicitly 1. Unit edges dominate the generator families, and eliding
/// their weight field cuts spill I/O by a third at 64-bit ids (half at 32-bit).
const UNIT_RECORD_BYTES: usize = 2 * ID_BYTES;

/// Decodes the little-endian node id at the start of `bytes` (which the record layout
/// guarantees holds at least `ID_BYTES`).
fn le_node_id(bytes: &[u8]) -> NodeId {
    let mut raw = [0u8; ID_BYTES];
    raw.copy_from_slice(&bytes[..ID_BYTES]);
    NodeId::from_le_bytes(raw)
}

/// Decodes the little-endian edge weight at the start of `bytes`.
fn le_weight(bytes: &[u8]) -> EdgeWeight {
    const W: usize = std::mem::size_of::<EdgeWeight>();
    let mut raw = [0u8; W];
    raw.copy_from_slice(&bytes[..W]);
    EdgeWeight::from_le_bytes(raw)
}

/// Splits one spill record into `(src, dst, weight)`.
fn decode_record(record: &[u8; RECORD_BYTES]) -> (NodeId, NodeId, EdgeWeight) {
    (
        le_node_id(&record[0..ID_BYTES]),
        le_node_id(&record[ID_BYTES..2 * ID_BYTES]),
        le_weight(&record[2 * ID_BYTES..]),
    )
}

/// Hard cap on the number of spill buckets (and therefore concurrently open spill file
/// writers). Each bucket holds one unit-record `BufWriter<File>` for the builder's
/// whole lifetime plus, on weighted streams, one lazily created weighted-record writer
/// — so an unbounded `num_buckets` would exhaust the process's file-descriptor budget
/// and die mid-spill; requests beyond the cap are clamped instead. 256 buckets (at
/// most 512 open spill writers on a fully mixed-weight stream) bound the per-bucket
/// aggregation of even tera-scale streams while staying below common `ulimit -n`
/// defaults (1024).
pub const MAX_SPILL_BUCKETS: usize = 256;

/// Spill-file volume statistics of a [`StreamingTpgBuilder`] (see
/// [`spill_stats`](StreamingTpgBuilder::spill_stats)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpillStats {
    /// Half-edge records written to unit-weight spill files (weight elided).
    pub unit_records: u64,
    /// Half-edge records written to weighted spill files (explicit weight field).
    pub weighted_records: u64,
    /// Bytes actually written across all spill files.
    pub bytes: u64,
    /// Bytes the pre-unit-format layout (every record carrying a u64 weight) would
    /// have written — the baseline for the spill-I/O saving.
    pub full_width_bytes: u64,
}

impl SpillStats {
    /// Total half-edge records spilled.
    pub fn records(&self) -> u64 {
        self.unit_records + self.weighted_records
    }

    /// Fraction of the full-width spill volume saved by the unit-record format.
    pub fn savings(&self) -> f64 {
        if self.full_width_bytes == 0 {
            0.0
        } else {
            1.0 - self.bytes as f64 / self.full_width_bytes as f64
        }
    }
}

/// Per-vertex visitor over a bucket's aggregated neighbourhoods; returning `Ok(false)`
/// stops the bucket scan early.
type VertexVisitor<'a> = dyn FnMut(NodeId, &[(NodeId, EdgeWeight)]) -> Result<bool, IoError> + 'a;

/// External-memory `.tpg` builder fed by an edge stream (see the module docs).
///
/// # Spill-record format
///
/// Each bucket spills into up to two files: a `.edges` file of unit-weight records
/// (source id, target id — the weight is implicitly 1) created eagerly, and a
/// `.wedges` file of full records (source, target, u64 weight) created lazily the
/// first time a non-unit weight lands in the bucket. Unit-weight streams — every
/// generator family — therefore never pay for a weight field, cutting their spill I/O
/// by a third at 64-bit ids (half at 32-bit). Aggregation reads both files; since
/// duplicate `(source, target)` pairs are merged by *summing* after a sort by target,
/// the split is invisible to the output: containers stay byte-identical to the
/// single-file format and to the in-memory builder.
pub struct StreamingTpgBuilder {
    n: usize,
    vertices_per_bucket: usize,
    spill_dir: PathBuf,
    bucket_paths: Vec<PathBuf>,
    buckets: Vec<BufWriter<File>>,
    /// Lazily created writers for explicitly weighted records, one per bucket.
    weighted_paths: Vec<PathBuf>,
    weighted_buckets: Vec<Option<BufWriter<File>>>,
    edges_added: usize,
    /// Whether any explicitly non-unit edge weight entered the stream; lets `finish`
    /// skip the weight-detection pass for weighted inputs.
    saw_explicit_weight: bool,
    unit_records: u64,
    weighted_records: u64,
    /// Observability handle; spill volume counters are exported when the spill files
    /// are sealed. Disabled (free) by default.
    obs: obs::ObsHandle,
}

/// One bucket's aggregated adjacency in flat form: `entries[starts[i]..starts[i + 1]]`
/// is the sorted, duplicate-merged neighbourhood of vertex `lo + i`. Built from the
/// spill records with a counting sort by source plus per-vertex target sorts instead
/// of a `Vec<Vec<_>>` per vertex, which keeps the aggregation allocation-light and
/// cache-friendly.
struct BucketAdjacency {
    lo: usize,
    starts: Vec<usize>,
    entries: Vec<(NodeId, EdgeWeight)>,
}

impl BucketAdjacency {
    fn vertex_count(&self) -> usize {
        self.starts.len() - 1
    }

    fn half_edges(&self) -> usize {
        self.entries.len()
    }

    fn neighbors(&self, i: usize) -> &[(NodeId, EdgeWeight)] {
        &self.entries[self.starts[i]..self.starts[i + 1]]
    }
}

impl StreamingTpgBuilder {
    /// Creates a builder for a graph with `n` vertices, spilling half-edge records into
    /// `num_buckets` temporary files under `spill_dir` (created if missing; the files
    /// are removed by [`finish`](Self::finish)). `num_buckets` is clamped to
    /// `[1, min(n, MAX_SPILL_BUCKETS)]` — see [`MAX_SPILL_BUCKETS`] for why the upper
    /// bound exists.
    pub fn new(n: usize, num_buckets: usize, spill_dir: impl AsRef<Path>) -> Result<Self, IoError> {
        static SPILL_COUNTER: AtomicU64 = AtomicU64::new(0);
        let num_buckets = num_buckets.clamp(1, n.max(1)).min(MAX_SPILL_BUCKETS);
        let spill_dir = spill_dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&spill_dir)?;
        let unique = format!(
            "spill_{}_{}",
            std::process::id(),
            SPILL_COUNTER.fetch_add(1, Ordering::Relaxed)
        );
        let mut bucket_paths = Vec::with_capacity(num_buckets);
        let mut buckets = Vec::with_capacity(num_buckets);
        let mut weighted_paths = Vec::with_capacity(num_buckets);
        for b in 0..num_buckets {
            let path = spill_dir.join(format!("{}_{}.edges", unique, b));
            let file = match File::create(&path) {
                Ok(f) => f,
                Err(e) => {
                    // Clean up the spill files already created so a failed construction
                    // (e.g. an exhausted fd budget despite the cap) leaves no litter.
                    for p in &bucket_paths {
                        std::fs::remove_file(p).ok();
                    }
                    return Err(IoError::Format(format!(
                        "failed to create spill bucket {} of {} under {}: {}",
                        b,
                        num_buckets,
                        spill_dir.display(),
                        e
                    )));
                }
            };
            buckets.push(BufWriter::new(file));
            bucket_paths.push(path);
            weighted_paths.push(spill_dir.join(format!("{}_{}.wedges", unique, b)));
        }
        let weighted_buckets = (0..num_buckets).map(|_| None).collect();
        Ok(Self {
            n,
            vertices_per_bucket: n.div_ceil(num_buckets).max(1),
            spill_dir,
            bucket_paths,
            buckets,
            weighted_paths,
            weighted_buckets,
            edges_added: 0,
            saw_explicit_weight: false,
            unit_records: 0,
            weighted_records: 0,
            obs: obs::ObsHandle::noop(),
        })
    }

    /// Installs an observability handle; spill volume ([`obs::Counter::SpillBytes`],
    /// [`obs::Counter::SpillRecords`]) is exported into it when the spill files are
    /// sealed at finish time.
    pub fn set_obs(&mut self, handle: obs::ObsHandle) {
        self.obs = handle;
    }

    /// Spill-file volume written so far (and what the pre-unit-record format would
    /// have cost), for the bench harness's before/after comparison.
    pub fn spill_stats(&self) -> SpillStats {
        SpillStats {
            unit_records: self.unit_records,
            weighted_records: self.weighted_records,
            bytes: self.unit_records * UNIT_RECORD_BYTES as u64
                + self.weighted_records * RECORD_BYTES as u64,
            full_width_bytes: (self.unit_records + self.weighted_records) * RECORD_BYTES as u64,
        }
    }

    /// Directory holding the spill files.
    pub fn spill_dir(&self) -> &Path {
        &self.spill_dir
    }

    /// Number of spill buckets actually in use (after clamping).
    pub fn num_buckets(&self) -> usize {
        self.bucket_paths.len()
    }

    /// Number of undirected edge records accepted so far (before deduplication).
    pub fn edges_added(&self) -> usize {
        self.edges_added
    }

    /// Adds an undirected edge `{u, v}`. Self-loops are dropped, duplicates merge by
    /// summing weights at [`finish`](Self::finish) time. An endpoint at or beyond the
    /// builder's vertex count is a recoverable [`IoError`] naming the endpoint, not a
    /// panic — edge streams come from external inputs.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId, weight: EdgeWeight) -> Result<(), IoError> {
        for (name, id) in [("u", u), ("v", v)] {
            if id as usize >= self.n {
                return Err(IoError::Format(format!(
                    "edge endpoint {} = {} out of range for a stream of n = {} vertices",
                    name, id, self.n
                )));
            }
        }
        if u == v {
            return Ok(());
        }
        self.spill_half_edge(u, v, weight)?;
        self.spill_half_edge(v, u, weight)?;
        self.edges_added += 1;
        self.saw_explicit_weight |= weight != 1;
        Ok(())
    }

    fn spill_half_edge(
        &mut self,
        src: NodeId,
        dst: NodeId,
        weight: EdgeWeight,
    ) -> Result<(), IoError> {
        let bucket = src as usize / self.vertices_per_bucket;
        if weight == 1 {
            let mut record = [0u8; UNIT_RECORD_BYTES];
            record[0..ID_BYTES].copy_from_slice(&src.to_le_bytes());
            record[ID_BYTES..].copy_from_slice(&dst.to_le_bytes());
            self.buckets[bucket].write_all(&record)?;
            self.unit_records += 1;
        } else {
            let writer = match &mut self.weighted_buckets[bucket] {
                Some(w) => w,
                None => {
                    let file = File::create(&self.weighted_paths[bucket])?;
                    self.weighted_buckets[bucket].insert(BufWriter::new(file))
                }
            };
            let mut record = [0u8; RECORD_BYTES];
            record[0..ID_BYTES].copy_from_slice(&src.to_le_bytes());
            record[ID_BYTES..2 * ID_BYTES].copy_from_slice(&dst.to_le_bytes());
            record[2 * ID_BYTES..].copy_from_slice(&weight.to_le_bytes());
            writer.write_all(&record)?;
            self.weighted_records += 1;
        }
        Ok(())
    }

    /// Vertex range `[lo, hi)` covered by `bucket`.
    fn bucket_range(&self, bucket: usize) -> (usize, usize) {
        let lo = (bucket * self.vertices_per_bucket).min(self.n);
        let hi = ((bucket + 1) * self.vertices_per_bucket).min(self.n);
        (lo, hi)
    }

    /// Reads every spilled half-edge record of `bucket` — unit records first, then the
    /// weighted file if the bucket has one — into a flat vector. The relative order of
    /// the two files is immaterial: downstream aggregation sorts by target and merges
    /// duplicates by summing, which is order-independent.
    fn read_bucket_records(
        &self,
        bucket: usize,
    ) -> Result<Vec<(NodeId, NodeId, EdgeWeight)>, IoError> {
        let file = File::open(&self.bucket_paths[bucket])?;
        let expected = file.metadata()?.len() as usize / UNIT_RECORD_BYTES;
        let mut records = Vec::with_capacity(expected);
        let mut r = BufReader::new(file);
        let mut record = [0u8; UNIT_RECORD_BYTES];
        loop {
            match r.read_exact(&mut record) {
                Ok(()) => {}
                Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => break,
                Err(e) => return Err(e.into()),
            }
            records.push((
                le_node_id(&record[0..ID_BYTES]),
                le_node_id(&record[ID_BYTES..]),
                1,
            ));
        }
        let weighted_path = &self.weighted_paths[bucket];
        if weighted_path.exists() {
            let file = File::open(weighted_path)?;
            let expected = file.metadata()?.len() as usize / RECORD_BYTES;
            records.reserve(expected);
            let mut r = BufReader::new(file);
            let mut record = [0u8; RECORD_BYTES];
            loop {
                match r.read_exact(&mut record) {
                    Ok(()) => {}
                    Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => break,
                    Err(e) => return Err(e.into()),
                }
                records.push(decode_record(&record));
            }
        }
        Ok(records)
    }

    /// Aggregates `bucket` into its flat sorted, duplicate-merged adjacency: a
    /// counting sort by local source vertex (one scatter pass), then a per-vertex sort
    /// by target and a linear duplicate merge — `O(B + Σ d log d)` for a bucket of `B`
    /// records, with two flat arrays instead of a `Vec<Vec<_>>` per vertex. Duplicate
    /// semantics (weights sum) are identical to the reference path, so the encoded
    /// output is byte-identical.
    fn aggregate_bucket(&self, bucket: usize) -> Result<BucketAdjacency, IoError> {
        let (lo, hi) = self.bucket_range(bucket);
        let span = hi - lo;
        let records = self.read_bucket_records(bucket)?;
        // `bounds[i]` = first slot of local vertex `i` after the prefix sum.
        let mut bounds = vec![0usize; span + 1];
        for &(src, _, _) in &records {
            debug_assert!((lo..hi).contains(&(src as usize)));
            bounds[src as usize - lo + 1] += 1;
        }
        for i in 0..span {
            bounds[i + 1] += bounds[i];
        }
        let mut cursor = bounds[..span].to_vec();
        let mut slots: Vec<(NodeId, EdgeWeight)> = vec![(0, 0); records.len()];
        for &(src, dst, weight) in &records {
            let slot = &mut cursor[src as usize - lo];
            slots[*slot] = (dst, weight);
            *slot += 1;
        }
        drop(records);
        drop(cursor);
        let mut entries: Vec<(NodeId, EdgeWeight)> = Vec::with_capacity(slots.len());
        let mut starts = Vec::with_capacity(span + 1);
        starts.push(0usize);
        for i in 0..span {
            let range = &mut slots[bounds[i]..bounds[i + 1]];
            range.sort_unstable_by_key(|&(v, _)| v);
            let begin = entries.len();
            for &(v, weight) in range.iter() {
                let last = entries.len();
                if last > begin && entries[last - 1].0 == v {
                    entries[last - 1].1 += weight;
                } else {
                    entries.push((v, weight));
                }
            }
            starts.push(entries.len());
        }
        Ok(BucketAdjacency {
            lo,
            starts,
            entries,
        })
    }

    /// Whether `bucket` aggregates to any non-unit weight: an explicitly non-unit
    /// record, or duplicate unit-weight records merging past 1. Returns at the first
    /// finding — on duplicate-heavy streams the scan ends after a handful of vertices.
    fn bucket_has_merged_weights(&self, bucket: usize) -> Result<bool, IoError> {
        let (lo, hi) = self.bucket_range(bucket);
        let span = hi - lo;
        let records = self.read_bucket_records(bucket)?;
        if records.iter().any(|&(_, _, w)| w != 1) {
            return Ok(true);
        }
        // All weights are unit: a merged weight exists iff some (source, target) pair
        // repeats. Counting-sort the targets by source, then scan vertex by vertex so
        // the first duplicate ends the pass.
        let mut bounds = vec![0usize; span + 1];
        for &(src, _, _) in &records {
            bounds[src as usize - lo + 1] += 1;
        }
        for i in 0..span {
            bounds[i + 1] += bounds[i];
        }
        let mut cursor = bounds[..span].to_vec();
        let mut targets: Vec<NodeId> = vec![0; records.len()];
        for &(src, dst, _) in &records {
            let slot = &mut cursor[src as usize - lo];
            targets[*slot] = dst;
            *slot += 1;
        }
        drop(records);
        for i in 0..span {
            let range = &mut targets[bounds[i]..bounds[i + 1]];
            range.sort_unstable();
            if range.windows(2).any(|w| w[0] == w[1]) {
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Runs the weight-detection pass over all buckets on `threads` workers, stopping
    /// every worker as soon as one bucket reports a merged weight.
    fn detect_merged_weights(&self, threads: usize) -> Result<bool, IoError> {
        let num_buckets = self.bucket_paths.len();
        if threads <= 1 || num_buckets == 1 {
            for bucket in 0..num_buckets {
                if self.bucket_has_merged_weights(bucket)? {
                    return Ok(true);
                }
            }
            return Ok(false);
        }
        let found = AtomicBool::new(false);
        let next_bucket = AtomicUsize::new(0);
        let error: Mutex<Option<IoError>> = Mutex::new(None);
        std::thread::scope(|scope| {
            for _ in 0..threads.min(num_buckets) {
                scope.spawn(|| loop {
                    if found.load(Ordering::Relaxed) || error.lock().is_some() {
                        break;
                    }
                    let bucket = next_bucket.fetch_add(1, Ordering::Relaxed);
                    if bucket >= num_buckets {
                        break;
                    }
                    match self.bucket_has_merged_weights(bucket) {
                        Ok(true) => found.store(true, Ordering::Relaxed),
                        Ok(false) => {}
                        Err(e) => {
                            let mut guard = error.lock();
                            if guard.is_none() {
                                *guard = Some(e);
                            }
                        }
                    }
                });
            }
        });
        if let Some(e) = error.into_inner() {
            return Err(e);
        }
        Ok(found.load(Ordering::Relaxed))
    }

    /// Streams one bucket's aggregated, sorted, duplicate-merged neighbourhoods in
    /// vertex order to `f(u, neighbors)`. Returns `false` if the visitor stopped the
    /// scan early. (Reference path used by [`finish_sequential`](Self::finish_sequential).)
    fn for_each_bucket_vertex(
        &self,
        bucket: usize,
        f: &mut VertexVisitor<'_>,
    ) -> Result<bool, IoError> {
        let (lo, hi) = self.bucket_range(bucket);
        let mut adjacency: Vec<Vec<(NodeId, EdgeWeight)>> = vec![Vec::new(); hi - lo];
        for (src, dst, weight) in self.read_bucket_records(bucket)? {
            adjacency[src as usize - lo].push((dst, weight));
        }
        for (i, nbrs) in adjacency.iter_mut().enumerate() {
            nbrs.sort_unstable_by_key(|&(v, _)| v);
            crate::merge_sorted_duplicates(nbrs);
            if !f(ids::nid(lo + i), nbrs)? {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Flushes and closes the spill writers (the common prologue of both finish paths),
    /// exporting the final spill volume to the observability handle.
    fn seal_spill_files(&mut self) -> Result<(), IoError> {
        for w in &mut self.buckets {
            w.flush()?;
        }
        for w in self.weighted_buckets.iter_mut().flatten() {
            w.flush()?;
        }
        drop(std::mem::take(&mut self.buckets));
        drop(std::mem::take(&mut self.weighted_buckets));
        let stats = self.spill_stats();
        self.obs.add(obs::Counter::SpillBytes, stats.bytes);
        self.obs.add(obs::Counter::SpillRecords, stats.records());
        Ok(())
    }

    fn remove_spill_files(&self) {
        for p in self.bucket_paths.iter().chain(&self.weighted_paths) {
            std::fs::remove_file(p).ok();
        }
    }

    /// Aggregates the spill files and writes the final `.tpg` container to `path`,
    /// pipelining the buckets across one worker thread per available core (see the
    /// module docs). The spill files are removed afterwards. The container is
    /// byte-identical to [`finish_sequential`](Self::finish_sequential).
    pub fn finish(
        self,
        path: impl AsRef<Path>,
        config: &CompressionConfig,
    ) -> Result<TpgSummary, IoError> {
        let threads = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        self.finish_with_threads(path, config, threads)
    }

    /// [`finish`](Self::finish) with an explicit worker-thread count. The output does
    /// not depend on `num_threads`; peak memory is `O(num_threads · bucket size)`.
    pub fn finish_with_threads(
        mut self,
        path: impl AsRef<Path>,
        config: &CompressionConfig,
        num_threads: usize,
    ) -> Result<TpgSummary, IoError> {
        self.seal_spill_files()?;
        let num_buckets = self.bucket_paths.len();
        let threads = num_threads.clamp(1, num_buckets);
        // Pass 1: edge weights are a global property of the container (the encoding of
        // *every* neighbourhood depends on it), so the scan must complete before any
        // section is encoded. Skipped when an explicit non-unit weight already entered
        // the stream.
        let edge_weighted = self.saw_explicit_weight || self.detect_merged_weights(threads)?;
        // Pass 2: the aggregate → encode → commit pipeline.
        let writer = Mutex::new(TpgWriter::create(&path, self.n, edge_weighted, config)?);
        let next_bucket = AtomicUsize::new(0);
        // Bucket whose first-edge base grant is next, and the running half-edge total.
        let next_base = AtomicUsize::new(0);
        let base_edge = AtomicU64::new(0);
        // Bucket whose ordered commit is next.
        let next_commit = AtomicUsize::new(0);
        let failed = AtomicBool::new(false);
        let error: Mutex<Option<IoError>> = Mutex::new(None);
        let fail = |e: IoError| {
            let mut guard = error.lock();
            if guard.is_none() {
                *guard = Some(e);
            }
            drop(guard);
            failed.store(true, Ordering::Release);
        };
        /// Waits until `counter` reaches `turn`; bails out early when the pipeline
        /// failed elsewhere (so no worker spins on a turn that will never come).
        /// Yields first, then backs off to short sleeps so workers blocked behind a
        /// large predecessor bucket (skewed streams) do not burn their cores.
        fn wait_turn(counter: &AtomicUsize, turn: usize, failed: &AtomicBool) -> bool {
            let mut idle_polls = 0u32;
            while counter.load(Ordering::Acquire) != turn {
                if failed.load(Ordering::Acquire) {
                    return false;
                }
                idle_polls += 1;
                if idle_polls < 64 {
                    std::hint::spin_loop();
                    std::thread::yield_now();
                } else {
                    std::thread::sleep(std::time::Duration::from_micros(50));
                }
            }
            true
        }

        /// Marks the pipeline failed when its worker unwinds, so sibling workers
        /// waiting on the panicked bucket's turn bail out instead of spinning forever
        /// (the panic itself still propagates through `std::thread::scope`).
        struct PanicFailGuard<'a>(&'a AtomicBool);
        impl Drop for PanicFailGuard<'_> {
            fn drop(&mut self) {
                if std::thread::panicking() {
                    self.0.store(true, Ordering::Release);
                }
            }
        }
        let this = &self;
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    let _panic_guard = PanicFailGuard(&failed);
                    loop {
                        let bucket = next_bucket.fetch_add(1, Ordering::Relaxed);
                        if bucket >= num_buckets || failed.load(Ordering::Acquire) {
                            break;
                        }
                        // Unordered: read + sort + merge this bucket while other workers
                        // encode or commit theirs.
                        let aggregated = match this.aggregate_bucket(bucket) {
                            Ok(a) => a,
                            Err(e) => {
                                fail(e);
                                break;
                            }
                        };
                        // Ordered hand-off 1: learn the first-edge base and immediately
                        // grant the next bucket its own.
                        if !wait_turn(&next_base, bucket, &failed) {
                            break;
                        }
                        let base = base_edge.load(Ordering::Relaxed);
                        base_edge.store(base + aggregated.half_edges() as u64, Ordering::Relaxed);
                        next_base.store(bucket + 1, Ordering::Release);
                        // Unordered again: encode into a worker-local section.
                        let lo = aggregated.lo;
                        let mut encoder = SectionEncoder::new(
                            ids::nid(lo),
                            base as EdgeId,
                            edge_weighted,
                            config,
                        );
                        for i in 0..aggregated.vertex_count() {
                            encoder.push_neighborhood(ids::nid(lo + i), aggregated.neighbors(i), 1);
                        }
                        let section = encoder.finish();
                        drop(aggregated);
                        // Ordered hand-off 2: commit the section in bucket order.
                        if !wait_turn(&next_commit, bucket, &failed) {
                            break;
                        }
                        let committed = writer.lock().push_section(&section);
                        next_commit.store(bucket + 1, Ordering::Release);
                        if let Err(e) = committed {
                            fail(e);
                            break;
                        }
                    }
                });
            }
        });
        if let Some(e) = error.into_inner() {
            return Err(e);
        }
        let summary = writer.into_inner().finish()?;
        self.remove_spill_files();
        Ok(summary)
    }

    /// The sequential reference implementation of [`finish`](Self::finish): one bucket
    /// at a time, aggregated into per-vertex vectors and pushed neighbourhood by
    /// neighbourhood. Kept as the byte-identity baseline the pipelined path is tested
    /// (and benchmarked) against.
    pub fn finish_sequential(
        mut self,
        path: impl AsRef<Path>,
        config: &CompressionConfig,
    ) -> Result<TpgSummary, IoError> {
        self.seal_spill_files()?;
        let mut edge_weighted = self.saw_explicit_weight;
        for bucket in 0..self.bucket_paths.len() {
            if edge_weighted {
                break;
            }
            let completed = self.for_each_bucket_vertex(bucket, &mut |_, nbrs| {
                edge_weighted |= nbrs.iter().any(|&(_, w)| w != 1);
                Ok(!edge_weighted)
            })?;
            debug_assert!(completed || edge_weighted);
        }
        let mut writer = TpgWriter::create(&path, self.n, edge_weighted, config)?;
        for bucket in 0..self.bucket_paths.len() {
            self.for_each_bucket_vertex(bucket, &mut |u, nbrs| {
                writer.push_neighborhood(u, nbrs, 1).map(|()| true)
            })?;
        }
        let summary = writer.finish()?;
        self.remove_spill_files();
        Ok(summary)
    }
}

impl Drop for StreamingTpgBuilder {
    fn drop(&mut self) {
        // Best-effort cleanup when finish() was never reached.
        drop(std::mem::take(&mut self.buckets));
        drop(std::mem::take(&mut self.weighted_buckets));
        self.remove_spill_files();
    }
}

/// Streams an R-MAT graph (identical to [`gen::weblike`](crate::gen::weblike) for the
/// same parameters) into a `.tpg` container, spilling edge chunks under `spill_dir`.
/// The sampler is short-circuited as soon as a spill write fails.
pub fn stream_rmat_to_tpg(
    scale: u32,
    avg_deg: usize,
    seed: u64,
    path: impl AsRef<Path>,
    spill_dir: impl AsRef<Path>,
    num_buckets: usize,
    config: &CompressionConfig,
) -> Result<TpgSummary, IoError> {
    let n = 1usize << scale;
    let mut builder = StreamingTpgBuilder::new(n, num_buckets, spill_dir)?;
    let mut io_error = None;
    try_for_each_rmat_edge(
        scale,
        avg_deg,
        seed,
        &mut |u, v| match builder.add_edge(u, v, 1) {
            Ok(()) => true,
            Err(e) => {
                io_error = Some(e);
                false
            }
        },
    );
    if let Some(e) = io_error {
        return Err(e);
    }
    builder.finish(path, config)
}

/// Streams a random geometric graph (identical to [`gen::rgg2d`](crate::gen::rgg2d) for
/// the same parameters) into a `.tpg` container, spilling edge chunks under `spill_dir`.
/// The sampler is short-circuited as soon as a spill write fails.
pub fn stream_rgg2d_to_tpg(
    n: usize,
    avg_deg: usize,
    seed: u64,
    path: impl AsRef<Path>,
    spill_dir: impl AsRef<Path>,
    num_buckets: usize,
    config: &CompressionConfig,
) -> Result<TpgSummary, IoError> {
    let mut builder = StreamingTpgBuilder::new(n, num_buckets, spill_dir)?;
    let mut io_error = None;
    try_for_each_rgg2d_edge(
        n,
        avg_deg,
        seed,
        &mut |u, v| match builder.add_edge(u, v, 1) {
            Ok(()) => true,
            Err(e) => {
                io_error = Some(e);
                false
            }
        },
    );
    if let Some(e) = io_error {
        return Err(e);
    }
    builder.finish(path, config)
}

/// Streams a 3D random geometric graph (identical to [`gen::rgg3d`](crate::gen::rgg3d)
/// for the same parameters) into a `.tpg` container, spilling edge chunks under
/// `spill_dir`. The sampler is short-circuited as soon as a spill write fails.
pub fn stream_rgg3d_to_tpg(
    n: usize,
    avg_deg: usize,
    seed: u64,
    path: impl AsRef<Path>,
    spill_dir: impl AsRef<Path>,
    num_buckets: usize,
    config: &CompressionConfig,
) -> Result<TpgSummary, IoError> {
    let mut builder = StreamingTpgBuilder::new(n, num_buckets, spill_dir)?;
    let mut io_error = None;
    try_for_each_rgg3d_edge(
        n,
        avg_deg,
        seed,
        &mut |u, v| match builder.add_edge(u, v, 1) {
            Ok(()) => true,
            Err(e) => {
                io_error = Some(e);
                false
            }
        },
    );
    if let Some(e) = io_error {
        return Err(e);
    }
    builder.finish(path, config)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use crate::csr::CsrGraph;
    use crate::gen;
    use crate::store::container::{read_tpg, write_tpg_from_graph};
    use crate::traits::Graph;

    fn tmp_dir(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "terapart_stream_test_{}_{}",
            std::process::id(),
            name
        ));
        p
    }

    fn assert_graph_eq(a: &CsrGraph, b: &CsrGraph) {
        assert_eq!(a.n(), b.n());
        assert_eq!(a.m(), b.m());
        assert_eq!(a.is_edge_weighted(), b.is_edge_weighted());
        assert_eq!(a.total_edge_weight(), b.total_edge_weight());
        for u in 0..a.n() as NodeId {
            assert_eq!(a.neighbors_vec(u), b.neighbors_vec(u), "vertex {}", u);
        }
    }

    #[test]
    fn streamed_rmat_is_bit_identical_to_weblike() {
        let dir = tmp_dir("rmat");
        let path = dir.join("rmat.tpg");
        let config = CompressionConfig::default();
        // R-MAT sampling collides often, so this also exercises the duplicate-merge
        // (weight > 1) path end to end.
        stream_rmat_to_tpg(10, 8, 5, &path, &dir, 7, &config).unwrap();
        let streamed = read_tpg(&path).unwrap();
        let reference = gen::weblike(10, 8, 5);
        assert_graph_eq(&reference, &streamed);
        // Byte-level check: the container must equal the one written from the
        // materialised graph.
        let direct = dir.join("direct.tpg");
        write_tpg_from_graph(&reference, &direct, &config).unwrap();
        assert_eq!(
            std::fs::read(&path).unwrap(),
            std::fs::read(&direct).unwrap(),
            "streamed container differs from the in-memory one"
        );
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn streamed_rgg2d_matches_in_memory_generator() {
        let dir = tmp_dir("rgg");
        let path = dir.join("rgg.tpg");
        stream_rgg2d_to_tpg(800, 10, 9, &path, &dir, 5, &CompressionConfig::default()).unwrap();
        let streamed = read_tpg(&path).unwrap();
        let reference = gen::rgg2d(800, 10, 9);
        assert_graph_eq(&reference, &streamed);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn streamed_rgg3d_matches_in_memory_generator() {
        let dir = tmp_dir("rgg3d");
        let path = dir.join("rgg3d.tpg");
        stream_rgg3d_to_tpg(700, 8, 13, &path, &dir, 5, &CompressionConfig::default()).unwrap();
        let streamed = read_tpg(&path).unwrap();
        let reference = gen::rgg3d(700, 8, 13);
        assert_graph_eq(&reference, &streamed);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn builder_merges_duplicates_and_drops_self_loops() {
        let dir = tmp_dir("dups");
        let mut b = StreamingTpgBuilder::new(4, 2, &dir).unwrap();
        b.add_edge(0, 1, 1).unwrap();
        b.add_edge(1, 0, 2).unwrap(); // duplicate, reversed
        b.add_edge(2, 2, 5).unwrap(); // self-loop, dropped
        b.add_edge(2, 3, 1).unwrap();
        let path = dir.join("dups.tpg");
        let summary = b.finish(&path, &CompressionConfig::default()).unwrap();
        assert_eq!(summary.m, 2);
        let g = read_tpg(&path).unwrap();
        assert_eq!(g.neighbors_vec(0), vec![(1, 3)]);
        assert_eq!(g.degree(2), 1);
        assert!(g.is_edge_weighted());
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn out_of_range_endpoints_are_structured_errors_not_panics() {
        let dir = tmp_dir("oob");
        let mut b = StreamingTpgBuilder::new(4, 2, &dir).unwrap();
        // First endpoint out of range.
        let err = b.add_edge(7, 1, 1).unwrap_err().to_string();
        assert!(
            err.contains("u = 7"),
            "error must name the endpoint: {}",
            err
        );
        assert!(err.contains("n = 4"), "error must name n: {}", err);
        // Second endpoint out of range (boundary value n itself).
        let err = b.add_edge(1, 4, 1).unwrap_err().to_string();
        assert!(
            err.contains("v = 4"),
            "error must name the endpoint: {}",
            err
        );
        assert!(err.contains("n = 4"), "error must name n: {}", err);
        // The builder survives the rejected edges and finishes normally.
        b.add_edge(0, 3, 1).unwrap();
        let path = dir.join("oob.tpg");
        let summary = b.finish(&path, &CompressionConfig::default()).unwrap();
        assert_eq!(summary.m, 1);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn bucket_count_is_clamped_to_the_documented_limit() {
        let dir = tmp_dir("clamp");
        // A request far beyond the fd budget must be clamped, not honoured until the
        // process dies mid-spill.
        let b = StreamingTpgBuilder::new(100_000, 1_000_000, &dir).unwrap();
        assert_eq!(b.num_buckets(), MAX_SPILL_BUCKETS);
        let spill_files = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().is_some_and(|x| x == "edges"))
            .count();
        assert_eq!(spill_files, MAX_SPILL_BUCKETS);
        drop(b);
        // And the clamped bucket count still produces the canonical container.
        let clamped = dir.join("clamped.tpg");
        let reference = dir.join("reference.tpg");
        let config = CompressionConfig::default();
        stream_rmat_to_tpg(9, 6, 4, &clamped, &dir, 1_000_000, &config).unwrap();
        stream_rmat_to_tpg(9, 6, 4, &reference, &dir, 4, &config).unwrap();
        assert_eq!(
            std::fs::read(&clamped).unwrap(),
            std::fs::read(&reference).unwrap()
        );
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn spill_files_are_cleaned_up() {
        let dir = tmp_dir("cleanup");
        let path = dir.join("out.tpg");
        stream_rmat_to_tpg(8, 6, 1, &path, &dir, 3, &CompressionConfig::default()).unwrap();
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().is_some_and(|x| x == "edges"))
            .collect();
        assert!(leftovers.is_empty(), "spill files left behind");
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn single_bucket_and_many_buckets_agree() {
        let dir = tmp_dir("buckets");
        let one = dir.join("one.tpg");
        let many = dir.join("many.tpg");
        let config = CompressionConfig::default();
        stream_rmat_to_tpg(9, 6, 2, &one, &dir, 1, &config).unwrap();
        stream_rmat_to_tpg(9, 6, 2, &many, &dir, 16, &config).unwrap();
        assert_eq!(std::fs::read(&one).unwrap(), std::fs::read(&many).unwrap());
        std::fs::remove_dir_all(dir).ok();
    }

    /// Feeds a deterministic mixed-weight edge stream (exercising duplicates,
    /// isolated vertices and explicit weights) into a fresh builder.
    fn feed_weighted_stream(builder: &mut StreamingTpgBuilder, n: usize) {
        let mut x = 7u64;
        for _ in 0..(n * 6) {
            // Small xorshift so the stream is deterministic but unordered.
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let u = ids::nid((x % n as u64) as usize);
            let v = ids::nid(((x >> 17) % n as u64) as usize);
            let w = x % 4 + 1;
            builder.add_edge(u, v, w).unwrap();
        }
    }

    #[test]
    fn pipelined_and_sequential_finish_are_byte_identical() {
        // The tentpole acceptance: the pipelined finish must produce byte-identical
        // containers to the sequential reference across bucket counts and thread
        // counts, for both unit-weight (detection pass) and explicitly weighted
        // streams. Run under both id widths by the CI legs.
        let dir = tmp_dir("pipeline_identity");
        let config = CompressionConfig::default();
        for buckets in [1usize, 2, 4, 16] {
            for threads in [1usize, 2, 4] {
                // Unit-weight stream with duplicates (R-MAT): weight-detection path.
                let mut sequential = StreamingTpgBuilder::new(1 << 9, buckets, &dir).unwrap();
                let mut pipelined = StreamingTpgBuilder::new(1 << 9, buckets, &dir).unwrap();
                gen::for_each_rmat_edge(9, 6, 31, &mut |u, v| {
                    sequential.add_edge(u, v, 1).unwrap();
                    pipelined.add_edge(u, v, 1).unwrap();
                });
                let seq_path = dir.join(format!("seq_{}_{}.tpg", buckets, threads));
                let pipe_path = dir.join(format!("pipe_{}_{}.tpg", buckets, threads));
                let a = sequential.finish_sequential(&seq_path, &config).unwrap();
                let b = pipelined
                    .finish_with_threads(&pipe_path, &config, threads)
                    .unwrap();
                assert_eq!(a, b, "summary mismatch at {} buckets", buckets);
                assert_eq!(
                    std::fs::read(&seq_path).unwrap(),
                    std::fs::read(&pipe_path).unwrap(),
                    "container mismatch at {} buckets / {} threads",
                    buckets,
                    threads
                );

                // Explicitly weighted stream: detection pass skipped.
                let mut sequential = StreamingTpgBuilder::new(777, buckets, &dir).unwrap();
                let mut pipelined = StreamingTpgBuilder::new(777, buckets, &dir).unwrap();
                feed_weighted_stream(&mut sequential, 777);
                feed_weighted_stream(&mut pipelined, 777);
                let a = sequential.finish_sequential(&seq_path, &config).unwrap();
                let b = pipelined
                    .finish_with_threads(&pipe_path, &config, threads)
                    .unwrap();
                assert_eq!(a, b);
                assert_eq!(
                    std::fs::read(&seq_path).unwrap(),
                    std::fs::read(&pipe_path).unwrap(),
                    "weighted container mismatch at {} buckets / {} threads",
                    buckets,
                    threads
                );
            }
        }
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn unit_record_format_cuts_spill_volume() {
        let dir = tmp_dir("unit_records");
        let mut b = StreamingTpgBuilder::new(1 << 9, 4, &dir).unwrap();
        gen::for_each_rmat_edge(9, 6, 31, &mut |u, v| {
            b.add_edge(u, v, 1).unwrap();
        });
        let stats = b.spill_stats();
        assert_eq!(
            stats.weighted_records, 0,
            "unit stream spills no weighted records"
        );
        assert_eq!(stats.bytes, stats.unit_records * UNIT_RECORD_BYTES as u64);
        // At 64-bit ids the weight field was a third of each record; at 32-bit, half.
        let expected = 1.0 - UNIT_RECORD_BYTES as f64 / RECORD_BYTES as f64;
        assert!(
            (stats.savings() - expected).abs() < 1e-9,
            "savings {} != expected {}",
            stats.savings(),
            expected
        );
        // No `.wedges` files on disk for a unit stream.
        let weighted_files = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().is_some_and(|x| x == "wedges"))
            .count();
        assert_eq!(weighted_files, 0);
        drop(b);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn mixed_weight_streams_split_records_and_stay_identical() {
        // A stream mixing unit and non-unit weights spills into both files per bucket;
        // the finished container must equal the one from an all-weighted spill of the
        // same logical stream (weight 1 written explicitly via a builder that cannot
        // use the unit path — emulated by adding every edge twice with weights that
        // sum to the original). Simpler and stronger: compare against the in-memory
        // builder through the existing duplicate-merge semantics.
        let dir = tmp_dir("mixed_records");
        let mut b = StreamingTpgBuilder::new(777, 8, &dir).unwrap();
        feed_weighted_stream(&mut b, 777);
        let stats = b.spill_stats();
        assert!(stats.unit_records > 0, "stream contains unit weights");
        assert!(
            stats.weighted_records > 0,
            "stream contains explicit weights"
        );
        assert!(stats.bytes < stats.full_width_bytes);
        let split_path = dir.join("split.tpg");
        b.finish_with_threads(&split_path, &CompressionConfig::default(), 4)
            .unwrap();
        // Reference: the same stream through the sequential path (which reads the same
        // two-file format) and through a fresh pipelined builder — all byte-identical.
        let mut seq = StreamingTpgBuilder::new(777, 8, &dir).unwrap();
        feed_weighted_stream(&mut seq, 777);
        let seq_path = dir.join("seq.tpg");
        seq.finish_sequential(&seq_path, &CompressionConfig::default())
            .unwrap();
        assert_eq!(
            std::fs::read(&split_path).unwrap(),
            std::fs::read(&seq_path).unwrap()
        );
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn spill_volume_exports_to_an_obs_recorder() {
        let dir = tmp_dir("spill_obs");
        let (handle, recorder) = obs::ObsHandle::recording();
        let mut b = StreamingTpgBuilder::new(256, 4, &dir).unwrap();
        b.set_obs(handle);
        gen::for_each_rmat_edge(8, 4, 3, &mut |u, v| {
            b.add_edge(u, v, 1).unwrap();
        });
        let expected = b.spill_stats();
        let path = dir.join("obs.tpg");
        b.finish(&path, &CompressionConfig::default()).unwrap();
        assert_eq!(
            recorder.metrics().get(obs::Counter::SpillBytes),
            expected.bytes
        );
        assert_eq!(
            recorder.metrics().get(obs::Counter::SpillRecords),
            expected.records()
        );
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn dropped_builders_remove_their_spill_files() {
        let dir = tmp_dir("drop_guard");
        {
            let mut b = StreamingTpgBuilder::new(64, 8, &dir).unwrap();
            b.add_edge(0, 1, 1).unwrap();
            b.add_edge(2, 3, 1).unwrap();
            let spills = std::fs::read_dir(&dir)
                .unwrap()
                .filter_map(|e| e.ok())
                .filter(|e| e.path().extension().is_some_and(|x| x == "edges"))
                .count();
            assert_eq!(spills, 8);
            // Dropped without finish(): simulates an abandoned stream (error upstream).
        }
        let leftovers = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .count();
        assert_eq!(leftovers, 0, "spill files left behind by the drop guard");
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn mid_finish_errors_leak_neither_spills_nor_partial_containers() {
        // A spill file vanishing mid-finish (disk trouble, external cleanup) must turn
        // into a structured error that leaves the spill directory empty and the
        // destination unpublished — no partial `.tpg`, no writer temp file.
        let dir = tmp_dir("mid_finish_error");
        let mut b = StreamingTpgBuilder::new(64, 8, &dir).unwrap();
        gen::for_each_rmat_edge(6, 4, 11, &mut |u, v| {
            b.add_edge(u, v, 1).unwrap();
        });
        let victim = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .find(|p| p.extension().is_some_and(|x| x == "edges"))
            .expect("builder must have spill files");
        std::fs::remove_file(&victim).unwrap();
        let path = dir.join("doomed.tpg");
        let err = b.finish_with_threads(&path, &CompressionConfig::default(), 4);
        assert!(err.is_err(), "missing spill file must fail the finish");
        assert!(!path.exists(), "partial container published after an error");
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .collect();
        assert!(
            leftovers.is_empty(),
            "files left behind after a failed finish: {:?}",
            leftovers
        );
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn pipelined_finish_handles_empty_and_sparse_buckets() {
        let dir = tmp_dir("sparse_buckets");
        // 40 vertices over 16 buckets: several buckets cover vertices with no edges.
        let mut b = StreamingTpgBuilder::new(40, 16, &dir).unwrap();
        b.add_edge(0, 39, 1).unwrap();
        b.add_edge(5, 6, 1).unwrap();
        let path = dir.join("sparse.tpg");
        let summary = b
            .finish_with_threads(&path, &CompressionConfig::default(), 4)
            .unwrap();
        assert_eq!(summary.n, 40);
        assert_eq!(summary.m, 2);
        let g = read_tpg(&path).unwrap();
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(17), 0);
        assert_eq!(g.neighbors_vec(39), vec![(0, 1)]);
        std::fs::remove_dir_all(dir).ok();
    }
}
