//! Bounded-memory streaming construction of `.tpg` containers from edge streams.
//!
//! [`StreamingTpgBuilder`] accepts an arbitrary stream of undirected edges and produces
//! a `.tpg` container without ever materialising the full adjacency in memory. It is an
//! external counting/bucket sort: every edge is written as two directed half-edge
//! records into spill files bucketed by source-vertex range; `finish` then processes one
//! bucket at a time — aggregate, sort, merge duplicates (summing weights, exactly like
//! [`CsrGraphBuilder`](crate::csr::CsrGraphBuilder)) — and feeds the neighbourhoods to
//! the streaming [`TpgWriter`] in vertex order. Peak memory is `O(n / buckets · d̄ +
//! largest bucket)` instead of `O(m)`.
//!
//! Whether the graph carries edge weights is a *global* property (duplicate unit-weight
//! samples merge into weights > 1, matching the in-memory builder), so `finish` runs two
//! passes over the spill files: a cheap scan that detects merged weights, then the
//! encoding pass. Both passes stream; nothing exceeds the per-bucket budget.
//!
//! [`stream_rmat_to_tpg`] and [`stream_rgg2d_to_tpg`] connect the repository's R-MAT and
//! random-geometric edge samplers to the builder; both produce graphs **bit-identical**
//! to their in-memory counterparts ([`gen::weblike`](crate::gen::weblike) /
//! [`gen::rgg2d`](crate::gen::rgg2d)) for a fixed seed, which the instance cache relies
//! on for reproducible Set A/B experiments.

use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

use crate::compressed::CompressionConfig;
use crate::gen::{for_each_rgg2d_edge, for_each_rmat_edge};
use crate::io::IoError;
use crate::store::container::{TpgSummary, TpgWriter};
use crate::{EdgeWeight, NodeId};

/// Bytes of one spilled half-edge record's id fields (source, target), at the active
/// id width.
const ID_BYTES: usize = std::mem::size_of::<NodeId>();

/// Size of one spilled half-edge record: source id, target id, weight u64.
const RECORD_BYTES: usize = 2 * ID_BYTES + std::mem::size_of::<EdgeWeight>();

/// Per-vertex visitor over a bucket's aggregated neighbourhoods; returning `Ok(false)`
/// stops the bucket scan early.
type VertexVisitor<'a> = dyn FnMut(NodeId, &[(NodeId, EdgeWeight)]) -> Result<bool, IoError> + 'a;

/// External-memory `.tpg` builder fed by an edge stream (see the module docs).
pub struct StreamingTpgBuilder {
    n: usize,
    vertices_per_bucket: usize,
    spill_dir: PathBuf,
    bucket_paths: Vec<PathBuf>,
    buckets: Vec<BufWriter<File>>,
    edges_added: usize,
    /// Whether any explicitly non-unit edge weight entered the stream; lets `finish`
    /// skip the weight-detection pass for weighted inputs.
    saw_explicit_weight: bool,
}

impl StreamingTpgBuilder {
    /// Creates a builder for a graph with `n` vertices, spilling half-edge records into
    /// `num_buckets` temporary files under `spill_dir` (created if missing; the files
    /// are removed by [`finish`](Self::finish)).
    pub fn new(n: usize, num_buckets: usize, spill_dir: impl AsRef<Path>) -> Result<Self, IoError> {
        use std::sync::atomic::{AtomicU64, Ordering};
        static SPILL_COUNTER: AtomicU64 = AtomicU64::new(0);
        let num_buckets = num_buckets.clamp(1, n.max(1));
        let spill_dir = spill_dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&spill_dir)?;
        let unique = format!(
            "spill_{}_{}",
            std::process::id(),
            SPILL_COUNTER.fetch_add(1, Ordering::Relaxed)
        );
        let mut bucket_paths = Vec::with_capacity(num_buckets);
        let mut buckets = Vec::with_capacity(num_buckets);
        for b in 0..num_buckets {
            let path = spill_dir.join(format!("{}_{}.edges", unique, b));
            buckets.push(BufWriter::new(File::create(&path)?));
            bucket_paths.push(path);
        }
        Ok(Self {
            n,
            vertices_per_bucket: n.div_ceil(num_buckets).max(1),
            spill_dir,
            bucket_paths,
            buckets,
            edges_added: 0,
            saw_explicit_weight: false,
        })
    }

    /// Directory holding the spill files.
    pub fn spill_dir(&self) -> &Path {
        &self.spill_dir
    }

    /// Number of undirected edge records accepted so far (before deduplication).
    pub fn edges_added(&self) -> usize {
        self.edges_added
    }

    /// Adds an undirected edge `{u, v}`. Self-loops are dropped, duplicates merge by
    /// summing weights at [`finish`](Self::finish) time.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId, weight: EdgeWeight) -> Result<(), IoError> {
        assert!(
            (u as usize) < self.n && (v as usize) < self.n,
            "edge endpoint out of range"
        );
        if u == v {
            return Ok(());
        }
        self.spill_half_edge(u, v, weight)?;
        self.spill_half_edge(v, u, weight)?;
        self.edges_added += 1;
        self.saw_explicit_weight |= weight != 1;
        Ok(())
    }

    fn spill_half_edge(
        &mut self,
        src: NodeId,
        dst: NodeId,
        weight: EdgeWeight,
    ) -> Result<(), IoError> {
        let bucket = src as usize / self.vertices_per_bucket;
        let mut record = [0u8; RECORD_BYTES];
        record[0..ID_BYTES].copy_from_slice(&src.to_le_bytes());
        record[ID_BYTES..2 * ID_BYTES].copy_from_slice(&dst.to_le_bytes());
        record[2 * ID_BYTES..].copy_from_slice(&weight.to_le_bytes());
        self.buckets[bucket].write_all(&record)?;
        Ok(())
    }

    /// Streams one bucket's aggregated, sorted, duplicate-merged neighbourhoods in
    /// vertex order to `f(u, neighbors)`. Returns `false` if the visitor stopped the
    /// scan early.
    fn for_each_bucket_vertex(
        &self,
        bucket: usize,
        f: &mut VertexVisitor<'_>,
    ) -> Result<bool, IoError> {
        let lo = (bucket * self.vertices_per_bucket).min(self.n);
        let hi = ((bucket + 1) * self.vertices_per_bucket).min(self.n);
        let mut adjacency: Vec<Vec<(NodeId, EdgeWeight)>> = vec![Vec::new(); hi - lo];
        let file = File::open(&self.bucket_paths[bucket])?;
        let mut r = BufReader::new(file);
        let mut record = [0u8; RECORD_BYTES];
        loop {
            match r.read_exact(&mut record) {
                Ok(()) => {}
                Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => break,
                Err(e) => return Err(e.into()),
            }
            let src = NodeId::from_le_bytes(record[0..ID_BYTES].try_into().unwrap());
            let dst = NodeId::from_le_bytes(record[ID_BYTES..2 * ID_BYTES].try_into().unwrap());
            let weight = EdgeWeight::from_le_bytes(record[2 * ID_BYTES..].try_into().unwrap());
            adjacency[src as usize - lo].push((dst, weight));
        }
        for (i, nbrs) in adjacency.iter_mut().enumerate() {
            nbrs.sort_unstable_by_key(|&(v, _)| v);
            crate::merge_sorted_duplicates(nbrs);
            if !f((lo + i) as NodeId, nbrs)? {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Aggregates the spill files and writes the final `.tpg` container to `path`. The
    /// spill files are removed afterwards.
    pub fn finish(
        mut self,
        path: impl AsRef<Path>,
        config: &CompressionConfig,
    ) -> Result<TpgSummary, IoError> {
        for w in &mut self.buckets {
            w.flush()?;
        }
        drop(std::mem::take(&mut self.buckets));
        // Pass 1: edge weights are a global property of the container (the encoding of
        // *every* neighbourhood depends on it). Skip the scan entirely when an explicit
        // non-unit weight already entered the stream; otherwise stop at the first
        // duplicate-merged weight (unit-weight duplicates sum past 1).
        let mut edge_weighted = self.saw_explicit_weight;
        for bucket in 0..self.bucket_paths.len() {
            if edge_weighted {
                break;
            }
            let completed = self.for_each_bucket_vertex(bucket, &mut |_, nbrs| {
                edge_weighted |= nbrs.iter().any(|&(_, w)| w != 1);
                Ok(!edge_weighted)
            })?;
            debug_assert!(completed || edge_weighted);
        }
        // Pass 2: encode in vertex order.
        let mut writer = TpgWriter::create(&path, self.n, edge_weighted, config)?;
        for bucket in 0..self.bucket_paths.len() {
            self.for_each_bucket_vertex(bucket, &mut |u, nbrs| {
                writer.push_neighborhood(u, nbrs, 1).map(|()| true)
            })?;
        }
        let summary = writer.finish()?;
        for p in &self.bucket_paths {
            std::fs::remove_file(p).ok();
        }
        Ok(summary)
    }
}

impl Drop for StreamingTpgBuilder {
    fn drop(&mut self) {
        // Best-effort cleanup when finish() was never reached.
        drop(std::mem::take(&mut self.buckets));
        for p in &self.bucket_paths {
            std::fs::remove_file(p).ok();
        }
    }
}

/// Streams an R-MAT graph (identical to [`gen::weblike`](crate::gen::weblike) for the
/// same parameters) into a `.tpg` container, spilling edge chunks under `spill_dir`.
pub fn stream_rmat_to_tpg(
    scale: u32,
    avg_deg: usize,
    seed: u64,
    path: impl AsRef<Path>,
    spill_dir: impl AsRef<Path>,
    num_buckets: usize,
    config: &CompressionConfig,
) -> Result<TpgSummary, IoError> {
    let n = 1usize << scale;
    let mut builder = StreamingTpgBuilder::new(n, num_buckets, spill_dir)?;
    let mut io_error = None;
    for_each_rmat_edge(scale, avg_deg, seed, &mut |u, v| {
        if io_error.is_none() {
            if let Err(e) = builder.add_edge(u, v, 1) {
                io_error = Some(e);
            }
        }
    });
    if let Some(e) = io_error {
        return Err(e);
    }
    builder.finish(path, config)
}

/// Streams a random geometric graph (identical to [`gen::rgg2d`](crate::gen::rgg2d) for
/// the same parameters) into a `.tpg` container, spilling edge chunks under `spill_dir`.
pub fn stream_rgg2d_to_tpg(
    n: usize,
    avg_deg: usize,
    seed: u64,
    path: impl AsRef<Path>,
    spill_dir: impl AsRef<Path>,
    num_buckets: usize,
    config: &CompressionConfig,
) -> Result<TpgSummary, IoError> {
    let mut builder = StreamingTpgBuilder::new(n, num_buckets, spill_dir)?;
    let mut io_error = None;
    for_each_rgg2d_edge(n, avg_deg, seed, &mut |u, v| {
        if io_error.is_none() {
            if let Err(e) = builder.add_edge(u, v, 1) {
                io_error = Some(e);
            }
        }
    });
    if let Some(e) = io_error {
        return Err(e);
    }
    builder.finish(path, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::CsrGraph;
    use crate::gen;
    use crate::store::container::{read_tpg, write_tpg_from_graph};
    use crate::traits::Graph;

    fn tmp_dir(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "terapart_stream_test_{}_{}",
            std::process::id(),
            name
        ));
        p
    }

    fn assert_graph_eq(a: &CsrGraph, b: &CsrGraph) {
        assert_eq!(a.n(), b.n());
        assert_eq!(a.m(), b.m());
        assert_eq!(a.is_edge_weighted(), b.is_edge_weighted());
        assert_eq!(a.total_edge_weight(), b.total_edge_weight());
        for u in 0..a.n() as NodeId {
            assert_eq!(a.neighbors_vec(u), b.neighbors_vec(u), "vertex {}", u);
        }
    }

    #[test]
    fn streamed_rmat_is_bit_identical_to_weblike() {
        let dir = tmp_dir("rmat");
        let path = dir.join("rmat.tpg");
        let config = CompressionConfig::default();
        // R-MAT sampling collides often, so this also exercises the duplicate-merge
        // (weight > 1) path end to end.
        stream_rmat_to_tpg(10, 8, 5, &path, &dir, 7, &config).unwrap();
        let streamed = read_tpg(&path).unwrap();
        let reference = gen::weblike(10, 8, 5);
        assert_graph_eq(&reference, &streamed);
        // Byte-level check: the container must equal the one written from the
        // materialised graph.
        let direct = dir.join("direct.tpg");
        write_tpg_from_graph(&reference, &direct, &config).unwrap();
        assert_eq!(
            std::fs::read(&path).unwrap(),
            std::fs::read(&direct).unwrap(),
            "streamed container differs from the in-memory one"
        );
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn streamed_rgg2d_matches_in_memory_generator() {
        let dir = tmp_dir("rgg");
        let path = dir.join("rgg.tpg");
        stream_rgg2d_to_tpg(800, 10, 9, &path, &dir, 5, &CompressionConfig::default()).unwrap();
        let streamed = read_tpg(&path).unwrap();
        let reference = gen::rgg2d(800, 10, 9);
        assert_graph_eq(&reference, &streamed);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn builder_merges_duplicates_and_drops_self_loops() {
        let dir = tmp_dir("dups");
        let mut b = StreamingTpgBuilder::new(4, 2, &dir).unwrap();
        b.add_edge(0, 1, 1).unwrap();
        b.add_edge(1, 0, 2).unwrap(); // duplicate, reversed
        b.add_edge(2, 2, 5).unwrap(); // self-loop, dropped
        b.add_edge(2, 3, 1).unwrap();
        let path = dir.join("dups.tpg");
        let summary = b.finish(&path, &CompressionConfig::default()).unwrap();
        assert_eq!(summary.m, 2);
        let g = read_tpg(&path).unwrap();
        assert_eq!(g.neighbors_vec(0), vec![(1, 3)]);
        assert_eq!(g.degree(2), 1);
        assert!(g.is_edge_weighted());
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn spill_files_are_cleaned_up() {
        let dir = tmp_dir("cleanup");
        let path = dir.join("out.tpg");
        stream_rmat_to_tpg(8, 6, 1, &path, &dir, 3, &CompressionConfig::default()).unwrap();
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().is_some_and(|x| x == "edges"))
            .collect();
        assert!(leftovers.is_empty(), "spill files left behind");
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn single_bucket_and_many_buckets_agree() {
        let dir = tmp_dir("buckets");
        let one = dir.join("one.tpg");
        let many = dir.join("many.tpg");
        let config = CompressionConfig::default();
        stream_rmat_to_tpg(9, 6, 2, &one, &dir, 1, &config).unwrap();
        stream_rmat_to_tpg(9, 6, 2, &many, &dir, 16, &config).unwrap();
        assert_eq!(std::fs::read(&one).unwrap(), std::fs::read(&many).unwrap());
        std::fs::remove_dir_all(dir).ok();
    }
}
