//! The [`Graph`] accessor trait.
//!
//! Every partitioning algorithm in this repository is generic over `G: Graph`, so the
//! same code runs on the uncompressed [`CsrGraph`](crate::csr::CsrGraph) and on the
//! [`CompressedGraph`](crate::compressed::CompressedGraph) with on-the-fly decoding —
//! exactly the property the paper needs ("iterating over a neighborhood by on-the-fly
//! decoding at speeds close to the uncompressed graph").
//!
//! Neighbourhood access uses a callback style (`for_each_neighbor`) rather than returning
//! iterators. This keeps the trait object-safe-free and avoids generic associated types
//! while letting the compressed implementation decode without allocating.

use crate::{EdgeWeight, NodeId, NodeWeight};

/// Read-only access to an undirected, possibly weighted graph.
///
/// Implementations must represent each undirected edge `{u, v}` as two directed
/// half-edges, one in each endpoint's neighbourhood. Self-loops are not allowed.
pub trait Graph: Sync {
    /// Number of vertices.
    fn n(&self) -> usize;

    /// Number of undirected edges (half the number of stored directed half-edges).
    fn m(&self) -> usize;

    /// Degree of vertex `u` (number of incident undirected edges).
    fn degree(&self, u: NodeId) -> usize;

    /// Weight of vertex `u`.
    fn node_weight(&self, u: NodeId) -> NodeWeight;

    /// Sum of all vertex weights.
    fn total_node_weight(&self) -> NodeWeight;

    /// Sum of all edge weights (each undirected edge counted once).
    fn total_edge_weight(&self) -> EdgeWeight;

    /// Invokes `f(v, w)` for every neighbour `v` of `u` with edge weight `w`.
    fn for_each_neighbor(&self, u: NodeId, f: &mut dyn FnMut(NodeId, EdgeWeight));

    /// Invokes `f(edge_index_within_neighborhood, v, w)` for every neighbour of `u`.
    ///
    /// The index is the position of the half-edge inside `u`'s neighbourhood, i.e. it
    /// runs from `0` to `degree(u) - 1`. Some algorithms (e.g. chunked parallel decoding
    /// and FM gain tables) need stable per-edge indices.
    fn for_each_neighbor_indexed(&self, u: NodeId, f: &mut dyn FnMut(usize, NodeId, EdgeWeight)) {
        let mut idx = 0usize;
        self.for_each_neighbor(u, &mut |v, w| {
            f(idx, v, w);
            idx += 1;
        });
    }

    /// Returns `true` if the graph stores non-uniform edge weights.
    fn is_edge_weighted(&self) -> bool {
        false
    }

    /// Returns `true` if the graph stores non-uniform node weights.
    fn is_node_weighted(&self) -> bool {
        false
    }

    /// Maximum degree over all vertices.
    fn max_degree(&self) -> usize {
        (0..self.n() as NodeId)
            .map(|u| self.degree(u))
            .max()
            .unwrap_or(0)
    }

    /// Sum of `min(degree(u), cap)` over all vertices — the memory bound of the sparse
    /// gain table (paper §V).
    fn total_capped_degree(&self, cap: usize) -> usize {
        (0..self.n() as NodeId)
            .map(|u| self.degree(u).min(cap))
            .sum()
    }

    /// Collects the neighbourhood of `u` into a vector of `(neighbor, weight)` pairs.
    ///
    /// Convenience for tests and small helper algorithms; hot code should prefer
    /// [`Graph::for_each_neighbor`].
    fn neighbors_vec(&self, u: NodeId) -> Vec<(NodeId, EdgeWeight)> {
        let mut out = Vec::with_capacity(self.degree(u));
        self.for_each_neighbor(u, &mut |v, w| out.push((v, w)));
        out
    }

    /// Weighted degree of `u`: the sum of weights of incident edges.
    fn weighted_degree(&self, u: NodeId) -> EdgeWeight {
        let mut total = 0;
        self.for_each_neighbor(u, &mut |_, w| total += w);
        total
    }

    /// Hints that the caller will soon iterate the neighbourhoods of `nodes`, in the
    /// given order. Purely an optimisation hint: implementations may start readahead
    /// (the [`PagedGraph`](crate::store::PagedGraph) hands the order to its page-cache
    /// prefetcher), and the default for in-memory representations does nothing.
    /// Results of subsequent accesses are never affected.
    fn prefetch(&self, _nodes: &[NodeId]) {}

    /// Pours representation-level counters (page-cache hits/misses, prefetch volume,
    /// retried reads, ...) into an observability registry at the end of a run. The
    /// default for in-memory representations records nothing; the
    /// [`PagedGraph`](crate::store::PagedGraph) exports its settled cache statistics.
    fn record_obs_metrics(&self, _metrics: &obs::MetricsRegistry) {}
}

/// Blanket implementation so `&G` can be passed wherever a `Graph` is expected.
impl<G: Graph + ?Sized> Graph for &G {
    fn n(&self) -> usize {
        (**self).n()
    }
    fn m(&self) -> usize {
        (**self).m()
    }
    fn degree(&self, u: NodeId) -> usize {
        (**self).degree(u)
    }
    fn node_weight(&self, u: NodeId) -> NodeWeight {
        (**self).node_weight(u)
    }
    fn total_node_weight(&self) -> NodeWeight {
        (**self).total_node_weight()
    }
    fn total_edge_weight(&self) -> EdgeWeight {
        (**self).total_edge_weight()
    }
    fn for_each_neighbor(&self, u: NodeId, f: &mut dyn FnMut(NodeId, EdgeWeight)) {
        (**self).for_each_neighbor(u, f)
    }
    fn prefetch(&self, nodes: &[NodeId]) {
        (**self).prefetch(nodes)
    }
    fn record_obs_metrics(&self, metrics: &obs::MetricsRegistry) {
        (**self).record_obs_metrics(metrics)
    }
    fn for_each_neighbor_indexed(&self, u: NodeId, f: &mut dyn FnMut(usize, NodeId, EdgeWeight)) {
        (**self).for_each_neighbor_indexed(u, f)
    }
    fn is_edge_weighted(&self) -> bool {
        (**self).is_edge_weighted()
    }
    fn is_node_weighted(&self) -> bool {
        (**self).is_node_weighted()
    }
    fn max_degree(&self) -> usize {
        (**self).max_degree()
    }
    fn total_capped_degree(&self, cap: usize) -> usize {
        (**self).total_capped_degree(cap)
    }
    fn neighbors_vec(&self, u: NodeId) -> Vec<(NodeId, EdgeWeight)> {
        (**self).neighbors_vec(u)
    }
    fn weighted_degree(&self, u: NodeId) -> EdgeWeight {
        (**self).weighted_degree(u)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::CsrGraphBuilder;

    #[test]
    fn default_methods_work_through_reference() {
        let mut b = CsrGraphBuilder::new(3);
        b.add_edge(0, 1, 2);
        b.add_edge(1, 2, 3);
        let g = b.build();
        let gr: &dyn Fn() = &|| {};
        let _ = gr; // silence unused closure pattern
        let by_ref: &crate::csr::CsrGraph = &g;
        assert_eq!(by_ref.max_degree(), 2);
        assert_eq!(by_ref.weighted_degree(1), 5);
        assert_eq!(by_ref.total_capped_degree(1), 3);
        assert_eq!(by_ref.neighbors_vec(0), vec![(1, 2)]);
    }

    #[test]
    fn indexed_iteration_counts_edges() {
        let mut b = CsrGraphBuilder::new(4);
        b.add_edge(0, 1, 1);
        b.add_edge(0, 2, 1);
        b.add_edge(0, 3, 1);
        let g = b.build();
        let mut seen = Vec::new();
        g.for_each_neighbor_indexed(0, &mut |i, v, _| seen.push((i, v)));
        assert_eq!(seen, vec![(0, 1), (1, 2), (2, 3)]);
    }
}
