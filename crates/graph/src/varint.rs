//! VarInt and zigzag byte codecs (paper §III-A).
//!
//! The compressed graph representation stores gaps, interval descriptors and edge weights
//! as variable-length integers: 7 payload bits per byte plus a continuation bit. Signed
//! values (the first gap of a neighbourhood, which is relative to the vertex ID itself,
//! and edge-weight deltas) are mapped to unsigned values with zigzag encoding before the
//! VarInt codec is applied.

/// Maximum number of bytes a 64-bit VarInt can occupy.
pub const MAX_VARINT_LEN: usize = 10;

/// Appends the VarInt encoding of `value` to `out` and returns the number of bytes
/// written.
#[inline]
pub fn encode_varint(mut value: u64, out: &mut Vec<u8>) -> usize {
    let mut written = 0;
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        written += 1;
        if value == 0 {
            out.push(byte);
            return written;
        }
        out.push(byte | 0x80);
    }
}

/// Decodes a VarInt starting at `data[pos]`, returning the value and the new position.
///
/// # Panics
/// Panics if the buffer ends in the middle of a VarInt (truncated input).
#[inline]
pub fn decode_varint(data: &[u8], mut pos: usize) -> (u64, usize) {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = data[pos];
        pos += 1;
        value |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return (value, pos);
        }
        shift += 7;
        debug_assert!(shift < 64 + 7, "VarInt longer than 10 bytes");
    }
}

/// Number of bytes the VarInt encoding of `value` occupies (without encoding it).
#[inline]
pub fn varint_len(value: u64) -> usize {
    if value == 0 {
        1
    } else {
        (64 - value.leading_zeros() as usize).div_ceil(7)
    }
}

/// Maps a signed value to an unsigned value such that small magnitudes map to small
/// values: `0 → 0, -1 → 1, 1 → 2, -2 → 3, ...`.
#[inline]
pub fn zigzag_encode(value: i64) -> u64 {
    ((value << 1) ^ (value >> 63)) as u64
}

/// Inverse of [`zigzag_encode`].
#[inline]
pub fn zigzag_decode(value: u64) -> i64 {
    ((value >> 1) as i64) ^ -((value & 1) as i64)
}

/// Appends the zigzag + VarInt encoding of a signed value.
#[inline]
pub fn encode_signed_varint(value: i64, out: &mut Vec<u8>) -> usize {
    encode_varint(zigzag_encode(value), out)
}

/// Decodes a zigzag + VarInt encoded signed value starting at `data[pos]`.
#[inline]
pub fn decode_signed_varint(data: &[u8], pos: usize) -> (i64, usize) {
    let (raw, pos) = decode_varint(data, pos);
    (zigzag_decode(raw), pos)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn small_values_use_one_byte() {
        for v in 0..128u64 {
            let mut buf = Vec::new();
            assert_eq!(encode_varint(v, &mut buf), 1);
            assert_eq!(buf.len(), 1);
            assert_eq!(decode_varint(&buf, 0), (v, 1));
        }
    }

    #[test]
    fn boundary_values_round_trip() {
        for &v in &[0, 127, 128, 16_383, 16_384, 0xFFFF_FFFF, u64::MAX] {
            let mut buf = Vec::new();
            let len = encode_varint(v, &mut buf);
            assert_eq!(len, varint_len(v));
            assert_eq!(len, buf.len());
            let (decoded, pos) = decode_varint(&buf, 0);
            assert_eq!(decoded, v);
            assert_eq!(pos, len);
        }
    }

    #[test]
    fn max_value_uses_ten_bytes() {
        assert_eq!(varint_len(u64::MAX), MAX_VARINT_LEN);
    }

    #[test]
    fn concatenated_values_decode_in_sequence() {
        let values = [5u64, 300, 0, 0xFFFF_FFFF, 1];
        let mut buf = Vec::new();
        for &v in &values {
            encode_varint(v, &mut buf);
        }
        let mut pos = 0;
        for &v in &values {
            let (decoded, next) = decode_varint(&buf, pos);
            assert_eq!(decoded, v);
            pos = next;
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn zigzag_maps_small_magnitudes_to_small_values() {
        assert_eq!(zigzag_encode(0), 0);
        assert_eq!(zigzag_encode(-1), 1);
        assert_eq!(zigzag_encode(1), 2);
        assert_eq!(zigzag_encode(-2), 3);
        assert_eq!(zigzag_encode(2), 4);
        assert_eq!(zigzag_decode(zigzag_encode(i64::MIN)), i64::MIN);
        assert_eq!(zigzag_decode(zigzag_encode(i64::MAX)), i64::MAX);
    }

    #[test]
    fn signed_round_trip() {
        for &v in &[0i64, -1, 1, -1000, 1000, i64::MIN, i64::MAX] {
            let mut buf = Vec::new();
            encode_signed_varint(v, &mut buf);
            let (decoded, _) = decode_signed_varint(&buf, 0);
            assert_eq!(decoded, v);
        }
    }

    proptest! {
        #[test]
        fn prop_varint_round_trip(v in any::<u64>()) {
            let mut buf = Vec::new();
            let len = encode_varint(v, &mut buf);
            prop_assert_eq!(len, varint_len(v));
            let (decoded, pos) = decode_varint(&buf, 0);
            prop_assert_eq!(decoded, v);
            prop_assert_eq!(pos, buf.len());
        }

        #[test]
        fn prop_signed_round_trip(v in any::<i64>()) {
            let mut buf = Vec::new();
            encode_signed_varint(v, &mut buf);
            let (decoded, pos) = decode_signed_varint(&buf, 0);
            prop_assert_eq!(decoded, v);
            prop_assert_eq!(pos, buf.len());
        }

        #[test]
        fn prop_sequence_round_trip(values in proptest::collection::vec(any::<u64>(), 0..64)) {
            let mut buf = Vec::new();
            for &v in &values {
                encode_varint(v, &mut buf);
            }
            let mut pos = 0;
            let mut decoded = Vec::new();
            while pos < buf.len() {
                let (v, next) = decode_varint(&buf, pos);
                decoded.push(v);
                pos = next;
            }
            prop_assert_eq!(decoded, values);
        }
    }
}
