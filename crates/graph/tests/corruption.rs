//! Corruption-robustness property tests of the checksummed (v3+) `.tpg` container.
//!
//! Every byte of a checksummed container is covered by some crc32 — the header
//! crc, the offset-index crc (plain *or* Elias-Fano encoded), the node-weight
//! crc, or a per-block data crc (stored block crcs are themselves verified
//! against the recomputed block on read, so a flip in the *stored* checksum is
//! caught exactly like a flip in the data it covers). These properties assert
//! the consequence: flipping any single byte of a valid container, or
//! truncating it anywhere, yields a structured [`IoError`] — from the eager
//! decode path, from the lazily verifying [`PagedGraph`], and from the
//! everything-verified-at-open [`MmapGraph`] — and never a panic. They run over
//! both offset-index encodings (v4 plain and v4 Elias-Fano) and at both id
//! widths via the `wide-ids` feature.

use std::sync::{Arc, Mutex, OnceLock};

use graph::store::container::read_tpg_compressed_backend;
use graph::store::{MmapGraph, RetryPolicy, StorageBackend, TpgWriter};
use graph::traits::Graph;
use graph::{gen, CompressionConfig, NodeId, PagedGraph, PagedGraphOptions};
use proptest::prelude::*;

/// A byte-vector storage backend: lets each property case corrupt an in-memory
/// copy of the fixture without touching the filesystem.
#[derive(Debug, Clone, Default)]
struct MemBackend {
    data: Arc<Mutex<Vec<u8>>>,
}

impl MemBackend {
    fn with_bytes(bytes: Vec<u8>) -> Self {
        Self {
            data: Arc::new(Mutex::new(bytes)),
        }
    }
}

impl StorageBackend for MemBackend {
    fn read_at(&self, buf: &mut [u8], offset: u64) -> std::io::Result<usize> {
        let data = self.data.lock().unwrap();
        let start = (offset as usize).min(data.len());
        let n = buf.len().min(data.len() - start);
        buf[..n].copy_from_slice(&data[start..start + n]);
        Ok(n)
    }

    fn append(&self, buf: &[u8]) -> std::io::Result<()> {
        self.data.lock().unwrap().extend_from_slice(buf);
        Ok(())
    }

    fn write_at(&self, offset: u64, buf: &[u8]) -> std::io::Result<()> {
        let mut data = self.data.lock().unwrap();
        let end = offset as usize + buf.len();
        if data.len() < end {
            data.resize(end, 0);
        }
        data[offset as usize..end].copy_from_slice(buf);
        Ok(())
    }

    fn sync(&self) -> std::io::Result<()> {
        Ok(())
    }

    fn len(&self) -> std::io::Result<u64> {
        Ok(self.data.lock().unwrap().len() as u64)
    }
}

fn build_fixture(ef_offsets: bool) -> Vec<u8> {
    let g = gen::with_random_node_weights(&gen::weblike(9, 8, 5), 4, 2);
    let out = MemBackend::default();
    let mut writer = TpgWriter::create_with_backend(
        Box::new(out.clone()),
        g.n(),
        g.is_edge_weighted(),
        &CompressionConfig::default(),
    )
    .unwrap()
    .with_checksum_block_len(256)
    .with_ef_offsets(ef_offsets);
    for u in 0..g.n() as NodeId {
        let mut nbrs = g.neighbors_vec(u);
        nbrs.sort_unstable_by_key(|&(v, _)| v);
        writer
            .push_neighborhood(u, &nbrs, g.node_weight(u))
            .unwrap();
    }
    writer.finish().unwrap();
    let bytes = out.data.lock().unwrap().clone();
    assert!(bytes.len() > 512, "fixture too small to be interesting");
    bytes
}

/// A valid v4 container with plain offsets (node- and edge-weighted, 256-byte
/// checksum blocks so the footer holds many block crcs), built once.
fn fixture() -> &'static [u8] {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| build_fixture(false))
}

/// The same graph with the Elias-Fano offset index: corruption of the succinct
/// encoding must be just as detectable as corruption of plain offsets.
fn fixture_ef() -> &'static [u8] {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| build_fixture(true))
}

/// Retries re-read the same corrupt bytes, so disable them to keep cases fast.
fn paged_options() -> PagedGraphOptions {
    PagedGraphOptions {
        retry: RetryPolicy::disabled(),
        ..PagedGraphOptions::with_budget(32 * 1024)
    }
}

/// Opens the corrupted container as a `PagedGraph` and asserts the corruption
/// cannot go unnoticed: either the open fails, or the first full neighbourhood
/// sweep poisons the graph with a fatal error. Nothing may panic.
fn assert_paged_detects(bytes: Vec<u8>, what: &str) {
    match PagedGraph::open_with_backend(Box::new(MemBackend::with_bytes(bytes)), &paged_options()) {
        Err(_) => {}
        Ok(paged) => {
            for u in 0..paged.n() as NodeId {
                paged.for_each_neighbor(u, &mut |_, _| {});
            }
            assert!(
                paged.take_fatal_error().is_some(),
                "{} survived a full PagedGraph sweep undetected",
                what
            );
            assert!(paged.is_poisoned());
        }
    }
}

/// The mmap backend verifies *everything* at open (it has no lazy verification
/// to fall back on), so a corrupted container must simply refuse to open.
fn assert_mmap_detects(bytes: Vec<u8>, what: &str) {
    assert!(
        MmapGraph::open_with_backend(Box::new(MemBackend::with_bytes(bytes)), &paged_options())
            .is_err(),
        "{} opened as an MmapGraph undetected",
        what
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Any single corrupted byte — header, data, offset index (plain or
    // Elias-Fano), node weights or footer — turns every read path into an
    // error, never a panic and never a silently wrong graph.
    #[test]
    fn prop_single_byte_corruption_is_always_detected(
        pos_seed in any::<u64>(),
        mask in 1u32..256,
    ) {
        for (clean, label) in [(fixture(), "plain"), (fixture_ef(), "ef")] {
            let pos = (pos_seed % clean.len() as u64) as usize;
            let mut bytes = clean.to_vec();
            bytes[pos] ^= mask as u8;
            let what = format!("[{}] flip of byte {} (mask {:#04x})", label, pos, mask);

            let eager = read_tpg_compressed_backend(&MemBackend::with_bytes(bytes.clone()));
            prop_assert!(eager.is_err(), "{} decoded eagerly without error", what);
            assert_paged_detects(bytes.clone(), &what);
            assert_mmap_detects(bytes, &what);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    // Truncating the container anywhere — even one byte — fails every read
    // path: the trailing header crc (and below 88 bytes, the header itself)
    // can no longer be read.
    #[test]
    fn prop_truncations_fail_to_open(cut_seed in any::<u64>()) {
        for (clean, label) in [(fixture(), "plain"), (fixture_ef(), "ef")] {
            let keep = (cut_seed % clean.len() as u64) as usize;
            let bytes = clean[..keep].to_vec();
            let what = format!("[{}] container truncated to {} of {} bytes", label, keep, clean.len());

            prop_assert!(
                read_tpg_compressed_backend(&MemBackend::with_bytes(bytes.clone())).is_err(),
                "{} decoded eagerly",
                what
            );
            prop_assert!(
                PagedGraph::open_with_backend(
                    Box::new(MemBackend::with_bytes(bytes.clone())),
                    &paged_options()
                )
                .is_err(),
                "{} opened as a PagedGraph",
                what
            );
            assert_mmap_detects(bytes, &what);
        }
    }
}
