//! A tracking global allocator.
//!
//! Wraps any [`GlobalAlloc`] (usually [`std::alloc::System`]) and charges every
//! allocation to the process-global [`MemoryCounter`](crate::counter::MemoryCounter).
//! Binaries that want RSS-like peak measurements install it as:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: memtrack::TrackingAllocator = memtrack::TrackingAllocator::system();
//! ```
//!
//! The overhead is two relaxed atomic operations per allocation, which is negligible next
//! to the allocator itself. Library code never depends on the allocator being installed:
//! the partitioner additionally performs data-structure-level accounting through
//! [`MemoryScope`](crate::counter::MemoryScope) and [`ReservedVec`](crate::reserve::ReservedVec),
//! so peak-memory experiments work in both setups.

use std::alloc::{GlobalAlloc, Layout, System};

use crate::counter::global;

/// A global allocator wrapper that records live heap bytes in the global counter.
pub struct TrackingAllocator<A = System> {
    inner: A,
}

impl TrackingAllocator<System> {
    /// Creates a tracking allocator backed by the system allocator.
    pub const fn system() -> Self {
        Self { inner: System }
    }
}

impl<A> TrackingAllocator<A> {
    /// Creates a tracking allocator backed by an arbitrary allocator.
    pub const fn with_allocator(inner: A) -> Self {
        Self { inner }
    }

    /// Returns a reference to the wrapped allocator.
    pub fn inner(&self) -> &A {
        &self.inner
    }
}

// SAFETY: all allocation calls are forwarded verbatim to the inner allocator; the only
// extra work is atomic bookkeeping which cannot violate the GlobalAlloc contract.
unsafe impl<A: GlobalAlloc> GlobalAlloc for TrackingAllocator<A> {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = self.inner.alloc(layout);
        if !ptr.is_null() {
            global().add(layout.size());
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        self.inner.dealloc(ptr, layout);
        global().sub(layout.size());
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let ptr = self.inner.alloc_zeroed(layout);
        if !ptr.is_null() {
            global().add(layout.size());
        }
        ptr
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let new_ptr = self.inner.realloc(ptr, layout, new_size);
        if !new_ptr.is_null() {
            if new_size >= layout.size() {
                global().add(new_size - layout.size());
            } else {
                global().sub(layout.size() - new_size);
            }
        }
        new_ptr
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::alloc::{GlobalAlloc, Layout};

    // The tests exercise the allocator directly (not installed globally) so that the
    // accounting logic is verified without interfering with the test harness allocator.
    #[test]
    fn alloc_and_dealloc_are_balanced() {
        let alloc = TrackingAllocator::system();
        let layout = Layout::from_size_align(4096, 8).unwrap();
        let before = global().current();
        unsafe {
            let ptr = alloc.alloc(layout);
            assert!(!ptr.is_null());
            assert!(global().current() >= before + 4096);
            alloc.dealloc(ptr, layout);
        }
        // Other threads may allocate concurrently; we only check that our own 4096 bytes
        // were released again.
        assert!(global().current() <= before + 4096);
    }

    #[test]
    fn alloc_zeroed_counts() {
        let alloc = TrackingAllocator::system();
        let layout = Layout::from_size_align(1024, 8).unwrap();
        let before = global().peak();
        unsafe {
            let ptr = alloc.alloc_zeroed(layout);
            assert!(!ptr.is_null());
            assert!(std::slice::from_raw_parts(ptr, 1024)
                .iter()
                .all(|&b| b == 0));
            alloc.dealloc(ptr, layout);
        }
        assert!(global().peak() >= before);
    }

    #[test]
    fn realloc_adjusts_charge() {
        let alloc = TrackingAllocator::system();
        let layout = Layout::from_size_align(100, 8).unwrap();
        unsafe {
            let ptr = alloc.alloc(layout);
            assert!(!ptr.is_null());
            let grown = alloc.realloc(ptr, layout, 400);
            assert!(!grown.is_null());
            let new_layout = Layout::from_size_align(400, 8).unwrap();
            alloc.dealloc(grown, new_layout);
        }
    }
}
