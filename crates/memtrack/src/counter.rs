//! Current/peak memory counters with relaxed atomic updates.
//!
//! A [`MemoryCounter`] tracks a monotone peak over a current value that can grow and
//! shrink. The process-global counter ([`global`]) is fed either by the
//! [`TrackingAllocator`](crate::alloc::TrackingAllocator) (if installed as the global
//! allocator) or by explicit data-structure accounting through [`MemoryScope`].

use std::sync::atomic::{AtomicUsize, Ordering};

/// A thread-safe current/peak byte counter.
///
/// `add`/`sub` use relaxed atomics; the peak is maintained with a compare-exchange loop.
/// The counter saturates at zero on underflow instead of wrapping, so imbalanced
/// accounting (e.g. freeing bytes that were charged to a different counter) cannot
/// poison later measurements.
#[derive(Debug, Default)]
pub struct MemoryCounter {
    current: AtomicUsize,
    peak: AtomicUsize,
}

impl MemoryCounter {
    /// Creates a counter with zero current and peak bytes.
    pub const fn new() -> Self {
        Self {
            current: AtomicUsize::new(0),
            peak: AtomicUsize::new(0),
        }
    }

    /// Charges `bytes` to the counter and updates the peak if necessary.
    pub fn add(&self, bytes: usize) {
        if bytes == 0 {
            return;
        }
        let new = self.current.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.update_peak(new);
    }

    /// Releases `bytes` from the counter, saturating at zero.
    pub fn sub(&self, bytes: usize) {
        if bytes == 0 {
            return;
        }
        let mut cur = self.current.load(Ordering::Relaxed);
        loop {
            let new = cur.saturating_sub(bytes);
            match self
                .current
                .compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Returns the number of currently charged bytes.
    pub fn current(&self) -> usize {
        self.current.load(Ordering::Relaxed)
    }

    /// Returns the largest value `current` has ever reached.
    pub fn peak(&self) -> usize {
        self.peak.load(Ordering::Relaxed)
    }

    /// Resets the peak to the current value. Useful for measuring the peak of a single
    /// algorithm phase without restarting the process.
    pub fn reset_peak(&self) {
        self.peak
            .store(self.current.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Resets both current and peak to zero.
    pub fn reset(&self) {
        self.current.store(0, Ordering::Relaxed);
        self.peak.store(0, Ordering::Relaxed);
    }

    fn update_peak(&self, candidate: usize) {
        let mut peak = self.peak.load(Ordering::Relaxed);
        while candidate > peak {
            match self.peak.compare_exchange_weak(
                peak,
                candidate,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => peak = actual,
            }
        }
    }
}

static GLOBAL_COUNTER: MemoryCounter = MemoryCounter::new();

/// Returns the process-global memory counter.
///
/// All `memtrack`-aware data structures (and the optional tracking allocator) charge their
/// bytes here, so `global().peak()` is the quantity reported as "peak memory" by the
/// experiment harness.
pub fn global() -> &'static MemoryCounter {
    &GLOBAL_COUNTER
}

/// An RAII accounting scope: charges a fixed number of bytes to a counter on creation and
/// releases them on drop.
///
/// This is the building block for *data-structure level* accounting, used where the
/// tracking allocator is not installed (e.g. under Criterion, which manages its own
/// allocator) or where the paper counts logical rather than physical bytes.
#[derive(Debug)]
pub struct MemoryScope<'a> {
    counter: &'a MemoryCounter,
    bytes: usize,
}

impl<'a> MemoryScope<'a> {
    /// Charges `bytes` to `counter` for the lifetime of the returned scope.
    pub fn charge(counter: &'a MemoryCounter, bytes: usize) -> Self {
        counter.add(bytes);
        Self { counter, bytes }
    }

    /// Charges `bytes` to the process-global counter.
    pub fn charge_global(bytes: usize) -> MemoryScope<'static> {
        MemoryScope::charge(global(), bytes)
    }

    /// Grows the charge of this scope by `additional` bytes.
    pub fn grow(&mut self, additional: usize) {
        self.counter.add(additional);
        self.bytes += additional;
    }

    /// Shrinks the charge of this scope by `fewer` bytes (saturating).
    pub fn shrink(&mut self, fewer: usize) {
        let released = fewer.min(self.bytes);
        self.counter.sub(released);
        self.bytes -= released;
    }

    /// Number of bytes currently charged by this scope.
    pub fn bytes(&self) -> usize {
        self.bytes
    }
}

impl Drop for MemoryScope<'_> {
    fn drop(&mut self) {
        self.counter.sub(self.bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn add_sub_and_peak() {
        let c = MemoryCounter::new();
        c.add(100);
        c.add(50);
        assert_eq!(c.current(), 150);
        assert_eq!(c.peak(), 150);
        c.sub(120);
        assert_eq!(c.current(), 30);
        assert_eq!(c.peak(), 150);
        c.add(10);
        assert_eq!(c.peak(), 150);
    }

    #[test]
    fn sub_saturates_at_zero() {
        let c = MemoryCounter::new();
        c.add(10);
        c.sub(100);
        assert_eq!(c.current(), 0);
    }

    #[test]
    fn reset_peak_keeps_current() {
        let c = MemoryCounter::new();
        c.add(100);
        c.sub(60);
        c.reset_peak();
        assert_eq!(c.peak(), 40);
        c.add(10);
        assert_eq!(c.peak(), 50);
    }

    #[test]
    fn zero_is_a_noop() {
        let c = MemoryCounter::new();
        c.add(0);
        c.sub(0);
        assert_eq!(c.current(), 0);
        assert_eq!(c.peak(), 0);
    }

    #[test]
    fn scope_releases_on_drop() {
        let c = MemoryCounter::new();
        {
            let mut scope = MemoryScope::charge(&c, 1000);
            assert_eq!(c.current(), 1000);
            scope.grow(500);
            assert_eq!(c.current(), 1500);
            scope.shrink(200);
            assert_eq!(c.current(), 1300);
            assert_eq!(scope.bytes(), 1300);
        }
        assert_eq!(c.current(), 0);
        assert_eq!(c.peak(), 1500);
    }

    #[test]
    fn scope_shrink_saturates() {
        let c = MemoryCounter::new();
        let mut scope = MemoryScope::charge(&c, 10);
        scope.shrink(100);
        assert_eq!(scope.bytes(), 0);
        assert_eq!(c.current(), 0);
    }

    #[test]
    fn concurrent_updates_preserve_balance() {
        let c = Arc::new(MemoryCounter::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let c = Arc::clone(&c);
            handles.push(thread::spawn(move || {
                for _ in 0..10_000 {
                    c.add(16);
                    c.sub(16);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.current(), 0);
        assert!(c.peak() >= 16);
    }

    #[test]
    fn global_counter_is_shared() {
        let before = global().current();
        let scope = MemoryScope::charge_global(4096);
        assert!(global().current() >= before + 4096);
        drop(scope);
    }
}
