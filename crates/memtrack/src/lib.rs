//! Memory-accounting substrate for the TeraPart reproduction.
//!
//! The TeraPart paper's headline results are *peak memory* reductions (Figures 1, 2, 4, 6
//! and 7). Reproducing those figures requires a way to measure the peak heap footprint of
//! the partitioner's data structures. This crate provides three cooperating pieces:
//!
//! * [`TrackingAllocator`] — a global allocator wrapper that counts every allocation and
//!   deallocation and maintains the current and peak number of live heap bytes.
//! * [`counter`] — process-global and scoped [`counter::MemoryCounter`]s with relaxed
//!   atomic updates, cheap enough to leave enabled in release builds.
//! * [`phase`] — a [`phase::PhaseTracker`] that attributes peak memory to named algorithm
//!   phases (clustering, contraction, refinement, ...), reproducing the per-phase memory
//!   breakdown of Figure 2.
//! * [`reserve`] — [`reserve::ReservedVec`], a vector that distinguishes *reserved* from
//!   *committed* capacity. The paper relies on OS virtual-memory overcommit ("allocate an
//!   upper bound, only touched pages cost physical memory"); `ReservedVec` reproduces the
//!   same accounting model portably: only committed bytes are charged to the counters.
//!
//! # Example
//!
//! ```
//! use memtrack::counter::MemoryCounter;
//!
//! let counter = MemoryCounter::new();
//! counter.add(1024);
//! counter.add(2048);
//! counter.sub(1024);
//! assert_eq!(counter.current(), 2048);
//! assert_eq!(counter.peak(), 3072);
//! ```

pub mod alloc;
pub mod counter;
pub mod phase;
pub mod reserve;

pub use alloc::TrackingAllocator;
pub use counter::{global, MemoryCounter, MemoryScope};
pub use phase::{PhaseHandle, PhaseReport, PhaseTracker};
pub use reserve::ReservedVec;

/// Number of bytes in one binary mebibyte. Used by reporting helpers.
pub const MIB: usize = 1024 * 1024;

/// Number of bytes in one binary gibibyte. Used by reporting helpers.
pub const GIB: usize = 1024 * 1024 * 1024;

/// Formats a byte count as a human-readable string with binary units.
///
/// ```
/// assert_eq!(memtrack::format_bytes(512), "512 B");
/// assert_eq!(memtrack::format_bytes(2048), "2.00 KiB");
/// assert_eq!(memtrack::format_bytes(3 * 1024 * 1024), "3.00 MiB");
/// ```
pub fn format_bytes(bytes: usize) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut value = bytes as f64;
    let mut unit = 0;
    while value >= 1024.0 && unit + 1 < UNITS.len() {
        value /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{} {}", bytes, UNITS[unit])
    } else {
        format!("{:.2} {}", value, UNITS[unit])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_bytes_units() {
        assert_eq!(format_bytes(0), "0 B");
        assert_eq!(format_bytes(1023), "1023 B");
        assert_eq!(format_bytes(1024), "1.00 KiB");
        assert_eq!(format_bytes(1536), "1.50 KiB");
        assert_eq!(format_bytes(GIB), "1.00 GiB");
    }
}
