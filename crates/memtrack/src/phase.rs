//! Per-phase peak memory attribution (reproduces the Figure 2 breakdown).
//!
//! The multilevel partitioner runs a sequence of named phases per level (clustering,
//! contraction, uncoarsening/refinement, ...). A [`PhaseTracker`] records, for each phase
//! invocation, the global peak memory observed *during* that phase together with the
//! memory held at phase entry. The resulting [`PhaseReport`]s form the stacked bars of
//! Figure 2 in the paper.

use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use crate::counter::global;

/// A cheap, cloneable view of the phase stack a [`PhaseTracker`] is currently inside.
///
/// The handle outlives borrow scopes (it shares the stack by `Arc`), so long-lived
/// observers — e.g. an I/O layer that wants to label a fault with the pipeline phase
/// it interrupted — can capture one and query it at any time from any thread.
#[derive(Debug, Clone, Default)]
pub struct PhaseHandle {
    stack: Arc<Mutex<Vec<String>>>,
}

impl PhaseHandle {
    /// The innermost phase currently running (phases may nest), or `None` between
    /// phases. Formatted as `"name@level"`, e.g. `"cluster@2"`.
    pub fn current(&self) -> Option<String> {
        self.stack.lock().last().cloned()
    }

    /// The full phase stack, outermost first.
    pub fn stack(&self) -> Vec<String> {
        self.stack.lock().clone()
    }
}

/// Pops the phase stack even when the phase body panics or returns early.
struct PhaseStackGuard<'a> {
    stack: &'a Mutex<Vec<String>>,
}

impl Drop for PhaseStackGuard<'_> {
    fn drop(&mut self) {
        self.stack.lock().pop();
    }
}

/// Statistics captured for one phase invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseReport {
    /// Phase name, e.g. `"cluster"`, `"contract"`, `"refine"`.
    pub name: String,
    /// Hierarchy level the phase ran on (0 = input graph).
    pub level: usize,
    /// Bytes live when the phase started.
    pub bytes_at_entry: usize,
    /// Peak bytes observed while the phase ran.
    pub peak_bytes: usize,
    /// Bytes live when the phase finished.
    pub bytes_at_exit: usize,
    /// Wall-clock time spent in the phase.
    pub elapsed: Duration,
}

impl PhaseReport {
    /// Auxiliary memory attributable to the phase itself: peak minus what was already
    /// live at entry (e.g. the input graph and the hierarchy built so far).
    pub fn auxiliary_bytes(&self) -> usize {
        self.peak_bytes.saturating_sub(self.bytes_at_entry)
    }
}

/// Records per-phase peak memory and timing for a partitioner run.
#[derive(Debug, Default)]
pub struct PhaseTracker {
    reports: Mutex<Vec<PhaseReport>>,
    active: PhaseHandle,
}

impl PhaseTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// A cloneable handle to the live phase stack, for observers that need to know
    /// *which* phase the run is in right now (see [`PhaseHandle`]).
    pub fn phase_handle(&self) -> PhaseHandle {
        self.active.clone()
    }

    /// Runs `f` as a named phase, capturing entry/peak/exit memory and elapsed time.
    ///
    /// Phases may nest; each invocation produces its own report. The global peak counter
    /// is reset to the current value at phase entry so that the recorded peak belongs to
    /// this phase (the overall run peak is the maximum over all reports).
    pub fn run<T>(&self, name: &str, level: usize, f: impl FnOnce() -> T) -> T {
        self.run_reported(name, level, f).0
    }

    /// Like [`run`](Self::run), but also hands the caller the [`PhaseReport`] that was
    /// recorded, so observability layers can attach the phase's peak/elapsed figures
    /// to their own span without re-scanning [`reports`](Self::reports).
    pub fn run_reported<T>(
        &self,
        name: &str,
        level: usize,
        f: impl FnOnce() -> T,
    ) -> (T, PhaseReport) {
        let entry = global().current();
        global().reset_peak();
        self.active.stack.lock().push(format!("{}@{}", name, level));
        let guard = PhaseStackGuard {
            stack: &self.active.stack,
        };
        let start = Instant::now();
        let result = f();
        let elapsed = start.elapsed();
        drop(guard);
        let peak = global().peak();
        let exit = global().current();
        let report = PhaseReport {
            name: name.to_string(),
            level,
            bytes_at_entry: entry,
            peak_bytes: peak.max(entry),
            bytes_at_exit: exit,
            elapsed,
        };
        self.reports.lock().push(report.clone());
        (result, report)
    }

    /// Records an externally measured phase (used by code that cannot wrap the phase in a
    /// closure, e.g. across FFI-style boundaries or when replaying saved measurements).
    pub fn record(&self, report: PhaseReport) {
        self.reports.lock().push(report);
    }

    /// Returns all reports recorded so far, in execution order.
    pub fn reports(&self) -> Vec<PhaseReport> {
        self.reports.lock().clone()
    }

    /// Returns the maximum phase peak, i.e. the overall peak memory of the tracked run.
    pub fn overall_peak(&self) -> usize {
        self.reports
            .lock()
            .iter()
            .map(|r| r.peak_bytes)
            .max()
            .unwrap_or(0)
    }

    /// Returns the total elapsed time across all recorded phases.
    pub fn total_elapsed(&self) -> Duration {
        self.reports.lock().iter().map(|r| r.elapsed).sum()
    }

    /// Returns the peak memory of the phase with the given name (max over levels), if any
    /// such phase was recorded.
    pub fn peak_of(&self, name: &str) -> Option<usize> {
        self.reports
            .lock()
            .iter()
            .filter(|r| r.name == name)
            .map(|r| r.peak_bytes)
            .max()
    }

    /// Removes all recorded reports.
    pub fn clear(&self) {
        self.reports.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counter::MemoryScope;

    #[test]
    fn phases_capture_peak_and_order() {
        let tracker = PhaseTracker::new();
        tracker.run("cluster", 0, || {
            let _scope = MemoryScope::charge_global(10 * 1024 * 1024);
        });
        tracker.run("contract", 0, || {
            let _scope = MemoryScope::charge_global(2 * 1024 * 1024);
        });
        let reports = tracker.reports();
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].name, "cluster");
        assert_eq!(reports[1].name, "contract");
        assert!(reports[0].auxiliary_bytes() >= 10 * 1024 * 1024);
        assert!(reports[1].auxiliary_bytes() >= 2 * 1024 * 1024);
        assert!(tracker.overall_peak() >= 10 * 1024 * 1024);
    }

    #[test]
    fn peak_of_selects_by_name() {
        let tracker = PhaseTracker::new();
        tracker.run("cluster", 0, || {
            let _s = MemoryScope::charge_global(4096);
        });
        tracker.run("cluster", 1, || {
            let _s = MemoryScope::charge_global(128);
        });
        assert!(tracker.peak_of("cluster").unwrap() >= 4096);
        assert!(tracker.peak_of("refine").is_none());
    }

    #[test]
    fn run_returns_closure_value() {
        let tracker = PhaseTracker::new();
        let value = tracker.run("compute", 3, || 42);
        assert_eq!(value, 42);
        assert_eq!(tracker.reports()[0].level, 3);
    }

    #[test]
    fn clear_empties_reports() {
        let tracker = PhaseTracker::new();
        tracker.run("a", 0, || ());
        tracker.clear();
        assert!(tracker.reports().is_empty());
        assert_eq!(tracker.overall_peak(), 0);
    }

    #[test]
    fn phase_handle_tracks_the_live_stack() {
        let tracker = PhaseTracker::new();
        let handle = tracker.phase_handle();
        assert_eq!(handle.current(), None);
        tracker.run("outer", 0, || {
            assert_eq!(handle.current().as_deref(), Some("outer@0"));
            tracker.run("inner", 1, || {
                assert_eq!(handle.current().as_deref(), Some("inner@1"));
                assert_eq!(handle.stack(), vec!["outer@0", "inner@1"]);
            });
            assert_eq!(handle.current().as_deref(), Some("outer@0"));
        });
        assert_eq!(handle.current(), None, "stack drained after the phases");
    }

    #[test]
    fn phase_stack_is_popped_on_panic() {
        let tracker = PhaseTracker::new();
        let handle = tracker.phase_handle();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            tracker.run("doomed", 0, || panic!("boom"));
        }));
        assert!(result.is_err());
        assert_eq!(handle.current(), None, "guard must pop on unwind");
    }

    #[test]
    fn record_external_report() {
        let tracker = PhaseTracker::new();
        tracker.record(PhaseReport {
            name: "io".into(),
            level: 0,
            bytes_at_entry: 0,
            peak_bytes: 777,
            bytes_at_exit: 100,
            elapsed: Duration::from_millis(5),
        });
        assert_eq!(tracker.peak_of("io"), Some(777));
        assert!(tracker.total_elapsed() >= Duration::from_millis(5));
    }
}
