//! Reserve-vs-commit vector: a portable model of virtual-memory overcommitment.
//!
//! TeraPart's single-pass graph compression (paper §III-B) and one-pass contraction
//! (§IV-B) both need an output array whose final size is unknown until the data has been
//! produced. The paper solves this by *overcommitting*: it reserves an upper bound of
//! virtual address space and relies on the OS to back only the touched pages with
//! physical memory, so peak memory is proportional to the bytes actually written.
//!
//! [`ReservedVec`] reproduces that accounting model portably. It allocates the upper
//! bound up front (so pushes never reallocate and never invalidate concurrently-computed
//! offsets — the property the algorithms rely on), but charges the memory counters only
//! for *committed* bytes, in page-sized granules, exactly as the OS would back pages on
//! first touch.

use crate::counter::{global, MemoryCounter};

/// Size of one accounting granule ("page") in bytes.
pub const PAGE_SIZE: usize = 4096;

/// A fixed-reservation, grow-only vector with page-granular commit accounting.
///
/// The reservation is immutable after construction: `push`/`extend` panic if the
/// reservation would be exceeded, mirroring the paper's requirement that the reserved
/// upper bound is a true upper bound (2m for the coarse edge array, the worst-case
/// compressed size for the compressed edge array).
#[derive(Debug)]
pub struct ReservedVec<T> {
    data: Vec<T>,
    reserved: usize,
    committed_bytes: usize,
    counter: &'static MemoryCounter,
}

impl<T> ReservedVec<T> {
    /// Reserves space for `reserved` elements without charging them to the memory
    /// counters. Only committed (written) elements are charged, rounded up to pages.
    pub fn with_reservation(reserved: usize) -> Self {
        Self {
            data: Vec::with_capacity(reserved),
            reserved,
            committed_bytes: 0,
            counter: global(),
        }
    }

    /// Number of elements the reservation can hold.
    pub fn reserved(&self) -> usize {
        self.reserved
    }

    /// Number of elements currently committed (written).
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if no elements have been committed yet.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Bytes charged to the memory counter for this vector (committed pages).
    pub fn committed_bytes(&self) -> usize {
        self.committed_bytes
    }

    /// Bytes that would be charged if the full reservation were committed.
    pub fn reserved_bytes(&self) -> usize {
        self.reserved * std::mem::size_of::<T>()
    }

    /// Appends a single element. Panics if the reservation is exhausted.
    pub fn push(&mut self, value: T) {
        assert!(
            self.data.len() < self.reserved,
            "ReservedVec overflow: reservation of {} elements exhausted",
            self.reserved
        );
        self.data.push(value);
        self.recommit();
    }

    /// Appends all elements from `values`. Panics if the reservation is exceeded.
    pub fn extend_from_slice(&mut self, values: &[T])
    where
        T: Clone,
    {
        assert!(
            self.data.len() + values.len() <= self.reserved,
            "ReservedVec overflow: {} + {} > reservation {}",
            self.data.len(),
            values.len(),
            self.reserved
        );
        self.data.extend_from_slice(values);
        self.recommit();
    }

    /// Extends the vector with `count` copies of `value`.
    pub fn extend_with(&mut self, count: usize, value: T)
    where
        T: Clone,
    {
        assert!(
            self.data.len() + count <= self.reserved,
            "ReservedVec overflow"
        );
        self.data.extend(std::iter::repeat_n(value, count));
        self.recommit();
    }

    /// Returns the committed elements as a slice.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Returns the committed elements as a mutable slice.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Shrinks the underlying allocation to the committed length and returns the plain
    /// `Vec`. The committed bytes stay charged to the regular allocator accounting from
    /// here on (the scope charge is released).
    pub fn into_vec(mut self) -> Vec<T> {
        let mut data = std::mem::take(&mut self.data);
        data.shrink_to_fit();
        data
    }

    fn recommit(&mut self) {
        let used = self.data.len() * std::mem::size_of::<T>();
        let committed = used.div_ceil(PAGE_SIZE) * PAGE_SIZE;
        if committed > self.committed_bytes {
            self.counter.add(committed - self.committed_bytes);
            self.committed_bytes = committed;
        }
    }
}

impl<T> Drop for ReservedVec<T> {
    fn drop(&mut self) {
        self.counter.sub(self.committed_bytes);
    }
}

impl<T> std::ops::Index<usize> for ReservedVec<T> {
    type Output = T;

    fn index(&self, index: usize) -> &T {
        &self.data[index]
    }
}

impl<T> std::ops::IndexMut<usize> for ReservedVec<T> {
    fn index_mut(&mut self, index: usize) -> &mut T {
        &mut self.data[index]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn committed_bytes_grow_with_pages() {
        let mut v: ReservedVec<u64> = ReservedVec::with_reservation(10_000);
        assert_eq!(v.committed_bytes(), 0);
        v.push(1);
        assert_eq!(v.committed_bytes(), PAGE_SIZE);
        // 512 u64 = 4096 bytes fill exactly one page.
        for i in 1..512u64 {
            v.push(i);
        }
        assert_eq!(v.committed_bytes(), PAGE_SIZE);
        v.push(512);
        assert_eq!(v.committed_bytes(), 2 * PAGE_SIZE);
        assert_eq!(v.len(), 513);
        assert!(v.reserved_bytes() >= 80_000);
    }

    #[test]
    fn extend_and_index() {
        let mut v: ReservedVec<u32> = ReservedVec::with_reservation(100);
        v.extend_from_slice(&[1, 2, 3]);
        v.extend_with(2, 9);
        assert_eq!(v.as_slice(), &[1, 2, 3, 9, 9]);
        assert_eq!(v[0], 1);
        v[0] = 7;
        assert_eq!(v.as_slice()[0], 7);
        assert!(!v.is_empty());
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn push_past_reservation_panics() {
        let mut v: ReservedVec<u8> = ReservedVec::with_reservation(2);
        v.push(1);
        v.push(2);
        v.push(3);
    }

    #[test]
    fn into_vec_shrinks() {
        let mut v: ReservedVec<u16> = ReservedVec::with_reservation(1_000_000);
        v.extend_from_slice(&[5, 6, 7]);
        let plain = v.into_vec();
        assert_eq!(plain, vec![5, 6, 7]);
        assert!(plain.capacity() < 1_000_000);
    }

    #[test]
    fn drop_releases_committed_charge() {
        let before = global().current();
        {
            let mut v: ReservedVec<u64> = ReservedVec::with_reservation(100_000);
            for i in 0..50_000u64 {
                v.push(i);
            }
            assert!(global().current() >= before + 50_000 * 8 / PAGE_SIZE * PAGE_SIZE);
        }
        assert!(global().current() <= before + PAGE_SIZE);
    }

    #[test]
    fn reservation_never_reallocates() {
        let mut v: ReservedVec<u32> = ReservedVec::with_reservation(10_000);
        v.push(0);
        let ptr_before = v.as_slice().as_ptr();
        for i in 1..10_000u32 {
            v.push(i);
        }
        assert_eq!(ptr_before, v.as_slice().as_ptr());
    }
}
