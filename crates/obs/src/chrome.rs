//! Chrome `chrome://tracing` / Perfetto trace-event export.
//!
//! Emits the JSON-array flavour of the trace-event format: one complete (`"ph": "X"`)
//! event per span, timestamps in microseconds relative to the recorder epoch. The
//! span's recorder id and parent id ride along in `args` so tools (and the `obs_smoke`
//! validator) can check the nesting without relying on timestamp containment alone.

use std::io::{self, Write};
use std::path::Path;

use crate::report::{ReportSpan, RunReport};

/// Writes the report's span tree as a Chrome trace-event JSON file.
///
/// The file is written atomically enough for our purposes (single create + buffered
/// writes); on error the partially written file is left for inspection.
pub fn write_chrome_trace(path: &Path, report: &RunReport) -> io::Result<()> {
    let file = std::fs::File::create(path)?;
    let mut out = io::BufWriter::new(file);
    out.write_all(b"[\n")?;
    let mut next_id = 1u64;
    let mut first = true;
    for root in &report.roots {
        write_events(&mut out, root, 0, &mut next_id, &mut first)?;
    }
    out.write_all(b"\n]\n")?;
    out.flush()
}

fn write_events(
    out: &mut impl Write,
    span: &ReportSpan,
    parent: u64,
    next_id: &mut u64,
    first: &mut bool,
) -> io::Result<()> {
    let id = *next_id;
    *next_id += 1;
    if !*first {
        out.write_all(b",\n")?;
    }
    *first = false;
    let mut args = format!("\"id\": {id}, \"parent\": {parent}");
    if let Some(level) = span.level {
        args.push_str(&format!(", \"level\": {level}"));
    }
    for (k, v) in &span.attrs {
        args.push_str(&format!(", \"{k}\": {v}"));
    }
    write!(
        out,
        "{{\"name\": \"{}\", \"cat\": \"{}\", \"ph\": \"X\", \"ts\": {}.{:03}, \"dur\": {}.{:03}, \"pid\": 1, \"tid\": 1, \"args\": {{{}}}}}",
        span.name,
        span.kind.name(),
        span.start_ns / 1000,
        span.start_ns % 1000,
        span.dur_ns / 1000,
        span.dur_ns % 1000,
        args
    )?;
    for child in &span.children {
        write_events(out, child, id, next_id, first)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;
    use crate::report::SpanRecord;
    use crate::sink::SpanKind;

    #[test]
    fn trace_file_is_a_json_array_of_complete_events() {
        let spans = vec![
            SpanRecord {
                id: 1,
                parent: 0,
                kind: SpanKind::Pipeline,
                name: "pipeline",
                level: None,
                start_ns: 0,
                end_ns: 5_000_000,
                attrs: vec![("n", 100)],
            },
            SpanRecord {
                id: 2,
                parent: 1,
                kind: SpanKind::Phase,
                name: "cluster",
                level: Some(0),
                start_ns: 1_000,
                end_ns: 2_000_000,
                attrs: Vec::new(),
            },
        ];
        let report = RunReport::from_spans(spans, &MetricsRegistry::new());
        let dir = std::env::temp_dir().join("obs_chrome_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.json");
        write_chrome_trace(&path, &report).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.trim_start().starts_with('['));
        assert!(text.trim_end().ends_with(']'));
        assert!(text.contains("\"ph\": \"X\""));
        assert!(text.contains("\"name\": \"pipeline\""));
        assert!(
            text.contains("\"parent\": 1"),
            "child links to its parent id"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
