//! Unified tracing and metrics for the partitioning pipeline.
//!
//! This crate is the observability substrate the rest of the workspace records into:
//!
//! * **Spans** ([`SpanGuard`], [`SpanKind`]) form the hierarchy
//!   `pipeline → level → phase → round/pass`. Each span carries wall-clock timing and
//!   key/value attributes (`u64` values only — no formatting on the hot path).
//! * **Counters** ([`Counter`], [`MetricsRegistry`]) unify the pipeline's scattered
//!   statistics — LP rounds/moves, FM passes and rolled-back moves, page-cache
//!   hit/miss/prefetch counters, spill bytes, memory peaks — into one typed registry.
//! * **Exporters** turn a finished recording into a [`RunReport`] (hand-rolled JSON,
//!   embedded into the bench result files), a Chrome `chrome://tracing` trace-event
//!   file ([`write_chrome_trace`]), or a human-readable summary table
//!   ([`RunReport::summary_table`]).
//! * **Progress** ([`ProgressHook`], [`ProgressEvent`]) is the live streaming seam:
//!   coarsening level transitions and refinement pass completions with current
//!   cut/balance, intended for a future `terapartd` server.
//!
//! # Overhead contract
//!
//! Everything hangs off an [`ObsHandle`]. The disabled handle ([`ObsHandle::noop`])
//! holds no allocation at all — spans constructed through it never allocate, attribute
//! pushes are skipped, and counter updates are a single branch on a `None`. This is
//! asserted by tests ([`SpanGuard::attr_capacity`] stays 0) so instrumentation can stay
//! in the hot loops unconditionally.
//!
//! # Determinism contract
//!
//! Recording only *reads* the algorithm state: span begin/end capture timestamps,
//! counters aggregate commutatively (`fetch_add`/`fetch_max`), and no RNG stream or
//! visit order is touched. A fixed-seed run is bit-identical with observability on,
//! off, or exporting — the workspace's integration tests compare the assignments
//! directly at several thread counts.

mod chrome;
mod metrics;
mod progress;
mod recorder;
mod report;
mod sink;

pub use chrome::write_chrome_trace;
pub use metrics::{Counter, CounterKind, MetricsRegistry};
pub use progress::{ProgressEvent, ProgressHook};
pub use recorder::Recorder;
pub use report::{ReportSpan, RunReport, SpanRecord};
pub use sink::{NoopSink, ObsHandle, ObsSink, SpanGuard, SpanKind};
