//! The typed counter/gauge registry.
//!
//! One fixed-size array of atomics, indexed by the [`Counter`] enum. Sums use
//! `fetch_add` and maxima use `fetch_max`, both with relaxed ordering — every update is
//! commutative, so totals are independent of thread interleaving and the registry never
//! perturbs determinism.

use std::sync::atomic::{AtomicU64, Ordering};

macro_rules! counters {
    ($(($variant:ident, $name:literal, $kind:ident)),+ $(,)?) => {
        /// Every metric the pipeline records, as a typed index into [`MetricsRegistry`].
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        #[repr(usize)]
        pub enum Counter {
            $($variant),+
        }

        impl Counter {
            /// All counters, in declaration (= export) order.
            pub const ALL: &'static [Counter] = &[$(Counter::$variant),+];

            /// The number of counters (size of the registry's cell array).
            pub const COUNT: usize = Counter::ALL.len();

            /// Stable snake_case name used in JSON exports and summary tables.
            pub fn name(self) -> &'static str {
                match self {
                    $(Counter::$variant => $name),+
                }
            }

            /// Whether updates accumulate (`Sum`) or keep the maximum (`Max`).
            pub fn kind(self) -> CounterKind {
                match self {
                    $(Counter::$variant => CounterKind::$kind),+
                }
            }
        }
    };
}

counters! {
    // Label propagation: clustering (coarsening) side.
    (LpClusterRounds, "lp_cluster_rounds", Sum),
    (LpClusterMoves, "lp_cluster_moves", Sum),
    // Label propagation: refinement side.
    (LpRefineRounds, "lp_refine_rounds", Sum),
    (LpRefineMoves, "lp_refine_moves", Sum),
    // FM refinement (batched and priority-queue k-way).
    (FmPasses, "fm_passes", Sum),
    (FmMovesAccepted, "fm_moves_accepted", Sum),
    (FmMovesRolledBack, "fm_moves_rolled_back", Sum),
    (RebalanceMoves, "rebalance_moves", Sum),
    // Coarsening shape.
    (CoarseningLevels, "coarsening_levels", Sum),
    // Initial partitioning portfolio.
    (InitialBisections, "initial_bisections", Sum),
    (InitialAttempts, "initial_attempts", Sum),
    // Paged store cache.
    (CacheHits, "cache_hits", Sum),
    (CacheMisses, "cache_misses", Sum),
    (CachePrefetchedPages, "cache_prefetched_pages", Sum),
    (CachePrefetchBytes, "cache_prefetch_bytes", Sum),
    (CacheRetriedReads, "cache_retried_reads", Sum),
    (CacheChecksumFailures, "cache_checksum_failures", Sum),
    // Streaming ingest spill files.
    (SpillBytes, "spill_bytes", Sum),
    (SpillRecords, "spill_records", Sum),
    // Mmap store backend.
    (MmapOpens, "mmap_opens", Sum),
    (MmapMappedBytes, "mmap_mapped_bytes", Max),
    (MmapOffsetIndexBytes, "mmap_offset_index_bytes", Max),
    (MmapOpenRetriedReads, "mmap_open_retried_reads", Sum),
    (MmapMadviseHints, "mmap_madvise_hints", Sum),
    // Memory gauges (peaks, not sums).
    (GainTableBytes, "gain_table_bytes", Max),
    (PeakMemoryBytes, "peak_memory_bytes", Max),
}

/// Aggregation discipline of a [`Counter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CounterKind {
    /// Updates accumulate; order-independent by commutativity of addition.
    Sum,
    /// Updates keep the running maximum (a gauge peak).
    Max,
}

/// Fixed-size registry of atomic cells, one per [`Counter`].
#[derive(Debug)]
pub struct MetricsRegistry {
    cells: [AtomicU64; Counter::COUNT],
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self {
            cells: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl MetricsRegistry {
    /// Creates a registry with all cells at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to a sum counter (callable from any thread).
    pub fn add(&self, counter: Counter, delta: u64) {
        debug_assert_eq!(counter.kind(), CounterKind::Sum);
        if delta != 0 {
            self.cells[counter as usize].fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Raises a max gauge to at least `value` (callable from any thread).
    pub fn record_max(&self, counter: Counter, value: u64) {
        debug_assert_eq!(counter.kind(), CounterKind::Max);
        self.cells[counter as usize].fetch_max(value, Ordering::Relaxed);
    }

    /// Current value of one counter.
    pub fn get(&self, counter: Counter) -> u64 {
        self.cells[counter as usize].load(Ordering::Relaxed)
    }

    /// All counters with a non-zero value, in declaration order.
    pub fn snapshot(&self) -> Vec<(Counter, u64)> {
        Counter::ALL
            .iter()
            .map(|&c| (c, self.get(c)))
            .filter(|&(_, v)| v != 0)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sums_accumulate_and_maxes_keep_peak() {
        let m = MetricsRegistry::new();
        m.add(Counter::LpClusterMoves, 3);
        m.add(Counter::LpClusterMoves, 4);
        m.record_max(Counter::PeakMemoryBytes, 100);
        m.record_max(Counter::PeakMemoryBytes, 50);
        assert_eq!(m.get(Counter::LpClusterMoves), 7);
        assert_eq!(m.get(Counter::PeakMemoryBytes), 100);
    }

    #[test]
    fn snapshot_skips_zeroes_and_preserves_order() {
        let m = MetricsRegistry::new();
        m.add(Counter::FmPasses, 2);
        m.add(Counter::CacheHits, 9);
        let snap = m.snapshot();
        assert_eq!(
            snap,
            vec![(Counter::FmPasses, 2), (Counter::CacheHits, 9)],
            "declaration order, zero cells omitted"
        );
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = Counter::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Counter::COUNT);
    }
}
