//! Live progress reporting: the seam a resident server streams to clients.
//!
//! The hook is deliberately pull-free — the pipeline pushes small value-typed events
//! at coarse boundaries (level transitions, refinement pass completion) and never
//! blocks on the callback's behalf. Computing the live cut for an event is a read-only
//! scan, so an installed hook cannot perturb the partitioning result.

use std::fmt;
use std::sync::Arc;

/// What the pipeline reports while it runs.
#[derive(Debug, Clone, PartialEq)]
pub enum ProgressEvent {
    /// A coarsening level finished (clustering + contraction).
    LevelCoarsened {
        /// Level index, 0 = first contraction of the input graph.
        level: usize,
        /// Vertices before contraction.
        fine_nodes: usize,
        /// Vertices after contraction.
        coarse_nodes: usize,
        /// Edges after contraction.
        coarse_edges: usize,
    },
    /// The coarsest graph received its initial partition.
    InitialPartitioned {
        /// Vertices of the coarsest graph.
        coarse_nodes: usize,
        /// Cut of the initial partition.
        edge_cut: u64,
        /// Imbalance of the initial partition.
        imbalance: f64,
    },
    /// One uncoarsening level finished refining (projection + LP + FM + rebalance).
    LevelRefined {
        /// Level index counting down toward 0 (= the input graph).
        level: usize,
        /// Vertices at this level.
        nodes: usize,
        /// Cut after refining this level.
        edge_cut: u64,
        /// Imbalance after refining this level.
        imbalance: f64,
    },
}

/// An optional, cloneable progress callback (`PartitionerConfig::with_progress`).
///
/// Equality (needed because partitioner configs derive `PartialEq`) is identity-based:
/// two hooks are equal when both are unset or both share the same callback allocation.
#[derive(Clone, Default)]
pub struct ProgressHook(Option<Arc<ProgressCallback>>);

/// The boxed callback type behind a [`ProgressHook`].
type ProgressCallback = dyn Fn(&ProgressEvent) + Send + Sync;

impl ProgressHook {
    /// The unset hook (no callback, no allocation).
    pub const fn none() -> Self {
        Self(None)
    }

    /// Wraps a callback.
    pub fn new(f: impl Fn(&ProgressEvent) + Send + Sync + 'static) -> Self {
        Self(Some(Arc::new(f)))
    }

    /// Whether a callback is installed.
    pub fn is_set(&self) -> bool {
        self.0.is_some()
    }

    /// Invokes the callback if installed.
    pub fn emit(&self, event: &ProgressEvent) {
        if let Some(f) = &self.0 {
            f(event);
        }
    }
}

impl fmt::Debug for ProgressHook {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("ProgressHook")
            .field(&self.0.as_ref().map(|_| "fn"))
            .finish()
    }
}

impl PartialEq for ProgressHook {
    fn eq(&self, other: &Self) -> bool {
        match (&self.0, &other.0) {
            (None, None) => true,
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn unset_hook_is_free_and_silent() {
        let hook = ProgressHook::none();
        assert!(!hook.is_set());
        hook.emit(&ProgressEvent::InitialPartitioned {
            coarse_nodes: 1,
            edge_cut: 0,
            imbalance: 0.0,
        });
    }

    #[test]
    fn set_hook_receives_events_and_compares_by_identity() {
        let count = Arc::new(AtomicUsize::new(0));
        let c = count.clone();
        let hook = ProgressHook::new(move |_| {
            c.fetch_add(1, Ordering::Relaxed);
        });
        let clone = hook.clone();
        assert_eq!(hook, clone, "clones share the callback");
        assert_ne!(hook, ProgressHook::none());
        clone.emit(&ProgressEvent::LevelCoarsened {
            level: 0,
            fine_nodes: 10,
            coarse_nodes: 5,
            coarse_edges: 7,
        });
        assert_eq!(count.load(Ordering::Relaxed), 1);
    }
}
