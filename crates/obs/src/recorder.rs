//! The default recording sink.
//!
//! Span nesting is tracked on a thread-local stack (spans are emitted by the pipeline
//! driver thread, so parent/child relationships are well-defined without any global
//! synchronisation), and completed spans are appended to a mutex-protected vector —
//! locked once per span *end*, never inside a span. Counters go to the lock-free
//! [`MetricsRegistry`]. Multiple recorders may be live at once (parallel tests): stack
//! frames are tagged with the owning recorder so interleaved recorders on one thread
//! cannot corrupt each other's nesting.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use parking_lot::Mutex;

use crate::metrics::{Counter, MetricsRegistry};
use crate::report::{RunReport, SpanRecord};
use crate::sink::{ObsSink, SpanKind};

struct OpenFrame {
    recorder: usize,
    id: u64,
    parent: u64,
    kind: SpanKind,
    name: &'static str,
    level: Option<u64>,
    start_ns: u64,
}

thread_local! {
    static SPAN_STACK: RefCell<Vec<OpenFrame>> = const { RefCell::new(Vec::new()) };
}

/// Collects spans and counters for one run; see the module docs.
#[derive(Debug)]
pub struct Recorder {
    epoch: Instant,
    next_id: AtomicU64,
    spans: Mutex<Vec<SpanRecord>>,
    metrics: MetricsRegistry,
}

impl Default for Recorder {
    fn default() -> Self {
        Self::new()
    }
}

impl Recorder {
    /// Creates an empty recorder; timestamps are relative to this moment.
    pub fn new() -> Self {
        Self {
            epoch: Instant::now(),
            next_id: AtomicU64::new(1),
            spans: Mutex::new(Vec::new()),
            metrics: MetricsRegistry::new(),
        }
    }

    /// The counter/gauge registry of this recording.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Number of completed spans so far.
    pub fn span_count(&self) -> usize {
        self.spans.lock().len()
    }

    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    fn token(&self) -> usize {
        self as *const Recorder as usize
    }

    /// Builds the [`RunReport`] from everything recorded so far (spans are drained;
    /// the registry is left intact).
    pub fn finish_report(&self) -> RunReport {
        let spans = std::mem::take(&mut *self.spans.lock());
        RunReport::from_spans(spans, &self.metrics)
    }
}

impl ObsSink for Recorder {
    fn span_begin(&self, kind: SpanKind, name: &'static str, level: Option<u64>) -> u64 {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let start_ns = self.now_ns();
        let token = self.token();
        SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let parent = stack
                .iter()
                .rev()
                .find(|f| f.recorder == token)
                .map_or(0, |f| f.id);
            stack.push(OpenFrame {
                recorder: token,
                id,
                parent,
                kind,
                name,
                level,
                start_ns,
            });
        });
        id
    }

    fn span_end(&self, id: u64, attrs: &[(&'static str, u64)]) {
        let end_ns = self.now_ns();
        let token = self.token();
        let frame = SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            // The matching frame is almost always on top; tolerate out-of-order drops
            // (e.g. a guard stored across an early return) by scanning.
            let pos = stack
                .iter()
                .rposition(|f| f.recorder == token && f.id == id)?;
            Some(stack.remove(pos))
        });
        let Some(frame) = frame else { return };
        self.spans.lock().push(SpanRecord {
            id: frame.id,
            parent: frame.parent,
            kind: frame.kind,
            name: frame.name,
            level: frame.level,
            start_ns: frame.start_ns,
            end_ns: end_ns.max(frame.start_ns),
            attrs: attrs.to_vec(),
        });
    }

    fn counter_add(&self, counter: Counter, delta: u64) {
        self.metrics.add(counter, delta);
    }

    fn gauge_max(&self, counter: Counter, value: u64) {
        self.metrics.record_max(counter, value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::ObsHandle;

    #[test]
    fn spans_nest_by_open_order() {
        let (obs, rec) = ObsHandle::recording();
        {
            let _root = obs.span(SpanKind::Pipeline, "pipeline");
            {
                let _lvl = obs.span_at(SpanKind::Level, "coarsen_level", 0);
                let _phase = obs.span_at(SpanKind::Phase, "cluster", 0);
            }
        }
        let report = rec.finish_report();
        assert_eq!(report.roots.len(), 1);
        let root = &report.roots[0];
        assert_eq!(root.name, "pipeline");
        assert_eq!(root.children.len(), 1);
        assert_eq!(root.children[0].name, "coarsen_level");
        assert_eq!(root.children[0].children[0].name, "cluster");
    }

    #[test]
    fn concurrent_recorders_do_not_cross_link() {
        let (a, ra) = ObsHandle::recording();
        let (b, rb) = ObsHandle::recording();
        let _root_a = a.span(SpanKind::Pipeline, "a");
        {
            let _root_b = b.span(SpanKind::Pipeline, "b");
            let _child_b = b.span_at(SpanKind::Level, "b_child", 0);
        }
        drop(_root_a);
        let report_a = ra.finish_report();
        let report_b = rb.finish_report();
        assert_eq!(report_a.roots.len(), 1);
        assert!(report_a.roots[0].children.is_empty());
        assert_eq!(report_b.roots[0].children.len(), 1);
    }

    #[test]
    fn counters_flow_into_the_registry() {
        let (obs, rec) = ObsHandle::recording();
        obs.add(Counter::LpRefineMoves, 5);
        obs.add(Counter::LpRefineMoves, 2);
        obs.gauge_max(Counter::GainTableBytes, 1024);
        assert_eq!(rec.metrics().get(Counter::LpRefineMoves), 7);
        assert_eq!(rec.metrics().get(Counter::GainTableBytes), 1024);
    }

    #[test]
    fn spans_from_worker_threads_do_not_nest_under_the_driver() {
        let (obs, rec) = ObsHandle::recording();
        let _root = obs.span(SpanKind::Pipeline, "pipeline");
        let handle = obs.clone();
        std::thread::spawn(move || {
            let _task = handle.span(SpanKind::Phase, "worker_task");
        })
        .join()
        .unwrap();
        drop(_root);
        let report = rec.finish_report();
        // The worker-thread span has no parent on its own thread → it is a root.
        assert_eq!(report.roots.len(), 2);
    }
}
