//! The structured [`RunReport`] exporter: span tree + counter snapshot + coverage,
//! with hand-rolled JSON (this workspace uses no serde) and a human-readable summary
//! table.

use crate::metrics::{Counter, MetricsRegistry};
use crate::sink::SpanKind;

/// One completed span as recorded by the sink (flat, pre-tree form).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Recorder-unique id (1-based; 0 is "no parent").
    pub id: u64,
    /// Id of the enclosing span, or 0 for a root.
    pub parent: u64,
    /// Position in the span hierarchy.
    pub kind: SpanKind,
    /// Static span name, e.g. `"cluster"`.
    pub name: &'static str,
    /// Hierarchy level or round/pass index, when meaningful.
    pub level: Option<u64>,
    /// Start offset from the recorder epoch, nanoseconds.
    pub start_ns: u64,
    /// End offset from the recorder epoch, nanoseconds.
    pub end_ns: u64,
    /// Key/value attributes attached before the span closed.
    pub attrs: Vec<(&'static str, u64)>,
}

/// A span in the assembled tree of a [`RunReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReportSpan {
    /// Position in the span hierarchy.
    pub kind: SpanKind,
    /// Static span name.
    pub name: &'static str,
    /// Hierarchy level or round/pass index, when meaningful.
    pub level: Option<u64>,
    /// Start offset from the recorder epoch, nanoseconds.
    pub start_ns: u64,
    /// Wall-clock duration, nanoseconds.
    pub dur_ns: u64,
    /// Key/value attributes.
    pub attrs: Vec<(&'static str, u64)>,
    /// Child spans, in start order.
    pub children: Vec<ReportSpan>,
}

impl ReportSpan {
    /// Duration in seconds.
    pub fn seconds(&self) -> f64 {
        self.dur_ns as f64 / 1e9
    }

    /// Fraction of this span's duration covered by its direct children.
    pub fn child_coverage(&self) -> f64 {
        if self.dur_ns == 0 {
            return 1.0;
        }
        let covered: u64 = self.children.iter().map(|c| c.dur_ns).sum();
        (covered as f64 / self.dur_ns as f64).min(1.0)
    }

    /// Value of an attribute, if attached.
    pub fn attr(&self, key: &str) -> Option<u64> {
        self.attrs.iter().find(|(k, _)| *k == key).map(|&(_, v)| v)
    }

    /// Depth-first search for the first descendant (or self) with this name.
    pub fn find(&self, name: &str) -> Option<&ReportSpan> {
        if self.name == name {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(name))
    }

    fn for_each<'a>(&'a self, f: &mut impl FnMut(&'a ReportSpan)) {
        f(self);
        for c in &self.children {
            c.for_each(f);
        }
    }
}

/// Everything one recorded run exports: the span tree, the counter snapshot, and the
/// coverage figure used by the acceptance tests.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Duration of the longest root span (the `pipeline` span), nanoseconds.
    pub total_ns: u64,
    /// Fraction of the root span's wall time covered by its direct children.
    pub span_coverage: f64,
    /// Non-zero counters, in declaration order.
    pub counters: Vec<(Counter, u64)>,
    /// Root spans (normally exactly one: `pipeline`).
    pub roots: Vec<ReportSpan>,
}

impl RunReport {
    /// Assembles the tree from flat records plus a counter snapshot.
    pub fn from_spans(mut spans: Vec<SpanRecord>, metrics: &MetricsRegistry) -> Self {
        spans.sort_by_key(|s| (s.start_ns, s.id));
        // Children are attached bottom-up: process in reverse start order so every
        // span's children are complete before it is attached to its own parent.
        let mut nodes: Vec<Option<ReportSpan>> = spans
            .iter()
            .map(|s| {
                Some(ReportSpan {
                    kind: s.kind,
                    name: s.name,
                    level: s.level,
                    start_ns: s.start_ns,
                    dur_ns: s.end_ns - s.start_ns,
                    attrs: s.attrs.clone(),
                    children: Vec::new(),
                })
            })
            .collect();
        let index_of_id: std::collections::HashMap<u64, usize> =
            spans.iter().enumerate().map(|(i, s)| (s.id, i)).collect();
        let mut roots = Vec::new();
        for i in (0..spans.len()).rev() {
            let node = nodes[i].take().expect("node taken once");
            match index_of_id.get(&spans[i].parent) {
                Some(&p) if p != i => nodes[p]
                    .as_mut()
                    .expect("parent ends after child, so it is still present")
                    .children
                    .insert(0, node),
                _ => roots.push(node),
            }
        }
        roots.reverse();
        roots.sort_by_key(|r| r.start_ns);
        let root = roots.iter().max_by_key(|r| r.dur_ns);
        let total_ns = root.map_or(0, |r| r.dur_ns);
        let span_coverage = root.map_or(0.0, |r| r.child_coverage());
        Self {
            total_ns,
            span_coverage,
            counters: metrics.snapshot(),
            roots,
        }
    }

    /// Total wall time in seconds.
    pub fn total_seconds(&self) -> f64 {
        self.total_ns as f64 / 1e9
    }

    /// Value of a counter in the snapshot (0 if absent).
    pub fn counter(&self, counter: Counter) -> u64 {
        self.counters
            .iter()
            .find(|(c, _)| *c == counter)
            .map_or(0, |&(_, v)| v)
    }

    /// Depth-first search across all roots for a span by name.
    pub fn find(&self, name: &str) -> Option<&ReportSpan> {
        self.roots.iter().find_map(|r| r.find(name))
    }

    /// Every span in the report, pre-order.
    pub fn all_spans(&self) -> Vec<&ReportSpan> {
        let mut out = Vec::new();
        for r in &self.roots {
            r.for_each(&mut |s| out.push(s));
        }
        out
    }

    /// Serialises the report as a JSON object (no trailing newline).
    ///
    /// Schema (documented in the README):
    /// ```json
    /// {
    ///   "total_seconds": 1.23,
    ///   "span_coverage": 0.987,
    ///   "counters": { "lp_cluster_rounds": 12, ... },
    ///   "spans": [ { "name": "pipeline", "kind": "pipeline", "level": null,
    ///                "start_us": 0, "dur_us": 1230000,
    ///                "attrs": { "n": 16384 }, "children": [ ... ] } ]
    /// }
    /// ```
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        self.write_json(&mut out, 0);
        out
    }

    /// Writes the JSON object at the given indentation depth (two spaces per step),
    /// so callers can embed the report inside a larger hand-rolled document.
    pub fn write_json(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        out.push_str("{\n");
        out.push_str(&format!(
            "{pad}  \"total_seconds\": {:.6},\n",
            self.total_seconds()
        ));
        out.push_str(&format!(
            "{pad}  \"span_coverage\": {:.4},\n",
            self.span_coverage
        ));
        out.push_str(&format!("{pad}  \"counters\": {{"));
        for (i, (c, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n{pad}    \"{}\": {}", c.name(), v));
        }
        if self.counters.is_empty() {
            out.push_str("},\n");
        } else {
            out.push_str(&format!("\n{pad}  }},\n"));
        }
        out.push_str(&format!("{pad}  \"spans\": ["));
        for (i, root) in self.roots.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('\n');
            out.push_str(&format!("{pad}    "));
            write_span_json(root, out, indent + 2);
        }
        if self.roots.is_empty() {
            out.push_str("]\n");
        } else {
            out.push_str(&format!("\n{pad}  ]\n"));
        }
        out.push_str(&format!("{pad}}}"));
    }

    /// A fixed-width per-span breakdown table: one row per span down to phase depth,
    /// with duration, share of the pipeline, and attributes. This is what the
    /// `fig2_phase_breakdown` tool prints.
    pub fn summary_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<38} {:>12} {:>7}  {}\n",
            "span", "seconds", "share", "attributes"
        ));
        out.push_str(&format!("{}\n", "-".repeat(90)));
        let total = self.total_ns.max(1) as f64;
        for root in &self.roots {
            summary_rows(root, 0, total, &mut out);
        }
        if !self.counters.is_empty() {
            out.push_str(&format!("{}\n", "-".repeat(90)));
            for (c, v) in &self.counters {
                out.push_str(&format!("{:<38} {:>12}\n", c.name(), v));
            }
        }
        out
    }
}

fn summary_rows(span: &ReportSpan, depth: usize, total_ns: f64, out: &mut String) {
    // Rounds/passes are too numerous for a table; stop at phase depth.
    if span.kind == SpanKind::Round {
        return;
    }
    let label = match span.level {
        Some(l) => format!("{}{}@{}", "  ".repeat(depth), span.name, l),
        None => format!("{}{}", "  ".repeat(depth), span.name),
    };
    let attrs = span
        .attrs
        .iter()
        .map(|(k, v)| format!("{k}={v}"))
        .collect::<Vec<_>>()
        .join(" ");
    out.push_str(&format!(
        "{:<38} {:>12.4} {:>6.1}%  {}\n",
        label,
        span.seconds(),
        span.dur_ns as f64 / total_ns * 100.0,
        attrs
    ));
    for c in &span.children {
        summary_rows(c, depth + 1, total_ns, out);
    }
}

fn write_span_json(span: &ReportSpan, out: &mut String, indent: usize) {
    let pad = "  ".repeat(indent);
    out.push_str("{\n");
    out.push_str(&format!("{pad}  \"name\": \"{}\",\n", span.name));
    out.push_str(&format!("{pad}  \"kind\": \"{}\",\n", span.kind.name()));
    match span.level {
        Some(l) => out.push_str(&format!("{pad}  \"level\": {l},\n")),
        None => out.push_str(&format!("{pad}  \"level\": null,\n")),
    }
    out.push_str(&format!("{pad}  \"start_us\": {},\n", span.start_ns / 1000));
    out.push_str(&format!("{pad}  \"dur_us\": {},\n", span.dur_ns / 1000));
    out.push_str(&format!("{pad}  \"attrs\": {{"));
    for (i, (k, v)) in span.attrs.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("\"{k}\": {v}"));
    }
    out.push_str("},\n");
    out.push_str(&format!("{pad}  \"children\": ["));
    for (i, c) in span.children.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('\n');
        out.push_str(&format!("{pad}    "));
        write_span_json(c, out, indent + 2);
    }
    if span.children.is_empty() {
        out.push_str("]\n");
    } else {
        out.push_str(&format!("\n{pad}  ]\n"));
    }
    out.push_str(&format!("{pad}}}"));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(
        id: u64,
        parent: u64,
        kind: SpanKind,
        name: &'static str,
        start_ns: u64,
        end_ns: u64,
    ) -> SpanRecord {
        SpanRecord {
            id,
            parent,
            kind,
            name,
            level: None,
            start_ns,
            end_ns,
            attrs: Vec::new(),
        }
    }

    #[test]
    fn tree_assembly_and_coverage() {
        let spans = vec![
            record(1, 0, SpanKind::Pipeline, "pipeline", 0, 100),
            record(2, 1, SpanKind::Level, "coarsen_level", 0, 50),
            record(3, 1, SpanKind::Level, "uncoarsen_level", 50, 98),
            record(4, 2, SpanKind::Phase, "cluster", 0, 30),
        ];
        let report = RunReport::from_spans(spans, &MetricsRegistry::new());
        assert_eq!(report.roots.len(), 1);
        assert_eq!(report.total_ns, 100);
        assert!((report.span_coverage - 0.98).abs() < 1e-9);
        let root = &report.roots[0];
        assert_eq!(root.children.len(), 2);
        assert_eq!(root.children[0].children[0].name, "cluster");
        assert_eq!(report.find("cluster").unwrap().dur_ns, 30);
        assert_eq!(report.all_spans().len(), 4);
    }

    #[test]
    fn json_has_the_documented_shape() {
        let metrics = MetricsRegistry::new();
        metrics.add(Counter::FmPasses, 3);
        let spans = vec![
            record(1, 0, SpanKind::Pipeline, "pipeline", 0, 2_000_000),
            record(2, 1, SpanKind::Phase, "cluster", 0, 1_000_000),
        ];
        let report = RunReport::from_spans(spans, &metrics);
        let json = report.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"total_seconds\""));
        assert!(json.contains("\"span_coverage\""));
        assert!(json.contains("\"fm_passes\": 3"));
        assert!(json.contains("\"name\": \"pipeline\""));
        assert!(json.contains("\"children\": ["));
    }

    #[test]
    fn summary_table_lists_spans_and_counters() {
        let metrics = MetricsRegistry::new();
        metrics.add(Counter::LpClusterRounds, 4);
        let spans = vec![
            record(1, 0, SpanKind::Pipeline, "pipeline", 0, 1_000_000_000),
            record(2, 1, SpanKind::Round, "lp_round", 0, 1000),
        ];
        let report = RunReport::from_spans(spans, &metrics);
        let table = report.summary_table();
        assert!(table.contains("pipeline"));
        assert!(
            !table.contains("lp_round"),
            "rounds are elided in the table"
        );
        assert!(table.contains("lp_cluster_rounds"));
    }
}
