//! The recording seam: [`ObsSink`] trait, the zero-cost [`NoopSink`], the cloneable
//! [`ObsHandle`] threaded through the pipeline, and the RAII [`SpanGuard`].

use std::fmt;
use std::sync::Arc;

use crate::metrics::Counter;
use crate::recorder::Recorder;

/// Position of a span in the `pipeline → level → phase → round/pass` hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// The whole-run root span.
    Pipeline,
    /// One hierarchy level (coarsening or uncoarsening side).
    Level,
    /// A named phase within a level (`cluster`, `contract`, `refine`, ...).
    Phase,
    /// One LP round or FM pass within a phase.
    Round,
}

impl SpanKind {
    /// Stable lowercase name (used as the Chrome trace event category).
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Pipeline => "pipeline",
            SpanKind::Level => "level",
            SpanKind::Phase => "phase",
            SpanKind::Round => "round",
        }
    }
}

/// Where observations go. The pipeline never talks to a sink directly — it goes
/// through [`ObsHandle`], whose disabled state skips the virtual call entirely.
pub trait ObsSink: Send + Sync + fmt::Debug {
    /// Starts a span; returns an id to pass to [`span_end`](ObsSink::span_end).
    /// `level` is the hierarchy level (or round index) when meaningful.
    fn span_begin(&self, kind: SpanKind, name: &'static str, level: Option<u64>) -> u64;

    /// Ends the span `id` with its accumulated attributes.
    fn span_end(&self, id: u64, attrs: &[(&'static str, u64)]);

    /// Adds to a sum counter.
    fn counter_add(&self, counter: Counter, delta: u64);

    /// Raises a max gauge.
    fn gauge_max(&self, counter: Counter, value: u64);
}

/// A sink that drops everything. Exists for the trait contract and for tests; the
/// pipeline's fast path is the *absent* sink inside [`ObsHandle::noop`], which skips
/// even the dynamic dispatch.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopSink;

impl ObsSink for NoopSink {
    fn span_begin(&self, _kind: SpanKind, _name: &'static str, _level: Option<u64>) -> u64 {
        0
    }
    fn span_end(&self, _id: u64, _attrs: &[(&'static str, u64)]) {}
    fn counter_add(&self, _counter: Counter, _delta: u64) {}
    fn gauge_max(&self, _counter: Counter, _value: u64) {}
}

/// Cheap cloneable entry point to the observability layer.
///
/// The default/noop handle holds `None` — one pointer-sized word, no allocation —
/// and every operation through it is a branch that the optimizer folds away. A
/// recording handle holds an `Arc` to a [`Recorder`] (or any custom [`ObsSink`]).
#[derive(Clone, Default)]
pub struct ObsHandle {
    sink: Option<Arc<dyn ObsSink>>,
}

impl fmt::Debug for ObsHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ObsHandle")
            .field("enabled", &self.sink.is_some())
            .finish()
    }
}

impl ObsHandle {
    /// The disabled handle: no sink, no allocation, near-zero overhead.
    pub const fn noop() -> Self {
        Self { sink: None }
    }

    /// A handle recording into a fresh [`Recorder`]; the returned `Arc` is kept by the
    /// caller to build the [`RunReport`](crate::RunReport) when the run finishes.
    pub fn recording() -> (Self, Arc<Recorder>) {
        let recorder = Arc::new(Recorder::new());
        (
            Self {
                sink: Some(recorder.clone()),
            },
            recorder,
        )
    }

    /// A handle over a custom sink.
    pub fn from_sink(sink: Arc<dyn ObsSink>) -> Self {
        Self { sink: Some(sink) }
    }

    /// Whether observations are recorded at all.
    pub fn is_enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Opens a span; it ends (and is recorded) when the returned guard drops.
    pub fn span(&self, kind: SpanKind, name: &'static str) -> SpanGuard {
        self.span_inner(kind, name, None)
    }

    /// Opens a span tagged with a hierarchy level or round/pass index.
    pub fn span_at(&self, kind: SpanKind, name: &'static str, level: u64) -> SpanGuard {
        self.span_inner(kind, name, Some(level))
    }

    fn span_inner(&self, kind: SpanKind, name: &'static str, level: Option<u64>) -> SpanGuard {
        match &self.sink {
            Some(sink) => SpanGuard {
                id: sink.span_begin(kind, name, level),
                sink: Some(sink.clone()),
                attrs: Vec::new(),
            },
            None => SpanGuard {
                id: 0,
                sink: None,
                attrs: Vec::new(),
            },
        }
    }

    /// Adds to a sum counter (no-op when disabled).
    pub fn add(&self, counter: Counter, delta: u64) {
        if let Some(sink) = &self.sink {
            sink.counter_add(counter, delta);
        }
    }

    /// Raises a max gauge (no-op when disabled).
    pub fn gauge_max(&self, counter: Counter, value: u64) {
        if let Some(sink) = &self.sink {
            sink.gauge_max(counter, value);
        }
    }
}

/// RAII guard for an open span. Attributes attached via [`attr`](SpanGuard::attr)
/// are delivered to the sink when the guard drops.
pub struct SpanGuard {
    sink: Option<Arc<dyn ObsSink>>,
    id: u64,
    attrs: Vec<(&'static str, u64)>,
}

impl SpanGuard {
    /// Attaches a key/value attribute. Skipped (no allocation) on a disabled handle.
    pub fn attr(&mut self, key: &'static str, value: u64) {
        if self.sink.is_some() {
            self.attrs.push((key, value));
        }
    }

    /// Capacity of the internal attribute buffer — stays 0 for spans from a noop
    /// handle, which is how tests assert the "allocates nothing when disabled"
    /// contract.
    pub fn attr_capacity(&self) -> usize {
        self.attrs.capacity()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(sink) = self.sink.take() {
            sink.span_end(self.id, &self.attrs);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_handle_allocates_nothing() {
        let obs = ObsHandle::noop();
        assert!(!obs.is_enabled());
        let mut span = obs.span(SpanKind::Pipeline, "pipeline");
        for i in 0..64 {
            span.attr("k", i);
        }
        assert_eq!(
            span.attr_capacity(),
            0,
            "attr() on a disabled span must not allocate"
        );
        // Counters on a disabled handle are a branch and nothing else.
        obs.add(Counter::LpClusterMoves, 7);
        obs.gauge_max(Counter::PeakMemoryBytes, 1 << 30);
    }

    #[test]
    fn noop_handle_is_pointer_sized() {
        assert_eq!(
            std::mem::size_of::<ObsHandle>(),
            std::mem::size_of::<Option<Arc<dyn ObsSink>>>()
        );
    }

    #[test]
    fn noop_sink_satisfies_the_trait() {
        let obs = ObsHandle::from_sink(Arc::new(NoopSink));
        assert!(obs.is_enabled());
        let mut span = obs.span_at(SpanKind::Phase, "cluster", 3);
        span.attr("moves", 1);
        drop(span);
        obs.add(Counter::FmPasses, 1);
    }
}
