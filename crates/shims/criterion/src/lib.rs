//! Minimal, dependency-free stand-in for the `criterion` crate.
//!
//! Implements the API subset the workspace's benches use — `criterion_group!`/
//! `criterion_main!`, `Criterion::{benchmark_group, bench_function}`, `BenchmarkId`,
//! `Bencher::{iter, iter_batched}` and `BatchSize` — with a simple warmup + timed-samples
//! measurement loop. Each benchmark prints its median, mean and fastest sample so
//! `cargo bench` produces comparable wall-clock numbers without the statistical
//! machinery of real criterion.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortises setup; the shim treats all variants identically
/// (setup runs outside the timed section either way).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

/// Result of one measured benchmark.
#[derive(Debug, Clone)]
pub struct Sampled {
    pub name: String,
    pub median: Duration,
    pub mean: Duration,
    pub fastest: Duration,
    pub samples: usize,
}

/// The measurement driver handed to benchmark closures.
pub struct Bencher {
    sample_size: usize,
    result: Option<Sampled>,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Self {
            sample_size,
            result: None,
        }
    }

    fn record(&mut self, mut samples: Vec<Duration>) {
        samples.sort_unstable();
        let mean = samples.iter().sum::<Duration>() / samples.len().max(1) as u32;
        self.result = Some(Sampled {
            name: String::new(),
            median: samples[samples.len() / 2],
            mean,
            fastest: samples[0],
            samples: samples.len(),
        });
    }

    /// Times `routine` directly.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        // Warmup: one untimed call (also triggers lazy initialisation in the routine).
        black_box(routine());
        let samples: Vec<Duration> = (0..self.sample_size)
            .map(|_| {
                let start = Instant::now();
                black_box(routine());
                start.elapsed()
            })
            .collect();
        self.record(samples);
    }

    /// Times `routine` on fresh inputs produced by `setup` outside the timed section.
    pub fn iter_batched<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
        _size: BatchSize,
    ) {
        black_box(routine(setup()));
        let samples: Vec<Duration> = (0..self.sample_size)
            .map(|_| {
                let input = setup();
                let start = Instant::now();
                black_box(routine(input));
                start.elapsed()
            })
            .collect();
        self.record(samples);
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

fn run_one(name: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) -> Sampled {
    let mut bencher = Bencher::new(sample_size);
    f(&mut bencher);
    let mut sampled = bencher.result.unwrap_or(Sampled {
        name: String::new(),
        median: Duration::ZERO,
        mean: Duration::ZERO,
        fastest: Duration::ZERO,
        samples: 0,
    });
    sampled.name = name.to_string();
    println!(
        "{:<50} median {:>12}   mean {:>12}   fastest {:>12}   ({} samples)",
        sampled.name,
        format_duration(sampled.median),
        format_duration(sampled.mean),
        format_duration(sampled.fastest),
        sampled.samples
    );
    sampled
}

/// Top-level benchmark context, one per `criterion_group!` run.
pub struct Criterion {
    default_sample_size: usize,
    results: Vec<Sampled>,
}

impl Default for Criterion {
    fn default() -> Self {
        // Far fewer samples than real criterion's 100: these benches run in CI.
        Self {
            default_sample_size: 12,
            results: Vec::new(),
        }
    }
}

impl Criterion {
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let sampled = run_one(name, self.default_sample_size, &mut f);
        self.results.push(sampled);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    /// All results measured so far (used by wrapper binaries that post-process timings).
    pub fn results(&self) -> &[Sampled] {
        &self.results
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    fn effective_sample_size(&self) -> usize {
        self.sample_size
            .unwrap_or(self.criterion.default_sample_size)
    }

    pub fn bench_function(
        &mut self,
        name: impl std::fmt::Display,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        let sampled = run_one(&full, self.effective_sample_size(), &mut f);
        self.criterion.results.push(sampled);
        self
    }

    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.id);
        let sampled = run_one(&full, self.effective_sample_size(), &mut |b| f(b, input));
        self.criterion.results.push(sampled);
        self
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_a_result() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        assert_eq!(c.results().len(), 1);
        assert_eq!(c.results()[0].samples, 12);
    }

    #[test]
    fn groups_prefix_names_and_override_sample_size() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.bench_with_input(BenchmarkId::from_parameter("x"), &7, |b, &v| {
            b.iter_batched(|| v, |v| v * 2, BatchSize::SmallInput);
        });
        group.finish();
        assert_eq!(c.results()[0].name, "g/x");
        assert_eq!(c.results()[0].samples, 3);
    }
}
