//! Minimal, dependency-free stand-in for the `crossbeam` crate.
//!
//! Only the unbounded channel is used by this workspace (point-to-point queues in the
//! MPI simulator), so std's mpsc channel covers it: each receiver has a single owner
//! thread, and `Sender` is `Clone` in both implementations.

pub mod channel {
    pub use std::sync::mpsc::{Receiver, Sender};
    pub use std::sync::mpsc::{RecvError, SendError, TryRecvError};

    /// Creates an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn channel_roundtrip() {
        let (tx, rx) = channel::unbounded();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.try_recv().unwrap(), 2);
        assert!(rx.try_recv().is_err());
    }
}
