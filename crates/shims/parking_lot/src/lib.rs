//! Minimal, dependency-free stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives with parking_lot's poison-free API (guards are returned
//! directly instead of `Result`s; a poisoned std lock is recovered transparently, which
//! matches parking_lot's behaviour of not poisoning at all).

use std::fmt;
use std::ops::{Deref, DerefMut};

pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

pub struct MutexGuard<'a, T: ?Sized>(std::sync::MutexGuard<'a, T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(|e| e.into_inner()))
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
