//! Minimal, dependency-free stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace's tests use: the `proptest!` macro over
//! functions whose arguments are drawn from strategies, integer-range / `any` /
//! tuple / `collection::vec` / `bool::ANY` strategies, `ProptestConfig::with_cases`,
//! and `prop_assert_eq!`. Inputs are drawn from a fixed-seed RNG, so runs are
//! deterministic; there is no shrinking — a failing case panics with the ordinary
//! `assert_eq!` message.

use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

/// Number of cases to run per property (overridable per test block).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// The RNG handed to strategies; deterministic per (test, case index).
pub type TestRng = ChaCha8Rng;

/// Creates the RNG for one case of one property test.
pub fn case_rng(test_name: &str, case: u32) -> TestRng {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for b in test_name.bytes() {
        hash = (hash ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
    }
    TestRng::seed_from_u64(hash ^ (u64::from(case) << 32 | u64::from(case)))
}

/// A generator of random values of type `Value`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

int_strategy!(u32, u64, usize, i32, i64);

/// Full-domain strategy, `any::<T>()`.
pub struct Any<T>(std::marker::PhantomData<T>);

pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy,
{
    Any(std::marker::PhantomData)
}

impl Strategy for Any<u64> {
    type Value = u64;

    fn generate(&self, rng: &mut TestRng) -> u64 {
        // Mix magnitudes: uniform u64s almost never exercise short varint encodings.
        match rng.gen_range(0..4u32) {
            0 => rng.gen_range(0..256u64),
            1 => rng.gen_range(0..65_536u64),
            2 => rng.gen_range(0..(1u64 << 32)),
            _ => rng.next_u64(),
        }
    }
}

impl Strategy for Any<i64> {
    type Value = i64;

    fn generate(&self, rng: &mut TestRng) -> i64 {
        let magnitude = Any::<u64>(std::marker::PhantomData).generate(rng) as i64;
        if rng.gen_bool(0.5) {
            magnitude
        } else {
            magnitude.wrapping_neg()
        }
    }
}

pub mod bool {
    /// Strategy for both boolean values.
    pub struct AnyBool;

    impl super::Strategy for AnyBool {
        type Value = core::primitive::bool;

        fn generate(&self, rng: &mut super::TestRng) -> core::primitive::bool {
            use rand::Rng;
            rng.gen_bool(0.5)
        }
    }

    pub const ANY: AnyBool = AnyBool;
}

pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// Strategy for vectors whose length is drawn from `len` and whose elements are
    /// drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.len.is_empty() {
                0
            } else {
                rng.gen_range(self.len.clone())
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy!((A, B), (A, B, C), (A, B, C, D));

#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => {
        assert_eq!($($args)*)
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => {
        assert!($($args)*)
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@expand ($cfg) $($rest)*);
    };
    (@expand ($cfg:expr) $(#[test] fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut prop_rng = $crate::case_rng(stringify!($name), case);
                    $(let $arg = $crate::Strategy::generate(&($strategy), &mut prop_rng);)+
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@expand ($crate::ProptestConfig::default()) $($rest)*);
    };
}

pub mod prelude {
    pub use crate::{any, prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn ranges_and_vecs_stay_in_bounds(
            n in 1usize..10,
            v in crate::collection::vec((0u32..5, 1u64..3), 0..8),
            flag in crate::bool::ANY,
        ) {
            prop_assert!((1..10).contains(&n));
            prop_assert!(v.len() < 8);
            for (a, b) in v {
                prop_assert!(a < 5);
                prop_assert!((1..3).contains(&b));
            }
            let _ = flag;
        }
    }

    proptest! {
        #[test]
        fn any_mixes_magnitudes(x in any::<u64>(), y in any::<i64>()) {
            let _ = (x, y);
        }
    }
}
