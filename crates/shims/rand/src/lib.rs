//! Minimal, dependency-free stand-in for the `rand` crate.
//!
//! The build environment has no access to a cargo registry, so this shim implements the
//! API subset the workspace uses: `RngCore`/`SeedableRng`, `Rng::{gen, gen_range}` over
//! the integer and float range types that appear in the code, and `SliceRandom::shuffle`.
//! The distributions are uniform; integer sampling uses a modulo reduction, whose bias is
//! irrelevant at the span sizes this workspace draws from.

/// Core random-number source: everything is derived from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction; only `seed_from_u64` is used by this workspace.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable by `Rng::gen`.
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 random mantissa bits.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Range types accepted by `Rng::gen_range`.
pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }

        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

int_ranges!(u32, u64, usize, i32, i64);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * f64::sample(rng)
    }
}

/// Convenience methods available on every `RngCore`.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// In-place Fisher–Yates shuffling of slices.
pub trait SliceRandom {
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            self.swap(i, j);
        }
    }
}

pub mod prelude {
    pub use crate::{Rng, RngCore, SampleRange, SeedableRng, SliceRandom, Standard};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    struct Lcg(u64);

    impl RngCore for Lcg {
        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Lcg(7);
        for _ in 0..1000 {
            let x: u32 = rng.gen_range(5..17u32);
            assert!((5..17).contains(&x));
            let y: u64 = rng.gen_range(1..=3u64);
            assert!((1..=3).contains(&y));
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_f64_is_unit_interval() {
        let mut rng = Lcg(3);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Lcg(11);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "astronomically unlikely identity shuffle");
    }
}
