//! Minimal, dependency-free stand-in for the `rand_chacha` crate.
//!
//! Exposes a deterministic, seedable RNG under the `ChaCha8Rng` name the workspace
//! imports. The generator is xoshiro256** seeded via SplitMix64 — *not* the ChaCha8
//! stream cipher — because the workspace only relies on determinism and statistical
//! quality, never on the exact ChaCha output sequence or cryptographic properties.

use rand::{RngCore, SeedableRng};

/// Deterministic seedable RNG (xoshiro256** under the hood).
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    state: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut s = seed;
        let state = [
            splitmix64(&mut s),
            splitmix64(&mut s),
            splitmix64(&mut s),
            splitmix64(&mut s),
        ];
        Self { state }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s1 << 17;
        let mut n = [s0, s1, s2, s3];
        n[2] ^= n[0];
        n[3] ^= n[1];
        n[1] ^= n[2];
        n[0] ^= n[3];
        n[2] ^= t;
        n[3] = n[3].rotate_left(45);
        self.state = n;
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn output_is_not_degenerate() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let draws: Vec<u64> = (0..64).map(|_| rng.next_u64()).collect();
        let distinct: std::collections::HashSet<_> = draws.iter().collect();
        assert_eq!(distinct.len(), draws.len());
    }
}
