//! Minimal, dependency-free stand-in for the `rayon` crate.
//!
//! The build environment has no access to a cargo registry, so this shim implements
//! exactly the API subset the workspace uses, backed by `std::thread::scope` with
//! static chunking. The semantics match rayon where they matter for this workspace:
//!
//! * `collect` into a `Vec` is order-preserving;
//! * with a single-thread pool installed, everything runs sequentially on the calling
//!   thread (so single-thread determinism tests hold);
//! * `current_thread_index()` returns pairwise distinct indices for all concurrently
//!   running workers — including workers of data-parallel calls issued from different
//!   branches of a [`join`], which receive disjoint index ranges. Indices are bounded
//!   by the thread budget of the outermost parallel context (the installed pool size),
//!   not necessarily by the *current* branch's `current_num_threads()`.
//!
//! Work is split into one contiguous range per worker. That is cruder than rayon's
//! work-stealing but sufficient for the data-parallel loops of this workspace, whose
//! iterations have near-uniform cost. Nested parallel calls inside a worker run
//! sequentially instead of oversubscribing.
//!
//! Two task-parallel primitives complement the data-parallel adapters where static
//! splitting falls short (irregular recursion like the initial-partitioning bisection
//! tree):
//!
//! * [`join`] runs two closures, splitting the current thread budget between them so
//!   nested joins fan out until the budget is exhausted and run sequentially below it;
//! * [`scope`] runs dynamically spawned tasks from a shared work queue drained by up to
//!   `current_num_threads()` workers — tasks may spawn further tasks, and idle workers
//!   pick up whatever is queued instead of being bound to a precomputed range.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Inputs shorter than this run sequentially: thread spawn overhead (~tens of
/// microseconds) dwarfs the work of small loops.
const MIN_PARALLEL_LEN: usize = 4096;

thread_local! {
    /// Thread-count override installed by [`ThreadPool::install`]; 0 = uninitialised.
    static NUM_THREADS: Cell<usize> = const { Cell::new(0) };
    static THREAD_INDEX: Cell<Option<usize>> = const { Cell::new(None) };
    /// First worker index this thread's parallel calls may hand out. [`join`] gives
    /// its two branches disjoint `[base, base + budget)` index ranges, so workers of
    /// data-parallel calls running concurrently in different branches — and the branch
    /// threads themselves — still observe pairwise distinct `current_thread_index()`
    /// values, preserving the invariant per-thread state relies on.
    static INDEX_BASE: Cell<usize> = const { Cell::new(0) };
}

fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

/// Number of threads parallel operations on this thread will use.
pub fn current_num_threads() -> usize {
    let configured = NUM_THREADS.with(|c| c.get());
    if configured == 0 {
        available_threads()
    } else {
        configured
    }
}

/// Index of the current worker within its parallel call, if inside one.
pub fn current_thread_index() -> Option<usize> {
    THREAD_INDEX.with(|c| c.get())
}

/// Error type returned by [`ThreadPoolBuilder::build`] (the shim never fails).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// A "pool" is just a configured thread count; workers are spawned per parallel call.
pub struct ThreadPool {
    num_threads: usize,
}

#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: if self.num_threads == 0 {
                available_threads()
            } else {
                self.num_threads
            },
        })
    }
}

impl ThreadPool {
    /// Runs `f` with this pool's thread count governing parallel operations inside.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let prev = NUM_THREADS.with(|c| c.replace(self.num_threads));
        let result = f();
        NUM_THREADS.with(|c| c.set(prev));
        result
    }

    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

/// Runs `a` and `b`, potentially in parallel, and returns both results.
///
/// The current thread budget (`current_num_threads()`) is split between the two
/// branches: `a` keeps the larger half on the calling thread, `b` runs on a freshly
/// spawned scoped thread with the remainder. Nested joins therefore fan out until the
/// budget reaches one thread, below which everything runs sequentially on the caller —
/// so with a single-thread pool installed, `join(a, b)` is exactly `(a(), b())`.
///
/// A panic in either closure propagates to the caller after both branches finished.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let threads = current_num_threads();
    if threads <= 1 {
        let ra = a();
        let rb = b();
        return (ra, rb);
    }
    let budget_b = threads / 2;
    let budget_a = threads - budget_b;
    // Branch `a` keeps the caller's worker-index range; branch `b` gets the disjoint
    // range starting after `a`'s budget, so workers (and per-thread state keyed on
    // `current_thread_index()`) of concurrently running branches never collide.
    let base = INDEX_BASE.with(|c| c.get());
    let base_b = base + budget_a;
    let mut rb_slot: Option<RB> = None;
    let ra = std::thread::scope(|scope| {
        let rb_slot = &mut rb_slot;
        let handle = scope.spawn(move || {
            NUM_THREADS.with(|c| c.set(budget_b));
            INDEX_BASE.with(|c| c.set(base_b));
            THREAD_INDEX.with(|c| c.set(Some(base_b)));
            *rb_slot = Some(b());
        });
        let prev = NUM_THREADS.with(|c| c.replace(budget_a));
        // Restore the caller's budget even if `a` unwinds (e.g. a failing assertion
        // inside a test harness that catches panics and keeps using this thread).
        let _restore = RestoreNumThreads(prev);
        let ra = a();
        if let Err(payload) = handle.join() {
            std::panic::resume_unwind(payload);
        }
        ra
    });
    (ra, rb_slot.expect("join branch completed without a result"))
}

/// Drop guard restoring the thread-local budget on scope exit or unwind.
struct RestoreNumThreads(usize);

impl Drop for RestoreNumThreads {
    fn drop(&mut self) {
        NUM_THREADS.with(|c| c.set(self.0));
    }
}

type ScopeTask<'scope> = Box<dyn FnOnce(&Scope<'scope>) + Send + 'scope>;

/// A dynamic task scope: tasks spawned onto it (including from inside other tasks) are
/// drained by up to `current_num_threads()` workers pulling from a shared queue.
pub struct Scope<'scope> {
    queue: Mutex<Vec<ScopeTask<'scope>>>,
    /// Tasks queued or currently running; workers exit only when this reaches zero.
    pending: AtomicUsize,
}

impl<'scope> Scope<'scope> {
    /// Enqueues `f` to run within the scope. The task may spawn further tasks.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        self.pending.fetch_add(1, Ordering::SeqCst);
        self.queue.lock().unwrap().push(Box::new(f));
    }

    fn run_pending(&self) {
        /// Decrements `pending` even if the task unwinds, so a panicking task cannot
        /// strand the other workers in the wait loop; the panic itself propagates
        /// through `std::thread::scope` when the scope ends.
        struct PendingGuard<'a>(&'a AtomicUsize);
        impl Drop for PendingGuard<'_> {
            fn drop(&mut self) {
                self.0.fetch_sub(1, Ordering::SeqCst);
            }
        }

        let mut idle_polls = 0u32;
        loop {
            let task = self.queue.lock().unwrap().pop();
            match task {
                Some(task) => {
                    idle_polls = 0;
                    let _guard = PendingGuard(&self.pending);
                    task(self);
                }
                None => {
                    if self.pending.load(Ordering::SeqCst) == 0 {
                        break;
                    }
                    // The queue is empty but a running task may still spawn more work.
                    // Yield first (cheap when a task is about to finish), then back off
                    // to a short sleep so idle workers don't burn a core spinning on
                    // the queue mutex behind a long-running task.
                    idle_polls += 1;
                    if idle_polls < 16 {
                        std::thread::yield_now();
                    } else {
                        std::thread::sleep(std::time::Duration::from_micros(50));
                    }
                }
            }
        }
    }
}

/// Creates a [`Scope`], runs `op` on it, then runs every spawned task to completion
/// before returning `op`'s result.
///
/// Unlike the slice/range adapters — which split work into one static contiguous chunk
/// per worker — scope workers repeatedly pop tasks from a shared queue, so irregular
/// task trees keep all workers busy. With a single-thread budget the tasks run
/// sequentially on the calling thread in LIFO order.
pub fn scope<'scope, OP, R>(op: OP) -> R
where
    OP: FnOnce(&Scope<'scope>) -> R,
{
    let s = Scope {
        queue: Mutex::new(Vec::new()),
        pending: AtomicUsize::new(0),
    };
    let result = op(&s);
    let threads = current_num_threads();
    if threads <= 1 || s.pending.load(Ordering::SeqCst) <= 1 {
        s.run_pending();
        return result;
    }
    let base = INDEX_BASE.with(|c| c.get());
    std::thread::scope(|ts| {
        let scope_ref = &s;
        for w in 1..threads {
            ts.spawn(move || {
                NUM_THREADS.with(|c| c.set(1));
                INDEX_BASE.with(|c| c.set(base + w));
                THREAD_INDEX.with(|c| c.set(Some(base + w)));
                scope_ref.run_pending();
            });
        }
        let prev_threads = NUM_THREADS.with(|c| c.replace(1));
        let prev_index = THREAD_INDEX.with(|c| c.replace(Some(base)));
        s.run_pending();
        NUM_THREADS.with(|c| c.set(prev_threads));
        THREAD_INDEX.with(|c| c.set(prev_index));
    });
    result
}

/// A raw pointer that may cross thread boundaries. Safety rests on the drivers below
/// handing each worker a disjoint index range.
struct SharedPtr<T>(*mut T);
unsafe impl<T: Send> Send for SharedPtr<T> {}
unsafe impl<T: Send> Sync for SharedPtr<T> {}

/// Splits `0..len` into `workers` near-equal contiguous ranges; returns range `w`.
fn split_range(len: usize, workers: usize, w: usize) -> (usize, usize) {
    let base = len / workers;
    let extra = len % workers;
    let start = w * base + w.min(extra);
    let end = start + base + usize::from(w < extra);
    (start, end)
}

/// Core driver: runs `body(worker, start, end)` over `0..len` on up to
/// `current_num_threads()` workers. `weight` scales the sequential-fallback threshold:
/// pass the underlying element count when `len` counts coarser tasks (e.g. chunks).
fn drive<F>(len: usize, weight: usize, body: F)
where
    F: Fn(usize, usize, usize) + Sync,
{
    let threads = current_num_threads();
    if threads <= 1 || len <= 1 || weight < MIN_PARALLEL_LEN {
        body(0, 0, len);
        return;
    }
    let workers = threads.min(len);
    // Worker indices are offset by the caller's index base so data-parallel calls
    // running concurrently in sibling `join` branches hand out disjoint indices.
    let base = INDEX_BASE.with(|c| c.get());
    std::thread::scope(|scope| {
        let body = &body;
        for w in 1..workers {
            let (start, end) = split_range(len, workers, w);
            scope.spawn(move || {
                // Workers advertise a single thread so nested parallel calls run
                // sequentially instead of oversubscribing the machine.
                NUM_THREADS.with(|c| c.set(1));
                INDEX_BASE.with(|c| c.set(base + w));
                THREAD_INDEX.with(|c| c.set(Some(base + w)));
                body(w, start, end);
            });
        }
        let (start, end) = split_range(len, workers, 0);
        let prev_threads = NUM_THREADS.with(|c| c.replace(1));
        let prev_index = THREAD_INDEX.with(|c| c.replace(Some(base)));
        body(0, start, end);
        NUM_THREADS.with(|c| c.set(prev_threads));
        THREAD_INDEX.with(|c| c.set(prev_index));
    });
}

/// Parallel map over `0..len` writing `f(i)` to slot `i` of a fresh `Vec`.
fn map_collect_indexed<R, F>(len: usize, weight: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let mut out: Vec<R> = Vec::with_capacity(len);
    let ptr = SharedPtr(out.as_mut_ptr());
    drive(len, weight, |_, start, end| {
        let ptr = &ptr;
        for i in start..end {
            // SAFETY: each index is written exactly once, by exactly one worker, into
            // capacity reserved above; set_len happens only after all workers joined.
            unsafe { ptr.0.add(i).write(f(i)) };
        }
    });
    // SAFETY: all len slots were initialised by the loop above.
    unsafe { out.set_len(len) };
    out
}

/// Parallel fold: each worker produces an ordered Vec of per-task results; the worker
/// vectors are concatenated in worker order (preserving task order overall).
fn fold_collect_vecs<R, F>(len: usize, weight: usize, f: F) -> Vec<Vec<R>>
where
    R: Send,
    F: Fn(usize, &mut Vec<R>) + Sync,
{
    let threads = current_num_threads().max(1);
    let workers = threads.min(len.max(1));
    let mut parts: Vec<Vec<R>> = Vec::new();
    parts.resize_with(workers, Vec::new);
    let ptr = SharedPtr(parts.as_mut_ptr());
    drive(len, weight, |w, start, end| {
        let ptr = &ptr;
        // SAFETY: each worker index addresses its own pre-allocated slot.
        let acc = unsafe { &mut *ptr.0.add(w) };
        for i in start..end {
            f(i, acc);
        }
    });
    parts
}

// ---------------------------------------------------------------------------
// Slice adapters
// ---------------------------------------------------------------------------

pub struct ParIter<'a, T> {
    data: &'a [T],
}

pub struct ParIterEnumerate<'a, T> {
    data: &'a [T],
}

pub struct ParIterMap<'a, T, F> {
    data: &'a [T],
    f: F,
}

pub struct ParIterEnumerateMap<'a, T, F> {
    data: &'a [T],
    f: F,
}

impl<'a, T: Sync> ParIter<'a, T> {
    pub fn enumerate(self) -> ParIterEnumerate<'a, T> {
        ParIterEnumerate { data: self.data }
    }

    pub fn map<R, F>(self, f: F) -> ParIterMap<'a, T, F>
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
    {
        ParIterMap { data: self.data, f }
    }

    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&'a T) + Sync,
    {
        let data = self.data;
        drive(data.len(), data.len(), |_, start, end| {
            for item in &data[start..end] {
                f(item);
            }
        });
    }
}

impl<'a, T: Sync> ParIterEnumerate<'a, T> {
    pub fn map<R, F>(self, f: F) -> ParIterEnumerateMap<'a, T, F>
    where
        R: Send,
        F: Fn((usize, &'a T)) -> R + Sync,
    {
        ParIterEnumerateMap { data: self.data, f }
    }

    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &'a T)) + Sync,
    {
        let data = self.data;
        drive(data.len(), data.len(), |_, start, end| {
            for (i, item) in (start..end).zip(&data[start..end]) {
                f((i, item));
            }
        });
    }
}

impl<'a, T: Sync, R: Send, F: Fn(&'a T) -> R + Sync> ParIterMap<'a, T, F> {
    pub fn collect<C: FromParallelVec<R>>(self) -> C {
        let data = self.data;
        let f = &self.f;
        C::from_vec(map_collect_indexed(data.len(), data.len(), |i| f(&data[i])))
    }
}

impl<'a, T: Sync, R: Send, F: Fn((usize, &'a T)) -> R + Sync> ParIterEnumerateMap<'a, T, F> {
    pub fn collect<C: FromParallelVec<R>>(self) -> C {
        let data = self.data;
        let f = &self.f;
        C::from_vec(map_collect_indexed(data.len(), data.len(), |i| {
            f((i, &data[i]))
        }))
    }
}

pub struct ParChunks<'a, T> {
    data: &'a [T],
    size: usize,
}

pub struct ParChunksMap<'a, T, F> {
    data: &'a [T],
    size: usize,
    f: F,
}

impl<'a, T: Sync> ParChunks<'a, T> {
    fn num_chunks(&self) -> usize {
        self.data.len().div_ceil(self.size.max(1))
    }

    fn chunk(&self, i: usize) -> &'a [T] {
        let start = i * self.size;
        let end = (start + self.size).min(self.data.len());
        &self.data[start..end]
    }

    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&'a [T]) + Sync,
    {
        let chunks = self.num_chunks();
        drive(chunks, self.data.len(), |_, start, end| {
            for i in start..end {
                f(self.chunk(i));
            }
        });
    }

    pub fn map<R, F>(self, f: F) -> ParChunksMap<'a, T, F>
    where
        R: Send,
        F: Fn(&'a [T]) -> R + Sync,
    {
        ParChunksMap {
            data: self.data,
            size: self.size,
            f,
        }
    }

    pub fn enumerate(self) -> ParChunksEnumerate<'a, T> {
        ParChunksEnumerate {
            data: self.data,
            size: self.size,
        }
    }
}

pub struct ParChunksEnumerate<'a, T> {
    data: &'a [T],
    size: usize,
}

pub struct ParChunksEnumerateMap<'a, T, F> {
    data: &'a [T],
    size: usize,
    f: F,
}

impl<'a, T: Sync> ParChunksEnumerate<'a, T> {
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &'a [T])) + Sync,
    {
        let chunks = ParChunks {
            data: self.data,
            size: self.size,
        };
        let n = chunks.num_chunks();
        drive(n, self.data.len(), |_, start, end| {
            for i in start..end {
                f((i, chunks.chunk(i)));
            }
        });
    }

    pub fn map<R, F>(self, f: F) -> ParChunksEnumerateMap<'a, T, F>
    where
        R: Send,
        F: Fn((usize, &'a [T])) -> R + Sync,
    {
        ParChunksEnumerateMap {
            data: self.data,
            size: self.size,
            f,
        }
    }
}

impl<'a, T: Sync, R: Send, F: Fn((usize, &'a [T])) -> R + Sync> ParChunksEnumerateMap<'a, T, F> {
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> R
    where
        ID: Fn() -> R + Sync,
        OP: Fn(R, R) -> R + Sync,
    {
        let chunks = ParChunks {
            data: self.data,
            size: self.size,
        };
        let n = chunks.num_chunks();
        let f = &self.f;
        let parts = fold_collect_vecs(n, self.data.len(), |i, acc| {
            acc.push(f((i, chunks.chunk(i))))
        });
        parts.into_iter().flatten().fold(identity(), op)
    }

    pub fn collect<C: FromParallelVec<R>>(self) -> C {
        let chunks = ParChunks {
            data: self.data,
            size: self.size,
        };
        let n = chunks.num_chunks();
        let f = &self.f;
        C::from_vec(map_collect_indexed(n, self.data.len(), |i| {
            f((i, chunks.chunk(i)))
        }))
    }
}

impl<'a, T: Sync, R: Send, F: Fn(&'a [T]) -> R + Sync> ParChunksMap<'a, T, F> {
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> R
    where
        ID: Fn() -> R + Sync,
        OP: Fn(R, R) -> R + Sync,
    {
        let chunks = ParChunks {
            data: self.data,
            size: self.size,
        };
        let n = chunks.num_chunks();
        let f = &self.f;
        let parts = fold_collect_vecs(n, self.data.len(), |i, acc| acc.push(f(chunks.chunk(i))));
        parts.into_iter().flatten().fold(identity(), op)
    }

    pub fn collect<C: FromParallelVec<R>>(self) -> C {
        let chunks = ParChunks {
            data: self.data,
            size: self.size,
        };
        let n = chunks.num_chunks();
        let f = &self.f;
        C::from_vec(map_collect_indexed(n, self.data.len(), |i| {
            f(chunks.chunk(i))
        }))
    }
}

pub struct ParChunksMut<'a, T> {
    data: &'a mut [T],
    size: usize,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut [T]) + Sync,
    {
        let len = self.data.len();
        let size = self.size.max(1);
        let chunks = len.div_ceil(size);
        let ptr = SharedPtr(self.data.as_mut_ptr());
        drive(chunks, len, |_, start, end| {
            let ptr = &ptr;
            for i in start..end {
                let lo = i * size;
                let hi = (lo + size).min(len);
                // SAFETY: chunk index ranges are disjoint across workers.
                let chunk = unsafe { std::slice::from_raw_parts_mut(ptr.0.add(lo), hi - lo) };
                f(chunk);
            }
        });
    }

    pub fn enumerate(self) -> ParChunksMutEnumerate<'a, T> {
        ParChunksMutEnumerate { inner: self }
    }
}

pub struct ParChunksMutEnumerate<'a, T> {
    inner: ParChunksMut<'a, T>,
}

impl<T: Send> ParChunksMutEnumerate<'_, T> {
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &mut [T])) + Sync,
    {
        let len = self.inner.data.len();
        let size = self.inner.size.max(1);
        let chunks = len.div_ceil(size);
        let ptr = SharedPtr(self.inner.data.as_mut_ptr());
        drive(chunks, len, |_, start, end| {
            let ptr = &ptr;
            for i in start..end {
                let lo = i * size;
                let hi = (lo + size).min(len);
                // SAFETY: chunk index ranges are disjoint across workers.
                let chunk = unsafe { std::slice::from_raw_parts_mut(ptr.0.add(lo), hi - lo) };
                f((i, chunk));
            }
        });
    }
}

// ---------------------------------------------------------------------------
// Range adapters
// ---------------------------------------------------------------------------

/// Index types over which `(a..b).into_par_iter()` is supported.
pub trait ParIndex: Copy + Send + Sync {
    fn to_usize(self) -> usize;
    fn from_usize(i: usize) -> Self;
}

macro_rules! par_index {
    ($($t:ty),*) => {$(
        impl ParIndex for $t {
            #[inline]
            fn to_usize(self) -> usize {
                self as usize
            }
            #[inline]
            fn from_usize(i: usize) -> Self {
                i as $t
            }
        }
    )*};
}

par_index!(u32, u64, usize);

pub struct ParRange<I> {
    start: usize,
    len: usize,
    _marker: std::marker::PhantomData<I>,
}

pub struct ParRangeMap<I, F> {
    range: ParRange<I>,
    f: F,
}

pub struct ParRangeFilterMap<I, F> {
    range: ParRange<I>,
    f: F,
}

impl<I: ParIndex> ParRange<I> {
    #[inline]
    fn item(&self, i: usize) -> I {
        I::from_usize(self.start + i)
    }

    pub fn map<R, F>(self, f: F) -> ParRangeMap<I, F>
    where
        R: Send,
        F: Fn(I) -> R + Sync,
    {
        ParRangeMap { range: self, f }
    }

    pub fn filter_map<R, F>(self, f: F) -> ParRangeFilterMap<I, F>
    where
        R: Send,
        F: Fn(I) -> Option<R> + Sync,
    {
        ParRangeFilterMap { range: self, f }
    }

    pub fn for_each<F>(self, f: F)
    where
        F: Fn(I) + Sync,
    {
        drive(self.len, self.len, |_, start, end| {
            for i in start..end {
                f(self.item(i));
            }
        });
    }
}

impl<I: ParIndex, R: Send, F: Fn(I) -> R + Sync> ParRangeMap<I, F> {
    pub fn collect<C: FromParallelVec<R>>(self) -> C {
        let range = &self.range;
        let f = &self.f;
        C::from_vec(map_collect_indexed(range.len, range.len, |i| {
            f(range.item(i))
        }))
    }

    pub fn sum<S: std::iter::Sum<R> + Send>(self) -> S
    where
        R: Copy,
    {
        let range = &self.range;
        let f = &self.f;
        let parts = fold_collect_vecs(range.len, range.len, |i, acc| acc.push(f(range.item(i))));
        parts.into_iter().flatten().sum()
    }
}

impl<I: ParIndex, R: Send, F: Fn(I) -> Option<R> + Sync> ParRangeFilterMap<I, F> {
    pub fn collect<C: FromParallelVec<R>>(self) -> C {
        let range = &self.range;
        let f = &self.f;
        let parts = fold_collect_vecs(range.len, range.len, |i, acc| {
            if let Some(r) = f(range.item(i)) {
                acc.push(r);
            }
        });
        C::from_vec(parts.into_iter().flatten().collect())
    }

    /// Collects into `out`, reusing its capacity (order-preserving, like `collect`).
    ///
    /// `out` is cleared first. This reuses the (large) concatenation buffer across
    /// calls; the small per-worker part vectors of the fold are still allocated fresh
    /// per call. (Real rayon offers `collect_into_vec` on indexed iterators; this shim
    /// extends it to the filtered range shape the workspace needs.)
    pub fn collect_into_vec(self, out: &mut Vec<R>) {
        let range = &self.range;
        let f = &self.f;
        out.clear();
        let parts = fold_collect_vecs(range.len, range.len, |i, acc| {
            if let Some(r) = f(range.item(i)) {
                acc.push(r);
            }
        });
        for part in parts {
            out.extend(part);
        }
    }
}

// ---------------------------------------------------------------------------
// Collection + conversion traits
// ---------------------------------------------------------------------------

/// Targets of `collect()`. Only `Vec<R>` is needed by this workspace.
pub trait FromParallelVec<R> {
    fn from_vec(v: Vec<R>) -> Self;
}

impl<R> FromParallelVec<R> for Vec<R> {
    fn from_vec(v: Vec<R>) -> Self {
        v
    }
}

pub trait IntoParallelIterator {
    type Iter;
    fn into_par_iter(self) -> Self::Iter;
}

impl<I: ParIndex> IntoParallelIterator for std::ops::Range<I> {
    type Iter = ParRange<I>;

    fn into_par_iter(self) -> ParRange<I> {
        let start = self.start.to_usize();
        let end = self.end.to_usize();
        ParRange {
            start,
            len: end.saturating_sub(start),
            _marker: std::marker::PhantomData,
        }
    }
}

pub trait ParallelSlice<T: Sync> {
    fn par_iter(&self) -> ParIter<'_, T>;
    fn par_chunks(&self, size: usize) -> ParChunks<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<'_, T> {
        ParIter { data: self }
    }

    fn par_chunks(&self, size: usize) -> ParChunks<'_, T> {
        ParChunks {
            data: self,
            size: size.max(1),
        }
    }
}

pub trait ParallelSliceMut<T: Send> {
    fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T>;
    fn par_sort_unstable_by_key<K, F>(&mut self, f: F)
    where
        K: Ord,
        F: Fn(&T) -> K + Sync;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T> {
        ParChunksMut {
            data: self,
            size: size.max(1),
        }
    }

    /// Sequential under the hood: sorting is never a hot path in this workspace.
    fn par_sort_unstable_by_key<K, F>(&mut self, f: F)
    where
        K: Ord,
        F: Fn(&T) -> K + Sync,
    {
        self.sort_unstable_by_key(f);
    }
}

pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn map_collect_preserves_order() {
        let n = 100_000usize;
        let v: Vec<usize> = (0..n).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v.len(), n);
        assert!(v.iter().enumerate().all(|(i, &x)| x == i * 2));
    }

    #[test]
    fn u32_ranges_work() {
        let v: Vec<u64> = (0..50_000u32)
            .into_par_iter()
            .map(|i| u64::from(i) + 1)
            .collect();
        assert_eq!(v[49_999], 50_000);
    }

    #[test]
    fn filter_map_keeps_order() {
        let v: Vec<usize> = (0..100_000usize)
            .into_par_iter()
            .filter_map(|i| (i % 3 == 0).then_some(i))
            .collect();
        assert!(v.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(v.len(), 33_334);
    }

    #[test]
    fn chunks_cover_everything_once() {
        let data: Vec<usize> = (0..10_000).collect();
        let total = AtomicUsize::new(0);
        data.par_chunks(37).for_each(|chunk| {
            total.fetch_add(chunk.iter().sum::<usize>(), Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), 10_000 * 9_999 / 2);
    }

    #[test]
    fn chunk_map_reduce_concatenates() {
        let data: Vec<u32> = (0..20_000).collect();
        let doubled: Vec<u32> = data
            .par_chunks(256)
            .map(|chunk| chunk.iter().map(|&x| x * 2).collect::<Vec<_>>())
            .reduce(Vec::new, |mut a, mut b| {
                a.append(&mut b);
                a
            });
        assert_eq!(doubled.len(), data.len());
        assert!(doubled.iter().zip(&data).all(|(&d, &x)| d == x * 2));
    }

    #[test]
    fn par_chunks_mut_writes_disjoint() {
        let mut data = vec![0usize; 30_000];
        data.par_chunks_mut(1_000)
            .enumerate()
            .for_each(|(i, chunk)| {
                for x in chunk.iter_mut() {
                    *x = i;
                }
            });
        assert_eq!(data[0], 0);
        assert_eq!(data[29_999], 29);
    }

    #[test]
    fn single_thread_pool_is_sequential_and_indexed() {
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        pool.install(|| {
            assert_eq!(current_num_threads(), 1);
            let v: Vec<usize> = (0..10_000usize).into_par_iter().map(|i| i).collect();
            assert_eq!(v[9_999], 9_999);
        });
        assert_ne!(current_num_threads(), 0);
    }

    #[test]
    fn join_returns_both_results_at_any_budget() {
        for threads in [1, 2, 3, 8] {
            let pool = ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let (a, b) =
                pool.install(|| join(|| (0..1000u64).sum::<u64>(), || join(|| 1u64, || 2u64)));
            assert_eq!(a, 499_500);
            assert_eq!(b, (1, 2));
        }
    }

    #[test]
    fn join_splits_the_thread_budget() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        pool.install(|| {
            let (a, b) = join(current_num_threads, current_num_threads);
            assert_eq!(a + b, 4);
            assert!(a >= 1 && b >= 1);
        });
        // With one thread, both branches see the sequential budget.
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        pool.install(|| {
            let (a, b) = join(current_num_threads, current_num_threads);
            assert_eq!((a, b), (1, 1));
        });
    }

    #[test]
    fn join_branches_hand_out_disjoint_worker_indices() {
        use std::sync::Mutex;
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let a_indices = Mutex::new(Vec::new());
        let b_indices = Mutex::new(Vec::new());
        pool.install(|| {
            join(
                || {
                    let data = vec![0u8; 100_000];
                    data.par_chunks(1_000).for_each(|_| {
                        a_indices
                            .lock()
                            .unwrap()
                            .push(current_thread_index().unwrap_or(usize::MAX));
                    });
                },
                || {
                    let data = vec![0u8; 100_000];
                    data.par_chunks(1_000).for_each(|_| {
                        b_indices
                            .lock()
                            .unwrap()
                            .push(current_thread_index().unwrap_or(usize::MAX));
                    });
                },
            );
        });
        let a: std::collections::HashSet<usize> =
            a_indices.into_inner().unwrap().into_iter().collect();
        let b: std::collections::HashSet<usize> =
            b_indices.into_inner().unwrap().into_iter().collect();
        assert!(a.intersection(&b).count() == 0, "overlap: {a:?} vs {b:?}");
        assert!(
            a.union(&b).all(|&i| i < 4),
            "index beyond pool size: {a:?} {b:?}"
        );
    }

    #[test]
    fn scope_runs_all_tasks_including_nested_spawns() {
        for threads in [1, 4] {
            let pool = ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let counter = AtomicUsize::new(0);
            pool.install(|| {
                scope(|s| {
                    for _ in 0..10 {
                        s.spawn(|s| {
                            counter.fetch_add(1, Ordering::Relaxed);
                            s.spawn(|_| {
                                counter.fetch_add(1, Ordering::Relaxed);
                            });
                        });
                    }
                });
            });
            assert_eq!(counter.load(Ordering::Relaxed), 20, "threads = {threads}");
        }
    }

    #[test]
    fn scope_task_panic_propagates_instead_of_hanging() {
        for threads in [1, 4] {
            let pool = ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                pool.install(|| {
                    scope(|s| {
                        s.spawn(|_| {});
                        s.spawn(|_| panic!("task panic"));
                        s.spawn(|_| {});
                    });
                });
            }));
            assert!(result.is_err(), "panic must propagate at {threads} threads");
        }
    }

    #[test]
    fn join_restores_the_thread_budget_after_a_branch_panic() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        pool.install(|| {
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                join(|| panic!("branch panic"), || ());
            }));
            assert!(result.is_err());
            assert_eq!(current_num_threads(), 4, "budget must survive the unwind");
        });
    }

    #[test]
    fn filter_map_collect_into_vec_matches_collect() {
        let expected: Vec<usize> = (0..50_000usize)
            .into_par_iter()
            .filter_map(|i| (i % 7 == 0).then_some(i * 2))
            .collect();
        let mut out = vec![1, 2, 3];
        (0..50_000usize)
            .into_par_iter()
            .filter_map(|i| (i % 7 == 0).then_some(i * 2))
            .collect_into_vec(&mut out);
        assert_eq!(out, expected);
        let capacity = out.capacity();
        (0..50_000usize)
            .into_par_iter()
            .filter_map(|i| (i % 7 == 0).then_some(i * 2))
            .collect_into_vec(&mut out);
        assert_eq!(out, expected);
        assert_eq!(out.capacity(), capacity, "buffer must be reused");
    }

    #[test]
    fn worker_indices_stay_below_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        pool.install(|| {
            let data: Vec<usize> = (0..100_000).collect();
            data.par_chunks(64).for_each(|_| {
                let idx = current_thread_index().unwrap_or(0);
                assert!(idx < 3);
            });
        });
    }
}
