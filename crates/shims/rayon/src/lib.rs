//! Minimal, dependency-free stand-in for the `rayon` crate.
//!
//! The build environment has no access to a cargo registry, so this shim implements
//! exactly the API subset the workspace uses, backed by `std::thread::scope` with
//! static chunking. The semantics match rayon where they matter for this workspace:
//!
//! * `collect` into a `Vec` is order-preserving;
//! * with a single-thread pool installed, everything runs sequentially on the calling
//!   thread (so single-thread determinism tests hold);
//! * `current_thread_index()` returns distinct indices for concurrently running workers
//!   of one parallel call, all smaller than `current_num_threads()`.
//!
//! Work is split into one contiguous range per worker. That is cruder than rayon's
//! work-stealing but sufficient for the data-parallel loops of this workspace, whose
//! iterations have near-uniform cost. Nested parallel calls inside a worker run
//! sequentially instead of oversubscribing.

use std::cell::Cell;

/// Inputs shorter than this run sequentially: thread spawn overhead (~tens of
/// microseconds) dwarfs the work of small loops.
const MIN_PARALLEL_LEN: usize = 4096;

thread_local! {
    /// Thread-count override installed by [`ThreadPool::install`]; 0 = uninitialised.
    static NUM_THREADS: Cell<usize> = const { Cell::new(0) };
    static THREAD_INDEX: Cell<Option<usize>> = const { Cell::new(None) };
}

fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

/// Number of threads parallel operations on this thread will use.
pub fn current_num_threads() -> usize {
    let configured = NUM_THREADS.with(|c| c.get());
    if configured == 0 {
        available_threads()
    } else {
        configured
    }
}

/// Index of the current worker within its parallel call, if inside one.
pub fn current_thread_index() -> Option<usize> {
    THREAD_INDEX.with(|c| c.get())
}

/// Error type returned by [`ThreadPoolBuilder::build`] (the shim never fails).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// A "pool" is just a configured thread count; workers are spawned per parallel call.
pub struct ThreadPool {
    num_threads: usize,
}

#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: if self.num_threads == 0 {
                available_threads()
            } else {
                self.num_threads
            },
        })
    }
}

impl ThreadPool {
    /// Runs `f` with this pool's thread count governing parallel operations inside.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let prev = NUM_THREADS.with(|c| c.replace(self.num_threads));
        let result = f();
        NUM_THREADS.with(|c| c.set(prev));
        result
    }

    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

/// A raw pointer that may cross thread boundaries. Safety rests on the drivers below
/// handing each worker a disjoint index range.
struct SharedPtr<T>(*mut T);
unsafe impl<T: Send> Send for SharedPtr<T> {}
unsafe impl<T: Send> Sync for SharedPtr<T> {}

/// Splits `0..len` into `workers` near-equal contiguous ranges; returns range `w`.
fn split_range(len: usize, workers: usize, w: usize) -> (usize, usize) {
    let base = len / workers;
    let extra = len % workers;
    let start = w * base + w.min(extra);
    let end = start + base + usize::from(w < extra);
    (start, end)
}

/// Core driver: runs `body(worker, start, end)` over `0..len` on up to
/// `current_num_threads()` workers. `weight` scales the sequential-fallback threshold:
/// pass the underlying element count when `len` counts coarser tasks (e.g. chunks).
fn drive<F>(len: usize, weight: usize, body: F)
where
    F: Fn(usize, usize, usize) + Sync,
{
    let threads = current_num_threads();
    if threads <= 1 || len <= 1 || weight < MIN_PARALLEL_LEN {
        body(0, 0, len);
        return;
    }
    let workers = threads.min(len);
    std::thread::scope(|scope| {
        let body = &body;
        for w in 1..workers {
            let (start, end) = split_range(len, workers, w);
            scope.spawn(move || {
                // Workers advertise a single thread so nested parallel calls run
                // sequentially instead of oversubscribing the machine.
                NUM_THREADS.with(|c| c.set(1));
                THREAD_INDEX.with(|c| c.set(Some(w)));
                body(w, start, end);
            });
        }
        let (start, end) = split_range(len, workers, 0);
        let prev_threads = NUM_THREADS.with(|c| c.replace(1));
        let prev_index = THREAD_INDEX.with(|c| c.replace(Some(0)));
        body(0, start, end);
        NUM_THREADS.with(|c| c.set(prev_threads));
        THREAD_INDEX.with(|c| c.set(prev_index));
    });
}

/// Parallel map over `0..len` writing `f(i)` to slot `i` of a fresh `Vec`.
fn map_collect_indexed<R, F>(len: usize, weight: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let mut out: Vec<R> = Vec::with_capacity(len);
    let ptr = SharedPtr(out.as_mut_ptr());
    drive(len, weight, |_, start, end| {
        let ptr = &ptr;
        for i in start..end {
            // SAFETY: each index is written exactly once, by exactly one worker, into
            // capacity reserved above; set_len happens only after all workers joined.
            unsafe { ptr.0.add(i).write(f(i)) };
        }
    });
    // SAFETY: all len slots were initialised by the loop above.
    unsafe { out.set_len(len) };
    out
}

/// Parallel fold: each worker produces an ordered Vec of per-task results; the worker
/// vectors are concatenated in worker order (preserving task order overall).
fn fold_collect_vecs<R, F>(len: usize, weight: usize, f: F) -> Vec<Vec<R>>
where
    R: Send,
    F: Fn(usize, &mut Vec<R>) + Sync,
{
    let threads = current_num_threads().max(1);
    let workers = threads.min(len.max(1));
    let mut parts: Vec<Vec<R>> = Vec::new();
    parts.resize_with(workers, Vec::new);
    let ptr = SharedPtr(parts.as_mut_ptr());
    drive(len, weight, |w, start, end| {
        let ptr = &ptr;
        // SAFETY: each worker index addresses its own pre-allocated slot.
        let acc = unsafe { &mut *ptr.0.add(w) };
        for i in start..end {
            f(i, acc);
        }
    });
    parts
}

// ---------------------------------------------------------------------------
// Slice adapters
// ---------------------------------------------------------------------------

pub struct ParIter<'a, T> {
    data: &'a [T],
}

pub struct ParIterEnumerate<'a, T> {
    data: &'a [T],
}

pub struct ParIterMap<'a, T, F> {
    data: &'a [T],
    f: F,
}

pub struct ParIterEnumerateMap<'a, T, F> {
    data: &'a [T],
    f: F,
}

impl<'a, T: Sync> ParIter<'a, T> {
    pub fn enumerate(self) -> ParIterEnumerate<'a, T> {
        ParIterEnumerate { data: self.data }
    }

    pub fn map<R, F>(self, f: F) -> ParIterMap<'a, T, F>
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
    {
        ParIterMap { data: self.data, f }
    }

    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&'a T) + Sync,
    {
        let data = self.data;
        drive(data.len(), data.len(), |_, start, end| {
            for item in &data[start..end] {
                f(item);
            }
        });
    }
}

impl<'a, T: Sync> ParIterEnumerate<'a, T> {
    pub fn map<R, F>(self, f: F) -> ParIterEnumerateMap<'a, T, F>
    where
        R: Send,
        F: Fn((usize, &'a T)) -> R + Sync,
    {
        ParIterEnumerateMap { data: self.data, f }
    }

    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &'a T)) + Sync,
    {
        let data = self.data;
        drive(data.len(), data.len(), |_, start, end| {
            for (i, item) in (start..end).zip(&data[start..end]) {
                f((i, item));
            }
        });
    }
}

impl<'a, T: Sync, R: Send, F: Fn(&'a T) -> R + Sync> ParIterMap<'a, T, F> {
    pub fn collect<C: FromParallelVec<R>>(self) -> C {
        let data = self.data;
        let f = &self.f;
        C::from_vec(map_collect_indexed(data.len(), data.len(), |i| f(&data[i])))
    }
}

impl<'a, T: Sync, R: Send, F: Fn((usize, &'a T)) -> R + Sync> ParIterEnumerateMap<'a, T, F> {
    pub fn collect<C: FromParallelVec<R>>(self) -> C {
        let data = self.data;
        let f = &self.f;
        C::from_vec(map_collect_indexed(data.len(), data.len(), |i| {
            f((i, &data[i]))
        }))
    }
}

pub struct ParChunks<'a, T> {
    data: &'a [T],
    size: usize,
}

pub struct ParChunksMap<'a, T, F> {
    data: &'a [T],
    size: usize,
    f: F,
}

impl<'a, T: Sync> ParChunks<'a, T> {
    fn num_chunks(&self) -> usize {
        self.data.len().div_ceil(self.size.max(1))
    }

    fn chunk(&self, i: usize) -> &'a [T] {
        let start = i * self.size;
        let end = (start + self.size).min(self.data.len());
        &self.data[start..end]
    }

    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&'a [T]) + Sync,
    {
        let chunks = self.num_chunks();
        drive(chunks, self.data.len(), |_, start, end| {
            for i in start..end {
                f(self.chunk(i));
            }
        });
    }

    pub fn map<R, F>(self, f: F) -> ParChunksMap<'a, T, F>
    where
        R: Send,
        F: Fn(&'a [T]) -> R + Sync,
    {
        ParChunksMap {
            data: self.data,
            size: self.size,
            f,
        }
    }

    pub fn enumerate(self) -> ParChunksEnumerate<'a, T> {
        ParChunksEnumerate {
            data: self.data,
            size: self.size,
        }
    }
}

pub struct ParChunksEnumerate<'a, T> {
    data: &'a [T],
    size: usize,
}

pub struct ParChunksEnumerateMap<'a, T, F> {
    data: &'a [T],
    size: usize,
    f: F,
}

impl<'a, T: Sync> ParChunksEnumerate<'a, T> {
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &'a [T])) + Sync,
    {
        let chunks = ParChunks {
            data: self.data,
            size: self.size,
        };
        let n = chunks.num_chunks();
        drive(n, self.data.len(), |_, start, end| {
            for i in start..end {
                f((i, chunks.chunk(i)));
            }
        });
    }

    pub fn map<R, F>(self, f: F) -> ParChunksEnumerateMap<'a, T, F>
    where
        R: Send,
        F: Fn((usize, &'a [T])) -> R + Sync,
    {
        ParChunksEnumerateMap {
            data: self.data,
            size: self.size,
            f,
        }
    }
}

impl<'a, T: Sync, R: Send, F: Fn((usize, &'a [T])) -> R + Sync> ParChunksEnumerateMap<'a, T, F> {
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> R
    where
        ID: Fn() -> R + Sync,
        OP: Fn(R, R) -> R + Sync,
    {
        let chunks = ParChunks {
            data: self.data,
            size: self.size,
        };
        let n = chunks.num_chunks();
        let f = &self.f;
        let parts = fold_collect_vecs(n, self.data.len(), |i, acc| {
            acc.push(f((i, chunks.chunk(i))))
        });
        parts.into_iter().flatten().fold(identity(), op)
    }

    pub fn collect<C: FromParallelVec<R>>(self) -> C {
        let chunks = ParChunks {
            data: self.data,
            size: self.size,
        };
        let n = chunks.num_chunks();
        let f = &self.f;
        C::from_vec(map_collect_indexed(n, self.data.len(), |i| {
            f((i, chunks.chunk(i)))
        }))
    }
}

impl<'a, T: Sync, R: Send, F: Fn(&'a [T]) -> R + Sync> ParChunksMap<'a, T, F> {
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> R
    where
        ID: Fn() -> R + Sync,
        OP: Fn(R, R) -> R + Sync,
    {
        let chunks = ParChunks {
            data: self.data,
            size: self.size,
        };
        let n = chunks.num_chunks();
        let f = &self.f;
        let parts = fold_collect_vecs(n, self.data.len(), |i, acc| acc.push(f(chunks.chunk(i))));
        parts.into_iter().flatten().fold(identity(), op)
    }

    pub fn collect<C: FromParallelVec<R>>(self) -> C {
        let chunks = ParChunks {
            data: self.data,
            size: self.size,
        };
        let n = chunks.num_chunks();
        let f = &self.f;
        C::from_vec(map_collect_indexed(n, self.data.len(), |i| {
            f(chunks.chunk(i))
        }))
    }
}

pub struct ParChunksMut<'a, T> {
    data: &'a mut [T],
    size: usize,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut [T]) + Sync,
    {
        let len = self.data.len();
        let size = self.size.max(1);
        let chunks = len.div_ceil(size);
        let ptr = SharedPtr(self.data.as_mut_ptr());
        drive(chunks, len, |_, start, end| {
            let ptr = &ptr;
            for i in start..end {
                let lo = i * size;
                let hi = (lo + size).min(len);
                // SAFETY: chunk index ranges are disjoint across workers.
                let chunk = unsafe { std::slice::from_raw_parts_mut(ptr.0.add(lo), hi - lo) };
                f(chunk);
            }
        });
    }

    pub fn enumerate(self) -> ParChunksMutEnumerate<'a, T> {
        ParChunksMutEnumerate { inner: self }
    }
}

pub struct ParChunksMutEnumerate<'a, T> {
    inner: ParChunksMut<'a, T>,
}

impl<T: Send> ParChunksMutEnumerate<'_, T> {
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &mut [T])) + Sync,
    {
        let len = self.inner.data.len();
        let size = self.inner.size.max(1);
        let chunks = len.div_ceil(size);
        let ptr = SharedPtr(self.inner.data.as_mut_ptr());
        drive(chunks, len, |_, start, end| {
            let ptr = &ptr;
            for i in start..end {
                let lo = i * size;
                let hi = (lo + size).min(len);
                // SAFETY: chunk index ranges are disjoint across workers.
                let chunk = unsafe { std::slice::from_raw_parts_mut(ptr.0.add(lo), hi - lo) };
                f((i, chunk));
            }
        });
    }
}

// ---------------------------------------------------------------------------
// Range adapters
// ---------------------------------------------------------------------------

/// Index types over which `(a..b).into_par_iter()` is supported.
pub trait ParIndex: Copy + Send + Sync {
    fn to_usize(self) -> usize;
    fn from_usize(i: usize) -> Self;
}

macro_rules! par_index {
    ($($t:ty),*) => {$(
        impl ParIndex for $t {
            #[inline]
            fn to_usize(self) -> usize {
                self as usize
            }
            #[inline]
            fn from_usize(i: usize) -> Self {
                i as $t
            }
        }
    )*};
}

par_index!(u32, u64, usize);

pub struct ParRange<I> {
    start: usize,
    len: usize,
    _marker: std::marker::PhantomData<I>,
}

pub struct ParRangeMap<I, F> {
    range: ParRange<I>,
    f: F,
}

pub struct ParRangeFilterMap<I, F> {
    range: ParRange<I>,
    f: F,
}

impl<I: ParIndex> ParRange<I> {
    #[inline]
    fn item(&self, i: usize) -> I {
        I::from_usize(self.start + i)
    }

    pub fn map<R, F>(self, f: F) -> ParRangeMap<I, F>
    where
        R: Send,
        F: Fn(I) -> R + Sync,
    {
        ParRangeMap { range: self, f }
    }

    pub fn filter_map<R, F>(self, f: F) -> ParRangeFilterMap<I, F>
    where
        R: Send,
        F: Fn(I) -> Option<R> + Sync,
    {
        ParRangeFilterMap { range: self, f }
    }

    pub fn for_each<F>(self, f: F)
    where
        F: Fn(I) + Sync,
    {
        drive(self.len, self.len, |_, start, end| {
            for i in start..end {
                f(self.item(i));
            }
        });
    }
}

impl<I: ParIndex, R: Send, F: Fn(I) -> R + Sync> ParRangeMap<I, F> {
    pub fn collect<C: FromParallelVec<R>>(self) -> C {
        let range = &self.range;
        let f = &self.f;
        C::from_vec(map_collect_indexed(range.len, range.len, |i| {
            f(range.item(i))
        }))
    }

    pub fn sum<S: std::iter::Sum<R> + Send>(self) -> S
    where
        R: Copy,
    {
        let range = &self.range;
        let f = &self.f;
        let parts = fold_collect_vecs(range.len, range.len, |i, acc| acc.push(f(range.item(i))));
        parts.into_iter().flatten().sum()
    }
}

impl<I: ParIndex, R: Send, F: Fn(I) -> Option<R> + Sync> ParRangeFilterMap<I, F> {
    pub fn collect<C: FromParallelVec<R>>(self) -> C {
        let range = &self.range;
        let f = &self.f;
        let parts = fold_collect_vecs(range.len, range.len, |i, acc| {
            if let Some(r) = f(range.item(i)) {
                acc.push(r);
            }
        });
        C::from_vec(parts.into_iter().flatten().collect())
    }
}

// ---------------------------------------------------------------------------
// Collection + conversion traits
// ---------------------------------------------------------------------------

/// Targets of `collect()`. Only `Vec<R>` is needed by this workspace.
pub trait FromParallelVec<R> {
    fn from_vec(v: Vec<R>) -> Self;
}

impl<R> FromParallelVec<R> for Vec<R> {
    fn from_vec(v: Vec<R>) -> Self {
        v
    }
}

pub trait IntoParallelIterator {
    type Iter;
    fn into_par_iter(self) -> Self::Iter;
}

impl<I: ParIndex> IntoParallelIterator for std::ops::Range<I> {
    type Iter = ParRange<I>;

    fn into_par_iter(self) -> ParRange<I> {
        let start = self.start.to_usize();
        let end = self.end.to_usize();
        ParRange {
            start,
            len: end.saturating_sub(start),
            _marker: std::marker::PhantomData,
        }
    }
}

pub trait ParallelSlice<T: Sync> {
    fn par_iter(&self) -> ParIter<'_, T>;
    fn par_chunks(&self, size: usize) -> ParChunks<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<'_, T> {
        ParIter { data: self }
    }

    fn par_chunks(&self, size: usize) -> ParChunks<'_, T> {
        ParChunks {
            data: self,
            size: size.max(1),
        }
    }
}

pub trait ParallelSliceMut<T: Send> {
    fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T>;
    fn par_sort_unstable_by_key<K, F>(&mut self, f: F)
    where
        K: Ord,
        F: Fn(&T) -> K + Sync;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T> {
        ParChunksMut {
            data: self,
            size: size.max(1),
        }
    }

    /// Sequential under the hood: sorting is never a hot path in this workspace.
    fn par_sort_unstable_by_key<K, F>(&mut self, f: F)
    where
        K: Ord,
        F: Fn(&T) -> K + Sync,
    {
        self.sort_unstable_by_key(f);
    }
}

pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn map_collect_preserves_order() {
        let n = 100_000usize;
        let v: Vec<usize> = (0..n).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v.len(), n);
        assert!(v.iter().enumerate().all(|(i, &x)| x == i * 2));
    }

    #[test]
    fn u32_ranges_work() {
        let v: Vec<u64> = (0..50_000u32)
            .into_par_iter()
            .map(|i| u64::from(i) + 1)
            .collect();
        assert_eq!(v[49_999], 50_000);
    }

    #[test]
    fn filter_map_keeps_order() {
        let v: Vec<usize> = (0..100_000usize)
            .into_par_iter()
            .filter_map(|i| (i % 3 == 0).then_some(i))
            .collect();
        assert!(v.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(v.len(), 33_334);
    }

    #[test]
    fn chunks_cover_everything_once() {
        let data: Vec<usize> = (0..10_000).collect();
        let total = AtomicUsize::new(0);
        data.par_chunks(37).for_each(|chunk| {
            total.fetch_add(chunk.iter().sum::<usize>(), Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), 10_000 * 9_999 / 2);
    }

    #[test]
    fn chunk_map_reduce_concatenates() {
        let data: Vec<u32> = (0..20_000).collect();
        let doubled: Vec<u32> = data
            .par_chunks(256)
            .map(|chunk| chunk.iter().map(|&x| x * 2).collect::<Vec<_>>())
            .reduce(Vec::new, |mut a, mut b| {
                a.append(&mut b);
                a
            });
        assert_eq!(doubled.len(), data.len());
        assert!(doubled.iter().zip(&data).all(|(&d, &x)| d == x * 2));
    }

    #[test]
    fn par_chunks_mut_writes_disjoint() {
        let mut data = vec![0usize; 30_000];
        data.par_chunks_mut(1_000)
            .enumerate()
            .for_each(|(i, chunk)| {
                for x in chunk.iter_mut() {
                    *x = i;
                }
            });
        assert_eq!(data[0], 0);
        assert_eq!(data[29_999], 29);
    }

    #[test]
    fn single_thread_pool_is_sequential_and_indexed() {
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        pool.install(|| {
            assert_eq!(current_num_threads(), 1);
            let v: Vec<usize> = (0..10_000usize).into_par_iter().map(|i| i).collect();
            assert_eq!(v[9_999], 9_999);
        });
        assert_ne!(current_num_threads(), 0);
    }

    #[test]
    fn worker_indices_stay_below_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        pool.install(|| {
            let data: Vec<usize> = (0..100_000).collect();
            data.par_chunks(64).for_each(|_| {
                let idx = current_thread_index().unwrap_or(0);
                assert!(idx < 3);
            });
        });
    }
}
