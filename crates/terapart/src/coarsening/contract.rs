//! Cluster contraction: buffered (baseline) and one-pass (TeraPart) algorithms
//! (paper §IV-B).
//!
//! Given a clustering, contraction builds the coarse graph whose vertices are the
//! clusters and whose edge weights aggregate the fine edge weights between clusters.
//!
//! * [`ContractionAlgorithm::Buffered`] aggregates the coarse neighbourhoods into
//!   per-cluster buffers, computes the degree prefix sum, and then copies the buffers
//!   into the CSR arrays — the coarse graph is held in memory twice at the peak.
//! * [`ContractionAlgorithm::OnePass`] appends each coarse neighbourhood directly to the
//!   (over-reserved) coarse edge array as soon as it has been aggregated. The write
//!   position and the new coarse vertex ID are obtained from a single atomic transaction
//!   on the [`DualCounter`]; vertex IDs are assigned in commit order, so the
//!   neighbourhoods of consecutive coarse IDs are consecutive in the edge array and no
//!   shuffling is needed. Endpoints are remapped from old cluster labels to new coarse
//!   IDs at the very end.
//!
//! Both algorithms use the two-phase aggregation idea: clusters whose coarse
//! neighbourhood exceeds the bump threshold are deferred to a sequential second phase
//! that may use an `O(n)` rating map.
//!
//! The per-level auxiliary state lives in a [`HierarchyScratch`] arena that is reused
//! across all hierarchy levels. In particular, the vertices of each cluster are grouped
//! with a flat two-pass counting sort (parallel count → blocked prefix sum → parallel
//! scatter) into a CSR-style `(offsets, members)` layout, replacing the seed's
//! `Vec<Vec<NodeId>>` bucket structure and its one-allocation-per-coarse-vertex cost.

use std::sync::atomic::Ordering;

use graph::csr::CsrGraph;
use graph::ids;
use graph::traits::Graph;
use graph::{EdgeId, EdgeWeight, NodeId, NodeWeight};
use memtrack::MemoryScope;
use rayon::prelude::*;

use crate::context::ContractionAlgorithm;
use crate::dual_counter::DualCounter;
use crate::scratch::{HierarchyScratch, SharedSlice};
use crate::ClusterId;

use super::lp_clustering::Clustering;
use super::rating_map::{FixedCapacityHashMap, SparseRatingMap};

/// Result of contracting a clustering.
#[derive(Debug, Clone)]
pub struct ContractionResult {
    /// The coarse graph. Coarse vertex weights are the summed weights of the cluster
    /// members; coarse edge weights aggregate all fine edges between the two clusters.
    pub coarse: CsrGraph,
    /// `mapping[u]` is the coarse vertex that fine vertex `u` was contracted into.
    pub mapping: Vec<NodeId>,
}

/// Number of fine half-edges batched per dual-counter transaction in one-pass
/// contraction (reduces contention on the atomic counter, paper §IV-B2).
const BATCH_EDGE_CAPACITY: usize = 4096;

/// Label-space block size of the parallel prefix sum in the bucket construction.
const LABEL_BLOCK: usize = 8192;

/// Contracts `clustering` on `graph` using the selected algorithm, with freshly
/// allocated scratch memory. Prefer [`contract_with_scratch`] inside the multilevel
/// pipeline, where one arena serves every level.
pub fn contract(
    graph: &impl Graph,
    clustering: &Clustering,
    algorithm: ContractionAlgorithm,
    bump_threshold: usize,
) -> ContractionResult {
    let mut scratch = HierarchyScratch::new();
    contract_with_scratch(graph, clustering, algorithm, bump_threshold, &mut scratch)
}

/// Contracts `clustering` on `graph`, reusing the buffers of `scratch`.
pub fn contract_with_scratch(
    graph: &impl Graph,
    clustering: &Clustering,
    algorithm: ContractionAlgorithm,
    bump_threshold: usize,
    scratch: &mut HierarchyScratch,
) -> ContractionResult {
    match algorithm {
        ContractionAlgorithm::Buffered => contract_buffered(graph, clustering, scratch),
        ContractionAlgorithm::OnePass => {
            contract_one_pass(graph, clustering, bump_threshold, scratch)
        }
    }
}

/// Groups the vertices of each cluster label into the scratch arena's flat CSR-style
/// bucket layout and returns the number of coarse vertices.
///
/// Two-pass counting sort: a parallel count over the labels, a blocked parallel prefix
/// sum over the label space (which also assigns dense coarse IDs in label order and
/// records them in `scratch.remap`), and a parallel scatter of the vertices through
/// per-label atomic cursors. After the call:
///
/// * `scratch.leaders[b]` is the cluster label of coarse vertex `b`;
/// * `scratch.bucket_members[scratch.bucket_offsets[b] as usize..scratch.bucket_offsets[b + 1] as usize]`
///   are the fine vertices of coarse vertex `b`;
/// * `scratch.remap[label]` is the coarse vertex of every populated `label`
///   (`NodeId::MAX` otherwise).
fn build_cluster_buckets(clustering: &Clustering, scratch: &mut HierarchyScratch) -> usize {
    let n = clustering.label.len();
    scratch.ensure_buckets(n);
    let heads = &scratch.bucket_heads[..n];
    let labels = &clustering.label[..n];

    // ---- Pass 1: count members per label (heads[l] = |cluster l|). ----
    heads.par_chunks(LABEL_BLOCK).for_each(|chunk| {
        for head in chunk {
            head.store(0, Ordering::Relaxed);
        }
    });
    labels.par_chunks(LABEL_BLOCK).for_each(|chunk| {
        for &l in chunk {
            heads[l as usize].fetch_add(1, Ordering::Relaxed);
        }
    });

    // ---- Pass 2: blocked prefix sum over the label space. ----
    let num_blocks = n.div_ceil(LABEL_BLOCK);
    let block_totals: Vec<(NodeId, NodeId)> = heads
        .par_chunks(LABEL_BLOCK)
        .map(|chunk| {
            let mut buckets: NodeId = 0;
            let mut members: NodeId = 0;
            for head in chunk {
                let count = head.load(Ordering::Relaxed);
                if count > 0 {
                    buckets += 1;
                    members += count;
                }
            }
            (buckets, members)
        })
        .collect();
    let mut block_bases = Vec::with_capacity(num_blocks);
    let (mut bucket_base, mut offset_base): (NodeId, NodeId) = (0, 0);
    for &(buckets, members) in &block_totals {
        block_bases.push((bucket_base, offset_base));
        bucket_base += buckets;
        offset_base += members;
    }
    let n_coarse = bucket_base as usize;
    debug_assert_eq!(offset_base as usize, n);

    // Per block: assign dense coarse IDs in label order, record bucket boundaries and
    // leaders, publish label -> coarse ID in remap, and turn heads[l] into the bucket's
    // write cursor for the scatter pass. Writes to disjoint index ranges per block.
    {
        let offsets = SharedSlice::new(&mut scratch.bucket_offsets[..n_coarse + 1]);
        let leaders = SharedSlice::new(&mut scratch.leaders[..n_coarse]);
        let remap = &scratch.remap[..n];
        heads
            .par_chunks(LABEL_BLOCK)
            .enumerate()
            .for_each(|(block, chunk)| {
                let (mut bucket, mut offset) = block_bases[block];
                for (i, head) in chunk.iter().enumerate() {
                    let label = (block * LABEL_BLOCK + i) as ClusterId;
                    let count = head.load(Ordering::Relaxed);
                    if count > 0 {
                        // SAFETY: bucket indices are disjoint across blocks by construction
                        // of the prefix sums.
                        unsafe {
                            leaders.write(bucket as usize, label);
                            offsets.write(bucket as usize, offset);
                        }
                        remap[label as usize].store(bucket, Ordering::Relaxed);
                        head.store(offset, Ordering::Relaxed);
                        bucket += 1;
                        offset += count;
                    } else {
                        remap[label as usize].store(ids::INVALID_NODE, Ordering::Relaxed);
                    }
                }
            });
        // SAFETY: index n_coarse is written exactly once, here.
        unsafe { offsets.write(n_coarse, ids::nid_count(n)) };
    }

    // ---- Pass 3: scatter the vertices through the per-label cursors. ----
    {
        let members = SharedSlice::new(&mut scratch.bucket_members[..n]);
        labels
            .par_chunks(LABEL_BLOCK)
            .enumerate()
            .for_each(|(block, chunk)| {
                let base = (block * LABEL_BLOCK) as NodeId;
                for (i, &l) in chunk.iter().enumerate() {
                    let position = heads[l as usize].fetch_add(1, Ordering::Relaxed);
                    // SAFETY: the atomic cursor hands out each position exactly once.
                    unsafe { members.write(position as usize, base + i as NodeId) };
                }
            });
    }
    n_coarse
}

/// Baseline contraction: aggregate into per-cluster buffers, then copy into CSR arrays.
fn contract_buffered(
    graph: &impl Graph,
    clustering: &Clustering,
    scratch: &mut HierarchyScratch,
) -> ContractionResult {
    let n = graph.n();
    if n == 0 {
        return ContractionResult {
            coarse: graph::CsrGraphBuilder::new(0).build(),
            mapping: Vec::new(),
        };
    }
    let n_coarse = build_cluster_buckets(clustering, scratch);
    let offsets = &scratch.bucket_offsets[..n_coarse + 1];
    let members = &scratch.bucket_members[..n];
    let remap = &scratch.remap[..n];
    let mapping: Vec<NodeId> = (0..n)
        .into_par_iter()
        .map(|u| remap[clustering.label[u] as usize].load(Ordering::Relaxed))
        .collect();

    // Aggregate each coarse neighbourhood into its own buffer (this is the transient
    // second copy of the coarse graph that one-pass contraction eliminates).
    let buffers: Vec<(NodeWeight, Vec<(NodeId, EdgeWeight)>)> = (0..n_coarse)
        .into_par_iter()
        .map(|coarse| {
            let cluster = &members[offsets[coarse] as usize..offsets[coarse + 1] as usize];
            let mut ratings: std::collections::HashMap<NodeId, EdgeWeight> =
                std::collections::HashMap::new();
            let mut weight: NodeWeight = 0;
            for &u in cluster {
                weight += graph.node_weight(u);
                graph.for_each_neighbor(u, &mut |v, w| {
                    let target = mapping[v as usize];
                    if target != coarse as NodeId {
                        *ratings.entry(target).or_insert(0) += w;
                    }
                });
            }
            let mut edges: Vec<(NodeId, EdgeWeight)> = ratings.into_iter().collect();
            edges.sort_unstable_by_key(|&(v, _)| v);
            (weight, edges)
        })
        .collect();

    // Charge the transient buffers to the memory accounting: this is the extra copy of
    // the coarse graph that the paper's Figure 2 attributes to "Contraction".
    let buffer_bytes: usize = buffers
        .iter()
        .map(|(_, edges)| {
            edges.len() * (std::mem::size_of::<NodeId>() + std::mem::size_of::<EdgeWeight>())
        })
        .sum();
    let _scope = MemoryScope::charge_global(buffer_bytes);

    // Prefix sum over degrees, then copy the buffers into the CSR arrays.
    let mut xadj: Vec<EdgeId> = Vec::with_capacity(n_coarse + 1);
    xadj.push(0);
    let mut acc: EdgeId = 0;
    for (_, edges) in &buffers {
        acc += edges.len() as EdgeId;
        xadj.push(acc);
    }
    let mut adjacency: Vec<NodeId> = Vec::with_capacity(acc as usize);
    let mut edge_weights: Vec<EdgeWeight> = Vec::with_capacity(acc as usize);
    let mut node_weights: Vec<NodeWeight> = Vec::with_capacity(n_coarse);
    for (weight, edges) in &buffers {
        node_weights.push(*weight);
        for &(v, w) in edges {
            adjacency.push(v);
            edge_weights.push(w);
        }
    }
    let coarse = CsrGraph::from_parts(xadj, adjacency, edge_weights, node_weights);
    ContractionResult { coarse, mapping }
}

/// A buffered batch of aggregated coarse neighbourhoods awaiting a dual-counter
/// transaction. Pooled per worker in the arena's
/// [`WorkerScratchPool`](crate::scratch::WorkerScratchPool) (formerly a
/// `thread_local!` static), so the per-chunk table/batch allocations of the seed
/// implementation disappear without pinning the buffers to rayon's threads for the
/// process lifetime.
pub(crate) struct Batch {
    /// (old label, node weight, number of edges) per coarse vertex in the batch.
    vertices: Vec<(ClusterId, NodeWeight, u32)>,
    /// Concatenated (old target label, weight) pairs.
    edges: Vec<(ClusterId, EdgeWeight)>,
}

impl Batch {
    pub(crate) fn new() -> Self {
        Self {
            vertices: Vec::new(),
            edges: Vec::with_capacity(BATCH_EDGE_CAPACITY),
        }
    }

    fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }
}

/// One-pass contraction (paper §IV-B2), writing through the scratch arena.
fn contract_one_pass(
    graph: &impl Graph,
    clustering: &Clustering,
    bump_threshold: usize,
    scratch: &mut HierarchyScratch,
) -> ContractionResult {
    let n = graph.n();
    if n == 0 {
        return ContractionResult {
            coarse: graph::CsrGraphBuilder::new(0).build(),
            mapping: Vec::new(),
        };
    }
    let n_coarse = build_cluster_buckets(clustering, scratch);
    let upper_bound_edges = 2 * graph.m();
    scratch.ensure_contraction(n);
    scratch.ensure_edges(upper_bound_edges);

    let offsets = &scratch.bucket_offsets[..n_coarse + 1];
    let members = &scratch.bucket_members[..n];
    let leaders = &scratch.leaders[..n_coarse];
    let remap = &scratch.remap[..n];
    let starts = &scratch.starts[..n];
    let coarse_node_weights = &scratch.coarse_node_weights[..n];
    let coarse_edges = &scratch.edge_targets[..upper_bound_edges];
    let coarse_edge_weights = &scratch.edge_weights[..upper_bound_edges];
    let workers = &*scratch.workers;
    let dual = DualCounter::new();

    let flush_batch = |batch: &mut Batch| {
        if batch.is_empty() {
            return;
        }
        let (d_prev, s_prev) =
            dual.fetch_add(batch.edges.len() as u64, batch.vertices.len() as u64);
        let mut edge_cursor = d_prev as usize;
        let mut offset_in_edges = 0usize;
        for (i, &(label, weight, len)) in batch.vertices.iter().enumerate() {
            let coarse_id = s_prev as usize + i;
            starts[coarse_id].store(edge_cursor as u64, Ordering::Relaxed);
            coarse_node_weights[coarse_id].store(weight, Ordering::Relaxed);
            remap[label as usize].store(coarse_id as NodeId, Ordering::Relaxed);
            for &(target, w) in &batch.edges[offset_in_edges..offset_in_edges + len as usize] {
                coarse_edges[edge_cursor].store(target, Ordering::Relaxed);
                coarse_edge_weights[edge_cursor].store(w, Ordering::Relaxed);
                edge_cursor += 1;
            }
            offset_in_edges += len as usize;
        }
        batch.vertices.clear();
        batch.edges.clear();
    };

    // ---- First phase: clusters in parallel, fixed-capacity hash tables, batching. ----
    // Account the per-worker aggregation state (rating table + dual-counter batch,
    // reused via the arena's worker pool) for the duration of the phase.
    let _agg_scope = MemoryScope::charge_global(
        rayon::current_num_threads().max(1)
            * (FixedCapacityHashMap::new(bump_threshold).memory_bytes()
                + BATCH_EDGE_CAPACITY * std::mem::size_of::<(ClusterId, EdgeWeight)>()),
    );
    let bumped: Vec<usize> = leaders
        .par_chunks(64)
        .enumerate()
        .map(|(chunk_index, chunk)| {
            // Reuse a pooled worker's table and batch across chunks (and across calls);
            // the lease returns them to the arena's pool when the chunk is done.
            let mut worker = workers.checkout();
            let needs_new = match &worker.agg {
                Some((table, _)) => table.limit() != bump_threshold,
                None => true,
            };
            if needs_new {
                worker.agg = Some((FixedCapacityHashMap::new(bump_threshold), Batch::new()));
            }
            let Some((table, batch)) = worker.agg.as_mut() else {
                unreachable!()
            };
            table.clear();
            let mut bumped = Vec::new();
            for (i, &label) in chunk.iter().enumerate() {
                let idx = chunk_index * 64 + i;
                table.clear();
                let mut weight: NodeWeight = 0;
                let mut overflow = false;
                for &u in &members[offsets[idx] as usize..offsets[idx + 1] as usize] {
                    weight += graph.node_weight(u);
                    graph.for_each_neighbor(u, &mut |v, w| {
                        let target_label = clustering.label[v as usize];
                        if !overflow && target_label != label && !table.add(target_label, w) {
                            overflow = true;
                        }
                    });
                    if overflow {
                        break;
                    }
                }
                if overflow {
                    bumped.push(idx);
                    continue;
                }
                let len = table.len() as u32;
                if batch.edges.len() + len as usize > BATCH_EDGE_CAPACITY && !batch.is_empty() {
                    flush_batch(batch);
                }
                batch.vertices.push((label, weight, len));
                batch.edges.extend(table.iter());
                if batch.edges.len() >= BATCH_EDGE_CAPACITY {
                    flush_batch(batch);
                }
            }
            flush_batch(batch);
            bumped
        })
        .reduce(Vec::new, |mut a, mut b| {
            a.append(&mut b);
            a
        });
    // ---- Second phase: bumped high-fanout clusters sequentially with a sparse map. ----
    if !bumped.is_empty() {
        let mut map = SparseRatingMap::new(n);
        let _scope = MemoryScope::charge_global(map.memory_bytes());
        for &idx in &bumped {
            let label = leaders[idx];
            map.clear();
            let mut weight: NodeWeight = 0;
            for &u in &members[offsets[idx] as usize..offsets[idx + 1] as usize] {
                weight += graph.node_weight(u);
                graph.for_each_neighbor(u, &mut |v, w| {
                    let target_label = clustering.label[v as usize];
                    if target_label != label {
                        map.add(target_label, w);
                    }
                });
            }
            let len = map.len();
            let (d_prev, s_prev) = dual.fetch_add(len as u64, 1);
            let coarse_id = s_prev as usize;
            starts[coarse_id].store(d_prev, Ordering::Relaxed);
            coarse_node_weights[coarse_id].store(weight, Ordering::Relaxed);
            remap[label as usize].store(coarse_id as NodeId, Ordering::Relaxed);
            for (i, (target, w)) in map.iter().enumerate() {
                coarse_edges[d_prev as usize + i].store(target, Ordering::Relaxed);
                coarse_edge_weights[d_prev as usize + i].store(w, Ordering::Relaxed);
            }
        }
    }
    let (total_edges, total_vertices) = dual.load();
    let m_half = total_edges as usize;
    debug_assert_eq!(total_vertices as usize, n_coarse);

    // Charge the committed portion of the over-reserved edge arrays for the remainder of
    // this contraction (the paper's point: only 2m' entries are physically backed).
    let committed_bytes = m_half
        * (std::mem::size_of::<graph::AtomicNodeId>()
            + std::mem::size_of::<std::sync::atomic::AtomicU64>());
    let _scope = MemoryScope::charge_global(committed_bytes);

    // ---- Assemble the CSR arrays, remapping old labels to coarse IDs. ----
    let mut xadj: Vec<EdgeId> = (0..n_coarse)
        .into_par_iter()
        .map(|c| starts[c].load(Ordering::Relaxed))
        .collect();
    xadj.push(m_half as EdgeId);
    // The starts are monotone because coarse IDs are assigned in commit order.
    debug_assert!(xadj.windows(2).all(|w| w[0] <= w[1]));

    let mut adjacency: Vec<NodeId> = (0..m_half)
        .into_par_iter()
        .map(|e| {
            let old_label = coarse_edges[e].load(Ordering::Relaxed);
            remap[old_label as usize].load(Ordering::Relaxed)
        })
        .collect();
    let mut edge_weights: Vec<EdgeWeight> = (0..m_half)
        .into_par_iter()
        .map(|e| coarse_edge_weights[e].load(Ordering::Relaxed))
        .collect();
    let node_weights: Vec<NodeWeight> = (0..n_coarse)
        .into_par_iter()
        .map(|c| coarse_node_weights[c].load(Ordering::Relaxed))
        .collect();

    // Sort each coarse neighbourhood by target ID for deterministic downstream
    // behaviour, in parallel over the (disjoint) CSR segments. Coarse degrees are
    // mostly tiny, so short segments use an in-place dual-array insertion sort; only
    // long segments go through a pooled per-worker key buffer.
    {
        let adj_shared = SharedSlice::new(&mut adjacency);
        let wts_shared = SharedSlice::new(&mut edge_weights);
        (0..n_coarse).into_par_iter().for_each(|c| {
            let begin = xadj[c] as usize;
            let end = xadj[c + 1] as usize;
            let len = end - begin;
            if len <= 1 {
                return;
            }
            // SAFETY: CSR segments of distinct coarse vertices never overlap.
            let adj = unsafe { adj_shared.slice_mut(begin, end) };
            let wts = unsafe { wts_shared.slice_mut(begin, end) };
            if len <= 32 {
                for i in 1..len {
                    let (v, w) = (adj[i], wts[i]);
                    let mut j = i;
                    while j > 0 && adj[j - 1] > v {
                        adj[j] = adj[j - 1];
                        wts[j] = wts[j - 1];
                        j -= 1;
                    }
                    adj[j] = v;
                    wts[j] = w;
                }
            } else {
                // Fast path: sort packed 64-bit (target, position) keys — branchless
                // integer comparisons, no 16-byte pair shuffling — then gather the
                // weights through the recorded positions. Valid whenever both halves
                // fit 32 bits, which is always true at the default width; wide builds
                // verify it per segment (cheap relative to the sort) and fall back to
                // a (target, position) pair sort with the identical resulting order.
                const LOW_32: u64 = 0xFFFF_FFFF;
                let fits_packed = NodeId::BITS == 32
                    || (len as u64 <= LOW_32 && adj.iter().all(|&v| ids::widen(v) <= LOW_32));
                let mut worker = workers.checkout();
                let worker = &mut *worker;
                let wts_copy = &mut worker.sort_wts;
                wts_copy.clear();
                wts_copy.extend_from_slice(wts);
                if fits_packed {
                    let keys = &mut worker.sort_keys;
                    keys.clear();
                    keys.extend(
                        adj.iter()
                            .enumerate()
                            .map(|(i, &v)| (ids::widen(v) << 32) | i as u64),
                    );
                    keys.sort_unstable();
                    for (i, &packed) in keys.iter().enumerate() {
                        adj[i] = (packed >> 32) as NodeId;
                        wts[i] = wts_copy[(packed & LOW_32) as usize];
                    }
                } else {
                    let pairs = &mut worker.sort_pairs;
                    pairs.clear();
                    pairs.extend(adj.iter().enumerate().map(|(i, &v)| (v, i as u64)));
                    pairs.sort_unstable();
                    for (i, &(v, position)) in pairs.iter().enumerate() {
                        adj[i] = v;
                        wts[i] = wts_copy[position as usize];
                    }
                }
            }
        });
    }

    let coarse = CsrGraph::from_parts(xadj, adjacency, edge_weights, node_weights);
    let mapping: Vec<NodeId> = (0..n)
        .into_par_iter()
        .map(|u| remap[clustering.label[u] as usize].load(Ordering::Relaxed))
        .collect();
    ContractionResult { coarse, mapping }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coarsening::lp_clustering;
    use crate::context::CoarseningConfig;
    use graph::gen;

    /// Computes the total weight of fine edges whose endpoints lie in different clusters.
    fn inter_cluster_weight(graph: &impl Graph, clustering: &Clustering) -> EdgeWeight {
        let mut total = 0;
        for u in 0..graph.n() as NodeId {
            graph.for_each_neighbor(u, &mut |v, w| {
                if u < v && clustering.label[u as usize] != clustering.label[v as usize] {
                    total += w;
                }
            });
        }
        total
    }

    fn check_contraction(graph: &impl Graph, clustering: &Clustering, result: &ContractionResult) {
        let coarse = &result.coarse;
        assert_eq!(coarse.n(), clustering.num_clusters);
        assert_eq!(result.mapping.len(), graph.n());
        // Node weight is preserved exactly.
        assert_eq!(coarse.total_node_weight(), graph.total_node_weight());
        // Coarse edge weight equals the weight of inter-cluster fine edges.
        assert_eq!(
            coarse.total_edge_weight(),
            inter_cluster_weight(graph, clustering)
        );
        // The mapping is consistent: two fine vertices share a coarse vertex iff they
        // share a cluster label.
        for u in 0..graph.n() {
            for v in (u + 1)..graph.n().min(u + 50) {
                let same_cluster = clustering.label[u] == clustering.label[v];
                let same_coarse = result.mapping[u] == result.mapping[v];
                assert_eq!(same_cluster, same_coarse, "vertices {} and {}", u, v);
            }
        }
        // Coarse node weights equal the summed fine weights per coarse vertex.
        let mut expected = vec![0u64; coarse.n()];
        for u in 0..graph.n() {
            expected[result.mapping[u] as usize] += graph.node_weight(u as NodeId);
        }
        for c in 0..coarse.n() as NodeId {
            assert_eq!(coarse.node_weight(c), expected[c as usize]);
        }
        // The coarse graph must be symmetric.
        assert!(coarse.is_symmetric());
    }

    fn lp_clustering_for(graph: &impl Graph, max_weight: NodeWeight) -> Clustering {
        let config = CoarseningConfig {
            bump_threshold: 8,
            ..Default::default()
        };
        lp_clustering::cluster(graph, &config, max_weight, 7)
    }

    #[test]
    fn singleton_clustering_reproduces_the_graph() {
        let g = gen::with_random_edge_weights(&gen::grid2d(8, 8), 5, 3);
        let clustering = Clustering::singletons(g.n());
        for algorithm in [
            ContractionAlgorithm::Buffered,
            ContractionAlgorithm::OnePass,
        ] {
            let result = contract(&g, &clustering, algorithm, 16);
            check_contraction(&g, &clustering, &result);
            assert_eq!(result.coarse.n(), g.n());
            assert_eq!(result.coarse.m(), g.m());
            assert_eq!(result.coarse.total_edge_weight(), g.total_edge_weight());
        }
    }

    #[test]
    fn everything_in_one_cluster_gives_a_single_vertex() {
        let g = gen::complete(10);
        let clustering = Clustering::from_labels(vec![3; 10]);
        for algorithm in [
            ContractionAlgorithm::Buffered,
            ContractionAlgorithm::OnePass,
        ] {
            let result = contract(&g, &clustering, algorithm, 16);
            assert_eq!(result.coarse.n(), 1);
            assert_eq!(result.coarse.m(), 0);
            assert_eq!(result.coarse.node_weight(0), 10);
            assert!(result.mapping.iter().all(|&c| c == 0));
        }
    }

    #[test]
    fn both_algorithms_produce_equivalent_graphs() {
        for (name, g) in [
            ("grid", gen::grid2d(15, 15)),
            ("powerlaw", gen::rhg_like(600, 8, 3.0, 5)),
            (
                "weighted",
                gen::with_random_edge_weights(&gen::erdos_renyi(300, 1200, 2), 9, 4),
            ),
        ] {
            let clustering = lp_clustering_for(&g, 8);
            let buffered = contract(&g, &clustering, ContractionAlgorithm::Buffered, 16);
            let one_pass = contract(&g, &clustering, ContractionAlgorithm::OnePass, 16);
            check_contraction(&g, &clustering, &buffered);
            check_contraction(&g, &clustering, &one_pass);
            assert_eq!(buffered.coarse.n(), one_pass.coarse.n(), "{}", name);
            assert_eq!(buffered.coarse.m(), one_pass.coarse.m(), "{}", name);
            assert_eq!(
                buffered.coarse.total_edge_weight(),
                one_pass.coarse.total_edge_weight(),
                "{}",
                name
            );
            // Degree multisets must agree (the graphs are isomorphic up to relabelling).
            let mut degrees_a: Vec<usize> = (0..buffered.coarse.n() as NodeId)
                .map(|u| buffered.coarse.degree(u))
                .collect();
            let mut degrees_b: Vec<usize> = (0..one_pass.coarse.n() as NodeId)
                .map(|u| one_pass.coarse.degree(u))
                .collect();
            degrees_a.sort_unstable();
            degrees_b.sort_unstable();
            assert_eq!(degrees_a, degrees_b, "{}", name);
        }
    }

    #[test]
    fn one_pass_handles_high_fanout_clusters_via_second_phase() {
        // Clustering the star's leaves into many tiny clusters gives the hub cluster a
        // huge coarse degree, forcing the bump path with a tiny threshold.
        let g = gen::star(300);
        let labels: Vec<ClusterId> = (0..300 as ClusterId)
            .map(|u| if u == 0 { 0 } else { u })
            .collect();
        let clustering = Clustering::from_labels(labels);
        let result = contract(&g, &clustering, ContractionAlgorithm::OnePass, 4);
        check_contraction(&g, &clustering, &result);
        assert_eq!(result.coarse.n(), 300);
        assert_eq!(result.coarse.max_degree(), 299);
    }

    #[test]
    fn contraction_after_real_clustering_shrinks_the_graph() {
        let g = gen::rgg2d(1000, 10, 9);
        let clustering = lp_clustering_for(&g, 8);
        let result = contract(&g, &clustering, ContractionAlgorithm::OnePass, 32);
        check_contraction(&g, &clustering, &result);
        assert!(
            result.coarse.n() < g.n() / 2,
            "coarse graph too large: {}",
            result.coarse.n()
        );
        assert!(result.coarse.m() <= g.m());
    }

    #[test]
    fn empty_graph_contracts_to_empty_graph() {
        let g = graph::CsrGraphBuilder::new(0).build();
        let clustering = Clustering::singletons(0);
        for algorithm in [
            ContractionAlgorithm::Buffered,
            ContractionAlgorithm::OnePass,
        ] {
            let result = contract(&g, &clustering, algorithm, 8);
            assert_eq!(result.coarse.n(), 0);
            assert_eq!(result.coarse.m(), 0);
        }
    }

    #[test]
    fn flat_buckets_partition_the_vertex_set() {
        let g = gen::rgg2d(800, 9, 4);
        let clustering = lp_clustering_for(&g, 8);
        let mut scratch = HierarchyScratch::new();
        let n_coarse = build_cluster_buckets(&clustering, &mut scratch);
        assert_eq!(n_coarse, clustering.num_clusters);
        assert_eq!(scratch.bucket_offsets[0], 0);
        assert_eq!(scratch.bucket_offsets[n_coarse] as usize, g.n());
        let mut seen = vec![false; g.n()];
        for b in 0..n_coarse {
            let begin = scratch.bucket_offsets[b] as usize;
            let end = scratch.bucket_offsets[b + 1] as usize;
            assert!(begin < end, "bucket {} is empty", b);
            let leader = scratch.leaders[b];
            for &u in &scratch.bucket_members[begin..end] {
                assert!(!seen[u as usize], "vertex {} scattered twice", u);
                seen[u as usize] = true;
                assert_eq!(clustering.label[u as usize], leader);
            }
        }
        assert!(seen.iter().all(|&s| s));
        // Leaders are the distinct labels in increasing order.
        assert!(scratch.leaders[..n_coarse].windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn scratch_reuse_across_levels_stays_correct_and_allocation_free() {
        // Contract three shrinking levels through one arena; the arena must not grow
        // after the first (largest) level, and every level must stay valid.
        let g = gen::rgg2d(1500, 12, 6);
        let mut scratch = HierarchyScratch::new();
        let mut current = g.clone();
        let mut bytes_after_first = None;
        for level in 0..3 {
            let clustering = lp_clustering_for(&current, 8);
            if clustering.num_clusters == current.n() {
                break;
            }
            let result = contract_with_scratch(
                &current,
                &clustering,
                ContractionAlgorithm::OnePass,
                16,
                &mut scratch,
            );
            check_contraction(&current, &clustering, &result);
            match bytes_after_first {
                None => bytes_after_first = Some(scratch.memory_bytes()),
                Some(first) => {
                    assert_eq!(
                        scratch.memory_bytes(),
                        first,
                        "scratch grew at level {} despite shrinking graphs",
                        level
                    );
                }
            }
            current = result.coarse;
        }
        assert!(
            bytes_after_first.is_some(),
            "no contraction level was executed"
        );
    }
}
